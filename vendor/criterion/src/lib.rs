//! A small, dependency-free benchmarking shim.
//!
//! Vendors the subset of the `criterion` crate API this workspace's
//! benches use (`criterion_group!`/`criterion_main!`, benchmark
//! groups, `iter`, `iter_batched`), so `cargo bench` runs without
//! network access to a package registry. It measures with
//! `std::time::Instant` and prints mean wall-clock time per
//! iteration; there is no statistical analysis, warm-up tuning, or
//! HTML reporting.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup; accepted and ignored by this
/// shim, which always times each batch of one iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup call per iteration.
    PerIteration,
}

/// Drives the measured routine.
#[derive(Debug)]
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over this bencher's iteration budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` on inputs built by `setup`, excluding setup
    /// time from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iterations {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_one(label: &str, iterations: u64, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        iterations,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = if b.iterations == 0 {
        Duration::ZERO
    } else {
        b.elapsed / b.iterations as u32
    };
    println!("{label:<48} time: {per_iter:>12.3?}/iter ({iterations} iters)");
}

/// The benchmark driver handed to each `criterion_group!` target.
#[derive(Debug)]
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into(), self.sample_size, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
        }
    }
}

/// A named collection of benchmarks sharing settings.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: u64,
}

impl BenchmarkGroup {
    /// Overrides the iteration count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            &format!("{}/{}", self.name, id.into()),
            self.sample_size,
            &mut f,
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group function running each target with a fresh
/// [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_routines() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut count = 0u64;
        group.bench_function("count", |b| b.iter(|| count += 1));
        group.finish();
        assert_eq!(count, 3);

        let mut batched = 0u64;
        c.bench_function("batched", |b| {
            b.iter_batched(|| 2u64, |x| batched += x, BatchSize::SmallInput)
        });
        assert_eq!(batched, 40);
    }
}
