//! A small, dependency-free property-testing shim.
//!
//! This workspace vendors the subset of the `proptest` crate API its
//! tests actually use, so the suite builds and runs without network
//! access to a package registry. Semantics are simplified relative to
//! upstream `proptest` — no shrinking, no failure persistence — but
//! the surface (the `proptest!` macro, `Strategy`, `any`,
//! `prop::collection::vec`, `prop_assert*`, `ProptestConfig`) is
//! source-compatible for the patterns used here. Generation is fully
//! deterministic: every test derives its RNG seed from its own module
//! path and name, so failures reproduce exactly.

#![forbid(unsafe_code)]

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Deterministic generator backing all strategies (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded from a test's fully qualified name, so each
    /// test draws an independent, reproducible stream.
    pub fn from_name(name: &str) -> TestRng {
        // FNV-1a over the name, then one splitmix64 scramble.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: h ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "empty range");
        // Multiply-shift reduction; bias is irrelevant for testing.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// A value generator. Upstream proptest strategies also shrink; this
/// shim only generates.
pub trait Strategy {
    /// The type of generated values.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}

int_strategies!(u8, u16, u32, u64, usize);

macro_rules! tuple_strategies {
    ($(($($n:ident $idx:tt),+);)*) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
}

/// Types with a canonical full-range strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy over the full range of `T` (see [`any`]).
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// The full-range strategy for `T`, as in `any::<u64>()`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// A length specification: fixed, half-open, or inclusive.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_excl: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                lo: n,
                hi_excl: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            SizeRange {
                lo: r.start,
                hi_excl: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi_excl: *r.end() + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of an element strategy's values.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.size.lo < self.size.hi_excl, "empty size range");
            let span = (self.size.hi_excl - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Namespace mirror so `prop::collection::vec(..)` resolves as with
/// upstream proptest's prelude.
pub mod prop {
    pub use crate::collection;
}

/// Per-block configuration, set via `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Accepted for upstream compatibility; this shim never shrinks.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig {
            cases: 64,
            max_shrink_iters: 0,
        }
    }
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ..)` item
/// becomes a `#[test]` that evaluates its body across generated
/// cases. Supports an optional leading `#![proptest_config(expr)]`.
#[macro_export]
macro_rules! proptest {
    (@run ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($arg:pat in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_name(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for _case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                    $body
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// The glob-importable surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Any, Arbitrary,
        ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::TestRng::from_name("x");
        let mut b = crate::TestRng::from_name("x");
        let mut c = crate::TestRng::from_name("y");
        let (va, vb, vc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::from_name("bounds");
        for _ in 0..1000 {
            let v = (3u32..7).generate(&mut rng);
            assert!((3..7).contains(&v));
            let w = (2usize..=6).generate(&mut rng);
            assert!((2..=6).contains(&w));
        }
    }

    #[test]
    fn vec_sizes_respect_spec() {
        let mut rng = crate::TestRng::from_name("sizes");
        for _ in 0..200 {
            let v = prop::collection::vec(any::<u8>(), 1..200).generate(&mut rng);
            assert!((1..200).contains(&v.len()));
            let f = prop::collection::vec(0u32..64, 4).generate(&mut rng);
            assert_eq!(f.len(), 4);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

        /// The macro itself: tuples, patterns, and assertions.
        #[test]
        fn macro_round_trip((a, b) in (0u64..10, 0u64..10), flip in any::<bool>()) {
            prop_assert!(a < 10 && b < 10);
            let (x, y) = if flip { (a, b) } else { (b, a) };
            prop_assert_eq!(x + y, a + b);
        }
    }
}
