//! ATM-LAN-style network model.
//!
//! Models the paper's hardware: N workstations, each with a full-duplex
//! 155 Mbps link into a single store-and-forward switch. Each
//! direction of each link is a FIFO resource that is busy while a
//! message serializes onto it, so concurrent senders to one receiver
//! queue up on the receiver's ingress link — this is the *hot-spotting*
//! effect the paper identifies (§3.3.2, §4.3), and bursty traffic
//! (e.g. many prefetches issued back to back) creates queueing delay
//! on the sender's egress link.
//!
//! Messages are either [`Reliability::Reliable`] (the DSM's lightweight
//! reliable protocol retries them on loss) or
//! [`Reliability::Droppable`] (prefetch requests/replies, which the
//! paper deliberately does not retry). A droppable message that meets
//! a congested queue is dropped with a configurable probability.
//!
//! On top of the base model, an optional [`crate::FaultPlan`]
//! (see [`Network::set_fault_plan`]) injects deterministic drops,
//! duplicates, reorder delays, jitter, degradation windows, and node
//! stalls into *any* message class. With a plan installed, even
//! reliable-class messages can be lost in flight — recovering from
//! that is the job of the DSM's modeled reliable transport, not of
//! the network.
//!
//! # Examples
//!
//! ```
//! use rsdsm_simnet::{NetConfig, Network, Reliability, SimTime};
//!
//! let mut net = Network::new(8, NetConfig::atm_155(42));
//! let outcome = net.send(
//!     SimTime::ZERO,
//!     0,
//!     1,
//!     4096,
//!     Reliability::Reliable,
//!     "diff_reply",
//! );
//! let arrival = outcome.arrival_time().expect("reliable messages always arrive");
//! assert!(arrival > SimTime::ZERO);
//! ```

use std::collections::BTreeMap;

use crate::faults::{Delivery, FaultClass, FaultInjector, FaultPlan, FaultStats};
use crate::rng::DetRng;
use crate::time::{SimDuration, SimTime};
use crate::topology::Topology;

/// Identifies a node (workstation) in the cluster. Nodes are numbered
/// `0..n`.
pub type NodeId = usize;

/// Whether the network may silently drop a message under congestion.
///
/// The paper's prefetch messages are unreliable by design: retrying
/// them under congestion would worsen the congestion (§3.1, footnote 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Reliability {
    /// Never lost; the DSM's reliable transport retries transparently.
    Reliable,
    /// May be dropped when it encounters a congested queue.
    Droppable,
}

/// The result of [`Network::send`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendOutcome {
    /// The message will arrive at the destination at the given instant.
    Delivered {
        /// Absolute arrival time at the destination NIC.
        arrival: SimTime,
    },
    /// The message will arrive, and an injected duplicate copy will
    /// arrive too (fault plans only).
    DeliveredDup {
        /// Absolute arrival time of the message itself.
        arrival: SimTime,
        /// Absolute arrival time of the duplicate copy.
        dup: SimTime,
    },
    /// The message was dropped — by congestion (droppable only) or by
    /// an injected fault (any class).
    Dropped,
}

impl SendOutcome {
    /// The primary copy's arrival time, or `None` if it was dropped.
    pub fn arrival_time(self) -> Option<SimTime> {
        match self {
            SendOutcome::Delivered { arrival } | SendOutcome::DeliveredDup { arrival, .. } => {
                Some(arrival)
            }
            SendOutcome::Dropped => None,
        }
    }

    /// The injected duplicate's arrival time, if one was created.
    pub fn dup_time(self) -> Option<SimTime> {
        match self {
            SendOutcome::DeliveredDup { dup, .. } => Some(dup),
            _ => None,
        }
    }
}

/// Physical and policy parameters of the network.
#[derive(Debug, Clone, PartialEq)]
pub struct NetConfig {
    /// Link bandwidth in bits per second (each direction).
    pub bandwidth_bps: u64,
    /// Propagation latency per hop (node↔switch).
    pub wire_latency: SimDuration,
    /// Fixed forwarding latency inside the switch.
    pub switch_latency: SimDuration,
    /// Per-message header bytes (cell/UDP/protocol framing).
    pub header_bytes: u32,
    /// A droppable message whose queueing delay (egress or ingress)
    /// exceeds this threshold is eligible to be dropped.
    pub congestion_threshold: SimDuration,
    /// Probability of dropping an eligible droppable message.
    pub drop_probability: f64,
    /// Seed for the deterministic drop lottery.
    pub seed: u64,
    /// Interconnect shape. [`Topology::FlatBus`] (the default)
    /// reproduces the original single-switch model bit for bit;
    /// [`Topology::RackSpine`] adds ToR/spine hops and trunk
    /// contention for cross-rack frames.
    pub topology: Topology,
}

impl NetConfig {
    /// Parameters approximating the paper's FORE ASX-200WG 155 Mbps
    /// ATM LAN with OC3 fiber links.
    pub fn atm_155(seed: u64) -> Self {
        NetConfig {
            bandwidth_bps: 155_000_000,
            wire_latency: SimDuration::from_micros(5),
            switch_latency: SimDuration::from_micros(10),
            header_bytes: 60,
            congestion_threshold: SimDuration::from_millis(6),
            drop_probability: 0.5,
            seed,
            topology: Topology::FlatBus,
        }
    }

    /// An effectively infinite, lossless network; useful in tests that
    /// want to isolate protocol behaviour from network timing.
    pub fn ideal(seed: u64) -> Self {
        NetConfig {
            bandwidth_bps: u64::MAX / 1_000_000_000,
            wire_latency: SimDuration::ZERO,
            switch_latency: SimDuration::ZERO,
            header_bytes: 0,
            congestion_threshold: SimDuration::from_secs(3600),
            drop_probability: 0.0,
            seed,
            topology: Topology::FlatBus,
        }
    }

    /// Time to serialize `payload_bytes` (plus headers) onto a link.
    pub fn tx_time(&self, payload_bytes: u32) -> SimDuration {
        let bits = (payload_bytes as u64 + self.header_bytes as u64) * 8;
        // ns = bits / (bits/s) * 1e9, computed to avoid overflow.
        SimDuration::from_nanos(bits.saturating_mul(1_000_000_000) / self.bandwidth_bps)
    }
}

/// Per-node traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeTraffic {
    /// Messages successfully sent from this node.
    pub msgs_sent: u64,
    /// Messages delivered to this node.
    pub msgs_received: u64,
    /// Payload + header bytes sent.
    pub bytes_sent: u64,
    /// Payload + header bytes received.
    pub bytes_received: u64,
}

/// Aggregate network statistics for a run.
#[derive(Debug, Clone, Default)]
pub struct NetStats {
    per_node: Vec<NodeTraffic>,
    per_kind: BTreeMap<&'static str, KindStats>,
    drops: u64,
    total_queue_delay: SimDuration,
    max_queue_delay: SimDuration,
    delivered: u64,
}

/// Counters for one message kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KindStats {
    /// Messages of this kind delivered.
    pub msgs: u64,
    /// Bytes (payload + header) of this kind delivered.
    pub bytes: u64,
    /// Messages of this kind dropped.
    pub dropped: u64,
}

impl NetStats {
    fn new(nodes: usize) -> Self {
        NetStats {
            per_node: vec![NodeTraffic::default(); nodes],
            ..NetStats::default()
        }
    }

    /// Traffic counters for one node.
    pub fn node(&self, id: NodeId) -> NodeTraffic {
        self.per_node[id]
    }

    /// Counters broken down by message kind, in kind order.
    pub fn kinds(&self) -> impl Iterator<Item = (&'static str, KindStats)> + '_ {
        self.per_kind.iter().map(|(k, v)| (*k, *v))
    }

    /// Counters for one message kind, if any such message was sent.
    pub fn kind(&self, kind: &str) -> Option<KindStats> {
        self.per_kind.get(kind).copied()
    }

    /// Total messages delivered.
    pub fn total_msgs(&self) -> u64 {
        self.delivered
    }

    /// Total bytes (payload + headers) delivered.
    pub fn total_bytes(&self) -> u64 {
        self.per_node.iter().map(|n| n.bytes_received).sum()
    }

    /// Total messages lost — droppable messages lost to congestion
    /// plus any class lost to injected faults.
    pub fn drops(&self) -> u64 {
        self.drops
    }

    /// Mean queueing delay over delivered messages.
    pub fn mean_queue_delay(&self) -> SimDuration {
        if self.delivered == 0 {
            SimDuration::ZERO
        } else {
            self.total_queue_delay / self.delivered
        }
    }

    /// Worst queueing delay seen by any delivered message.
    pub fn max_queue_delay(&self) -> SimDuration {
        self.max_queue_delay
    }
}

/// The simulated cluster interconnect.
///
/// Stateless apart from link busy-until times, so the DSM engine owns
/// exactly one `Network` and calls [`Network::send`] as messages are
/// produced; the returned arrival time is then scheduled on the
/// engine's event queue.
#[derive(Debug)]
pub struct Network {
    cfg: NetConfig,
    egress_free: Vec<SimTime>,
    ingress_free: Vec<SimTime>,
    // Rack-spine trunk link state, indexed [rack * spines + spine].
    // Empty under the flat bus.
    up_free: Vec<SimTime>,
    down_free: Vec<SimTime>,
    spine_down: Vec<bool>,
    down: Vec<bool>,
    rng: DetRng,
    stats: NetStats,
    faults: FaultInjector,
    last_route: Vec<Hop>,
}

/// One charged hop of the most recent delivered frame: the queueing
/// delay on the hop's link, the serialization time onto it, and the
/// fixed propagation/forwarding latency that follows it. The hop
/// totals of a delivered frame sum exactly to its end-to-end latency
/// (send time to arrival) — the conservation law the topology
/// property tests pin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hop {
    /// Which link this hop crossed.
    pub link: &'static str,
    /// Time spent queued behind earlier traffic on the link.
    pub queue: SimDuration,
    /// Serialization time onto the link.
    pub tx: SimDuration,
    /// Propagation plus switch-forwarding latency after the link.
    pub fixed: SimDuration,
}

impl Hop {
    /// Everything this hop charged the frame.
    pub fn total(&self) -> SimDuration {
        self.queue + self.tx + self.fixed
    }
}

impl Network {
    /// Creates a network of `nodes` workstations around one switch.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    pub fn new(nodes: usize, cfg: NetConfig) -> Self {
        assert!(nodes > 0, "network needs at least one node");
        let racks = cfg.topology.racks(nodes);
        let spines = cfg.topology.spines();
        Network {
            rng: DetRng::new(cfg.seed),
            egress_free: vec![SimTime::ZERO; nodes],
            ingress_free: vec![SimTime::ZERO; nodes],
            up_free: vec![SimTime::ZERO; racks * spines],
            down_free: vec![SimTime::ZERO; racks * spines],
            spine_down: vec![false; spines],
            down: vec![false; nodes],
            stats: NetStats::new(nodes),
            faults: FaultInjector::new(FaultPlan::none()),
            last_route: Vec::new(),
            cfg,
        }
    }

    /// Marks a spine switch dead or alive. Cross-rack frames route
    /// around dead spines; with every spine dead they are dropped
    /// (intra-rack traffic is unaffected). No-op on the flat bus.
    ///
    /// # Panics
    ///
    /// Panics if `spine` is out of range for the topology.
    pub fn set_spine_down(&mut self, spine: usize, down: bool) {
        assert!(spine < self.spine_down.len(), "spine id out of range");
        self.spine_down[spine] = down;
    }

    /// The hop-by-hop charges of the most recent delivered frame
    /// (empty if the last send was dropped or none was made). Hop
    /// totals sum exactly to that frame's end-to-end latency.
    pub fn last_route(&self) -> &[Hop] {
        &self.last_route
    }

    /// Installs a fault plan, resetting the injector's random stream
    /// and fault statistics. Typically called once before traffic
    /// starts; the default is [`FaultPlan::none`].
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = FaultInjector::new(plan);
    }

    /// The active fault plan.
    pub fn fault_plan(&self) -> &FaultPlan {
        self.faults.plan()
    }

    /// Counters of faults injected so far.
    pub fn fault_stats(&self) -> FaultStats {
        self.faults.stats()
    }

    /// Marks a node's NIC dead (crashed) or alive again. While down,
    /// every message addressed to the node is lost and counted as a
    /// crash drop. Counts one injected crash per down transition.
    pub fn set_node_down(&mut self, node: NodeId, down: bool) {
        assert!(node < self.num_nodes(), "node id out of range");
        if down && !self.down[node] {
            self.faults.note_crash();
        }
        self.down[node] = down;
    }

    /// Whether a node's NIC is currently dead.
    pub fn node_is_down(&self, node: NodeId) -> bool {
        self.down[node]
    }

    /// Records the loss of a message that was already in flight when
    /// its destination crashed (the engine discards such arrivals at
    /// the dead NIC and reports them here).
    pub fn note_crash_drop(&mut self, kind: &'static str) {
        self.faults.note_crash_drop();
        self.stats.drops += 1;
        self.stats.per_kind.entry(kind).or_default().dropped += 1;
    }

    /// Whether a scheduled partition active at `now` severs the
    /// directed link `src -> dst` (the topology hook the engine and
    /// property tests use to reason about reachability).
    pub fn link_cut(&self, now: SimTime, src: NodeId, dst: NodeId) -> bool {
        self.faults
            .plan()
            .partitions
            .iter()
            .any(|p| p.active_at(now) && p.severs(src, dst))
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.egress_free.len()
    }

    /// The configuration this network was built with.
    pub fn config(&self) -> &NetConfig {
        &self.cfg
    }

    /// Accumulated traffic statistics.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Clears statistics (e.g. after a warm-up phase) without
    /// disturbing link state.
    pub fn reset_stats(&mut self) {
        self.stats = NetStats::new(self.num_nodes());
    }

    /// Sends a message of `payload_bytes` from `src` to `dst` at `now`.
    ///
    /// Returns when the message arrives at `dst`, or that it was
    /// dropped. `kind` is a label used only for statistics.
    ///
    /// # Panics
    ///
    /// Panics if `src == dst` or either id is out of range.
    pub fn send(
        &mut self,
        now: SimTime,
        src: NodeId,
        dst: NodeId,
        payload_bytes: u32,
        reliability: Reliability,
        kind: &'static str,
    ) -> SendOutcome {
        assert!(
            src < self.num_nodes() && dst < self.num_nodes(),
            "node id out of range"
        );
        assert_ne!(src, dst, "loopback messages never touch the network");

        let tx = self.cfg.tx_time(payload_bytes);
        let wire_bytes = payload_bytes as u64 + self.cfg.header_bytes as u64;

        // A crashed source cannot transmit at all; a message to a
        // crashed destination serializes normally but dies at the dead
        // NIC (the switch has no idea the port's host is gone).
        if self.down[src] {
            self.faults.note_crash_drop();
            return self.record_drop(kind);
        }
        if self.down[dst] {
            let egress_start = now.max(self.egress_free[src]);
            self.egress_free[src] = egress_start + tx;
            self.faults.note_crash_drop();
            return self.record_drop(kind);
        }

        // Route per topology: one switch inside a rack (or on the flat
        // bus), ToR -> spine -> ToR across racks.
        self.last_route.clear();
        let routed = if self.cfg.topology.same_rack(src, dst) {
            self.route_single_switch(now, src, dst, tx, reliability)
        } else {
            self.route_fabric(now, src, dst, tx, wire_bytes, reliability)
        };
        let Some((arrival, queue_delay)) = routed else {
            return self.record_drop(kind);
        };

        // The base model would deliver at `arrival`; the fault plan
        // gets the final say (and may add a duplicate copy), then any
        // scheduled partition kills copies whose flight crosses a cut.
        let class = FaultClass::classify(reliability, kind);
        let delivery = self.faults.apply(class, src, dst, now, arrival);
        let Delivery { primary, duplicate } = self.faults.partition_filter(src, dst, now, delivery);

        for _copy in [primary, duplicate].into_iter().flatten() {
            self.stats.delivered += 1;
            self.stats.total_queue_delay += queue_delay;
            self.stats.max_queue_delay = self.stats.max_queue_delay.max(queue_delay);
            self.stats.per_node[src].msgs_sent += 1;
            self.stats.per_node[src].bytes_sent += wire_bytes;
            self.stats.per_node[dst].msgs_received += 1;
            self.stats.per_node[dst].bytes_received += wire_bytes;
            let k = self.stats.per_kind.entry(kind).or_default();
            k.msgs += 1;
            k.bytes += wire_bytes;
        }

        match (primary, duplicate) {
            (Some(arrival), Some(dup)) => SendOutcome::DeliveredDup { arrival, dup },
            (Some(arrival), None) => SendOutcome::Delivered { arrival },
            // The original copy was injected-dropped but its duplicate
            // survives: the caller sees one delivery.
            (None, Some(arrival)) => SendOutcome::Delivered { arrival },
            (None, None) => self.record_drop(kind),
        }
    }

    /// The original single-switch path: host egress, one switch, host
    /// ingress. Used for every flat-bus frame and for intra-rack
    /// frames under [`Topology::RackSpine`] (the ToR plays the
    /// switch). Arithmetic and randomness are exactly the
    /// pre-topology model's, so flat-bus runs are bit-identical.
    fn route_single_switch(
        &mut self,
        now: SimTime,
        src: NodeId,
        dst: NodeId,
        tx: SimDuration,
        reliability: Reliability,
    ) -> Option<(SimTime, SimDuration)> {
        // Egress: queue behind whatever src is already transmitting.
        let egress_start = now.max(self.egress_free[src]);
        let egress_delay = egress_start.saturating_since(now);
        if self.should_drop(reliability, egress_delay) {
            return None;
        }
        let egress_done = egress_start + tx;

        // Through the switch.
        let at_switch = egress_done + self.cfg.wire_latency + self.cfg.switch_latency;

        // Ingress: queue behind traffic already heading into dst
        // (hot-spotting shows up here).
        let ingress_start = at_switch.max(self.ingress_free[dst]);
        let ingress_delay = ingress_start.saturating_since(at_switch);
        if self.should_drop(reliability, ingress_delay) {
            // The message did consume src's egress link before being
            // discarded at the congested switch output port.
            self.egress_free[src] = egress_done;
            return None;
        }
        let arrival = ingress_start + tx + self.cfg.wire_latency;

        self.egress_free[src] = egress_done;
        self.ingress_free[dst] = arrival;
        self.last_route.push(Hop {
            link: "egress",
            queue: egress_delay,
            tx,
            fixed: self.cfg.wire_latency + self.cfg.switch_latency,
        });
        self.last_route.push(Hop {
            link: "ingress",
            queue: ingress_delay,
            tx,
            fixed: self.cfg.wire_latency,
        });
        Some((arrival, egress_delay + ingress_delay))
    }

    /// The cross-rack path: host egress, source ToR, a spine trunk up,
    /// the spine switch, a trunk down, the destination ToR, host
    /// ingress. Trunks are shared per-rack-per-spine FIFO resources
    /// sized by the oversubscription ratio, so rack-level incast and
    /// oversubscribed uplinks show up as queueing exactly like host
    /// links do. Each queue applies the same congestion-drop rule as
    /// the base model.
    fn route_fabric(
        &mut self,
        now: SimTime,
        src: NodeId,
        dst: NodeId,
        tx: SimDuration,
        wire_bytes: u64,
        reliability: Reliability,
    ) -> Option<(SimTime, SimDuration)> {
        let topo = self.cfg.topology;
        let spines = topo.spines();
        let (rs, rd) = (topo.rack_of(src), topo.rack_of(dst));

        // Host egress onto the source ToR.
        let egress_start = now.max(self.egress_free[src]);
        let egress_delay = egress_start.saturating_since(now);
        if self.should_drop(reliability, egress_delay) {
            return None;
        }
        let egress_done = egress_start + tx;
        let at_tor = egress_done + self.cfg.wire_latency + self.cfg.switch_latency;

        // Deterministic, symmetric spine choice; dead spines are
        // routed around in preference order. With every spine dead the
        // frame leaves the host and dies at the ToR, which has nowhere
        // to forward it.
        let preferred = topo.spine_for(rs, rd).expect("fabric routes cross a spine");
        let Some(spine) = (0..spines)
            .map(|i| (preferred + i) % spines)
            .find(|&s| !self.spine_down[s])
        else {
            self.egress_free[src] = egress_done;
            return None;
        };

        let trunk_tx = topo.trunk_tx_time(self.cfg.bandwidth_bps, wire_bytes * 8);
        let up = rs * spines + spine;
        let up_start = at_tor.max(self.up_free[up]);
        let up_delay = up_start.saturating_since(at_tor);
        if self.should_drop(reliability, up_delay) {
            self.egress_free[src] = egress_done;
            return None;
        }
        let up_done = up_start + trunk_tx;
        let at_spine = up_done + self.cfg.wire_latency + self.cfg.switch_latency;

        let dn = rd * spines + spine;
        let down_start = at_spine.max(self.down_free[dn]);
        let down_delay = down_start.saturating_since(at_spine);
        if self.should_drop(reliability, down_delay) {
            self.egress_free[src] = egress_done;
            self.up_free[up] = up_done;
            return None;
        }
        let down_done = down_start + trunk_tx;
        let at_dst_tor = down_done + self.cfg.wire_latency + self.cfg.switch_latency;

        // Host ingress off the destination ToR.
        let ingress_start = at_dst_tor.max(self.ingress_free[dst]);
        let ingress_delay = ingress_start.saturating_since(at_dst_tor);
        if self.should_drop(reliability, ingress_delay) {
            self.egress_free[src] = egress_done;
            self.up_free[up] = up_done;
            self.down_free[dn] = down_done;
            return None;
        }
        let arrival = ingress_start + tx + self.cfg.wire_latency;

        self.egress_free[src] = egress_done;
        self.up_free[up] = up_done;
        self.down_free[dn] = down_done;
        self.ingress_free[dst] = arrival;
        let hop_fixed = self.cfg.wire_latency + self.cfg.switch_latency;
        self.last_route.push(Hop {
            link: "egress",
            queue: egress_delay,
            tx,
            fixed: hop_fixed,
        });
        self.last_route.push(Hop {
            link: "uplink",
            queue: up_delay,
            tx: trunk_tx,
            fixed: hop_fixed,
        });
        self.last_route.push(Hop {
            link: "downlink",
            queue: down_delay,
            tx: trunk_tx,
            fixed: hop_fixed,
        });
        self.last_route.push(Hop {
            link: "ingress",
            queue: ingress_delay,
            tx,
            fixed: self.cfg.wire_latency,
        });
        Some((
            arrival,
            egress_delay + up_delay + down_delay + ingress_delay,
        ))
    }

    fn should_drop(&mut self, reliability: Reliability, queue_delay: SimDuration) -> bool {
        reliability == Reliability::Droppable
            && queue_delay > self.cfg.congestion_threshold
            && self.rng.chance(self.cfg.drop_probability)
    }

    fn record_drop(&mut self, kind: &'static str) -> SendOutcome {
        self.stats.drops += 1;
        self.stats.per_kind.entry(kind).or_default().dropped += 1;
        SendOutcome::Dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> NetConfig {
        NetConfig::atm_155(1)
    }

    #[test]
    fn tx_time_matches_bandwidth() {
        let c = cfg();
        // 4096+60 bytes at 155 Mbps ≈ 214.5 µs.
        let t = c.tx_time(4096);
        assert!((210_000..220_000).contains(&t.as_nanos()), "{t}");
    }

    #[test]
    fn uncongested_delivery_time_is_base_latency() {
        let mut net = Network::new(2, cfg());
        let arrival = net
            .send(SimTime::ZERO, 0, 1, 0, Reliability::Reliable, "ctl")
            .arrival_time()
            .unwrap();
        let c = cfg();
        let expect = c.tx_time(0) * 2 + c.wire_latency * 2 + c.switch_latency;
        assert_eq!(arrival, SimTime::ZERO + expect);
    }

    #[test]
    fn back_to_back_sends_queue_on_egress() {
        let mut net = Network::new(2, cfg());
        let a = net
            .send(SimTime::ZERO, 0, 1, 4096, Reliability::Reliable, "d")
            .arrival_time()
            .unwrap();
        let b = net
            .send(SimTime::ZERO, 0, 1, 4096, Reliability::Reliable, "d")
            .arrival_time()
            .unwrap();
        // The second message waits for the first to leave the NIC.
        assert!(b > a);
        assert!(b.saturating_since(a) >= cfg().tx_time(4096));
    }

    #[test]
    fn hot_spot_queues_on_receiver_ingress() {
        let mut net = Network::new(4, cfg());
        let mut arrivals: Vec<SimTime> = (0..3)
            .map(|src| {
                net.send(SimTime::ZERO, src, 3, 4096, Reliability::Reliable, "d")
                    .arrival_time()
                    .unwrap()
            })
            .collect();
        arrivals.sort();
        // Distinct senders share nothing until the receiver's link, so
        // arrivals serialize roughly one tx_time apart.
        let gap = arrivals[2].saturating_since(arrivals[1]);
        assert!(gap >= cfg().tx_time(4096), "gap {gap}");
    }

    #[test]
    fn reliable_messages_never_drop() {
        let mut c = cfg();
        c.congestion_threshold = SimDuration::ZERO;
        c.drop_probability = 1.0;
        let mut net = Network::new(2, c);
        for _ in 0..50 {
            let out = net.send(SimTime::ZERO, 0, 1, 4096, Reliability::Reliable, "d");
            assert!(matches!(out, SendOutcome::Delivered { .. }));
        }
        assert_eq!(net.stats().drops(), 0);
    }

    #[test]
    fn droppable_messages_drop_under_congestion() {
        let mut c = cfg();
        c.congestion_threshold = SimDuration::from_micros(1);
        c.drop_probability = 1.0;
        let mut net = Network::new(2, c);
        // First message sails through; the rest find a busy egress queue.
        let first = net.send(SimTime::ZERO, 0, 1, 4096, Reliability::Droppable, "pf");
        assert!(matches!(first, SendOutcome::Delivered { .. }));
        let mut dropped = 0;
        for _ in 0..20 {
            if net.send(SimTime::ZERO, 0, 1, 4096, Reliability::Droppable, "pf")
                == SendOutcome::Dropped
            {
                dropped += 1;
            }
        }
        assert!(dropped > 0);
        assert_eq!(net.stats().drops(), dropped);
        assert_eq!(net.stats().kind("pf").unwrap().dropped, dropped);
    }

    #[test]
    fn stats_account_bytes_and_messages() {
        let mut net = Network::new(3, cfg());
        net.send(SimTime::ZERO, 0, 1, 100, Reliability::Reliable, "a");
        net.send(SimTime::ZERO, 1, 2, 200, Reliability::Reliable, "b");
        let s = net.stats();
        assert_eq!(s.total_msgs(), 2);
        assert_eq!(s.node(0).msgs_sent, 1);
        assert_eq!(s.node(2).msgs_received, 1);
        let wire = 100 + cfg().header_bytes as u64;
        assert_eq!(s.node(0).bytes_sent, wire);
        assert_eq!(s.kind("a").unwrap().bytes, wire);
        assert_eq!(s.total_bytes(), 300 + 2 * cfg().header_bytes as u64);
    }

    #[test]
    fn reset_stats_clears_counts_but_not_link_state() {
        let mut net = Network::new(2, cfg());
        net.send(SimTime::ZERO, 0, 1, 4096, Reliability::Reliable, "d");
        net.reset_stats();
        assert_eq!(net.stats().total_msgs(), 0);
        // Link is still busy: a new send at t=0 queues.
        let a = net
            .send(SimTime::ZERO, 0, 1, 4096, Reliability::Reliable, "d")
            .arrival_time()
            .unwrap();
        let base = cfg().tx_time(4096) * 2 + cfg().wire_latency * 2 + cfg().switch_latency;
        assert!(a > SimTime::ZERO + base);
    }

    #[test]
    fn ideal_network_has_zero_latency_for_empty_messages() {
        let mut net = Network::new(2, NetConfig::ideal(0));
        let a = net
            .send(SimTime::ZERO, 0, 1, 0, Reliability::Droppable, "d")
            .arrival_time()
            .unwrap();
        assert_eq!(a, SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "loopback")]
    fn loopback_send_panics() {
        let mut net = Network::new(2, cfg());
        net.send(SimTime::ZERO, 0, 0, 10, Reliability::Reliable, "d");
    }

    #[test]
    fn messages_to_a_down_node_are_crash_dropped() {
        let mut net = Network::new(3, cfg());
        net.set_node_down(1, true);
        assert!(net.node_is_down(1));
        assert_eq!(net.fault_stats().crashes_injected, 1);
        // To the dead node: lost, even though reliable.
        let out = net.send(SimTime::ZERO, 0, 1, 100, Reliability::Reliable, "d");
        assert_eq!(out, SendOutcome::Dropped);
        // Between live nodes: unaffected.
        let ok = net.send(SimTime::ZERO, 0, 2, 100, Reliability::Reliable, "d");
        assert!(ok.arrival_time().is_some());
        // From the dead node: nothing leaves the host.
        let out = net.send(SimTime::ZERO, 1, 2, 100, Reliability::Reliable, "d");
        assert_eq!(out, SendOutcome::Dropped);
        assert_eq!(net.fault_stats().crash_drops, 2);
        // Back up: traffic flows again, and no second crash is counted
        // for the same down transition.
        net.set_node_down(1, false);
        net.set_node_down(1, true);
        net.set_node_down(1, false);
        assert_eq!(net.fault_stats().crashes_injected, 2);
        let ok = net.send(
            SimTime::from_nanos(1),
            0,
            1,
            100,
            Reliability::Reliable,
            "d",
        );
        assert!(ok.arrival_time().is_some());
    }

    #[test]
    fn partition_cuts_cross_group_traffic_until_heal() {
        use crate::faults::Partition;
        let mut net = Network::new(4, cfg());
        net.set_fault_plan(FaultPlan::none().with_partition(Partition::cut(
            vec![vec![2, 3]],
            SimTime::from_micros(100),
            SimDuration::from_micros(100),
        )));
        let at = |us: u64| SimTime::from_micros(us);
        // Before the cut: delivered.
        assert!(net
            .send(at(10), 0, 2, 64, Reliability::Reliable, "d")
            .arrival_time()
            .is_some());
        // During the cut, across it: dropped both ways.
        assert_eq!(
            net.send(at(120), 0, 2, 64, Reliability::Reliable, "d"),
            SendOutcome::Dropped
        );
        assert_eq!(
            net.send(at(120), 3, 1, 64, Reliability::Reliable, "d"),
            SendOutcome::Dropped
        );
        // During the cut, within a component: delivered.
        assert!(net
            .send(at(120), 2, 3, 64, Reliability::Reliable, "d")
            .arrival_time()
            .is_some());
        assert!(net
            .send(at(120), 0, 1, 64, Reliability::Reliable, "d")
            .arrival_time()
            .is_some());
        // After the heal: delivery resumes.
        assert!(net
            .send(at(300), 0, 2, 64, Reliability::Reliable, "d")
            .arrival_time()
            .is_some());
        assert_eq!(net.fault_stats().partition_drops, 2);
        assert_eq!(net.fault_stats().crash_drops, 0);
        assert_eq!(net.fault_stats().injected_drops, 0);
        assert_eq!(net.stats().drops(), 2);
        // The topology hook agrees with delivery.
        assert!(net.link_cut(at(120), 0, 2));
        assert!(!net.link_cut(at(120), 0, 1));
        assert!(!net.link_cut(at(300), 0, 2));
    }

    #[test]
    fn note_crash_drop_counts_in_flight_losses() {
        let mut net = Network::new(2, cfg());
        net.note_crash_drop("diff_reply");
        assert_eq!(net.fault_stats().crash_drops, 1);
        assert_eq!(net.stats().drops(), 1);
        assert_eq!(net.stats().kind("diff_reply").unwrap().dropped, 1);
    }

    #[test]
    fn mean_queue_delay_reflects_congestion() {
        let mut net = Network::new(2, cfg());
        for _ in 0..10 {
            net.send(SimTime::ZERO, 0, 1, 4096, Reliability::Reliable, "d");
        }
        assert!(net.stats().mean_queue_delay() > SimDuration::ZERO);
        assert!(net.stats().max_queue_delay() >= net.stats().mean_queue_delay());
    }
}
