//! Simulated time.
//!
//! All simulation components share a single nanosecond-resolution clock.
//! [`SimTime`] is an absolute instant since the start of the run and
//! [`SimDuration`] is a span between two instants. Both are thin
//! wrappers over `u64` nanoseconds so arithmetic is cheap and ordering
//! is total, which the event queue relies on.
//!
//! # Examples
//!
//! ```
//! use rsdsm_simnet::{SimDuration, SimTime};
//!
//! let start = SimTime::ZERO;
//! let t = start + SimDuration::from_micros(250);
//! assert_eq!(t.as_nanos(), 250_000);
//! assert_eq!(t - start, SimDuration::from_micros(250));
//! ```

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant in simulated time, in nanoseconds since the
/// start of the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant from nanoseconds since simulation start.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates an instant from microseconds since simulation start.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates an instant from milliseconds since simulation start.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds since simulation start (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds since simulation start (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds since simulation start as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The span since an earlier instant, saturating to zero if
    /// `earlier` is actually later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a span from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a span from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a span from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a span from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a span from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(
            s.is_finite() && s >= 0.0,
            "duration must be non-negative and finite"
        );
        SimDuration((s * 1e9).round() as u64)
    }

    /// Nanoseconds in this span.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds in this span (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds in this span (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds in this span as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True if this span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// The longer of two spans.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// The shorter of two spans.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime subtraction underflow: rhs is later than self"),
        )
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime - SimDuration underflow"),
        )
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimDuration subtraction underflow"),
        )
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        SimDuration(iter.map(|d| d.0).sum())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimTime::from_millis(2).as_micros(), 2_000);
        assert_eq!(SimDuration::from_secs(1).as_millis(), 1_000);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_millis(), 500);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_micros(10) + SimDuration::from_micros(5);
        assert_eq!(t.as_micros(), 15);
        assert_eq!(t - SimTime::from_micros(10), SimDuration::from_micros(5));
        let mut d = SimDuration::from_nanos(7);
        d += SimDuration::from_nanos(3);
        assert_eq!(d.as_nanos(), 10);
        d -= SimDuration::from_nanos(4);
        assert_eq!(d.as_nanos(), 6);
        assert_eq!((SimDuration::from_nanos(6) * 3).as_nanos(), 18);
        assert_eq!((SimDuration::from_nanos(18) / 3).as_nanos(), 6);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn time_subtraction_underflow_panics() {
        let _ = SimTime::from_nanos(1) - SimTime::from_nanos(2);
    }

    #[test]
    fn saturating_since_clamps() {
        let a = SimTime::from_nanos(5);
        let b = SimTime::from_nanos(9);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_since(a), SimDuration::from_nanos(4));
    }

    #[test]
    fn display_picks_sensible_unit() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12.000us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_nanos).sum();
        assert_eq!(total.as_nanos(), 10);
    }

    #[test]
    fn min_max() {
        let a = SimTime::from_nanos(1);
        let b = SimTime::from_nanos(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        let x = SimDuration::from_nanos(1);
        let y = SimDuration::from_nanos(2);
        assert_eq!(x.max(y), y);
        assert_eq!(x.min(y), x);
    }
}
