//! Modeled per-node persistent storage with flush/fence semantics.
//!
//! The crash-recovery story (DESIGN.md §6e) originally treated a
//! checkpoint as a free, atomic in-memory snapshot: a crash could
//! never land mid-checkpoint. Real durable checkpoints are writes to
//! persistent media with a store buffer in front, and a crash at an
//! arbitrary instant exposes exactly three behaviors this module
//! models:
//!
//! - **Store-buffer loss**: writes buffered but never flushed vanish
//!   entirely.
//! - **Progressive drain**: a flush pushes buffered bytes toward the
//!   media at the configured write bandwidth; bytes already drained
//!   when the crash hits are durable, bytes past the drain frontier
//!   are not.
//! - **Sector tearing**: the sector straddling the drain frontier at
//!   the crash instant holds an undefined mix of old and new bytes.
//!   The model fills it with deterministic garbage (a function of the
//!   crash coordinates, so same-seed runs stay bit-identical) —
//!   precisely the case a checksum must catch.
//!
//! A **fence** orders writes: it completes at the flush-drain
//! completion plus the configured fence latency, and the caller must
//! not issue dependent writes before that instant. The device itself
//! never advances time — every operation takes and returns
//! [`SimTime`]s so the caller charges the cost through its own cost
//! model.
//!
//! The address space is a set of independent byte *regions* (the
//! checkpoint layer uses four per node: two payload slots and their
//! two commit records). Regions grow on write and keep stale tail
//! bytes beyond the newest write — exactly like reusing a slot file.
//!
//! # Examples
//!
//! ```
//! use rsdsm_simnet::{PersistConfig, PersistDevice, SimTime};
//!
//! let mut dev = PersistDevice::new(1, PersistConfig::on());
//! dev.write(0, 0, b"hello");
//! let drained = dev.flush(SimTime::ZERO);
//! let durable = dev.fence(drained);
//! assert!(durable > drained);
//! dev.settle(durable);
//! assert_eq!(dev.read(0), b"hello");
//! ```

use crate::time::{SimDuration, SimTime};

/// Parameters of the modeled persistent device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PersistConfig {
    /// Whether checkpoints persist to the device at all. Off by
    /// default: capture stays the free in-memory snapshot and every
    /// pre-existing digest is untouched.
    pub enabled: bool,
    /// Sustained write bandwidth of the media in bytes per
    /// microsecond (1 byte/us = 1 MB/s).
    pub write_bw: u64,
    /// Sustained read bandwidth in bytes per microsecond, used to
    /// derive the restore cost of reloading a persisted image.
    pub read_bw: u64,
    /// Latency of one fence (drain-completion to durability
    /// guarantee).
    pub fence_latency: SimDuration,
    /// Tearing granularity: the sector straddling the drain frontier
    /// at a crash holds undefined bytes.
    pub sector_bytes: u32,
}

impl PersistConfig {
    /// Persistence disabled; the parameter values are the defaults
    /// [`PersistConfig::on`] enables.
    pub fn off() -> Self {
        PersistConfig {
            enabled: false,
            // ~200 MB/s sustained writes, ~400 MB/s reads, 5 us
            // fences: a modest late-90s-charitable NVRAM/log device.
            write_bw: 200,
            read_bw: 400,
            fence_latency: SimDuration::from_micros(5),
            sector_bytes: 512,
        }
    }

    /// Persistence enabled with the default device parameters.
    pub fn on() -> Self {
        PersistConfig {
            enabled: true,
            ..PersistConfig::off()
        }
    }

    /// Time to drain `bytes` to the media at the write bandwidth.
    pub fn write_time(&self, bytes: usize) -> SimDuration {
        SimDuration::from_nanos((bytes as u64 * 1_000).div_ceil(self.write_bw.max(1)))
    }

    /// Time to read `bytes` back from the media at the read
    /// bandwidth.
    pub fn read_time(&self, bytes: usize) -> SimDuration {
        SimDuration::from_nanos((bytes as u64 * 1_000).div_ceil(self.read_bw.max(1)))
    }
}

impl Default for PersistConfig {
    fn default() -> Self {
        PersistConfig::off()
    }
}

/// Counters the device keeps about its own activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PersistStats {
    /// Bytes accepted into the store buffer.
    pub bytes_written: u64,
    /// Flush operations issued.
    pub flushes: u64,
    /// Fence operations issued.
    pub fences: u64,
    /// Sectors torn by crashes mid-drain.
    pub torn_sectors: u64,
    /// Buffered (never-flushed) writes lost to crashes.
    pub writes_lost: u64,
}

/// A write sitting in the volatile store buffer.
#[derive(Debug, Clone)]
struct Buffered {
    region: usize,
    offset: usize,
    bytes: Vec<u8>,
}

/// A flushed write draining toward the media over `[start, end)`.
#[derive(Debug, Clone)]
struct Draining {
    region: usize,
    offset: usize,
    bytes: Vec<u8>,
    start: SimTime,
    end: SimTime,
}

/// One node's persistent device: durable media regions, a volatile
/// store buffer, and the in-flight drain queue between them.
#[derive(Debug, Clone)]
pub struct PersistDevice {
    cfg: PersistConfig,
    media: Vec<Vec<u8>>,
    buffer: Vec<Buffered>,
    inflight: Vec<Draining>,
    /// When the most recently issued flush finishes draining; the
    /// next flush queues behind it (one drain engine).
    drain_free: SimTime,
    stats: PersistStats,
}

impl PersistDevice {
    /// A device with `regions` independent byte regions, all empty.
    pub fn new(regions: usize, cfg: PersistConfig) -> Self {
        PersistDevice {
            cfg,
            media: vec![Vec::new(); regions],
            buffer: Vec::new(),
            inflight: Vec::new(),
            drain_free: SimTime::ZERO,
            stats: PersistStats::default(),
        }
    }

    /// The device's configuration.
    pub fn config(&self) -> &PersistConfig {
        &self.cfg
    }

    /// The device's activity counters.
    pub fn stats(&self) -> PersistStats {
        self.stats
    }

    /// Buffers `bytes` at `offset` of `region` in the (volatile)
    /// store buffer. Takes no time; durability starts at the next
    /// flush.
    pub fn write(&mut self, region: usize, offset: usize, bytes: &[u8]) {
        assert!(region < self.media.len(), "write to unknown region");
        if bytes.is_empty() {
            return;
        }
        self.stats.bytes_written += bytes.len() as u64;
        self.buffer.push(Buffered {
            region,
            offset,
            bytes: bytes.to_vec(),
        });
    }

    /// Starts draining every buffered write toward the media, in
    /// issue order, at the write bandwidth. Returns the drain
    /// completion time. Drained bytes become durable as the frontier
    /// passes them — a fence is still required before issuing writes
    /// that must be ordered after these.
    pub fn flush(&mut self, now: SimTime) -> SimTime {
        self.stats.flushes += 1;
        let mut at = self.drain_free.max(now);
        for w in self.buffer.drain(..) {
            let end = at + self.cfg.write_time(w.bytes.len());
            self.inflight.push(Draining {
                region: w.region,
                offset: w.offset,
                bytes: w.bytes,
                start: at,
                end,
            });
            at = end;
        }
        self.drain_free = at;
        at
    }

    /// A fence issued at `now`: returns the instant after which every
    /// previously flushed write is guaranteed durable (drain
    /// completion plus the fence latency).
    pub fn fence(&mut self, now: SimTime) -> SimTime {
        self.stats.fences += 1;
        self.drain_free.max(now) + self.cfg.fence_latency
    }

    /// Retires in-flight writes whose drain completed by `now` onto
    /// the media. Call before reading in normal (crash-free)
    /// operation.
    pub fn settle(&mut self, now: SimTime) {
        let done: Vec<Draining> = {
            let (done, rest) = std::mem::take(&mut self.inflight)
                .into_iter()
                .partition(|w| w.end <= now);
            self.inflight = rest;
            done
        };
        for w in done {
            let len = w.bytes.len();
            apply(&mut self.media[w.region], w.offset, &w.bytes[..len]);
        }
    }

    /// The node crashed at `now`: the store buffer is lost, drained
    /// bytes stay durable, and the sector straddling the drain
    /// frontier of an in-flight write tears into deterministic
    /// garbage. Anything past the frontier never reaches the media.
    pub fn crash(&mut self, now: SimTime) {
        self.settle(now);
        self.stats.writes_lost += self.buffer.len() as u64;
        self.buffer.clear();
        for w in std::mem::take(&mut self.inflight) {
            if w.start >= now {
                continue; // never started draining: fully lost
            }
            // Bytes drained before the crash instant, at the uniform
            // per-byte rate the drain window models.
            let window = w.end.saturating_since(w.start).as_nanos();
            let elapsed = now.saturating_since(w.start).as_nanos();
            let frontier = if window == 0 {
                w.bytes.len()
            } else {
                ((w.bytes.len() as u128 * elapsed as u128) / window as u128) as usize
            };
            let frontier = frontier.min(w.bytes.len());
            let sector = self.cfg.sector_bytes.max(1) as usize;
            // The sector containing the frontier (in device offsets)
            // holds an undefined mix of old and new bytes.
            let tear_lo = ((w.offset + frontier) / sector * sector).max(w.offset);
            let tear_hi = (tear_lo + sector).min(w.offset + w.bytes.len());
            let media = &mut self.media[w.region];
            apply(media, w.offset, &w.bytes[..frontier]);
            if tear_lo < tear_hi && frontier < w.bytes.len() {
                self.stats.torn_sectors += 1;
                let mut rng = tear_seed(w.region, tear_lo, now);
                for off in tear_lo..tear_hi {
                    rng = rng
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let garbage = (rng >> 33) as u8;
                    apply(media, off, &[garbage]);
                }
            }
        }
        self.drain_free = now;
    }

    /// The durable contents of `region`. [`PersistDevice::settle`] or
    /// [`PersistDevice::crash`] must have brought the media up to the
    /// read instant first.
    pub fn read(&self, region: usize) -> &[u8] {
        &self.media[region]
    }
}

/// Copies `bytes` into `media` at `offset`, zero-extending the region
/// as needed (regions grow on write, like a file).
fn apply(media: &mut Vec<u8>, offset: usize, bytes: &[u8]) {
    let end = offset + bytes.len();
    if media.len() < end {
        media.resize(end, 0);
    }
    media[offset..end].copy_from_slice(bytes);
}

/// Deterministic seed for tear garbage: a function of where and when
/// the tear happened, so same-seed runs reproduce bit-identically.
fn tear_seed(region: usize, offset: usize, now: SimTime) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for v in [region as u64, offset as u64, now.as_nanos()] {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(n: u64) -> SimDuration {
        SimDuration::from_micros(n)
    }

    fn dev() -> PersistDevice {
        // 1 byte/us write bandwidth makes drain windows easy to
        // reason about: N bytes drain in N microseconds.
        PersistDevice::new(
            2,
            PersistConfig {
                enabled: true,
                write_bw: 1,
                read_bw: 2,
                fence_latency: us(5),
                sector_bytes: 4,
            },
        )
    }

    #[test]
    fn write_flush_fence_settle_round_trip() {
        let mut d = dev();
        d.write(0, 0, b"abcdefgh");
        let t0 = SimTime::ZERO + us(10);
        let drained = d.flush(t0);
        assert_eq!(drained, t0 + us(8));
        let durable = d.fence(drained);
        assert_eq!(durable, drained + us(5));
        d.settle(durable);
        assert_eq!(d.read(0), b"abcdefgh");
        assert_eq!(d.stats().flushes, 1);
        assert_eq!(d.stats().fences, 1);
        assert_eq!(d.stats().bytes_written, 8);
    }

    #[test]
    fn unflushed_writes_are_lost_at_crash() {
        let mut d = dev();
        d.write(0, 0, b"doomed");
        d.crash(SimTime::ZERO + us(100));
        assert_eq!(d.read(0), b"");
        assert_eq!(d.stats().writes_lost, 1);
    }

    #[test]
    fn crash_mid_drain_keeps_prefix_and_tears_frontier_sector() {
        let mut d = dev();
        d.write(0, 0, &[0xAA; 16]);
        let t0 = SimTime::ZERO;
        let end = d.flush(t0);
        assert_eq!(end, t0 + us(16));
        // Crash halfway: 8 bytes drained, frontier in sector [8, 12).
        d.crash(t0 + us(8));
        let m = d.read(0);
        assert_eq!(&m[..8], &[0xAA; 8]);
        assert_eq!(d.stats().torn_sectors, 1);
        // Bytes beyond the torn sector never reached the media.
        assert!(m.len() <= 12);
    }

    #[test]
    fn crash_after_drain_is_fully_durable_without_fence() {
        // Drained bytes are on the media even if no fence was issued:
        // the fence guarantees ordering, it does not gate transfer.
        let mut d = dev();
        d.write(0, 0, b"safe");
        let end = d.flush(SimTime::ZERO);
        d.crash(end + us(1));
        assert_eq!(d.read(0), b"safe");
        assert_eq!(d.stats().torn_sectors, 0);
    }

    #[test]
    fn tear_garbage_is_deterministic() {
        let run = || {
            let mut d = dev();
            d.write(0, 0, &[0x55; 32]);
            d.flush(SimTime::ZERO);
            d.crash(SimTime::ZERO + us(13));
            d.read(0).to_vec()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn regions_are_independent_and_grow_on_write() {
        let mut d = dev();
        d.write(0, 4, b"xy");
        d.write(1, 0, b"z");
        let end = d.flush(SimTime::ZERO);
        d.settle(end);
        assert_eq!(d.read(0), b"\0\0\0\0xy");
        assert_eq!(d.read(1), b"z");
    }

    #[test]
    fn second_flush_queues_behind_the_first() {
        let mut d = dev();
        d.write(0, 0, &[1; 10]);
        let first = d.flush(SimTime::ZERO);
        d.write(0, 10, &[2; 10]);
        // Issued "immediately", but the drain engine is busy until
        // `first`.
        let second = d.flush(SimTime::ZERO + us(1));
        assert_eq!(first, SimTime::ZERO + us(10));
        assert_eq!(second, first + us(10));
    }

    #[test]
    fn stale_tail_survives_a_shorter_overwrite() {
        let mut d = dev();
        d.write(0, 0, b"longer-original");
        let end = d.flush(SimTime::ZERO);
        d.settle(end);
        d.write(0, 0, b"short");
        let end = d.flush(end);
        d.settle(end);
        assert_eq!(d.read(0), b"shortr-original");
    }

    #[test]
    fn cost_model_rounds_up() {
        let cfg = PersistConfig {
            write_bw: 3,
            read_bw: 7,
            ..PersistConfig::on()
        };
        assert_eq!(cfg.write_time(1), SimDuration::from_nanos(334));
        assert_eq!(cfg.read_time(1), SimDuration::from_nanos(143));
        assert_eq!(cfg.write_time(0), SimDuration::ZERO);
    }
}
