//! A small deterministic random number generator.
//!
//! The simulator must be fully reproducible given a seed, so it uses
//! its own splitmix64/xoshiro-style generator rather than depending on
//! an external crate whose output could change across versions.
//!
//! # Examples
//!
//! ```
//! use rsdsm_simnet::DetRng;
//!
//! let mut a = DetRng::new(42);
//! let mut b = DetRng::new(42);
//! assert_eq!(a.next_u64(), b.next_u64());
//! ```

/// A deterministic xorshift-based pseudo-random generator.
///
/// Not cryptographically secure; intended only for reproducible
/// simulation decisions (message drops, tie breaking) and synthetic
/// data generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetRng {
    state: [u64; 2],
}

fn splitmix64(seed: &mut u64) -> u64 {
    *seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *seed;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl DetRng {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        let mut s = seed;
        let a = splitmix64(&mut s);
        let b = splitmix64(&mut s);
        DetRng {
            // xoshiro requires a nonzero state; splitmix64 of any seed
            // is astronomically unlikely to produce [0, 0], but guard anyway.
            state: if a == 0 && b == 0 { [1, 2] } else { [a, b] },
        }
    }

    /// Derives an independent child generator, e.g. one per node.
    pub fn fork(&mut self, stream: u64) -> DetRng {
        DetRng::new(self.next_u64() ^ stream.wrapping_mul(0xA076_1D64_78BD_642F))
    }

    /// Next raw 64-bit value (xoroshiro128+).
    pub fn next_u64(&mut self) -> u64 {
        let [mut s0, s1] = self.state;
        let result = s0.wrapping_add(s1);
        let s1x = s1 ^ s0;
        s0 = s0.rotate_left(55) ^ s1x ^ (s1x << 14);
        self.state = [s0, s1x.rotate_left(36)];
        result
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift reduction; bias is negligible for simulation use.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn next_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.next_below(hi - lo)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = DetRng::new(7);
        let mut b = DetRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "streams should differ");
    }

    #[test]
    fn next_below_in_bounds() {
        let mut r = DetRng::new(3);
        for _ in 0..1000 {
            assert!(r.next_below(10) < 10);
        }
    }

    #[test]
    fn next_range_in_bounds() {
        let mut r = DetRng::new(4);
        for _ in 0..1000 {
            let v = r.next_range(5, 8);
            assert!((5..8).contains(&v));
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = DetRng::new(5);
        for _ in 0..1000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = DetRng::new(6);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn chance_roughly_matches_probability() {
        let mut r = DetRng::new(8);
        let hits = (0..10_000).filter(|_| r.chance(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }

    #[test]
    fn fork_produces_independent_streams() {
        let mut root = DetRng::new(9);
        let mut a = root.fork(0);
        let mut b = root.fork(1);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        DetRng::new(1).next_below(0);
    }
}
