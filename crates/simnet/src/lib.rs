//! # rsdsm-simnet
//!
//! Discrete-event simulation substrate for the rsdsm software-DSM
//! reproduction of *Comparative Evaluation of Latency Tolerance
//! Techniques for Software Distributed Shared Memory* (HPCA-4, 1998).
//!
//! The paper ran on eight RS/6000 workstations joined by a 155 Mbps
//! FORE ATM switch; this crate provides the deterministic stand-in:
//!
//! - [`SimTime`] / [`SimDuration`]: nanosecond simulated clock.
//! - [`EventQueue`]: time-ordered, FIFO-tie-broken event queue — a
//!   hierarchical timing wheel with a calendar overflow, plus the
//!   [`HeapQueue`] binary-heap reference it is differentially tested
//!   against (select with [`QueueBackend`]).
//! - [`Network`]: the single-switch ATM LAN model with per-link
//!   bandwidth, queueing (contention and hot-spotting), and
//!   congestion-based drops of unreliable (prefetch) messages.
//! - [`FaultPlan`]: deterministic, seed-driven fault injection —
//!   drops, duplicates, reordering, jitter, degradation windows, and
//!   node stalls layered onto the network model.
//! - [`PersistDevice`]: modeled per-node persistent storage with
//!   store-buffer, flush/fence, and crash-tearing semantics for
//!   durable checkpoints.
//! - [`DetRng`]: seedable generator so every run is reproducible.
//!
//! # Examples
//!
//! Simulating two message sends contending for one receiver:
//!
//! ```
//! use rsdsm_simnet::{EventQueue, NetConfig, Network, Reliability, SimTime};
//!
//! let mut net = Network::new(3, NetConfig::atm_155(7));
//! let mut queue = EventQueue::new();
//! for src in 0..2 {
//!     if let Some(arrival) = net
//!         .send(SimTime::ZERO, src, 2, 4096, Reliability::Reliable, "page")
//!         .arrival_time()
//!     {
//!         queue.push(arrival, src);
//!     }
//! }
//! let (first_time, first_src) = queue.pop().unwrap();
//! let (second_time, _) = queue.pop().unwrap();
//! assert_eq!(first_src, 0); // FIFO through the shared ingress link
//! assert!(second_time > first_time);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod faults;
mod network;
mod persist;
mod rng;
mod time;
mod topology;

pub use event::{EventQueue, HeapQueue, QueueBackend, WHEEL_HORIZON_NS, WHEEL_TIER_BOUNDARIES_NS};
pub use faults::{
    ClassProbs, DegradedWindow, Delivery, FaultClass, FaultPlan, FaultStats, NodeCrash, NodeStall,
    Partition,
};
pub use network::{
    Hop, KindStats, NetConfig, NetStats, Network, NodeId, NodeTraffic, Reliability, SendOutcome,
};
pub use persist::{PersistConfig, PersistDevice, PersistStats};
pub use rng::DetRng;
pub use time::{SimDuration, SimTime};
pub use topology::Topology;
