//! Time-ordered event queue.
//!
//! The heart of the discrete-event simulator: a priority queue of
//! `(time, payload)` pairs ordered by time, with insertion order as a
//! deterministic tie-breaker so runs are reproducible regardless of
//! payload type.
//!
//! Two implementations share the same contract:
//!
//! * [`EventQueue`] — the default engine queue, a hierarchical timing
//!   wheel with a calendar (sorted-map) overflow for far-future
//!   events. Push and pop are O(1) amortized: an event is routed to a
//!   wheel slot by the highest bit-group in which its deadline
//!   differs from the queue's cursor, cascades toward level 0 as the
//!   cursor advances (at most once per level), and slot storage is
//!   recycled through an internal arena so steady-state operation
//!   allocates nothing.
//! * [`HeapQueue`] — the original `BinaryHeap` implementation, kept
//!   as the differential reference. The equivalence suite drives both
//!   with identical schedules and demands identical pop sequences.
//!
//! # Examples
//!
//! ```
//! use rsdsm_simnet::{EventQueue, SimTime};
//!
//! let mut q = EventQueue::new();
//! q.push(SimTime::from_nanos(20), "later");
//! q.push(SimTime::from_nanos(10), "sooner");
//! assert_eq!(q.pop(), Some((SimTime::from_nanos(10), "sooner")));
//! assert_eq!(q.pop(), Some((SimTime::from_nanos(20), "later")));
//! assert_eq!(q.pop(), None);
//! ```

use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap};
use std::num::NonZeroU64;

use crate::time::SimTime;

/// Which [`EventQueue`]-contract implementation an engine should use.
///
/// The wheel is the default; the heap is the differential reference
/// and the escape hatch (`RSDSM_QUEUE=heap` in the engine). Both are
/// pop-for-pop identical by construction and by test, so this choice
/// can never affect simulation results — only wall-clock throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueBackend {
    /// Hierarchical timing wheel ([`EventQueue`]).
    #[default]
    Wheel,
    /// Binary-heap reference ([`HeapQueue`]).
    Heap,
}

impl QueueBackend {
    /// Short label for bench/CI output.
    pub fn label(self) -> &'static str {
        match self {
            QueueBackend::Wheel => "wheel",
            QueueBackend::Heap => "heap",
        }
    }
}

// ---------------------------------------------------------------------
// Timing wheel
// ---------------------------------------------------------------------

/// Granularity of the wheel: a level-0 slot spans one *coarse tick*
/// of `2^BOTTOM_BITS` ns (≈ 2 µs), not a single nanosecond. Events
/// inside one coarse tick are delivered as a batch, sorted by exact
/// `(time, seq)` — the simulated ATM network's deltas are tens of
/// microseconds and up, so a coarse bottom removes the cascade
/// levels a 1 ns tick would force on every event while never holding
/// more than a handful of events per tick.
const BOTTOM_BITS: u32 = 11;
/// Bits of the wide bottom level. 8192 slots of one coarse tick each
/// cover ≈ 16 ms past the cursor — sized so the engine's dominant
/// delta bands (message arrivals, tens of microseconds to ~2 ms, and
/// the ~4 ms retransmit timers) land at level 0 directly and never
/// cascade at all. Measured fastest among nearby `(BOTTOM, L0)`
/// geometries on the million-event replay.
const L0_BITS: u32 = 13;
/// Slots in the bottom level.
const L0_SLOTS: usize = 1 << L0_BITS;
/// Words in the bottom level's occupancy bitmap.
const L0_WORDS: usize = L0_SLOTS / 64;
/// Bits per upper wheel level; each has `2^LEVEL_BITS` slots.
const LEVEL_BITS: u32 = 6;
/// Slots per upper level.
const SLOTS: usize = 1 << LEVEL_BITS;
/// Number of upper levels. Six 6-bit levels above the wide bottom
/// cover deadlines up to `2^57` ns (≈ 4.5 simulated years) past the
/// cursor; anything farther waits in the calendar overflow.
const UPPER_LEVELS: usize = 6;
/// Horizon of the wheel proper: deadlines within `WHEEL_HORIZON_NS`
/// of the cursor route to a wheel level; anything differing in a
/// higher bit overflows to the calendar. Public so the differential
/// suites can aim schedules at the boundary without baking in the
/// wheel's geometry.
pub const WHEEL_HORIZON_NS: u64 = 1 << (BOTTOM_BITS + L0_BITS + LEVEL_BITS * UPPER_LEVELS as u32);
const WHEEL_MASK: u64 = WHEEL_HORIZON_NS - 1;
/// Every digit boundary of the wheel's radix structure, smallest
/// first, ending at the calendar horizon: the coarse tick, the wide
/// bottom level, and each upper level. Public for the same reason as
/// [`WHEEL_HORIZON_NS`] — the fuzz suite aims schedules at each seam.
pub const WHEEL_TIER_BOUNDARIES_NS: [u64; 8] = [
    1 << BOTTOM_BITS,
    1 << (BOTTOM_BITS + L0_BITS),
    1 << (BOTTOM_BITS + L0_BITS + LEVEL_BITS),
    1 << (BOTTOM_BITS + L0_BITS + 2 * LEVEL_BITS),
    1 << (BOTTOM_BITS + L0_BITS + 3 * LEVEL_BITS),
    1 << (BOTTOM_BITS + L0_BITS + 4 * LEVEL_BITS),
    1 << (BOTTOM_BITS + L0_BITS + 5 * LEVEL_BITS),
    WHEEL_HORIZON_NS,
];
/// Cap on recycled slot vectors kept in the arena.
const SPARE_MAX: usize = 64;

/// One scheduled event inside the wheel.
#[derive(Debug)]
struct Entry<T> {
    time: u64,
    /// Insertion sequence number, from 1. Non-zero so that
    /// `Option<Entry<T>>` is entry-sized (see [`Bucket`]).
    seq: NonZeroU64,
    payload: T,
}

/// Inline entries per wheel slot, sized so a typical tick's batch
/// fits without touching the heap.
const BUCKET_INLINE: usize = 4;

/// One wheel slot. The first few entries live inline in the slot
/// array — which is small enough to stay cache-resident — so the
/// common push (a thinly populated tick) touches no heap memory at
/// all; crowded ticks spill into an arena-recycled vector. Entry
/// order within a bucket is arbitrary: pop order is established by
/// the drain-time sort (level 0) or by re-placement (upper levels).
/// Field order is fixed (`repr(C)`) so the header and the first
/// inline entry share a cache line: the common one-event push
/// touches a single line. The inline slots are `Option`s, but the
/// entry's `NonZeroU64` sequence number gives the `Option` a niche:
/// a slot is exactly `size_of::<Entry<T>>()` bytes, carrying no
/// separate discriminant, so for a word-sized payload the whole
/// bucket is two cache lines (see `bucket_layout_is_niche_packed`).
#[derive(Debug)]
#[repr(C)]
struct Bucket<T> {
    /// Number of occupied `inline` slots (they fill front to back).
    inline_len: u8,
    spill: Vec<Entry<T>>,
    inline: [Option<Entry<T>>; BUCKET_INLINE],
}

impl<T> Bucket<T> {
    /// The occupied inline prefix.
    fn inline_entries(&self) -> impl Iterator<Item = &Entry<T>> {
        self.inline[..self.inline_len as usize]
            .iter()
            .map(|slot| slot.as_ref().expect("tracked inline entry"))
    }

    /// Moves the occupied inline prefix out, leaving the bucket's
    /// inline storage empty.
    fn drain_inline_into(&mut self, out: &mut Vec<Entry<T>>) {
        let len = self.inline_len as usize;
        self.inline_len = 0;
        out.extend(
            self.inline[..len]
                .iter_mut()
                .map(|slot| slot.take().expect("tracked inline entry")),
        );
    }
}

impl<T> Default for Bucket<T> {
    fn default() -> Self {
        Bucket {
            inline_len: 0,
            spill: Vec::new(),
            inline: std::array::from_fn(|_| None),
        }
    }
}

/// A deterministic min-priority queue of timestamped events, backed
/// by a hierarchical timing wheel.
///
/// Events with equal timestamps pop in insertion order (FIFO), which
/// keeps multi-component simulations reproducible. The FIFO guarantee
/// is structural: every event carries a monotone insertion sequence
/// number, a level-0 slot holds exactly one coarse tick
/// (`2^BOTTOM_BITS` ns), and a drained tick is sorted by exact
/// `(time, seq)` before delivery (direct pushes and entries cascaded
/// from outer levels meet in slot vectors out of order, so the sort
/// is load-bearing).
///
/// # Structure
///
/// * `ready` — events at or before the cursor, in final pop order.
/// * `slots` — a wide bottom level of `L0_SLOTS` one-tick buckets,
///   then `UPPER_LEVELS` levels of `SLOTS` buckets. An event
///   lands at the level of the highest digit in which its deadline's
///   coarse tick differs from the cursor's, in the bucket indexed by
///   the deadline's digit there. Advancing the cursor into a bucket
///   drains it: level-0 buckets (single coarse ticks) sort and feed
///   `ready`, upper buckets redistribute into inner levels (each
///   event cascades at most `UPPER_LEVELS` times total, and the
///   dominant near-term band lands at level 0 with no cascades).
/// * `overflow` — a `BTreeMap` calendar for deadlines beyond the
///   wheel's [`WHEEL_HORIZON_NS`] (lease expiries, partition heals).
///   When the wheel drains completely, the next calendar epoch is
///   migrated in one batch.
/// * `spare` — an arena of drained slot vectors, recycled so
///   steady-state push/pop cycles allocate nothing.
#[derive(Debug)]
pub struct EventQueue<T> {
    /// Time floor: no pending event is earlier than `cursor` except
    /// those already ordered in `ready`.
    cursor: u64,
    len: usize,
    next_seq: NonZeroU64,
    /// Occupancy bitmap of the wide bottom level.
    occupied0: [u64; L0_WORDS],
    /// Per-upper-level bitmap of non-empty buckets.
    occupied: [u64; UPPER_LEVELS],
    /// `L0_SLOTS` bottom buckets, then `UPPER_LEVELS * SLOTS` upper
    /// buckets level-major.
    slots: Vec<Bucket<T>>,
    /// Events at or before the cursor, sorted *descending* by
    /// `(time, seq)` so the next event to pop sits at the back —
    /// popping is a bare `Vec::pop`, and a drained tick batch swaps
    /// in wholesale without copying.
    ready: Vec<Entry<T>>,
    /// Far-future calendar, keyed by `(time, seq)`.
    overflow: BTreeMap<(u64, NonZeroU64), T>,
    /// Recycled bucket storage.
    spare: Vec<Vec<Entry<T>>>,
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            cursor: 0,
            len: 0,
            next_seq: NonZeroU64::MIN,
            occupied0: [0; L0_WORDS],
            occupied: [0; UPPER_LEVELS],
            slots: std::iter::repeat_with(Bucket::default)
                .take(L0_SLOTS + UPPER_LEVELS * SLOTS)
                .collect(),
            ready: Vec::new(),
            overflow: BTreeMap::new(),
            spare: Vec::new(),
        }
    }

    /// Creates an empty queue sized for `capacity` near-term events.
    pub fn with_capacity(capacity: usize) -> Self {
        let mut q = EventQueue::new();
        q.ready.reserve(capacity);
        q
    }

    /// Reserves room for at least `additional` more near-term events.
    pub fn reserve(&mut self, additional: usize) {
        self.ready.reserve(additional);
    }

    /// Schedules `payload` at absolute time `time`.
    pub fn push(&mut self, time: SimTime, payload: T) {
        let t = time.as_nanos();
        let seq = self.next_seq;
        self.next_seq = seq.checked_add(1).expect("sequence counter overflow");
        if self.len == 0 {
            // An empty queue has no ordering constraints: re-anchor
            // the cursor so the event lands in `ready` directly and a
            // long idle gap does not force a pointless overflow trip.
            self.cursor = t;
        }
        self.len += 1;
        self.place(t, seq, payload);
    }

    /// Schedules every `(time, payload)` pair, reserving near-term
    /// space up front so a known burst of events costs at most one
    /// regrowth. Pairs are assigned sequence numbers in iteration
    /// order, so same-time events still pop FIFO.
    pub fn push_batch<I: IntoIterator<Item = (SimTime, T)>>(&mut self, events: I) {
        let iter = events.into_iter();
        self.reserve(iter.size_hint().0);
        for (t, p) in iter {
            self.push(t, p);
        }
    }

    /// Removes and returns the earliest event, or `None` when empty.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        loop {
            if let Some(e) = self.ready.pop() {
                self.len -= 1;
                return Some((SimTime::from_nanos(e.time), e.payload));
            }
            if self.len == 0 {
                return None;
            }
            self.advance();
        }
    }

    /// The timestamp of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        if let Some(e) = self.ready.last() {
            return Some(SimTime::from_nanos(e.time));
        }
        if self.len == 0 {
            return None;
        }
        let first_word = ((self.cursor >> BOTTOM_BITS) as usize & (L0_SLOTS - 1)) >> 6;
        let earliest_bucket = self
            .occupied0
            .iter()
            .enumerate()
            .skip(first_word)
            .find(|(_, &bits)| bits != 0)
            .map(|(w, &bits)| (w << 6) | bits.trailing_zeros() as usize)
            .or_else(|| {
                (0..UPPER_LEVELS)
                    .find(|&l| self.occupied[l] != 0)
                    .map(|l| L0_SLOTS + l * SLOTS + self.occupied[l].trailing_zeros() as usize)
            });
        if let Some(idx) = earliest_bucket {
            let bucket = &self.slots[idx];
            let min = bucket
                .inline_entries()
                .chain(bucket.spill.iter())
                .map(|e| e.time)
                .min()
                .expect("occupied bucket is non-empty");
            return Some(SimTime::from_nanos(min));
        }
        self.overflow
            .keys()
            .next()
            .map(|&(t, _)| SimTime::from_nanos(t))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        for bucket in &mut self.slots {
            bucket.inline = std::array::from_fn(|_| None);
            bucket.inline_len = 0;
            bucket.spill.clear();
        }
        self.occupied0 = [0; L0_WORDS];
        self.occupied = [0; UPPER_LEVELS];
        self.ready.clear();
        self.overflow.clear();
        self.len = 0;
    }

    /// Routes one event to `ready`, a wheel bucket, or the calendar.
    ///
    /// Invariants relied on and preserved:
    /// * events at or before the cursor — or inside the cursor's
    ///   coarse tick — belong in `ready`, inserted at their
    ///   `(time, seq)` rank (a fresh push at an already-seen time has
    ///   the largest seq at that time, so FIFO holds);
    /// * a wheel event's coarse tick is strictly after the cursor's,
    ///   and its bucket index at its level is strictly above the
    ///   cursor's digit there, so "lowest occupied level, lowest
    ///   occupied bucket" is always the wheel's global minimum.
    fn place(&mut self, t: u64, seq: NonZeroU64, payload: T) {
        // Wheel routing happens on coarse ticks; `ready` absorbs
        // everything at or before the cursor AND everything sharing
        // the cursor's coarse tick (that tick's bucket has already
        // been drained, or never existed).
        let coarse = t >> BOTTOM_BITS;
        let diff = coarse ^ (self.cursor >> BOTTOM_BITS);
        if t <= self.cursor || diff == 0 {
            // `ready` is sorted descending; the next pop is `last()`.
            // Fast path: an event earlier than everything pending
            // (e.g. a zero-delay re-arm into an otherwise-drained
            // tick) appends at the back — no search, no shifting.
            match self.ready.last() {
                Some(last) if (t, seq) > (last.time, last.seq) => {
                    let at = self.ready.partition_point(|e| (e.time, e.seq) > (t, seq));
                    self.ready.insert(
                        at,
                        Entry {
                            time: t,
                            seq,
                            payload,
                        },
                    );
                }
                _ => self.ready.push(Entry {
                    time: t,
                    seq,
                    payload,
                }),
            }
            return;
        }
        let idx = if diff < L0_SLOTS as u64 {
            // Agrees with the cursor above the bottom digit: the
            // dominant case, one bucket write and no cascades ever.
            let slot = (coarse & (L0_SLOTS as u64 - 1)) as usize;
            self.occupied0[slot >> 6] |= 1 << (slot & 63);
            slot
        } else {
            let upper = diff >> L0_BITS;
            let level = ((63 - upper.leading_zeros()) / LEVEL_BITS) as usize;
            if level >= UPPER_LEVELS {
                self.overflow.insert((t, seq), payload);
                return;
            }
            let slot =
                ((coarse >> (L0_BITS + level as u32 * LEVEL_BITS)) & (SLOTS as u64 - 1)) as usize;
            self.occupied[level] |= 1 << slot;
            L0_SLOTS + level * SLOTS + slot
        };
        let bucket = &mut self.slots[idx];
        let e = Entry {
            time: t,
            seq,
            payload,
        };
        if (bucket.inline_len as usize) < BUCKET_INLINE {
            bucket.inline[bucket.inline_len as usize] = Some(e);
            bucket.inline_len += 1;
        } else {
            if bucket.spill.capacity() == 0 {
                if let Some(recycled) = self.spare.pop() {
                    bucket.spill = recycled;
                }
            }
            bucket.spill.push(e);
        }
    }

    /// Advances the cursor to the next pending deadline: drains the
    /// earliest occupied bucket (cascading outer levels inward), or
    /// migrates the next calendar epoch when the wheel is empty.
    fn advance(&mut self) {
        // The wide bottom level first: its lowest occupied slot is
        // the wheel's global minimum (every bottom entry's tick is
        // strictly after the cursor's, so the scan never wraps — and
        // words below the cursor's own digit are provably empty, so
        // the scan starts there).
        let first_word = ((self.cursor >> BOTTOM_BITS) as usize & (L0_SLOTS - 1)) >> 6;
        for w in first_word..L0_WORDS {
            let bits = self.occupied0[w];
            if bits != 0 {
                let slot = (w << 6) | bits.trailing_zeros() as usize;
                self.occupied0[w] = bits & (bits - 1);
                let bucket = &mut self.slots[slot];
                let mut drained = std::mem::take(&mut bucket.spill);
                if drained.capacity() == 0 {
                    // Nothing spilled: recycle an arena vector so the
                    // drain itself never allocates. (Recycling beats
                    // parking capacity per slot: the arena's buffers
                    // were touched a tick ago and are cache-hot,
                    // where a slot's own buffer went cold a full
                    // wheel revolution ago.)
                    if let Some(recycled) = self.spare.pop() {
                        drained = recycled;
                    }
                }
                bucket.drain_inline_into(&mut drained);
                // A level-0 bucket is one coarse tick; deliver it
                // whole. The sort is required twice over: the tick
                // spans `2^BOTTOM_BITS` distinct timestamps, and
                // cascaded entries can sit behind later direct pushes
                // with larger seqs. The cursor lands on the tick's
                // LAST nanosecond, so later pushes into this tick
                // take the `t <= cursor` path into `ready` and order
                // correctly among what was just delivered.
                let coarse = (self.cursor >> BOTTOM_BITS & !(L0_SLOTS as u64 - 1)) | slot as u64;
                self.cursor = (coarse << BOTTOM_BITS) | ((1 << BOTTOM_BITS) - 1);
                // `advance` only runs with `ready` empty (see `pop`),
                // so the sorted batch swaps in without copying and
                // the old `ready` allocation recycles via the arena.
                drained.sort_unstable_by_key(|e| {
                    std::cmp::Reverse(((e.time as u128) << 64) | e.seq.get() as u128)
                });
                debug_assert!(self.ready.is_empty());
                std::mem::swap(&mut self.ready, &mut drained);
                if drained.capacity() > 0 && self.spare.len() < SPARE_MAX {
                    self.spare.push(drained);
                }
                return;
            }
        }
        for level in 0..UPPER_LEVELS {
            if self.occupied[level] != 0 {
                let slot = self.occupied[level].trailing_zeros() as usize;
                self.occupied[level] &= !(1 << slot);
                let bucket = &mut self.slots[L0_SLOTS + level * SLOTS + slot];
                let mut drained = std::mem::take(&mut bucket.spill);
                if drained.capacity() == 0 {
                    // Nothing spilled: recycle an arena vector so the
                    // drain itself never allocates.
                    if let Some(recycled) = self.spare.pop() {
                        drained = recycled;
                    }
                }
                bucket.drain_inline_into(&mut drained);
                // Step into the bucket's range and redistribute:
                // every entry now agrees with the cursor at this
                // level and above, so it re-places strictly below
                // `level` (or into `ready`, for entries in the
                // range's first coarse tick).
                let shift = level as u32 * LEVEL_BITS + L0_BITS + BOTTOM_BITS;
                let range_mask = (1u64 << shift) * SLOTS as u64 - 1;
                self.cursor = (self.cursor & !range_mask) | ((slot as u64) << shift);
                for e in drained.drain(..) {
                    self.place(e.time, e.seq, e.payload);
                }
                if drained.capacity() > 0 && self.spare.len() < SPARE_MAX {
                    self.spare.push(drained);
                }
                return;
            }
        }
        self.migrate_overflow();
    }

    /// Re-anchors the wheel at the calendar's first deadline and pulls
    /// in every event within one wheel horizon of it.
    fn migrate_overflow(&mut self) {
        let &(first, _) = self
            .overflow
            .keys()
            .next()
            .expect("advance called with events pending");
        self.cursor = first;
        let bound = (first | WHEEL_MASK).wrapping_add(1);
        let batch = if bound == 0 {
            // The epoch reaches the top of the u64 range: take it all.
            std::mem::take(&mut self.overflow)
        } else {
            let rest = self.overflow.split_off(&(bound, NonZeroU64::MIN));
            std::mem::replace(&mut self.overflow, rest)
        };
        for ((t, seq), payload) in batch {
            self.place(t, seq, payload);
        }
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<T> Extend<(SimTime, T)> for EventQueue<T> {
    fn extend<I: IntoIterator<Item = (SimTime, T)>>(&mut self, iter: I) {
        self.push_batch(iter);
    }
}

// ---------------------------------------------------------------------
// Binary-heap reference
// ---------------------------------------------------------------------

/// A scheduled entry; ordering ignores the payload.
#[derive(Debug)]
struct Scheduled<T> {
    time: SimTime,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Scheduled<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<T> Eq for Scheduled<T> {}

impl<T> PartialOrd for Scheduled<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Scheduled<T> {
    /// Earliest time first; insertion sequence breaks ties.
    ///
    /// This impl is deliberately manual, NOT `#[derive(Ord)]`: the
    /// determinism contract is `(time, then seq)` and nothing else. A
    /// derive would silently couple pop order to struct field order —
    /// reordering `seq` above `time`, or letting `payload` into the
    /// comparison, would reshuffle every simulation. The unit tests
    /// `tie_break_is_insertion_seq_not_field_order` and
    /// `tie_break_ignores_payload` fail under any such derive.
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap and we want earliest first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The original `BinaryHeap`-backed queue, kept as the differential
/// reference for [`EventQueue`] (see `tests/wheel_equivalence.rs`)
/// and as the `RSDSM_QUEUE=heap` engine escape hatch.
///
/// Same contract as [`EventQueue`]: earliest time first, equal times
/// pop in insertion order.
#[derive(Debug)]
pub struct HeapQueue<T> {
    heap: BinaryHeap<Scheduled<T>>,
    next_seq: u64,
}

impl<T> HeapQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        HeapQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Creates an empty queue with room for `capacity` events before
    /// the backing heap regrows.
    pub fn with_capacity(capacity: usize) -> Self {
        HeapQueue {
            heap: BinaryHeap::with_capacity(capacity),
            next_seq: 0,
        }
    }

    /// Reserves room for at least `additional` more events.
    pub fn reserve(&mut self, additional: usize) {
        self.heap.reserve(additional);
    }

    /// Schedules `payload` at absolute time `time`.
    pub fn push(&mut self, time: SimTime, payload: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, payload });
    }

    /// Schedules every `(time, payload)` pair; see
    /// [`EventQueue::push_batch`].
    pub fn push_batch<I: IntoIterator<Item = (SimTime, T)>>(&mut self, events: I) {
        let iter = events.into_iter();
        self.reserve(iter.size_hint().0);
        for (t, p) in iter {
            self.push(t, p);
        }
    }

    /// Removes and returns the earliest event, or `None` when empty.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        self.heap.pop().map(|s| (s.time, s.payload))
    }

    /// The timestamp of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<T> Default for HeapQueue<T> {
    fn default() -> Self {
        HeapQueue::new()
    }
}

impl<T> Extend<(SimTime, T)> for HeapQueue<T> {
    fn extend<I: IntoIterator<Item = (SimTime, T)>>(&mut self, iter: I) {
        self.push_batch(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Shared-contract tests, instantiated for both implementations.
    macro_rules! contract_tests {
        ($modname:ident, $Q:ident) => {
            mod $modname {
                use super::*;

                #[test]
                fn pops_in_time_order() {
                    let mut q = $Q::new();
                    q.push(SimTime::from_nanos(5), 'b');
                    q.push(SimTime::from_nanos(1), 'a');
                    q.push(SimTime::from_nanos(9), 'c');
                    let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
                    assert_eq!(order, vec!['a', 'b', 'c']);
                }

                #[test]
                fn equal_times_pop_fifo() {
                    let mut q = $Q::new();
                    let t = SimTime::from_nanos(7);
                    for i in 0..10 {
                        q.push(t, i);
                    }
                    let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
                    assert_eq!(order, (0..10).collect::<Vec<_>>());
                }

                #[test]
                fn peek_does_not_remove() {
                    let mut q = $Q::new();
                    q.push(SimTime::from_nanos(3), ());
                    assert_eq!(q.peek_time(), Some(SimTime::from_nanos(3)));
                    assert_eq!(q.len(), 1);
                }

                #[test]
                fn len_and_clear() {
                    let mut q = $Q::new();
                    assert!(q.is_empty());
                    q.extend([(SimTime::from_nanos(1), 1), (SimTime::from_nanos(2), 2)]);
                    assert_eq!(q.len(), 2);
                    q.clear();
                    assert!(q.is_empty());
                    assert_eq!(q.pop(), None);
                }

                #[test]
                fn push_batch_preserves_fifo_and_reserves() {
                    let mut q = $Q::with_capacity(4);
                    let t = SimTime::from_nanos(7);
                    q.push_batch((0..100).map(|i| (t, i)));
                    q.push_batch([(SimTime::from_nanos(1), -1)]);
                    let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
                    assert_eq!(order[0], -1);
                    assert_eq!(order[1..], (0..100).collect::<Vec<_>>()[..]);
                }

                #[test]
                fn interleaved_push_pop_keeps_order() {
                    let mut q = $Q::new();
                    q.push(SimTime::from_nanos(10), 10);
                    q.push(SimTime::from_nanos(30), 30);
                    assert_eq!(q.pop().unwrap().1, 10);
                    q.push(SimTime::from_nanos(20), 20);
                    assert_eq!(q.pop().unwrap().1, 20);
                    assert_eq!(q.pop().unwrap().1, 30);
                }

                #[test]
                fn tie_break_ignores_payload() {
                    // Payloads in reverse alphabetical order: an Ord
                    // that peeked at the payload would pop 'a' first.
                    let mut q = $Q::new();
                    let t = SimTime::from_nanos(3);
                    for p in ['z', 'm', 'a'] {
                        q.push(t, p);
                    }
                    let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
                    assert_eq!(order, vec!['z', 'm', 'a']);
                }

                #[test]
                fn tie_break_is_insertion_seq_not_field_order() {
                    // The first push gets the *later* time: seq order
                    // (first, second) opposes time order (second,
                    // first). A comparison keyed on seq before time —
                    // what a derived Ord yields the moment the struct
                    // fields are reordered — pops "first" first.
                    let mut q = $Q::new();
                    q.push(SimTime::from_nanos(50), "first");
                    q.push(SimTime::from_nanos(10), "second");
                    assert_eq!(q.pop(), Some((SimTime::from_nanos(10), "second")));
                    assert_eq!(q.pop(), Some((SimTime::from_nanos(50), "first")));
                }
            }
        };
    }

    contract_tests!(wheel, EventQueue);
    contract_tests!(heap, HeapQueue);

    /// Pin the reference comparator itself: `(time, then seq)`,
    /// reversed for the max-heap, payload never consulted. This is
    /// the test that fails under `#[derive(Ord)]` with `seq` listed
    /// before `time` (derives compare in field order).
    #[test]
    fn scheduled_ord_is_reversed_time_then_seq() {
        let early_late_seq = Scheduled {
            time: SimTime::from_nanos(5),
            seq: 9,
            payload: 'z',
        };
        let late_early_seq = Scheduled {
            time: SimTime::from_nanos(7),
            seq: 1,
            payload: 'a',
        };
        // Earlier time ranks Greater (max-heap pops it first), even
        // though both its seq and its payload rank later.
        assert_eq!(early_late_seq.cmp(&late_early_seq), Ordering::Greater);

        let tie_a = Scheduled {
            time: SimTime::from_nanos(5),
            seq: 2,
            payload: 'q',
        };
        // Equal time: lower seq ranks Greater (pops first).
        assert_eq!(tie_a.cmp(&early_late_seq), Ordering::Greater);
        assert_eq!(early_late_seq.cmp(&tie_a), Ordering::Less);
    }

    // ----- wheel-specific structure tests -----

    #[test]
    fn far_future_events_take_the_calendar_and_come_back() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(1), 1u64);
        // Far beyond the wheel horizon from cursor 0.
        let far = WHEEL_HORIZON_NS * 2;
        q.push(SimTime::from_nanos(far), far);
        q.push(SimTime::from_nanos(far + 1), far + 1);
        assert_eq!(q.overflow.len(), 2, "distant deadlines overflow");
        assert_eq!(q.pop(), Some((SimTime::from_nanos(1), 1)));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(far), far)));
        assert_eq!(q.overflow.len(), 0, "migration drains the epoch");
        assert_eq!(q.pop(), Some((SimTime::from_nanos(far + 1), far + 1)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn cascade_meets_direct_push_in_fifo_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(1), 0); // pins cursor near zero
        let t = SimTime::from_nanos(2048 << BOTTOM_BITS); // upper-level placement (seq 1)
        q.push(t, 1);
        assert_eq!(q.pop().unwrap().1, 0);
        // The cursor still trails `t` by several coarse ticks; a
        // second push to the same instant (seq 2) joins the wheel
        // while seq 1 waits. Both cascade into the same level-0
        // coarse tick, and the drain-time `(time, seq)` sort must
        // deliver 1 before 2.
        q.push(t, 2);
        assert_eq!(q.pop(), Some((t, 1)));
        assert_eq!(q.pop(), Some((t, 2)));
    }

    #[test]
    fn push_into_the_past_still_pops_first() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(1_000), 'l');
        q.push(SimTime::from_nanos(2_000), 'm');
        assert_eq!(q.pop().unwrap().1, 'l');
        // The cursor sits at 1000 now; schedule before it.
        q.push(SimTime::from_nanos(500), 'e');
        assert_eq!(q.pop(), Some((SimTime::from_nanos(500), 'e')));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(2_000), 'm')));
    }

    #[test]
    fn zero_time_and_zero_delay_scheduling() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, 0);
        q.push(SimTime::ZERO, 1);
        assert_eq!(q.pop(), Some((SimTime::ZERO, 0)));
        // Zero-delay self-send: re-arm at the time just popped.
        q.push(SimTime::ZERO, 2);
        assert_eq!(q.pop(), Some((SimTime::ZERO, 1)));
        assert_eq!(q.pop(), Some((SimTime::ZERO, 2)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn slot_arena_recycles_buckets() {
        let mut q = EventQueue::new();
        for round in 0..4u64 {
            for i in 0..32u64 {
                q.push(SimTime::from_nanos(round * 10_000 + i * 100), i);
            }
            while q.pop().is_some() {}
        }
        assert!(!q.spare.is_empty(), "drained buckets return to the arena");
        assert!(q.spare.len() <= SPARE_MAX);
    }

    /// The claim in [`Bucket`]'s doc: the `NonZeroU64` sequence
    /// number gives `Option<Entry<T>>` a niche, so an inline slot
    /// costs no discriminant and a word-payload bucket is exactly
    /// two cache lines.
    #[test]
    fn bucket_layout_is_niche_packed() {
        use std::mem::size_of;
        assert_eq!(size_of::<Option<Entry<u64>>>(), size_of::<Entry<u64>>());
        assert_eq!(
            size_of::<Bucket<u64>>(),
            8 + size_of::<Vec<Entry<u64>>>() + BUCKET_INLINE * size_of::<Entry<u64>>()
        );
        assert_eq!(size_of::<Bucket<u64>>(), 128);
    }

    #[test]
    fn peek_sees_through_every_layer() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(70), 'w'); // ready (anchors the cursor)
        let far = WHEEL_HORIZON_NS * 2;
        q.push(SimTime::from_nanos(far), 'o'); // calendar overflow
        assert_eq!(q.overflow.len(), 1, "distant deadline overflows");
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(70)));
        q.push(SimTime::from_nanos(500_000), 'x'); // wheel proper
        assert_eq!(q.pop().unwrap().1, 'w');
        // 'x' waits in a wheel bucket; peek must scan the bitmaps.
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(500_000)));
        assert_eq!(q.pop().unwrap().1, 'x');
        // Only the calendar remains.
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(far)));
        assert_eq!(q.pop().unwrap().1, 'o');
        assert_eq!(q.pop(), None);
    }
}
