//! Time-ordered event queue.
//!
//! The heart of the discrete-event simulator: a priority queue of
//! `(time, payload)` pairs ordered by time, with insertion order as a
//! deterministic tie-breaker so runs are reproducible regardless of
//! payload type.
//!
//! # Examples
//!
//! ```
//! use rsdsm_simnet::{EventQueue, SimTime};
//!
//! let mut q = EventQueue::new();
//! q.push(SimTime::from_nanos(20), "later");
//! q.push(SimTime::from_nanos(10), "sooner");
//! assert_eq!(q.pop(), Some((SimTime::from_nanos(10), "sooner")));
//! assert_eq!(q.pop(), Some((SimTime::from_nanos(20), "later")));
//! assert_eq!(q.pop(), None);
//! ```

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A scheduled entry; ordering ignores the payload.
#[derive(Debug)]
struct Scheduled<T> {
    time: SimTime,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Scheduled<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<T> Eq for Scheduled<T> {}

impl<T> PartialOrd for Scheduled<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Scheduled<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap and we want earliest first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic min-priority queue of timestamped events.
///
/// Events with equal timestamps pop in insertion order (FIFO), which
/// keeps multi-component simulations reproducible.
#[derive(Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Scheduled<T>>,
    next_seq: u64,
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Creates an empty queue with room for `capacity` events before
    /// the backing heap regrows.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            next_seq: 0,
        }
    }

    /// Reserves room for at least `additional` more events.
    pub fn reserve(&mut self, additional: usize) {
        self.heap.reserve(additional);
    }

    /// Schedules `payload` at absolute time `time`.
    pub fn push(&mut self, time: SimTime, payload: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, payload });
    }

    /// Schedules every `(time, payload)` pair, reserving heap space up
    /// front so a known burst of events costs at most one regrowth.
    /// Pairs are assigned sequence numbers in iteration order, so
    /// same-time events still pop FIFO.
    pub fn push_batch<I: IntoIterator<Item = (SimTime, T)>>(&mut self, events: I) {
        let iter = events.into_iter();
        self.reserve(iter.size_hint().0);
        for (t, p) in iter {
            self.push(t, p);
        }
    }

    /// Removes and returns the earliest event, or `None` when empty.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        self.heap.pop().map(|s| (s.time, s.payload))
    }

    /// The timestamp of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<T> Extend<(SimTime, T)> for EventQueue<T> {
    fn extend<I: IntoIterator<Item = (SimTime, T)>>(&mut self, iter: I) {
        self.push_batch(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(5), 'b');
        q.push(SimTime::from_nanos(1), 'a');
        q.push(SimTime::from_nanos(9), 'c');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(7);
        for i in 0..10 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(3), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(3)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.extend([(SimTime::from_nanos(1), 1), (SimTime::from_nanos(2), 2)]);
        assert_eq!(q.len(), 2);
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn push_batch_preserves_fifo_and_reserves() {
        let mut q = EventQueue::with_capacity(4);
        let t = SimTime::from_nanos(7);
        q.push_batch((0..100).map(|i| (t, i)));
        q.push_batch([(SimTime::from_nanos(1), -1)]);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order[0], -1);
        assert_eq!(order[1..], (0..100).collect::<Vec<_>>()[..]);
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(10), 10);
        q.push(SimTime::from_nanos(30), 30);
        assert_eq!(q.pop().unwrap().1, 10);
        q.push(SimTime::from_nanos(20), 20);
        assert_eq!(q.pop().unwrap().1, 20);
        assert_eq!(q.pop().unwrap().1, 30);
    }
}
