//! Deterministic fault injection for the network model.
//!
//! A [`FaultPlan`] describes, per message class, the probability of
//! dropping, duplicating, or reordering (extra-delaying) a message,
//! a uniform delivery jitter, scheduled link-degradation windows, and
//! transient node stalls. The plan is interpreted by a seed-driven
//! injector inside [`crate::Network`], so the same plan and seed
//! always produce the same fault schedule — runs stay bit-for-bit
//! reproducible no matter how hostile the injected conditions are.
//!
//! The default plan ([`FaultPlan::none`]) injects nothing, keeping
//! the base network model's behaviour (and its existing tests)
//! unchanged: congestion drops of droppable messages are part of the
//! base model, not of fault injection.
//!
//! # Examples
//!
//! ```
//! use rsdsm_simnet::{FaultPlan, NetConfig, Network, Reliability, SimTime};
//!
//! let plan = FaultPlan::uniform_loss(7, 0.2).with_duplication(0.1);
//! let mut net = Network::new(4, NetConfig::atm_155(1));
//! net.set_fault_plan(plan);
//! let mut lost = 0;
//! for i in 0..100 {
//!     let t = SimTime::from_nanos(i * 1_000_000);
//!     if net.send(t, 0, 1, 64, Reliability::Reliable, "ctl").arrival_time().is_none() {
//!         lost += 1;
//!     }
//! }
//! assert!(lost > 0, "20% loss bites eventually");
//! // Some injected drops are masked by a surviving duplicate copy,
//! // so the caller observes at most as many losses as were injected.
//! assert!(net.fault_stats().injected_drops >= lost);
//! ```

use crate::network::{NodeId, Reliability};
use crate::rng::DetRng;
use crate::time::{SimDuration, SimTime};

/// The traffic classes a [`FaultPlan`] can target independently.
///
/// Classes are derived from what the engine already tells the
/// network: droppable traffic is prefetching, the `"ack"` kind is
/// transport acknowledgements, everything else is DSM control
/// traffic (diff fetches, locks, barriers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultClass {
    /// Reliable DSM protocol traffic (served by the reliable transport).
    Control,
    /// Transport-level acknowledgements.
    Ack,
    /// Unreliable prefetch requests/replies.
    Prefetch,
}

impl FaultClass {
    /// Classifies a message from its reliability and kind label.
    pub fn classify(reliability: Reliability, kind: &str) -> FaultClass {
        if reliability == Reliability::Droppable {
            FaultClass::Prefetch
        } else if kind == "ack" {
            FaultClass::Ack
        } else {
            FaultClass::Control
        }
    }
}

/// A probability per [`FaultClass`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ClassProbs {
    /// Probability applied to [`FaultClass::Control`] messages.
    pub control: f64,
    /// Probability applied to [`FaultClass::Ack`] messages.
    pub ack: f64,
    /// Probability applied to [`FaultClass::Prefetch`] messages.
    pub prefetch: f64,
}

impl ClassProbs {
    /// The same probability for every class.
    pub fn uniform(p: f64) -> ClassProbs {
        ClassProbs {
            control: p,
            ack: p,
            prefetch: p,
        }
    }

    /// The probability for one class.
    pub fn for_class(&self, class: FaultClass) -> f64 {
        match class {
            FaultClass::Control => self.control,
            FaultClass::Ack => self.ack,
            FaultClass::Prefetch => self.prefetch,
        }
    }

    fn is_zero(&self) -> bool {
        self.control == 0.0 && self.ack == 0.0 && self.prefetch == 0.0
    }
}

/// A scheduled interval during which a link (or the whole fabric)
/// degrades: extra loss and extra latency for matching messages.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradedWindow {
    /// Window start (inclusive), compared against the send time.
    pub from: SimTime,
    /// Window end (exclusive).
    pub until: SimTime,
    /// Restrict to messages touching this node (as source or
    /// destination); `None` degrades every link.
    pub node: Option<NodeId>,
    /// Additional drop probability while degraded (any class).
    pub extra_drop: f64,
    /// Additional one-way latency while degraded.
    pub extra_latency: SimDuration,
}

impl DegradedWindow {
    fn applies(&self, sent: SimTime, src: NodeId, dst: NodeId) -> bool {
        sent >= self.from && sent < self.until && self.node.is_none_or(|n| n == src || n == dst)
    }
}

/// A transient stall of one node: messages that would arrive while
/// the node is stalled are held until the stall ends (its NIC stops
/// draining, but nothing is lost).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeStall {
    /// The stalled node.
    pub node: NodeId,
    /// Stall start (inclusive), compared against the arrival time.
    pub from: SimTime,
    /// Stall end (exclusive); held messages arrive at this instant.
    pub until: SimTime,
}

/// A scheduled crash-stop failure of one node.
///
/// At `at` the node's NIC goes dead: messages addressed to it are
/// dropped (unlike a [`NodeStall`], which holds them), and the engine
/// freezes its CPU. With `restart_after` set the host reboots after
/// that outage and the node rejoins (crash-restart); without it the
/// node stays down until the DSM's recovery layer provisions a
/// replacement from the last checkpoint (crash-stop).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeCrash {
    /// The crashing node.
    pub node: NodeId,
    /// Crash instant.
    pub at: SimTime,
    /// Reboot delay for crash-restart; `None` means crash-stop.
    pub restart_after: Option<SimDuration>,
}

/// A scheduled network partition: at `at` the switch fabric splits
/// into isolated groups, and frames crossing a cut are lost until the
/// partition heals at `at + heal_after`.
///
/// `groups` lists the partition's components by node id; nodes not
/// listed anywhere form one implicit final group (index
/// `groups.len()`), so `groups: vec![vec![2]]` in a 4-node cluster
/// cuts node 2 away from `{0, 1, 3}`. Frames whose flight interval
/// `[sent, arrival]` overlaps the cut window are dropped — a frame
/// already on the wire when the cut lands dies at the severed switch
/// port, exactly like one sent mid-cut.
///
/// With `asym` set the cut is one-way: frames from an earlier-indexed
/// group toward a later-indexed group are dropped, the reverse
/// direction still delivers. (`vec![vec![2]]` + `asym` means node 2
/// cannot reach the rest, but still hears them.)
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// The partition's components; unlisted nodes form an implicit
    /// final group.
    pub groups: Vec<Vec<NodeId>>,
    /// Cut instant (inclusive).
    pub at: SimTime,
    /// Time until the cut heals; the partition is active on
    /// `[at, at + heal_after)`.
    pub heal_after: SimDuration,
    /// One-way cut: only earlier-group → later-group frames are lost.
    pub asym: bool,
}

impl Partition {
    /// A symmetric cut of `groups` against everyone else.
    pub fn cut(groups: Vec<Vec<NodeId>>, at: SimTime, heal_after: SimDuration) -> Partition {
        Partition {
            groups,
            at,
            heal_after,
            asym: false,
        }
    }

    /// The instant the cut heals (exclusive end of the window).
    pub fn heal_at(&self) -> SimTime {
        self.at + self.heal_after
    }

    /// Whether the cut is active at `now`.
    pub fn active_at(&self, now: SimTime) -> bool {
        now >= self.at && now < self.heal_at()
    }

    /// The group index a node belongs to (`groups.len()` for nodes in
    /// the implicit final group).
    pub fn group_of(&self, node: NodeId) -> usize {
        self.groups
            .iter()
            .position(|g| g.contains(&node))
            .unwrap_or(self.groups.len())
    }

    /// Whether this cut, while active, severs `src -> dst`.
    pub fn severs(&self, src: NodeId, dst: NodeId) -> bool {
        let (gs, gd) = (self.group_of(src), self.group_of(dst));
        if gs == gd {
            return false;
        }
        !self.asym || gs < gd
    }

    /// Whether a frame sent at `sent` arriving at `arrival` dies at
    /// this cut: its flight interval must overlap the active window
    /// and its endpoints must sit on opposite sides of the cut.
    pub fn cuts(&self, src: NodeId, dst: NodeId, sent: SimTime, arrival: SimTime) -> bool {
        self.severs(src, dst) && sent < self.heal_at() && arrival >= self.at
    }
}

/// A deterministic, seed-driven fault schedule.
///
/// Built with [`FaultPlan::none`] plus the `with_*` builders; handed
/// to [`crate::Network::set_fault_plan`] (or, at the DSM level, to
/// the engine configuration, which forwards it).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed of the injector's private random stream. Two networks
    /// given equal plans (including this seed) inject identical
    /// fault schedules for identical traffic.
    pub seed: u64,
    /// Per-class probability of silently dropping a message.
    pub drop: ClassProbs,
    /// Per-class probability of delivering a second copy.
    pub duplicate: ClassProbs,
    /// Per-class probability of delaying a message by up to
    /// [`FaultPlan::reorder_window`], letting later sends overtake it.
    pub reorder: ClassProbs,
    /// Maximum extra delay applied to reordered messages.
    pub reorder_window: SimDuration,
    /// Uniform random delivery jitter in `[0, jitter]` added to every
    /// delivered copy.
    pub jitter: SimDuration,
    /// Scheduled degradation windows.
    pub degraded: Vec<DegradedWindow>,
    /// Scheduled node stalls.
    pub stalls: Vec<NodeStall>,
    /// Scheduled node crashes (interpreted by the DSM engine; the
    /// network only models the dead NIC while a node is down).
    pub crashes: Vec<NodeCrash>,
    /// Scheduled network partitions (the network drops frames crossing
    /// an active cut; the DSM engine interprets freeze/rejoin).
    pub partitions: Vec<Partition>,
}

impl FaultPlan {
    /// The empty plan: no injected faults at all.
    pub fn none() -> FaultPlan {
        FaultPlan {
            seed: 0,
            drop: ClassProbs::default(),
            duplicate: ClassProbs::default(),
            reorder: ClassProbs::default(),
            reorder_window: SimDuration::ZERO,
            jitter: SimDuration::ZERO,
            degraded: Vec::new(),
            stalls: Vec::new(),
            crashes: Vec::new(),
            partitions: Vec::new(),
        }
    }

    /// Whether this plan injects nothing.
    pub fn is_none(&self) -> bool {
        self.drop.is_zero()
            && self.duplicate.is_zero()
            && (self.reorder.is_zero() || self.reorder_window.is_zero())
            && self.jitter.is_zero()
            && self.degraded.is_empty()
            && self.stalls.is_empty()
            && self.crashes.is_empty()
            && self.partitions.is_empty()
    }

    /// Uniform loss of probability `p` across every message class.
    pub fn uniform_loss(seed: u64, p: f64) -> FaultPlan {
        FaultPlan {
            seed,
            drop: ClassProbs::uniform(p),
            ..FaultPlan::none()
        }
    }

    /// Replaces the seed.
    pub fn with_seed(mut self, seed: u64) -> FaultPlan {
        self.seed = seed;
        self
    }

    /// Sets a uniform duplication probability.
    pub fn with_duplication(mut self, p: f64) -> FaultPlan {
        self.duplicate = ClassProbs::uniform(p);
        self
    }

    /// Sets a uniform reorder probability with the given extra-delay
    /// window.
    pub fn with_reordering(mut self, p: f64, window: SimDuration) -> FaultPlan {
        self.reorder = ClassProbs::uniform(p);
        self.reorder_window = window;
        self
    }

    /// Sets the uniform delivery jitter bound.
    pub fn with_jitter(mut self, jitter: SimDuration) -> FaultPlan {
        self.jitter = jitter;
        self
    }

    /// Adds a degradation window.
    pub fn with_degraded_window(mut self, window: DegradedWindow) -> FaultPlan {
        self.degraded.push(window);
        self
    }

    /// Adds a transient node stall.
    pub fn with_node_stall(mut self, stall: NodeStall) -> FaultPlan {
        self.stalls.push(stall);
        self
    }

    /// Adds a scheduled node crash.
    pub fn with_node_crash(mut self, crash: NodeCrash) -> FaultPlan {
        self.crashes.push(crash);
        self
    }

    /// Adds a scheduled network partition.
    pub fn with_partition(mut self, partition: Partition) -> FaultPlan {
        self.partitions.push(partition);
        self
    }
}

impl Default for FaultPlan {
    fn default() -> FaultPlan {
        FaultPlan::none()
    }
}

/// Counters of faults actually injected during a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Messages silently dropped by the plan (excludes the base
    /// model's congestion drops).
    pub injected_drops: u64,
    /// Extra copies delivered.
    pub duplicates: u64,
    /// Messages given an extra reorder delay.
    pub reordered: u64,
    /// Deliveries pushed back by a node stall.
    pub stall_delays: u64,
    /// Messages sent inside an active degradation window.
    pub degraded_msgs: u64,
    /// Node crashes executed (counted when a node goes down).
    pub crashes_injected: u64,
    /// Messages lost at a dead NIC — sent to (or queued for) a node
    /// while it was down.
    pub crash_drops: u64,
    /// Messages lost at an active partition cut — their flight
    /// interval crossed a severed group boundary. Distinct from both
    /// injected loss and crash drops.
    pub partition_drops: u64,
}

/// What the injector decided for one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// Arrival time of the message itself, or `None` if dropped.
    pub primary: Option<SimTime>,
    /// Arrival time of an injected duplicate copy, if any.
    pub duplicate: Option<SimTime>,
}

impl Delivery {
    fn lossless(arrival: SimTime) -> Delivery {
        Delivery {
            primary: Some(arrival),
            duplicate: None,
        }
    }
}

/// Interprets a [`FaultPlan`] with a private deterministic stream.
#[derive(Debug)]
pub(crate) struct FaultInjector {
    plan: FaultPlan,
    rng: DetRng,
    stats: FaultStats,
}

impl FaultInjector {
    pub(crate) fn new(plan: FaultPlan) -> FaultInjector {
        FaultInjector {
            rng: DetRng::new(plan.seed ^ 0xfa17_fa17_fa17_fa17),
            stats: FaultStats::default(),
            plan,
        }
    }

    pub(crate) fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    pub(crate) fn stats(&self) -> FaultStats {
        self.stats
    }

    pub(crate) fn note_crash(&mut self) {
        self.stats.crashes_injected += 1;
    }

    pub(crate) fn note_crash_drop(&mut self) {
        self.stats.crash_drops += 1;
    }

    /// Kills delivery copies whose flight interval crosses an active
    /// cut, counting each as a partition drop.
    pub(crate) fn partition_filter(
        &mut self,
        src: NodeId,
        dst: NodeId,
        sent: SimTime,
        mut d: Delivery,
    ) -> Delivery {
        if self.plan.partitions.is_empty() {
            return d;
        }
        if let Some(at) = d.primary {
            if self
                .plan
                .partitions
                .iter()
                .any(|p| p.cuts(src, dst, sent, at))
            {
                self.stats.partition_drops += 1;
                d.primary = None;
            }
        }
        if let Some(at) = d.duplicate {
            if self
                .plan
                .partitions
                .iter()
                .any(|p| p.cuts(src, dst, sent, at))
            {
                self.stats.partition_drops += 1;
                d.duplicate = None;
            }
        }
        d
    }

    /// Decides the fate of a message sent at `sent` that the base
    /// model would deliver at `nominal`.
    pub(crate) fn apply(
        &mut self,
        class: FaultClass,
        src: NodeId,
        dst: NodeId,
        sent: SimTime,
        nominal: SimTime,
    ) -> Delivery {
        if self.plan.is_none() {
            return Delivery::lossless(nominal);
        }

        // Degradation windows active at send time.
        let mut extra_drop = 0.0;
        let mut extra_latency = SimDuration::ZERO;
        for w in &self.plan.degraded {
            if w.applies(sent, src, dst) {
                extra_drop += w.extra_drop;
                extra_latency += w.extra_latency;
            }
        }
        if extra_drop > 0.0 || !extra_latency.is_zero() {
            self.stats.degraded_msgs += 1;
        }

        let drop_p = (self.plan.drop.for_class(class) + extra_drop).min(1.0);
        let primary = if drop_p > 0.0 && self.rng.chance(drop_p) {
            self.stats.injected_drops += 1;
            None
        } else {
            Some(self.perturb(class, dst, nominal + extra_latency))
        };

        let dup_p = self.plan.duplicate.for_class(class);
        let duplicate = if dup_p > 0.0 && self.rng.chance(dup_p) {
            self.stats.duplicates += 1;
            Some(self.perturb(class, dst, nominal + extra_latency))
        } else {
            None
        };

        Delivery { primary, duplicate }
    }

    /// Applies jitter, reorder delay, and stall holds to one copy.
    fn perturb(&mut self, class: FaultClass, dst: NodeId, mut at: SimTime) -> SimTime {
        if !self.plan.jitter.is_zero() {
            at += self.uniform(self.plan.jitter);
        }
        let reorder_p = self.plan.reorder.for_class(class);
        if reorder_p > 0.0 && !self.plan.reorder_window.is_zero() && self.rng.chance(reorder_p) {
            at += self.uniform(self.plan.reorder_window);
            self.stats.reordered += 1;
        }
        for s in &self.plan.stalls {
            if s.node == dst && at >= s.from && at < s.until {
                at = s.until;
                self.stats.stall_delays += 1;
            }
        }
        at
    }

    fn uniform(&mut self, bound: SimDuration) -> SimDuration {
        SimDuration::from_nanos(self.rng.next_below(bound.as_nanos() + 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_nanos(us * 1000)
    }

    #[test]
    fn empty_plan_is_transparent() {
        let mut inj = FaultInjector::new(FaultPlan::none());
        for i in 0..100 {
            let d = inj.apply(FaultClass::Control, 0, 1, t(i), t(i + 5));
            assert_eq!(d, Delivery::lossless(t(i + 5)));
        }
        assert_eq!(inj.stats(), FaultStats::default());
    }

    #[test]
    fn full_loss_drops_everything() {
        let mut inj = FaultInjector::new(FaultPlan::uniform_loss(1, 1.0));
        for i in 0..50 {
            let d = inj.apply(FaultClass::Prefetch, 0, 1, t(i), t(i + 5));
            assert_eq!(d.primary, None);
        }
        assert_eq!(inj.stats().injected_drops, 50);
    }

    #[test]
    fn class_targeting_spares_other_classes() {
        let plan = FaultPlan {
            drop: ClassProbs {
                control: 0.0,
                ack: 1.0,
                prefetch: 0.0,
            },
            ..FaultPlan::none()
        };
        let mut inj = FaultInjector::new(plan);
        assert!(inj
            .apply(FaultClass::Control, 0, 1, t(0), t(5))
            .primary
            .is_some());
        assert!(inj
            .apply(FaultClass::Ack, 0, 1, t(0), t(5))
            .primary
            .is_none());
        assert!(inj
            .apply(FaultClass::Prefetch, 0, 1, t(0), t(5))
            .primary
            .is_some());
    }

    #[test]
    fn duplication_emits_second_copy() {
        let plan = FaultPlan::none().with_seed(3).with_duplication(1.0);
        let mut inj = FaultInjector::new(plan);
        let d = inj.apply(FaultClass::Control, 0, 1, t(0), t(5));
        assert_eq!(d.primary, Some(t(5)));
        assert_eq!(d.duplicate, Some(t(5)));
        assert_eq!(inj.stats().duplicates, 1);
    }

    #[test]
    fn degraded_window_adds_loss_and_latency_only_inside() {
        let plan = FaultPlan::none().with_degraded_window(DegradedWindow {
            from: t(100),
            until: t(200),
            node: Some(1),
            extra_drop: 1.0,
            extra_latency: SimDuration::from_micros(50),
        });
        let mut inj = FaultInjector::new(plan);
        // Before the window, and inside it but on another link: intact.
        assert!(inj
            .apply(FaultClass::Control, 0, 1, t(50), t(55))
            .primary
            .is_some());
        assert!(inj
            .apply(FaultClass::Control, 2, 3, t(150), t(155))
            .primary
            .is_some());
        // Inside, touching node 1: dropped.
        assert!(inj
            .apply(FaultClass::Control, 0, 1, t(150), t(155))
            .primary
            .is_none());
        assert!(inj
            .apply(FaultClass::Control, 1, 2, t(150), t(155))
            .primary
            .is_none());
        // After: intact again.
        assert!(inj
            .apply(FaultClass::Control, 0, 1, t(250), t(255))
            .primary
            .is_some());
        assert!(inj.stats().degraded_msgs >= 2);
    }

    #[test]
    fn stall_holds_arrivals_until_it_ends() {
        let plan = FaultPlan::none().with_node_stall(NodeStall {
            node: 1,
            from: t(100),
            until: t(300),
        });
        let mut inj = FaultInjector::new(plan);
        let held = inj.apply(FaultClass::Control, 0, 1, t(140), t(150));
        assert_eq!(held.primary, Some(t(300)));
        let other_node = inj.apply(FaultClass::Control, 0, 2, t(140), t(150));
        assert_eq!(other_node.primary, Some(t(150)));
        let after = inj.apply(FaultClass::Control, 0, 1, t(290), t(310));
        assert_eq!(after.primary, Some(t(310)));
        assert_eq!(inj.stats().stall_delays, 1);
    }

    #[test]
    fn identical_plans_and_traffic_give_identical_schedules() {
        let plan = FaultPlan::uniform_loss(42, 0.3)
            .with_duplication(0.2)
            .with_reordering(0.25, SimDuration::from_micros(400))
            .with_jitter(SimDuration::from_micros(30));
        let mut a = FaultInjector::new(plan.clone());
        let mut b = FaultInjector::new(plan);
        for i in 0..500 {
            let da = a.apply(
                FaultClass::Control,
                i % 4,
                (i + 1) % 4,
                t(i as u64),
                t(i as u64 + 7),
            );
            let db = b.apply(
                FaultClass::Control,
                i % 4,
                (i + 1) % 4,
                t(i as u64),
                t(i as u64 + 7),
            );
            assert_eq!(da, db);
        }
        assert_eq!(a.stats(), b.stats());
        assert!(a.stats().injected_drops > 0);
        assert!(a.stats().duplicates > 0);
        assert!(a.stats().reordered > 0);
    }

    #[test]
    fn partition_groups_resolve_with_implicit_rest() {
        let p = Partition::cut(vec![vec![2], vec![5]], t(100), SimDuration::from_micros(50));
        assert_eq!(p.group_of(2), 0);
        assert_eq!(p.group_of(5), 1);
        // Unlisted nodes share the implicit final group.
        assert_eq!(p.group_of(0), 2);
        assert_eq!(p.group_of(3), 2);
        assert!(p.severs(2, 0) && p.severs(0, 2));
        assert!(p.severs(2, 5));
        assert!(!p.severs(0, 3));
        assert_eq!(p.heal_at(), t(150));
        assert!(p.active_at(t(100)) && p.active_at(t(149)));
        assert!(!p.active_at(t(99)) && !p.active_at(t(150)));
    }

    #[test]
    fn partition_cuts_frames_overlapping_the_window() {
        let p = Partition::cut(vec![vec![1]], t(100), SimDuration::from_micros(100));
        // Entirely before and entirely after: delivered.
        assert!(!p.cuts(0, 1, t(80), t(90)));
        assert!(!p.cuts(0, 1, t(200), t(210)));
        // Sent before the cut, arriving inside: the frame was on the
        // wire when the port severed.
        assert!(p.cuts(0, 1, t(90), t(110)));
        // Sent inside, arriving after the heal: still lost (it hit the
        // severed port when transmitted).
        assert!(p.cuts(0, 1, t(150), t(220)));
        // Same side of the cut: never lost.
        assert!(!p.cuts(0, 2, t(150), t(160)));
    }

    #[test]
    fn asym_partition_cuts_one_direction_only() {
        let p = Partition {
            groups: vec![vec![2]],
            at: t(100),
            heal_after: SimDuration::from_micros(100),
            asym: true,
        };
        // Group 0 (node 2) cannot reach the implicit rest group...
        assert!(p.severs(2, 0));
        // ...but still hears it.
        assert!(!p.severs(0, 2));
    }

    #[test]
    fn partition_filter_drops_copies_and_counts() {
        let plan = FaultPlan::none().with_partition(Partition::cut(
            vec![vec![1]],
            t(100),
            SimDuration::from_micros(100),
        ));
        assert!(!plan.is_none(), "a partition schedule is not a no-op plan");
        let mut inj = FaultInjector::new(plan);
        let d = inj.apply(FaultClass::Control, 0, 1, t(120), t(125));
        let d = inj.partition_filter(0, 1, t(120), d);
        assert_eq!(d.primary, None);
        // Same-side traffic untouched.
        let d = inj.apply(FaultClass::Control, 0, 2, t(120), t(125));
        let d = inj.partition_filter(0, 2, t(120), d);
        assert_eq!(d.primary, Some(t(125)));
        // After the heal: delivery resumes.
        let d = inj.apply(FaultClass::Control, 0, 1, t(250), t(255));
        let d = inj.partition_filter(0, 1, t(250), d);
        assert_eq!(d.primary, Some(t(255)));
        assert_eq!(inj.stats().partition_drops, 1);
        assert_eq!(inj.stats().injected_drops, 0);
        assert_eq!(inj.stats().crash_drops, 0);
    }

    #[test]
    fn classification_matches_engine_labels() {
        assert_eq!(
            FaultClass::classify(Reliability::Droppable, "prefetch_req"),
            FaultClass::Prefetch
        );
        assert_eq!(
            FaultClass::classify(Reliability::Reliable, "ack"),
            FaultClass::Ack
        );
        assert_eq!(
            FaultClass::classify(Reliability::Reliable, "diff_req"),
            FaultClass::Control
        );
    }
}
