//! Cluster interconnect topologies.
//!
//! The paper's hardware is eight workstations on one ATM switch — a
//! flat bus as far as contention is concerned: every frame crosses
//! exactly one switch, and the only shared resources are the two ends'
//! host links. [`Topology::FlatBus`] models that and is the default
//! everywhere, leaving the original model (and every pinned digest)
//! untouched.
//!
//! [`Topology::RackSpine`] scales the model out: nodes are grouped
//! into racks of `rack_size` behind a top-of-rack (ToR) switch, and
//! racks are joined by `spines` spine switches. Intra-rack frames
//! behave exactly like the flat bus (one switch hop); cross-rack
//! frames take three switch hops (source ToR → spine → destination
//! ToR) and contend for the shared rack uplink/downlink trunks, whose
//! bandwidth is the aggregate host bandwidth of a rack divided by the
//! oversubscription ratio and spread across the spines. Spine choice
//! is deterministic and symmetric in (source rack, destination rack),
//! so a route and its reverse always cross the same spine.

use crate::time::SimDuration;
use crate::NodeId;

/// The shape of the interconnect between the cluster's nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Topology {
    /// Every node on one switch — the paper's ATM LAN and the
    /// default. Exactly the pre-topology network model.
    #[default]
    FlatBus,
    /// Racks of `rack_size` nodes behind ToR switches, joined by
    /// `spines` spine switches with `oversub`:1 oversubscription on
    /// the rack uplinks.
    RackSpine {
        /// Nodes per rack (the last rack may be partial).
        rack_size: usize,
        /// Number of spine switches joining the racks.
        spines: usize,
        /// Uplink oversubscription ratio `K` in `K:1`: the aggregate
        /// uplink bandwidth of a rack is the aggregate host bandwidth
        /// of its `rack_size` nodes divided by `K`.
        oversub: u32,
    },
}

impl Topology {
    /// A rack-and-spine fabric (builder-style convenience).
    ///
    /// # Panics
    ///
    /// Panics when any parameter is zero.
    pub fn rack_spine(rack_size: usize, spines: usize, oversub: u32) -> Self {
        assert!(rack_size > 0, "racks need at least one node");
        assert!(spines > 0, "fabric needs at least one spine");
        assert!(oversub > 0, "oversubscription ratio must be at least 1");
        Topology::RackSpine {
            rack_size,
            spines,
            oversub,
        }
    }

    /// The rack a node belongs to (rack 0 under the flat bus).
    pub fn rack_of(&self, node: NodeId) -> usize {
        match *self {
            Topology::FlatBus => 0,
            Topology::RackSpine { rack_size, .. } => node / rack_size,
        }
    }

    /// Number of racks a cluster of `nodes` occupies.
    pub fn racks(&self, nodes: usize) -> usize {
        match *self {
            Topology::FlatBus => 1,
            Topology::RackSpine { rack_size, .. } => nodes.div_ceil(rack_size),
        }
    }

    /// Number of spine switches (zero under the flat bus).
    pub fn spines(&self) -> usize {
        match *self {
            Topology::FlatBus => 0,
            Topology::RackSpine { spines, .. } => spines,
        }
    }

    /// Whether `src -> dst` stays inside one rack (always true on the
    /// flat bus), i.e. takes the single-switch fast path.
    pub fn same_rack(&self, src: NodeId, dst: NodeId) -> bool {
        self.rack_of(src) == self.rack_of(dst)
    }

    /// The spine a cross-rack frame between these racks prefers.
    /// Symmetric in its arguments so a route and its reverse share a
    /// spine (and therefore a hop count and base latency).
    pub fn spine_for(&self, rack_a: usize, rack_b: usize) -> Option<usize> {
        match *self {
            Topology::FlatBus => None,
            Topology::RackSpine { spines, .. } => Some((rack_a + rack_b) % spines),
        }
    }

    /// Switch hops a frame from `src` to `dst` crosses: one inside a
    /// rack (or on the flat bus), three across racks (ToR, spine, ToR).
    pub fn switch_hops(&self, src: NodeId, dst: NodeId) -> usize {
        if self.same_rack(src, dst) {
            1
        } else {
            3
        }
    }

    /// Per-spine trunk bandwidth for a fabric whose host links run at
    /// `host_bps`: a rack's aggregate host bandwidth, divided by the
    /// oversubscription ratio, split across the spines. At least one
    /// bit per second so the transmission-time arithmetic stays
    /// well-defined for degenerate parameters.
    pub fn trunk_bandwidth(&self, host_bps: u64) -> u64 {
        match *self {
            Topology::FlatBus => host_bps,
            Topology::RackSpine {
                rack_size,
                spines,
                oversub,
            } => (host_bps.saturating_mul(rack_size as u64) / (spines as u64 * oversub as u64))
                .max(1),
        }
    }

    /// Time to serialize `wire_bits` onto a trunk link (uplink or
    /// downlink) of this fabric, given the host-link bandwidth.
    pub fn trunk_tx_time(&self, host_bps: u64, wire_bits: u64) -> SimDuration {
        let bw = self.trunk_bandwidth(host_bps);
        SimDuration::from_nanos(wire_bits.saturating_mul(1_000_000_000) / bw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_bus_is_one_rack_one_hop() {
        let t = Topology::FlatBus;
        assert_eq!(t.rack_of(7), 0);
        assert_eq!(t.racks(1024), 1);
        assert_eq!(t.spines(), 0);
        assert!(t.same_rack(0, 1023));
        assert_eq!(t.switch_hops(0, 5), 1);
        assert_eq!(t.trunk_bandwidth(155_000_000), 155_000_000);
    }

    #[test]
    fn rack_spine_partitions_nodes() {
        let t = Topology::rack_spine(8, 2, 4);
        assert_eq!(t.rack_of(0), 0);
        assert_eq!(t.rack_of(7), 0);
        assert_eq!(t.rack_of(8), 1);
        assert_eq!(t.racks(64), 8);
        assert_eq!(t.racks(65), 9, "partial last rack still counts");
        assert!(t.same_rack(0, 7));
        assert!(!t.same_rack(7, 8));
        assert_eq!(t.switch_hops(0, 7), 1);
        assert_eq!(t.switch_hops(0, 8), 3);
    }

    #[test]
    fn spine_choice_is_symmetric() {
        let t = Topology::rack_spine(4, 3, 2);
        for a in 0..6 {
            for b in 0..6 {
                assert_eq!(t.spine_for(a, b), t.spine_for(b, a));
                assert!(t.spine_for(a, b).unwrap() < 3);
            }
        }
    }

    #[test]
    fn trunk_bandwidth_reflects_oversubscription() {
        // 8 hosts at 155 Mbps, 2 spines, 4:1 oversub: each spine trunk
        // carries 8*155/(2*4) = 155 Mbps.
        let t = Topology::rack_spine(8, 2, 4);
        assert_eq!(t.trunk_bandwidth(155_000_000), 155_000_000);
        // 1:1 with one spine: full rack aggregate.
        let fat = Topology::rack_spine(8, 1, 1);
        assert_eq!(fat.trunk_bandwidth(155_000_000), 8 * 155_000_000);
        // Degenerate parameters never hit a zero bandwidth.
        let thin = Topology::rack_spine(1, 64, 64);
        assert!(thin.trunk_bandwidth(1) >= 1);
    }

    #[test]
    #[should_panic(expected = "at least one spine")]
    fn zero_spines_panics() {
        Topology::rack_spine(4, 0, 1);
    }
}
