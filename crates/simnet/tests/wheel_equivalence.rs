//! Differential equivalence: the timing wheel (`EventQueue`) against
//! the binary-heap reference (`HeapQueue`), driven by identical
//! random schedules. The two must agree on every observable at every
//! step — pop sequence (time AND payload), `len`, `is_empty`, and
//! `peek_time` — because the engine's entire determinism story
//! (pinned report digests, RTR1 trace bytes) rides on the queue's
//! pop order.
//!
//! The schedules deliberately stress the wheel's seams: same-time
//! bursts (FIFO tie-break), far-future outliers (calendar overflow
//! and migration), pushes at or before the cursor (the `ready` run),
//! interleaved pops, and batch pushes.

use proptest::prelude::*;
use rsdsm_simnet::{EventQueue, HeapQueue, SimTime};

/// Drives both queues through one op and asserts every observable
/// matches. Payloads are the op index, so any ordering divergence is
/// visible, not just timing divergence.
fn lockstep(ops: &[(u8, u64)]) {
    let mut wheel = EventQueue::new();
    let mut heap = HeapQueue::new();
    let mut last = SimTime::ZERO;
    for (i, &(kind, raw)) in ops.iter().enumerate() {
        match kind % 4 {
            // Push at an absolute time derived from the raw value.
            0 => {
                let t = SimTime::from_nanos(raw);
                wheel.push(t, i);
                heap.push(t, i);
            }
            // Push relative to the last pop (engine-like pattern,
            // including zero-delay self-sends when raw % small == 0).
            1 => {
                let t = last + rsdsm_simnet::SimDuration::from_nanos(raw % 5_000);
                wheel.push(t, i);
                heap.push(t, i);
            }
            // Batch push: a same-time burst plus one outlier.
            2 => {
                let t = SimTime::from_nanos(raw);
                let batch: Vec<(SimTime, usize)> = (0..(raw % 7) as usize)
                    .map(|k| (t, i * 100 + k))
                    .chain(std::iter::once((
                        SimTime::from_nanos(
                            raw.wrapping_mul(31) % (4 * rsdsm_simnet::WHEEL_HORIZON_NS),
                        ),
                        i * 100 + 99,
                    )))
                    .collect();
                wheel.push_batch(batch.clone());
                heap.push_batch(batch);
            }
            // Pop.
            _ => {
                let w = wheel.pop();
                let h = heap.pop();
                assert_eq!(w, h, "pop #{i} diverged");
                if let Some((t, _)) = w {
                    last = t;
                }
            }
        }
        assert_eq!(wheel.len(), heap.len(), "len diverged after op {i}");
        assert_eq!(wheel.is_empty(), heap.is_empty());
        assert_eq!(
            wheel.peek_time(),
            heap.peek_time(),
            "peek diverged after op {i}"
        );
    }
    // Drain both to the end: the full residual order must match too.
    loop {
        let w = wheel.pop();
        let h = heap.pop();
        assert_eq!(w, h, "drain diverged");
        assert_eq!(wheel.peek_time(), heap.peek_time());
        if w.is_none() {
            break;
        }
    }
}

proptest! {
    /// General random schedules over a near-term time range: dense
    /// collisions, heavy tie-breaking, interleaved pops.
    #[test]
    fn wheel_matches_heap_dense(
        ops in prop::collection::vec((0u8..4, 0u64..10_000), 1..400),
    ) {
        lockstep(&ops);
    }

    /// Sparse schedules across the whole wheel span plus calendar
    /// territory: level selection, cascades, overflow migration.
    #[test]
    fn wheel_matches_heap_sparse(
        ops in prop::collection::vec((0u8..4, 0u64..(4 * rsdsm_simnet::WHEEL_HORIZON_NS)), 1..200),
    ) {
        lockstep(&ops);
    }

    /// Pop-heavy schedules: the queue repeatedly empties and
    /// re-anchors its cursor.
    #[test]
    fn wheel_matches_heap_pop_heavy(
        ops in prop::collection::vec((2u8..4, 0u64..100_000), 1..300),
    ) {
        lockstep(&ops);
    }

    /// Same-timestamp storms: nearly every event lands on one of two
    /// ticks, so the result is decided almost entirely by the FIFO
    /// tie-break.
    #[test]
    fn wheel_matches_heap_tie_storm(
        ops in prop::collection::vec((0u8..4, 0u64..2), 1..300),
    ) {
        let ops: Vec<(u8, u64)> = ops.iter().map(|&(k, t)| (k, 7_777 + t)).collect();
        lockstep(&ops);
    }
}
