//! Directed fuzz of the timing wheel's structural edge cases, in the
//! `protocol_fuzz` style: each generator aims a seeded random driver
//! at one seam of the implementation — tier (level) rollover, the
//! zero tick, zero-delay self-sends, and calendar migration — and
//! cross-checks every pop against the `HeapQueue` reference.

use rsdsm_simnet::{
    DetRng, EventQueue, HeapQueue, SimTime, WHEEL_HORIZON_NS, WHEEL_TIER_BOUNDARIES_NS,
};

/// Runs `schedule` through both queues, popping everything at the
/// end, asserting identical behavior throughout. `interleave` pops
/// once after every `interleave`-th push to exercise mid-schedule
/// cursor advances.
fn check(label: &str, schedule: &[u64], interleave: usize) {
    let mut wheel = EventQueue::new();
    let mut heap = HeapQueue::new();
    for (i, &t) in schedule.iter().enumerate() {
        let at = SimTime::from_nanos(t);
        wheel.push(at, i);
        heap.push(at, i);
        if interleave != 0 && i % interleave == interleave - 1 {
            assert_eq!(wheel.pop(), heap.pop(), "{label}: interleaved pop {i}");
        }
        assert_eq!(wheel.len(), heap.len(), "{label}: len after push {i}");
        assert_eq!(wheel.peek_time(), heap.peek_time(), "{label}: peek {i}");
    }
    loop {
        let w = wheel.pop();
        assert_eq!(w, heap.pop(), "{label}: drain");
        if w.is_none() {
            break;
        }
    }
}

/// Level rollover: deadlines hugging both sides of every tier
/// boundary (the coarse tick, the wide bottom level, each upper
/// level), where an off-by-one in level selection or cursor masking
/// reorders events.
#[test]
fn tier_boundary_rollover() {
    let mut rng = DetRng::new(0x77EE1);
    for trial in 0..50 {
        let mut schedule = Vec::new();
        for boundary in WHEEL_TIER_BOUNDARIES_NS {
            for _ in 0..4 {
                let jitter = rng.next_below(3);
                schedule.push(boundary - 1 - jitter);
                schedule.push(boundary + jitter);
                schedule.push(boundary);
            }
        }
        // Shuffle deterministically so push order varies per trial.
        for i in (1..schedule.len()).rev() {
            let j = rng.next_below(i as u64 + 1) as usize;
            schedule.swap(i, j);
        }
        check("tier_boundary", &schedule, (trial % 5) + 2);
    }
}

/// `SimTime::ZERO` scheduling: events at the zero tick, pushed before
/// and after pops, including while later events are pending.
#[test]
fn zero_tick_scheduling() {
    let mut wheel = EventQueue::new();
    let mut heap = HeapQueue::new();
    for q in [0, 1] {
        // Interleave zero-tick and positive-tick pushes.
        for i in 0..20 {
            let t = if i % 3 == 0 {
                SimTime::ZERO
            } else {
                SimTime::from_nanos(i)
            };
            wheel.push(t, (q, i));
            heap.push(t, (q, i));
        }
    }
    assert_eq!(wheel.pop(), heap.pop());
    // More zero-tick pushes AFTER popping at tick zero: they must
    // still pop before everything at later ticks, in push order.
    for i in 100..105 {
        wheel.push(SimTime::ZERO, (9, i));
        heap.push(SimTime::ZERO, (9, i));
    }
    loop {
        let w = wheel.pop();
        assert_eq!(w, heap.pop());
        if w.is_none() {
            break;
        }
    }
}

/// Zero-delay self-sends: the engine pattern of scheduling new work
/// at exactly the time just popped, repeatedly, while a backlog of
/// later events waits.
#[test]
fn zero_delay_self_sends() {
    let mut rng = DetRng::new(0x5E1F);
    let mut wheel = EventQueue::new();
    let mut heap = HeapQueue::new();
    for i in 0..64u64 {
        let t = SimTime::from_nanos(rng.next_below(1 << 20));
        wheel.push(t, i as usize);
        heap.push(t, i as usize);
    }
    let mut i = 64usize;
    let mut hops = 0;
    while let Some((t, p)) = wheel.pop() {
        let h = heap.pop();
        assert_eq!(Some((t, p)), h, "self-send pop diverged");
        // Every third pop re-arms at the same instant (a zero-delay
        // self-send), bounded so the loop terminates.
        if p % 3 == 0 && hops < 200 {
            hops += 1;
            wheel.push(t, i);
            heap.push(t, i);
            i += 1;
        }
    }
    assert!(heap.pop().is_none());
}

/// Overflow-bucket migration: clusters of deadlines far beyond the
/// wheel horizon, spread across several calendar epochs, with
/// near-term traffic draining in between. Exercises the epoch
/// `split_off` boundary and re-anchoring the cursor onto a migrated
/// batch.
#[test]
fn overflow_bucket_migration() {
    let mut rng = DetRng::new(0xCA1E);
    for trial in 0..30 {
        let mut schedule = Vec::new();
        // Near-term work.
        for _ in 0..20 {
            schedule.push(rng.next_below(1 << 16));
        }
        // Far-future clusters in distinct wheel-horizon epochs, with
        // duplicates to exercise FIFO across a migration.
        for epoch in 1..4u64 {
            let base = epoch * WHEEL_HORIZON_NS;
            for _ in 0..10 {
                let t = base + rng.next_below(1 << 20);
                schedule.push(t);
                if rng.next_below(4) == 0 {
                    schedule.push(t);
                }
            }
        }
        // A straggler close to u64 range to stress the top epoch.
        schedule.push(u64::MAX - rng.next_below(1 << 10));
        for i in (1..schedule.len()).rev() {
            let j = rng.next_below(i as u64 + 1) as usize;
            schedule.swap(i, j);
        }
        check("overflow_migration", &schedule, (trial % 7) + 3);
    }
}

/// Cursor re-anchoring: the queue repeatedly empties completely, then
/// receives work earlier OR later than the previous epoch. A stale
/// cursor would misroute the first push after each drain.
#[test]
fn empty_queue_reanchoring() {
    let mut rng = DetRng::new(0xA11C);
    let mut wheel = EventQueue::new();
    let mut heap = HeapQueue::new();
    let mut next = 0usize;
    for _ in 0..100 {
        // Alternate between jumping forward and jumping back.
        let base = rng.next_below(1 << 55);
        for _ in 0..rng.next_below(6) + 1 {
            let t = SimTime::from_nanos(base + rng.next_below(1 << 14));
            wheel.push(t, next);
            heap.push(t, next);
            next += 1;
        }
        loop {
            let w = wheel.pop();
            assert_eq!(w, heap.pop(), "reanchor drain");
            if w.is_none() {
                break;
            }
        }
        assert!(wheel.is_empty());
    }
}

/// Backlogged duplicates of one instant spread across the calendar
/// boundary: events at `horizon - 1`, `horizon`, and `horizon + 1`
/// relative to a zero cursor, where `horizon` is the wheel span.
#[test]
fn calendar_boundary_ticks() {
    let horizon = WHEEL_HORIZON_NS;
    for offsets in [
        vec![horizon - 1, horizon, horizon + 1],
        vec![horizon, horizon - 1, horizon + 1, horizon],
        vec![horizon + 1, horizon, horizon - 1, 0, horizon],
    ] {
        check("calendar_boundary", &offsets, 0);
    }
}
