//! Property-based tests of the simulation substrate's invariants.

use proptest::prelude::*;
use rsdsm_simnet::{EventQueue, NetConfig, Network, Reliability, SimDuration, SimTime};

proptest! {
    /// The event queue is a stable priority queue: pops are sorted by
    /// time, and equal times preserve insertion order.
    #[test]
    fn event_queue_is_stable_and_sorted(times in prop::collection::vec(0u64..50, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_nanos(t), i);
        }
        let mut popped = Vec::new();
        while let Some((t, i)) = q.pop() {
            popped.push((t, i));
        }
        prop_assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time-sorted");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "FIFO for ties");
            }
        }
    }

    /// Messages between one (src, dst) pair are delivered in FIFO
    /// order — the reliable transport the DSM assumes.
    #[test]
    fn per_pair_delivery_is_fifo(
        sizes in prop::collection::vec(0u32..8192, 1..60),
        gaps in prop::collection::vec(0u64..500, 1..60),
    ) {
        let mut net = Network::new(2, NetConfig::atm_155(1));
        let mut now = SimTime::ZERO;
        let mut last_arrival = SimTime::ZERO;
        for (size, gap) in sizes.iter().zip(&gaps) {
            now += SimDuration::from_micros(*gap);
            let arrival = net
                .send(now, 0, 1, *size, Reliability::Reliable, "t")
                .arrival_time()
                .expect("reliable");
            prop_assert!(arrival >= last_arrival, "FIFO per pair");
            prop_assert!(arrival > now, "messages take time");
            last_arrival = arrival;
        }
    }

    /// Conservation: every delivered message is counted exactly once
    /// in both the sender's and receiver's totals, and drops only
    /// happen to droppable messages.
    #[test]
    fn traffic_accounting_conserves(
        ops in prop::collection::vec((0usize..4, 0usize..4, 0u32..4096, any::<bool>()), 1..100),
    ) {
        let mut net = Network::new(4, NetConfig::atm_155(9));
        let mut delivered = 0u64;
        let mut dropped = 0u64;
        let mut now = SimTime::ZERO;
        for (src, dst, size, droppable) in ops {
            if src == dst {
                continue;
            }
            now += SimDuration::from_micros(20);
            let rel = if droppable { Reliability::Droppable } else { Reliability::Reliable };
            match net.send(now, src, dst, size, rel, "t").arrival_time() {
                Some(_) => delivered += 1,
                None => {
                    prop_assert!(droppable, "reliable messages never drop");
                    dropped += 1;
                }
            }
        }
        prop_assert_eq!(net.stats().total_msgs(), delivered);
        prop_assert_eq!(net.stats().drops(), dropped);
        let sent: u64 = (0..4).map(|n| net.stats().node(n).msgs_sent).sum();
        let received: u64 = (0..4).map(|n| net.stats().node(n).msgs_received).sum();
        prop_assert_eq!(sent, delivered);
        prop_assert_eq!(received, delivered);
    }

    /// Arrival time decomposes monotonically: bigger payloads never
    /// arrive earlier than smaller ones sent at the same instant on
    /// an idle network.
    #[test]
    fn bigger_messages_take_longer(a in 0u32..16384, b in 0u32..16384) {
        let arrival = |size| {
            let mut net = Network::new(2, NetConfig::atm_155(3));
            net.send(SimTime::ZERO, 0, 1, size, Reliability::Reliable, "t")
                .arrival_time()
                .expect("reliable")
        };
        let (small, large) = (a.min(b), a.max(b));
        prop_assert!(arrival(small) <= arrival(large));
    }
}
