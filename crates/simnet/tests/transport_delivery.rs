//! Exactly-once, in-order delivery of the reliable transport under
//! adversarial wire schedules.
//!
//! The fault plans in this crate can drop, duplicate, and reorder
//! anything on the wire; the reliable transport in `rsdsm-core` must
//! turn that into per-link FIFO exactly-once delivery or the LRC
//! protocol above it silently corrupts. These property tests drive the
//! transport state machine (generic over its payload, so a bare `u64`
//! tag works) through arbitrary schedules of drops, duplications, and
//! reorderings, and assert the gold-standard postcondition: the
//! receiver observes exactly the sequence `0, 1, 2, …, n-1`, each tag
//! once, in order, with no frames left unacknowledged.

use proptest::prelude::*;
use rsdsm_core::{Recv, TimeoutAction, Transport, TransportConfig};
use rsdsm_simnet::{SimDuration, SimTime};

/// One adversarial act against the frame currently chosen from the
/// wire. Values are drawn as `u8` and folded via `% 4`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    /// Hand the frame to the receiver.
    Deliver,
    /// Drop it (the sender's retry timer will resupply it).
    Drop,
    /// Deliver it but leave a copy on the wire.
    Duplicate,
    /// Move it to the back of the wire queue.
    Reorder,
}

impl Op {
    fn from_draw(d: u8) -> Op {
        match d % 4 {
            0 => Op::Deliver,
            1 => Op::Drop,
            2 => Op::Duplicate,
            _ => Op::Reorder,
        }
    }
}

fn cfg() -> TransportConfig {
    TransportConfig {
        initial_rto: SimDuration::from_millis(1),
        max_rto: SimDuration::from_millis(8),
        // Effectively unbounded: the schedule may drop the same frame
        // many times and exhaustion is not what is under test.
        max_retries: 100_000,
        ack_bytes: 28,
    }
}

/// Runs `n` tagged messages from node 0 to node 1 through an
/// adversarial wire schedule and asserts exactly-once in-order
/// delivery.
fn run_schedule(n: usize, schedule: &[(u8, u8)]) {
    let mut t: Transport<u64> = Transport::new(cfg());
    let now = SimTime::ZERO;

    // The wire: frames currently in flight, as (seq, tag) pairs.
    let mut wire: Vec<(u64, u64)> = Vec::new();
    for tag in 0..n as u64 {
        let (seq, _rto) = t.register(0, 1, tag, now);
        wire.push((seq, tag));
    }

    let mut delivered: Vec<u64> = Vec::new();
    let deliver = |t: &mut Transport<u64>, seq: u64, tag: u64, delivered: &mut Vec<u64>| {
        // The receiver acks every data frame it sees, duplicates
        // included (the previous ack may have been lost).
        t.note_ack_sent();
        match t.receive(0, 1, seq, tag) {
            Recv::Deliver(run) => delivered.extend(run),
            Recv::Buffered | Recv::Duplicate => {}
        }
        // The ack travels back faultlessly here; ack loss is
        // equivalent to a later Drop of the retransmitted frame, which
        // the schedule already exercises.
        t.on_ack(0, 1, seq, now);
    };

    for &(pick, op) in schedule {
        if wire.is_empty() {
            break;
        }
        let i = pick as usize % wire.len();
        let (seq, tag) = wire[i];
        match Op::from_draw(op) {
            Op::Deliver => {
                wire.remove(i);
                deliver(&mut t, seq, tag, &mut delivered);
            }
            Op::Drop => {
                wire.remove(i);
                // The retry timer eventually fires and resupplies the
                // frame — unless it was already acked (a duplicate got
                // through), in which case the timer is stale.
                match t.on_timeout(0, 1, seq) {
                    TimeoutAction::Retransmit { body, .. } => wire.push((seq, body)),
                    TimeoutAction::Cancelled => {}
                    TimeoutAction::Exhausted { attempts } => {
                        panic!("retry budget exhausted after {attempts} attempts")
                    }
                }
            }
            Op::Duplicate => {
                deliver(&mut t, seq, tag, &mut delivered);
            }
            Op::Reorder => {
                let f = wire.remove(i);
                wire.push(f);
            }
        }
    }

    // Drain whatever the schedule left on the wire, oldest first.
    while let Some((seq, tag)) = wire.pop() {
        deliver(&mut t, seq, tag, &mut delivered);
    }

    assert_eq!(
        delivered,
        (0..n as u64).collect::<Vec<_>>(),
        "receiver must observe every tag exactly once, in order"
    );
    assert_eq!(t.inflight_frames(), 0, "every frame must end acknowledged");
    let s = t.summary();
    assert_eq!(s.data_frames, n as u64);
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        .. ProptestConfig::default()
    })]

    #[test]
    fn delivers_in_order_exactly_once_under_arbitrary_schedules(
        n in 1usize..=24,
        schedule in prop::collection::vec((any::<u8>(), any::<u8>()), 0..200),
    ) {
        run_schedule(n, &schedule);
    }
}

/// Directed worst cases the random schedules may undersample.
#[test]
fn pathological_schedules() {
    // Everything dropped once before any delivery.
    let drop_all: Vec<(u8, u8)> = (0..32).map(|i| (i, 1)).collect();
    run_schedule(8, &drop_all);

    // Every frame duplicated, then delivered via the drain.
    let dup_all: Vec<(u8, u8)> = (0..32).map(|i| (i, 2)).collect();
    run_schedule(8, &dup_all);

    // Constant head-of-line reordering.
    let churn: Vec<(u8, u8)> = (0..64)
        .map(|i| (0, if i % 2 == 0 { 3 } else { 0 }))
        .collect();
    run_schedule(8, &churn);

    // Empty schedule: the drain alone must deliver in order even
    // though it pops the wire back-to-front.
    run_schedule(8, &[]);
}
