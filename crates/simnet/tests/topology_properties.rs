//! Property-based tests of the rack-and-spine fabric: route symmetry,
//! per-link charge conservation, dead-spine and partition behaviour,
//! and the directory home assignment (via the dev-only `rsdsm-core`
//! cycle, as in `transport_delivery.rs`).
//!
//! The vendored proptest shim has no `prop_map`/`prop_assume`, so
//! fabrics are built from raw `(rack, spines, oversub)` draws in each
//! body and degenerate pairs are nudged apart arithmetically.

use proptest::prelude::*;
use rsdsm_core::DirectoryPolicy;
use rsdsm_simnet::{
    FaultPlan, NetConfig, Network, Partition, Reliability, SimDuration, SimTime, Topology,
};

fn fabric_net(nodes: usize, topology: Topology) -> Network {
    let cfg = NetConfig {
        topology,
        ..NetConfig::atm_155(7)
    };
    Network::new(nodes, cfg)
}

/// Distinct (src, dst) from two raw draws.
fn pair(nodes: usize, a: usize, b: usize) -> (usize, usize) {
    let src = a % nodes;
    let mut dst = b % nodes;
    if src == dst {
        dst = (dst + 1) % nodes;
    }
    (src, dst)
}

proptest! {
    /// A route and its reverse cross the same number of switches and,
    /// on an idle fabric, cost exactly the same end-to-end latency —
    /// the spine choice is symmetric in (source rack, destination
    /// rack), so there is no cheaper direction.
    #[test]
    fn routes_are_symmetric(
        shape in (1usize..9, 1usize..5, 1u32..9),
        nodes in 2usize..65,
        draws in (0usize..64, 0usize..64),
        bytes in 0u32..16384,
    ) {
        let topology = Topology::rack_spine(shape.0, shape.1, shape.2);
        let (a, b) = pair(nodes, draws.0, draws.1);
        // Fresh networks in each direction: idle links, no queueing.
        let mut fwd = fabric_net(nodes, topology);
        let mut rev = fabric_net(nodes, topology);
        let out = fwd.send(SimTime::ZERO, a, b, bytes, Reliability::Reliable, "t");
        let back = rev.send(SimTime::ZERO, b, a, bytes, Reliability::Reliable, "t");
        let there = out.arrival_time().expect("reliable frames deliver");
        let and_back = back.arrival_time().expect("reliable frames deliver");
        prop_assert_eq!(there, and_back, "asymmetric route cost");
        prop_assert_eq!(fwd.last_route().len(), rev.last_route().len());
        prop_assert_eq!(
            fwd.last_route().len(),
            if topology.same_rack(a, b) { 2 } else { 4 },
            "2 links inside a rack, 4 across"
        );
        prop_assert_eq!(
            topology.switch_hops(a, b),
            topology.switch_hops(b, a),
            "switch-hop symmetry"
        );
    }

    /// Conservation: the per-hop charges of a delivered frame — queue,
    /// serialization, propagation — sum exactly to its end-to-end
    /// latency. Nothing is charged twice and no time is unaccounted,
    /// even with queueing from earlier traffic on every link.
    #[test]
    fn hop_charges_sum_to_end_to_end_latency(
        shape in (1usize..9, 1usize..5, 1u32..9),
        nodes in 2usize..33,
        frames in prop::collection::vec((0usize..32, 0usize..32, 0u32..8192, 0u64..2000), 1..60),
    ) {
        let topology = Topology::rack_spine(shape.0, shape.1, shape.2);
        let mut net = fabric_net(nodes, topology);
        let mut now = SimTime::ZERO;
        for (a, b, bytes, gap) in frames {
            let (src, dst) = pair(nodes, a, b);
            now += SimDuration::from_micros(gap);
            let out = net.send(now, src, dst, bytes, Reliability::Reliable, "t");
            let arrival = out.arrival_time().expect("reliable frames deliver");
            let charged: SimDuration = net
                .last_route()
                .iter()
                .map(|h| h.total())
                .fold(SimDuration::ZERO, |acc, t| acc + t);
            prop_assert_eq!(
                now + charged,
                arrival,
                "hop charges must sum to the frame's latency"
            );
        }
    }

    /// Dead spines: a cross-rack frame is delivered exactly when some
    /// spine is still up (routing around the dead ones), and dropped —
    /// with an empty route — when the whole spine layer is down.
    /// Intra-rack traffic never touches a spine and never notices.
    #[test]
    fn frames_never_cross_a_dead_spine_layer(
        shape in (1usize..9, 1usize..5, 1u32..9),
        nodes in 2usize..33,
        dead in prop::collection::vec(any::<bool>(), 4),
        draws in (0usize..32, 0usize..32),
    ) {
        let topology = Topology::rack_spine(shape.0, shape.1, shape.2);
        let (src, dst) = pair(nodes, draws.0, draws.1);
        let mut net = fabric_net(nodes, topology);
        let spines = topology.spines();
        for s in 0..spines {
            net.set_spine_down(s, dead[s % dead.len()]);
        }
        let any_up = (0..spines).any(|s| !dead[s % dead.len()]);
        let out = net.send(SimTime::ZERO, src, dst, 512, Reliability::Reliable, "t");
        if topology.same_rack(src, dst) || any_up {
            prop_assert!(out.arrival_time().is_some(), "route around dead spines");
        } else {
            prop_assert!(out.arrival_time().is_none(), "no path, no delivery");
            prop_assert!(net.last_route().is_empty(), "dropped frames charge no hops");
        }
    }

    /// An active partition cut is absolute: no frame crosses it in
    /// either direction, regardless of topology, while frames between
    /// same-side nodes keep flowing.
    #[test]
    fn no_frame_skips_a_cut(
        shape in (1usize..9, 1usize..5, 1u32..9),
        nodes in 4usize..33,
        cut_len in 1usize..16,
        draws in (0usize..32, 0usize..32),
    ) {
        let topology = Topology::rack_spine(shape.0, shape.1, shape.2);
        let (src, dst) = pair(nodes, draws.0, draws.1);
        // Cut nodes [nodes - cut_len, nodes) away from the rest.
        let cut_len = cut_len.min(nodes - 1);
        let island: Vec<usize> = (nodes - cut_len..nodes).collect();
        let mut net = fabric_net(nodes, topology);
        net.set_fault_plan(FaultPlan::none().with_partition(Partition::cut(
            vec![island.clone()],
            SimTime::ZERO,
            SimDuration::from_secs(3600),
        )));
        let crosses = island.contains(&src) != island.contains(&dst);
        let out = net.send(
            SimTime::from_micros(1),
            src,
            dst,
            512,
            Reliability::Reliable,
            "t",
        );
        if crosses {
            prop_assert!(out.arrival_time().is_none(), "frame crossed an active cut");
        } else {
            prop_assert!(out.arrival_time().is_some(), "same-side frame was dropped");
        }
    }

    /// The directory home assignment is a total, deterministic
    /// partition of the page space: every page gets exactly one home,
    /// the home is a valid node, and recomputing it never disagrees.
    /// The Block policy is additionally contiguous and monotone.
    #[test]
    fn home_assignment_is_a_total_deterministic_partition(
        pages in 1usize..512,
        nodes in 1usize..128,
        policy_ix in 0usize..3,
    ) {
        let policy = [
            DirectoryPolicy::Hash,
            DirectoryPolicy::Block,
            DirectoryPolicy::FirstTouch,
        ][policy_ix];
        let homes: Vec<usize> = (0..pages)
            .map(|p| policy.static_home(p, pages, nodes))
            .collect();
        for (p, &home) in homes.iter().enumerate() {
            prop_assert!(home < nodes, "page {p} homed on nonexistent node {home}");
            prop_assert_eq!(
                policy.static_home(p, pages, nodes),
                home,
                "home of page {p} moved between calls"
            );
        }
        if policy == DirectoryPolicy::Block {
            for w in homes.windows(2) {
                prop_assert!(w[0] <= w[1], "block homes must be monotone");
            }
        }
    }
}
