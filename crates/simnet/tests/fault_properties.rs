//! Property-based tests of the fault-injection layer's invariants:
//! determinism (identical plans and seeds give identical delivery
//! schedules) and FIFO link behaviour under the fault classes that
//! are not allowed to break it.

use proptest::prelude::*;
use rsdsm_simnet::{FaultPlan, NetConfig, Network, Reliability, SimDuration, SimTime};

fn hostile_plan(seed: u64) -> FaultPlan {
    FaultPlan::uniform_loss(seed, 0.15)
        .with_duplication(0.1)
        .with_reordering(0.2, SimDuration::from_micros(300))
        .with_jitter(SimDuration::from_micros(20))
}

proptest! {
    /// Two networks given equal configurations, equal fault plans,
    /// and equal traffic produce byte-identical delivery schedules
    /// and fault statistics — the determinism the whole fault-matrix
    /// test relies on.
    #[test]
    fn identical_plans_yield_identical_schedules(
        ops in prop::collection::vec((0usize..4, 0usize..4, 0u32..4096, any::<bool>()), 1..100),
        seed in any::<u64>(),
    ) {
        let mut a = Network::new(4, NetConfig::atm_155(9));
        let mut b = Network::new(4, NetConfig::atm_155(9));
        a.set_fault_plan(hostile_plan(seed));
        b.set_fault_plan(hostile_plan(seed));
        let mut now = SimTime::ZERO;
        for &(src, dst, size, droppable) in &ops {
            if src == dst {
                continue;
            }
            now += SimDuration::from_micros(20);
            let rel = if droppable { Reliability::Droppable } else { Reliability::Reliable };
            let oa = a.send(now, src, dst, size, rel, "t");
            let ob = b.send(now, src, dst, size, rel, "t");
            prop_assert_eq!(oa, ob);
        }
        prop_assert_eq!(a.fault_stats(), b.fault_stats());
        prop_assert_eq!(a.stats().drops(), b.stats().drops());
        prop_assert_eq!(a.stats().total_msgs(), b.stats().total_msgs());
    }

    /// An installed-but-empty plan changes nothing: the network
    /// behaves exactly like one with no plan at all.
    #[test]
    fn empty_plan_is_transparent(
        sizes in prop::collection::vec(0u32..8192, 1..60),
        gaps in prop::collection::vec(0u64..500, 1..60),
    ) {
        let mut plain = Network::new(2, NetConfig::atm_155(5));
        let mut planned = Network::new(2, NetConfig::atm_155(5));
        planned.set_fault_plan(FaultPlan::none());
        let mut now = SimTime::ZERO;
        for (size, gap) in sizes.iter().zip(&gaps) {
            now += SimDuration::from_micros(*gap);
            let a = plain.send(now, 0, 1, *size, Reliability::Droppable, "t");
            let b = planned.send(now, 0, 1, *size, Reliability::Droppable, "t");
            prop_assert_eq!(a, b);
        }
        prop_assert_eq!(planned.fault_stats().injected_drops, 0);
    }

    /// Loss and duplication alone (no reorder, no jitter) never break
    /// per-link FIFO: arrival times of delivered messages between one
    /// (src, dst) pair stay monotone, duplicates included.
    #[test]
    fn loss_and_duplication_preserve_fifo(
        sizes in prop::collection::vec(0u32..8192, 1..60),
        gaps in prop::collection::vec(0u64..500, 1..60),
        seed in any::<u64>(),
    ) {
        let mut net = Network::new(2, NetConfig::atm_155(1));
        net.set_fault_plan(FaultPlan::uniform_loss(seed, 0.3).with_duplication(0.2));
        let mut now = SimTime::ZERO;
        let mut last_arrival = SimTime::ZERO;
        for (size, gap) in sizes.iter().zip(&gaps) {
            now += SimDuration::from_micros(*gap);
            let outcome = net.send(now, 0, 1, *size, Reliability::Reliable, "t");
            for arrival in outcome.arrival_time().into_iter().chain(outcome.dup_time()) {
                prop_assert!(arrival >= last_arrival, "FIFO per pair under loss/dup");
                prop_assert!(arrival > now, "messages take time");
                last_arrival = arrival;
            }
        }
    }
}
