//! Integration tests of the persistent-device crash contract through
//! the public API: the durable prefix grows monotonically with the
//! crash instant, tearing is confined to the one frontier sector and
//! is deterministic, and the fence ordering the checkpoint layer
//! relies on (nothing dependent drains before the previous fence
//! completes) holds at every crash time.

use rsdsm_simnet::{PersistConfig, PersistDevice, SimDuration, SimTime};

/// 1 byte/us write bandwidth, 16-byte sectors: windows and frontiers
/// in easy round numbers.
fn cfg() -> PersistConfig {
    PersistConfig {
        enabled: true,
        write_bw: 1,
        read_bw: 2,
        fence_latency: SimDuration::from_micros(5),
        sector_bytes: 16,
    }
}

fn at_us(us: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_micros(us)
}

/// Crashing at every microsecond of a drain window never panics, the
/// durable prefix before the torn sector is exactly the drained
/// bytes, and nothing past the frontier's sector reaches the media.
#[test]
fn crash_at_any_point_is_total_and_monotone() {
    let payload: Vec<u8> = (0..128u8).collect(); // 128 us drain window
    let sector = cfg().sector_bytes as usize;
    let mut prev_frontier = 0usize;
    for crash_us in 0..=130 {
        let mut dev = PersistDevice::new(1, cfg());
        dev.write(0, 0, &payload);
        let drained = dev.flush(at_us(0));
        assert_eq!(drained, at_us(128));
        dev.crash(at_us(crash_us));
        let media = dev.read(0);

        let frontier = (crash_us as usize).min(payload.len());
        assert!(
            frontier >= prev_frontier,
            "durable prefix shrank at {crash_us} us"
        );
        prev_frontier = frontier;

        // Bytes strictly before the frontier's sector are the real
        // payload; the frontier sector itself may be garbage; nothing
        // past it was ever written.
        let sector_lo = frontier / sector * sector;
        assert_eq!(
            &media[..sector_lo.min(media.len())],
            &payload[..sector_lo.min(media.len())],
            "drained prefix corrupted at {crash_us} us"
        );
        if frontier >= payload.len() {
            assert_eq!(media, &payload[..], "completed drain still torn");
        } else {
            let sector_hi = (sector_lo + sector).min(payload.len());
            assert!(
                media.len() <= sector_hi,
                "bytes past the frontier sector reached the media at {crash_us} us"
            );
        }
    }
}

/// Same crash coordinates, same garbage: tearing draws no global
/// randomness, so same-seed runs stay bit-identical.
#[test]
fn tear_garbage_is_deterministic() {
    let run = || {
        let mut dev = PersistDevice::new(1, cfg());
        dev.write(0, 0, &[0xAA; 64]);
        dev.flush(at_us(0));
        dev.crash(at_us(20));
        dev.read(0).to_vec()
    };
    assert_eq!(run(), run());
}

/// The ordering contract the two-slot protocol depends on: a write
/// issued after a fence drains strictly after the fenced write's
/// completion, so a crash can catch the second write mid-drain only
/// when the first is already fully durable.
#[test]
fn fenced_writes_drain_in_order() {
    let mut dev = PersistDevice::new(2, cfg());
    dev.write(0, 0, &[1u8; 32]); // region 0: "payload", 32 us
    let drained = dev.flush(at_us(0));
    let durable = dev.fence(drained);
    assert_eq!(durable, at_us(32) + SimDuration::from_micros(5));

    dev.write(1, 0, &[2u8; 16]); // region 1: "commit"
    let commit_drained = dev.flush(durable);
    assert_eq!(commit_drained, durable + SimDuration::from_micros(16));

    // Crash inside the commit's window: payload fully durable, commit
    // at most partially there.
    dev.crash(durable + SimDuration::from_micros(4));
    assert_eq!(dev.read(0), &[1u8; 32][..]);
    assert!(dev.read(1).len() <= cfg().sector_bytes as usize);
    assert_eq!(dev.stats().torn_sectors, 1);
}

/// An unflushed write is gone entirely after a crash — store buffers
/// are volatile — and counted as lost.
#[test]
fn buffered_writes_vanish_on_crash() {
    let mut dev = PersistDevice::new(1, cfg());
    dev.write(0, 0, &[7u8; 48]);
    dev.crash(at_us(1_000));
    assert!(dev.read(0).is_empty());
    assert_eq!(dev.stats().writes_lost, 1);
    assert_eq!(dev.stats().torn_sectors, 0);
}

/// Regions keep stale tail bytes beyond a newer, shorter write —
/// reusing a slot behaves like reusing a file, which is why the
/// commit record must carry the payload length.
#[test]
fn shorter_rewrite_leaves_stale_tail() {
    let mut dev = PersistDevice::new(1, cfg());
    dev.write(0, 0, &[3u8; 64]);
    let drained = dev.flush(at_us(0));
    dev.settle(drained);
    dev.write(0, 0, &[4u8; 16]);
    let drained = dev.flush(drained);
    dev.settle(drained);

    let media = dev.read(0);
    assert_eq!(media.len(), 64);
    assert_eq!(&media[..16], &[4u8; 16][..]);
    assert_eq!(&media[16..], &[3u8; 48][..]);
}
