//! Property-based tests of the partition layer's invariants: no frame
//! ever crosses an active cut, delivery is unconditional outside the
//! cut window, one-way cuts drop only the severed direction, and
//! identical partition plans give identical schedules and statistics.

use proptest::prelude::*;
use rsdsm_simnet::{FaultPlan, NetConfig, Network, Partition, Reliability, SimDuration, SimTime};

/// A 4-node network whose only fault source is the given partition.
fn partitioned_net(p: Partition) -> Network {
    let mut net = Network::new(4, NetConfig::atm_155(9));
    net.set_fault_plan(FaultPlan::none().with_partition(p));
    net
}

/// A symmetric single-minority cut: `minority` vs the rest, active on
/// `[at, at + heal_after)`.
fn single_cut(minority: usize, at_us: u64, heal_us: u64) -> Partition {
    Partition::cut(
        vec![vec![minority]],
        SimTime::from_micros(at_us),
        SimDuration::from_micros(heal_us),
    )
}

proptest! {
    /// The defining invariant: no delivered copy of any frame — primary
    /// or injected duplicate — ever has a flight interval that crosses
    /// an active cut between its endpoints.
    #[test]
    fn no_frame_crosses_an_active_cut(
        minority in 1usize..4,
        at_us in 100u64..3_000,
        heal_us in 100u64..3_000,
        ops in prop::collection::vec((0usize..4, 0usize..4, 0u32..4096, 0u64..400), 1..120),
    ) {
        let p = single_cut(minority, at_us, heal_us);
        let mut net = partitioned_net(p.clone());
        let mut now = SimTime::ZERO;
        for &(src, dst, size, gap) in &ops {
            if src == dst {
                continue;
            }
            now += SimDuration::from_micros(gap);
            let outcome = net.send(now, src, dst, size, Reliability::Reliable, "t");
            for arrival in outcome.arrival_time().into_iter().chain(outcome.dup_time()) {
                prop_assert!(
                    !p.cuts(src, dst, now, arrival),
                    "frame {src}->{dst} sent {now} delivered {arrival} across cut [{}, {})",
                    p.at,
                    p.heal_at()
                );
            }
        }
    }

    /// Outside the cut window the partition is invisible: with no
    /// other fault source, every frame sent at or after the heal
    /// delivers — including on the severed pair — and every severed
    /// frame sent mid-cut drops, with each drop accounted to
    /// `partition_drops` and nothing else.
    #[test]
    fn cut_drops_exactly_the_window_and_heals(
        minority in 1usize..4,
        at_us in 100u64..3_000,
        heal_us in 100u64..3_000,
        ops in prop::collection::vec((0usize..4, 0usize..4, 0u32..4096, 0u64..400), 1..120),
    ) {
        let p = single_cut(minority, at_us, heal_us);
        let mut net = partitioned_net(p.clone());
        let mut now = SimTime::ZERO;
        let mut expected_drops = 0u64;
        for &(src, dst, size, gap) in &ops {
            if src == dst {
                continue;
            }
            now += SimDuration::from_micros(gap);
            let outcome = net.send(now, src, dst, size, Reliability::Reliable, "t");
            let delivered = outcome.arrival_time().is_some();
            if now >= p.heal_at() {
                prop_assert!(delivered, "{src}->{dst} sent {now} after heal must deliver");
            } else if p.severs(src, dst) && now >= p.at {
                // Sent strictly inside the window: arrival >= sent >= at,
                // so the frame dies at the cut, deterministically.
                prop_assert!(!delivered, "{src}->{dst} sent {now} mid-cut must drop");
            }
            if !delivered {
                expected_drops += 1;
            }
        }
        let stats = net.fault_stats();
        prop_assert_eq!(stats.partition_drops, expected_drops);
        prop_assert_eq!(stats.injected_drops, 0, "no other fault source exists");
    }

    /// A one-way cut severs only the minority->majority direction:
    /// mid-cut, the minority's frames toward everyone else die while
    /// every frame toward the minority still delivers.
    #[test]
    fn asym_cut_is_one_way(
        minority in 1usize..4,
        at_us in 100u64..3_000,
        heal_us in 100u64..3_000,
        ops in prop::collection::vec((0usize..4, 0usize..4, 0u32..4096, 0u64..400), 1..120),
    ) {
        let p = Partition {
            groups: vec![vec![minority]],
            at: SimTime::from_micros(at_us),
            heal_after: SimDuration::from_micros(heal_us),
            asym: true,
        };
        let mut net = partitioned_net(p.clone());
        let mut now = SimTime::ZERO;
        for &(src, dst, size, gap) in &ops {
            if src == dst {
                continue;
            }
            now += SimDuration::from_micros(gap);
            let outcome = net.send(now, src, dst, size, Reliability::Reliable, "t");
            let delivered = outcome.arrival_time().is_some();
            if now >= p.at && now < p.heal_at() && src == minority {
                prop_assert!(!delivered, "minority {src}->{dst} sent {now} must drop");
            } else if dst == minority || src != minority {
                prop_assert!(delivered, "{src}->{dst} sent {now} must still deliver");
            }
        }
    }

    /// Two networks with equal configurations, equal partition plans,
    /// and equal traffic produce identical delivery schedules and
    /// identical fault statistics — partitions keep the determinism
    /// contract the rest of the fault layer holds.
    #[test]
    fn identical_partition_plans_yield_identical_schedules(
        minority in 1usize..4,
        at_us in 100u64..3_000,
        heal_us in 100u64..3_000,
        ops in prop::collection::vec((0usize..4, 0usize..4, 0u32..4096, 0u64..400), 1..120),
    ) {
        let p = single_cut(minority, at_us, heal_us);
        let mut a = partitioned_net(p.clone());
        let mut b = partitioned_net(p);
        let mut now = SimTime::ZERO;
        for &(src, dst, size, gap) in &ops {
            if src == dst {
                continue;
            }
            now += SimDuration::from_micros(gap);
            let oa = a.send(now, src, dst, size, Reliability::Reliable, "t");
            let ob = b.send(now, src, dst, size, Reliability::Reliable, "t");
            prop_assert_eq!(oa, ob);
        }
        prop_assert_eq!(a.fault_stats(), b.fault_stats());
        prop_assert_eq!(a.stats().drops(), b.stats().drops());
        prop_assert_eq!(a.stats().total_msgs(), b.stats().total_msgs());
    }
}
