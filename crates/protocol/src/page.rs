//! Shared pages.
//!
//! The DSM's unit of coherence is the virtual-memory page (4 KB on the
//! paper's PowerPC 604 machines). [`Page`] is a plain byte container;
//! typed access is layered on top by the runtime's shared-array
//! handles. [`PageId`] numbers pages within the global shared heap.

use std::fmt;
use std::sync::Arc;

/// Size of a coherence unit in bytes, matching the paper's hardware.
pub const PAGE_SIZE: usize = 4096;

/// Identifies a page in the global shared address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PageId(u32);

impl PageId {
    /// Creates a page id from its index in the shared heap.
    pub const fn new(index: u32) -> Self {
        PageId(index)
    }

    /// The page's index in the shared heap.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The page containing global byte offset `addr`.
    pub const fn containing(addr: usize) -> Self {
        PageId((addr / PAGE_SIZE) as u32)
    }

    /// The global byte offset of the first byte of this page.
    pub const fn base_addr(self) -> usize {
        self.0 as usize * PAGE_SIZE
    }
}

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "page#{}", self.0)
    }
}

/// One page of shared data as held by a node.
#[derive(Clone, PartialEq, Eq)]
pub struct Page {
    bytes: Box<[u8]>,
}

impl Page {
    /// A zero-filled page.
    pub fn new() -> Self {
        Page {
            bytes: vec![0u8; PAGE_SIZE].into_boxed_slice(),
        }
    }

    /// The page contents.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Mutable page contents.
    pub fn bytes_mut(&mut self) -> &mut [u8] {
        &mut self.bytes
    }

    /// Copies the entire contents of `other` into this page.
    pub fn copy_from(&mut self, other: &Page) {
        self.bytes.copy_from_slice(&other.bytes);
    }

    /// Reads a little-endian `u64` at byte offset `off`.
    ///
    /// # Panics
    ///
    /// Panics if `off + 8` exceeds the page.
    pub fn read_u64(&self, off: usize) -> u64 {
        // `get` + array conversion: one range check, then a fixed
        // 8-byte load with no per-byte bounds checks.
        match self.bytes.get(off..off + 8) {
            Some(chunk) => u64::from_le_bytes(chunk.try_into().expect("8 bytes")),
            None => panic!("u64 read at {off} exceeds the page"),
        }
    }

    /// Writes a little-endian `u64` at byte offset `off`.
    ///
    /// # Panics
    ///
    /// Panics if `off + 8` exceeds the page.
    pub fn write_u64(&mut self, off: usize, v: u64) {
        match self.bytes.get_mut(off..off + 8) {
            Some(chunk) => {
                let chunk: &mut [u8; 8] = chunk.try_into().expect("8 bytes");
                *chunk = v.to_le_bytes();
            }
            None => panic!("u64 write at {off} exceeds the page"),
        }
    }
}

/// A free list of page buffers, reused to avoid the zero-initializing
/// allocation `Page::new` pays on every twin, checkpoint image, and
/// base copy. Each node keeps its own pool, so no synchronization is
/// involved; the pool is bounded so a burst of twins cannot pin
/// memory forever.
///
/// Buffers come in two flavors that never mix: plain `Box<Page>`
/// scratch copies, and `Arc<Page>` frames that the engine shares
/// zero-copy between a twin and the message payloads built from it.
/// An `Arc` frame is only recyclable once every clone has been
/// dropped, so [`PagePool::put_arc`] quietly discards still-shared
/// frames instead of holding a reference that would pin them.
#[derive(Debug, Default)]
pub struct PagePool {
    // Boxed on purpose: callers store scratch pages as `Box<Page>`,
    // and the pool must hand buffers in and out as pointer moves,
    // never as page-sized memcpys.
    #[allow(clippy::vec_box)]
    free: Vec<Box<Page>>,
    // Uniquely-owned Arc frames, kept separate so a recycled frame is
    // always writable without a copy-on-write clone.
    free_arcs: Vec<Arc<Page>>,
}

/// Retained free pages per pool (per flavor); beyond this, returned
/// pages are dropped. 1024 pages = 4 MiB per node, comfortably above
/// the concurrent-twin high-water mark of every benchmark.
const POOL_MAX_FREE: usize = 1024;

impl PagePool {
    /// An empty pool.
    pub fn new() -> Self {
        PagePool::default()
    }

    /// A page holding a copy of `src`: a recycled buffer when one is
    /// free (overwritten, never zeroed first), a fresh allocation
    /// otherwise.
    pub fn take_copy_of(&mut self, src: &Page) -> Box<Page> {
        match self.free.pop() {
            Some(mut page) => {
                page.copy_from(src);
                page
            }
            None => Box::new(src.clone()),
        }
    }

    /// A zero-filled page, recycled when possible.
    pub fn take_zeroed(&mut self) -> Box<Page> {
        match self.free.pop() {
            Some(mut page) => {
                page.bytes.fill(0);
                page
            }
            None => Box::new(Page::new()),
        }
    }

    /// Returns a page buffer to the pool (dropped once the pool holds
    /// `POOL_MAX_FREE` = 1024 pages). The contents are irrelevant;
    /// the next taker overwrites them.
    pub fn put(&mut self, page: Box<Page>) {
        if self.free.len() < POOL_MAX_FREE {
            self.free.push(page);
        }
    }

    /// An `Arc` frame holding a copy of `src`: a recycled
    /// uniquely-owned frame when one is free, a fresh allocation
    /// otherwise. The result always has refcount 1, so the caller may
    /// mutate it through [`Arc::get_mut`]/[`Arc::make_mut`] without
    /// triggering a clone.
    pub fn take_arc_copy_of(&mut self, src: &Page) -> Arc<Page> {
        match self.free_arcs.pop() {
            Some(mut frame) => {
                Arc::get_mut(&mut frame)
                    .expect("pooled frame is uniquely owned")
                    .copy_from(src);
                frame
            }
            None => Arc::new(src.clone()),
        }
    }

    /// Returns an `Arc` frame to the pool. Frames still shared with a
    /// live message payload are dropped (this pool reference would
    /// otherwise pin them, and they are not writable anyway); the
    /// last clone standing simply deallocates when it goes.
    pub fn put_arc(&mut self, frame: Arc<Page>) {
        if Arc::strong_count(&frame) == 1 && self.free_arcs.len() < POOL_MAX_FREE {
            self.free_arcs.push(frame);
        }
    }

    /// Free pages currently held (both flavors).
    pub fn free_pages(&self) -> usize {
        self.free.len() + self.free_arcs.len()
    }
}

impl Default for Page {
    fn default() -> Self {
        Page::new()
    }
}

impl fmt::Debug for Page {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let nonzero = self.bytes.iter().filter(|&&b| b != 0).count();
        write!(f, "Page({nonzero}/{PAGE_SIZE} nonzero bytes)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_id_addressing() {
        assert_eq!(PageId::containing(0), PageId::new(0));
        assert_eq!(PageId::containing(PAGE_SIZE - 1), PageId::new(0));
        assert_eq!(PageId::containing(PAGE_SIZE), PageId::new(1));
        assert_eq!(PageId::new(3).base_addr(), 3 * PAGE_SIZE);
        assert_eq!(PageId::new(3).index(), 3);
    }

    #[test]
    fn new_page_is_zeroed() {
        let p = Page::new();
        assert!(p.bytes().iter().all(|&b| b == 0));
        assert_eq!(p.bytes().len(), PAGE_SIZE);
    }

    #[test]
    fn u64_round_trip() {
        let mut p = Page::new();
        p.write_u64(16, 0xDEAD_BEEF_CAFE_F00D);
        assert_eq!(p.read_u64(16), 0xDEAD_BEEF_CAFE_F00D);
        assert_eq!(p.read_u64(8), 0);
    }

    #[test]
    fn copy_from_replicates() {
        let mut a = Page::new();
        a.write_u64(0, 42);
        let mut b = Page::new();
        b.copy_from(&a);
        assert_eq!(a, b);
    }

    #[test]
    fn debug_is_nonempty() {
        assert!(!format!("{:?}", Page::new()).is_empty());
    }
}
