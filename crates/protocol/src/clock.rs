//! Vector clocks and the happens-before-1 partial order.
//!
//! TreadMarks maintains lazy release consistency with a distributed
//! timestamp and interval-based algorithm: every processor keeps a
//! vector timestamp (one element per processor), increments its own
//! element at each interval boundary (synchronization release, or a
//! prefetch-induced interval split), and orders intervals by the
//! *happens-before-1* partial order of Adve & Hill, which for vector
//! timestamps is simply element-wise comparison.
//!
//! # Examples
//!
//! ```
//! use rsdsm_protocol::VectorClock;
//!
//! let mut a = VectorClock::new(4);
//! let mut b = VectorClock::new(4);
//! a.tick(0);
//! b.tick(1);
//! assert!(a.is_concurrent_with(&b));
//! b.join(&a);
//! assert!(b.dominates(&a));
//! ```

use std::cmp::Ordering;
use std::fmt;

/// A per-processor vector timestamp.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct VectorClock {
    elems: Vec<u32>,
}

impl VectorClock {
    /// A clock for `n` processors, all elements zero.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "vector clock needs at least one processor");
        VectorClock { elems: vec![0; n] }
    }

    /// Rebuilds a clock from its raw elements (checkpoint restore).
    ///
    /// # Panics
    ///
    /// Panics if `elems` is empty.
    pub fn from_entries(elems: &[u32]) -> Self {
        assert!(
            !elems.is_empty(),
            "vector clock needs at least one processor"
        );
        VectorClock {
            elems: elems.to_vec(),
        }
    }

    /// Number of processors this clock covers.
    pub fn len(&self) -> usize {
        self.elems.len()
    }

    /// Always false; a clock covers at least one processor.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The timestamp element for processor `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn get(&self, p: usize) -> u32 {
        self.elems[p]
    }

    /// Increments processor `p`'s element (starts a new interval for
    /// `p`) and returns the new value.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn tick(&mut self, p: usize) -> u32 {
        self.elems[p] += 1;
        self.elems[p]
    }

    /// Element-wise maximum: after `self.join(other)`, `self`
    /// dominates both inputs. This is the lattice join performed at
    /// acquire time when write notices are received.
    ///
    /// # Panics
    ///
    /// Panics if the clocks cover different processor counts.
    pub fn join(&mut self, other: &VectorClock) {
        assert_eq!(self.len(), other.len(), "clock size mismatch");
        for (a, b) in self.elems.iter_mut().zip(&other.elems) {
            *a = (*a).max(*b);
        }
    }

    /// True when every element of `self` is `>=` the corresponding
    /// element of `other` — i.e. `other` happened before or equals
    /// `self` under happens-before-1.
    pub fn dominates(&self, other: &VectorClock) -> bool {
        assert_eq!(self.len(), other.len(), "clock size mismatch");
        self.elems.iter().zip(&other.elems).all(|(a, b)| a >= b)
    }

    /// True when neither clock dominates the other (concurrent
    /// intervals, e.g. two writers under the multiple-writer protocol).
    pub fn is_concurrent_with(&self, other: &VectorClock) -> bool {
        !self.dominates(other) && !other.dominates(self)
    }

    /// Partial order under happens-before-1.
    ///
    /// Returns `None` for concurrent clocks.
    pub fn hb_cmp(&self, other: &VectorClock) -> Option<Ordering> {
        let ge = self.dominates(other);
        let le = other.dominates(self);
        match (ge, le) {
            (true, true) => Some(Ordering::Equal),
            (true, false) => Some(Ordering::Greater),
            (false, true) => Some(Ordering::Less),
            (false, false) => None,
        }
    }

    /// Sorts stamps into an order consistent with happens-before-1
    /// (a topological order): earlier-or-concurrent stamps first.
    ///
    /// Concurrent stamps are ordered by their element sum then
    /// lexicographically, which is deterministic and consistent with
    /// the partial order because a dominated clock always has a
    /// smaller or equal sum (and equal sums with domination implies
    /// equality).
    pub fn sort_hb(stamps: &mut [VectorClock]) {
        stamps.sort_by(|a, b| {
            let sa: u64 = a.elems.iter().map(|&x| x as u64).sum();
            let sb: u64 = b.elems.iter().map(|&x| x as u64).sum();
            sa.cmp(&sb).then_with(|| a.elems.cmp(&b.elems))
        });
    }
}

impl fmt::Display for VectorClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<")?;
        for (i, e) in self.elems.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{e}")?;
        }
        write!(f, ">")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_clocks_are_equal() {
        let a = VectorClock::new(3);
        let b = VectorClock::new(3);
        assert_eq!(a.hb_cmp(&b), Some(Ordering::Equal));
    }

    #[test]
    fn tick_advances_only_own_element() {
        let mut a = VectorClock::new(3);
        assert_eq!(a.tick(1), 1);
        assert_eq!(a.get(0), 0);
        assert_eq!(a.get(1), 1);
        assert_eq!(a.get(2), 0);
    }

    #[test]
    fn domination_after_tick() {
        let mut a = VectorClock::new(2);
        let b = a.clone();
        a.tick(0);
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
        assert_eq!(a.hb_cmp(&b), Some(Ordering::Greater));
        assert_eq!(b.hb_cmp(&a), Some(Ordering::Less));
    }

    #[test]
    fn concurrent_ticks_are_incomparable() {
        let base = VectorClock::new(2);
        let mut a = base.clone();
        let mut b = base;
        a.tick(0);
        b.tick(1);
        assert!(a.is_concurrent_with(&b));
        assert_eq!(a.hb_cmp(&b), None);
    }

    #[test]
    fn join_is_least_upper_bound() {
        let mut a = VectorClock::new(3);
        let mut b = VectorClock::new(3);
        a.tick(0);
        a.tick(0);
        b.tick(2);
        let mut j = a.clone();
        j.join(&b);
        assert!(j.dominates(&a));
        assert!(j.dominates(&b));
        assert_eq!(j.get(0), 2);
        assert_eq!(j.get(1), 0);
        assert_eq!(j.get(2), 1);
    }

    #[test]
    fn sort_hb_respects_partial_order() {
        let mut a = VectorClock::new(2); // <1,0>
        a.tick(0);
        let mut b = a.clone(); // <2,0>
        b.tick(0);
        let mut c = VectorClock::new(2); // <0,1>
        c.tick(1);
        let mut v = vec![b.clone(), c.clone(), a.clone()];
        VectorClock::sort_hb(&mut v);
        let pos = |x: &VectorClock| v.iter().position(|y| y == x).unwrap();
        assert!(pos(&a) < pos(&b), "a happens before b");
        // c concurrent with both: only requirement is determinism.
        let mut v2 = vec![a, c, b];
        VectorClock::sort_hb(&mut v2);
        assert_eq!(v, v2);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn mismatched_sizes_panic() {
        let a = VectorClock::new(2);
        let b = VectorClock::new(3);
        a.dominates(&b);
    }

    #[test]
    fn display_is_compact() {
        let mut a = VectorClock::new(3);
        a.tick(1);
        assert_eq!(a.to_string(), "<0,1,0>");
    }
}
