//! # rsdsm-protocol
//!
//! The lazy release consistency (LRC) machinery of a TreadMarks-style
//! software DSM, as pure data structures:
//!
//! - [`VectorClock`]: distributed timestamps and the happens-before-1
//!   partial order that orders intervals.
//! - [`Page`] / [`PageId`]: 4 KB coherence units.
//! - [`Diff`]: run-length-encoded modification records produced by the
//!   multiple-writer twin/diff mechanism.
//! - [`WriteNotice`] / [`NoticeBoard`]: invalidation bookkeeping
//!   propagated at acquire time.
//! - [`DiffCache`]: the separate heap that stores prefetched diff
//!   replies until the access that consumes them (paper §3.1).
//!
//! Everything here is deterministic and simulation-free; the runtime
//! in `rsdsm-core` drives these structures from the event loop.
//!
//! # Examples
//!
//! The core multiple-writer flow — twin, modify, diff, apply:
//!
//! ```
//! use rsdsm_protocol::{Diff, Page, VectorClock};
//!
//! // Writer twins the page, then modifies it.
//! let twin = Page::new();
//! let mut working = twin.clone();
//! working.write_u64(64, 99);
//!
//! // At release (or on a diff request) the writer encodes a diff...
//! let diff = Diff::between(&twin, &working);
//!
//! // ...which a faulting reader applies to its stale copy.
//! let mut reader_copy = Page::new();
//! diff.apply(&mut reader_copy);
//! assert_eq!(reader_copy.read_u64(64), 99);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clock;
mod diff;
mod notice;
mod page;

pub use clock::VectorClock;
pub use diff::Diff;
pub use notice::{CachedDiff, DiffCache, NoticeBoard, WriteNotice, NOTICE_WIRE_BYTES};
pub use page::{Page, PageId, PagePool, PAGE_SIZE};
