//! Twins and run-length-encoded diffs — the multiple-writer protocol.
//!
//! To avoid the ping-pong effects of false sharing, TreadMarks lets
//! several processors write the same page concurrently. Before a node
//! first writes a page in an interval it saves a clean copy (the
//! *twin*); when another node needs the modifications, the writer
//! compares the current page against the twin and run-length encodes
//! the changed bytes into a [`Diff`]. Diffs from different writers of
//! the same page touch disjoint bytes in race-free programs, so
//! applying them in any order consistent with happens-before-1 yields
//! the correct page.
//!
//! # Examples
//!
//! ```
//! use rsdsm_protocol::{Diff, Page};
//!
//! let twin = Page::new();
//! let mut current = twin.clone();
//! current.write_u64(128, 7);
//! let diff = Diff::between(&twin, &current);
//! assert!(!diff.is_empty());
//!
//! let mut other = Page::new();
//! diff.apply(&mut other);
//! assert_eq!(other.read_u64(128), 7);
//! ```

use std::fmt;

use crate::page::{Page, PAGE_SIZE};

/// One contiguous run of modified bytes inside a page. The run's
/// payload lives in [`Diff::payload`], at the position given by the
/// cumulative lengths of the preceding runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct DiffRun {
    offset: u32,
    len: u32,
}

/// A run-length-encoded record of the modifications made to one page
/// during one interval.
///
/// Storage is flat: all runs' bytes are concatenated into one payload
/// buffer, so building a diff costs O(1) allocations regardless of
/// how fragmented the page's modifications are. (The earlier layout
/// held one `Vec<u8>` per run, and on write-dense pages those
/// hundreds of small allocations dominated the diff cost.)
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Diff {
    runs: Vec<DiffRun>,
    payload: Vec<u8>,
}

/// Fixed per-run encoding overhead used for message sizing (offset +
/// length fields).
const RUN_HEADER_BYTES: usize = 4;

/// Reads the little-endian word at byte offset `i` (which must be
/// word-aligned and in bounds — both guaranteed by the scan loops).
#[inline]
fn word_at(bytes: &[u8], i: usize) -> u64 {
    u64::from_le_bytes(bytes[i..i + 8].try_into().expect("8 bytes"))
}

impl Diff {
    /// Computes the diff that transforms `twin` into `current`.
    ///
    /// The scan compares the pages a 64-bit word at a time, falling
    /// back to byte granularity only inside a changed word, so
    /// unmodified regions — the overwhelmingly common case — cost one
    /// word-compare per 8 bytes. Run boundaries are byte-precise: the
    /// diff carries exactly the changed bytes and nothing else. That
    /// precision is what makes concurrent diffs mergeable — in a
    /// race-free program different writers' changed bytes are
    /// disjoint, so their diffs commute. A diff that smuggled nearby
    /// *unchanged* twin bytes into a run (see
    /// [`Diff::between_coalesced`]) could overwrite another writer's
    /// concurrent modification with stale data when merged.
    pub fn between(twin: &Page, current: &Page) -> Self {
        Self::scan(twin, current, false)
    }

    /// Like [`Diff::between`], but coalesces changed runs separated
    /// by fewer than `RUN_HEADER_BYTES` unchanged bytes into one run:
    /// carrying up to 3 unchanged payload bytes is never larger on
    /// the wire than paying another run header, so
    /// [`Diff::encoded_bytes`] only shrinks or stays equal relative
    /// to the split encoding of [`Diff::between`].
    ///
    /// **Single-writer / snapshot contexts only.** A coalesced run
    /// writes back unchanged gap bytes at their twin-time values,
    /// which is only correct when the diff is applied to the exact
    /// base it was computed against (e.g. reconstructing a snapshot
    /// delta). It must never be used for multiple-writer coherence
    /// traffic: a gap byte can land inside a word a concurrent
    /// writer modified, and merging would resurrect the stale value.
    pub fn between_coalesced(twin: &Page, current: &Page) -> Self {
        Self::scan(twin, current, true)
    }

    /// Shared chunked scan behind [`Diff::between`] (byte-precise
    /// runs) and [`Diff::between_coalesced`] (small gaps folded in).
    fn scan(twin: &Page, current: &Page, coalesce: bool) -> Self {
        let t = twin.bytes();
        let c = current.bytes();
        let mut runs = Vec::new();
        let mut payload = Vec::new();
        let mut i = 0;
        while i < PAGE_SIZE {
            // Fast path: skip identical regions from aligned
            // positions — cache-line-sized blocks first (slice
            // equality lowers to memcmp), then word-at-a-time inside
            // the first unequal block.
            if i % 8 == 0 {
                while i + 64 <= PAGE_SIZE && t[i..i + 64] == c[i..i + 64] {
                    i += 64;
                }
                while i + 8 <= PAGE_SIZE {
                    let x = word_at(t, i) ^ word_at(c, i);
                    if x != 0 {
                        // First differing byte inside the word.
                        i += (x.trailing_zeros() / 8) as usize;
                        break;
                    }
                    i += 8;
                }
                if i >= PAGE_SIZE {
                    break;
                }
            }
            if t[i] == c[i] {
                // Unaligned leftover from a closed run; re-align.
                i += 1;
                continue;
            }
            // Changed byte at `i`: extend the run; in coalescing
            // mode, continue across unchanged gaps shorter than one
            // run header.
            let start = i;
            let mut end;
            loop {
                while i < PAGE_SIZE && t[i] != c[i] {
                    i += 1;
                }
                end = i;
                if !coalesce {
                    break;
                }
                let gap = i;
                while i < PAGE_SIZE && i - gap < RUN_HEADER_BYTES && t[i] == c[i] {
                    i += 1;
                }
                if i >= PAGE_SIZE || i - gap >= RUN_HEADER_BYTES {
                    break;
                }
            }
            runs.push(DiffRun {
                offset: start as u32,
                len: (end - start) as u32,
            });
            payload.extend_from_slice(&c[start..end]);
        }
        Diff { runs, payload }
    }

    /// The original byte-at-a-time scan, kept as the differential
    /// reference for property tests and for the speedup measurements
    /// in the criterion suite. Produces byte-for-byte the same runs
    /// as [`Diff::between`]. It also reproduces the original storage
    /// behavior — one buffer allocation per run — so timing it against
    /// [`Diff::between`] measures both the chunked scan and the flat
    /// payload layout.
    pub fn between_reference(twin: &Page, current: &Page) -> Self {
        let t = twin.bytes();
        let c = current.bytes();
        let mut old_runs: Vec<(u32, Vec<u8>)> = Vec::new();
        let mut i = 0;
        while i < PAGE_SIZE {
            if t[i] != c[i] {
                let start = i;
                while i < PAGE_SIZE && t[i] != c[i] {
                    i += 1;
                }
                old_runs.push((start as u32, c[start..i].to_vec()));
            } else {
                i += 1;
            }
        }
        Diff::from_runs(old_runs.into_iter().map(|(o, b)| (o as usize, b)))
    }

    /// A diff covering the whole page (used when a node sends a full
    /// page copy on a first-touch fetch).
    pub fn full_page(page: &Page) -> Self {
        Diff {
            runs: vec![DiffRun {
                offset: 0,
                len: PAGE_SIZE as u32,
            }],
            payload: page.bytes().to_vec(),
        }
    }

    /// Applies the recorded modifications to `page`.
    ///
    /// # Panics
    ///
    /// Panics if a run extends past the page (corrupt diff).
    pub fn apply(&self, page: &mut Page) {
        let bytes = page.bytes_mut();
        let mut pos = 0;
        for run in &self.runs {
            let start = run.offset as usize;
            let len = run.len as usize;
            let src = &self.payload[pos..pos + len];
            pos += len;
            // One range check per run; `copy_from_slice` then sees
            // equal lengths and lowers to a bare memcpy.
            let Some(dst) = bytes.get_mut(start..start + len) else {
                panic!("diff run at {start} extends past the page");
            };
            dst.copy_from_slice(src);
        }
    }

    /// True when the twin and current page were identical.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Number of modified-byte runs.
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// Number of modified bytes carried.
    pub fn payload_bytes(&self) -> usize {
        self.payload.len()
    }

    /// Size of the encoded diff on the wire, for network cost
    /// modeling: payload plus per-run framing.
    pub fn encoded_bytes(&self) -> usize {
        self.payload_bytes() + RUN_HEADER_BYTES * self.runs.len()
    }

    /// Iterates the modified-byte runs as `(offset, bytes)` pairs in
    /// ascending offset order (checkpoint serialization).
    pub fn runs(&self) -> impl Iterator<Item = (usize, &[u8])> + '_ {
        let mut pos = 0;
        self.runs.iter().map(move |r| {
            let len = r.len as usize;
            let bytes = &self.payload[pos..pos + len];
            pos += len;
            (r.offset as usize, bytes)
        })
    }

    /// Rebuilds a diff from `(offset, bytes)` runs as produced by
    /// [`Diff::runs`] (checkpoint restore). Runs must stay inside the
    /// page and be given in ascending, non-overlapping order.
    pub fn from_runs(runs: impl IntoIterator<Item = (usize, Vec<u8>)>) -> Self {
        let mut flat = Vec::new();
        let mut payload = Vec::new();
        for (offset, bytes) in runs {
            assert!(offset + bytes.len() <= PAGE_SIZE, "run extends past page");
            flat.push(DiffRun {
                offset: offset as u32,
                len: bytes.len() as u32,
            });
            payload.extend_from_slice(&bytes);
        }
        for pair in flat.windows(2) {
            assert!(
                pair[0].offset + pair[0].len <= pair[1].offset,
                "runs must be ascending and non-overlapping"
            );
        }
        Diff {
            runs: flat,
            payload,
        }
    }

    /// True if the diff modifies any byte in `lo..hi` (diagnostics).
    pub fn covers(&self, lo: usize, hi: usize) -> bool {
        self.runs.iter().any(|r| {
            let s = r.offset as usize;
            let e = s + r.len as usize;
            s < hi && lo < e
        })
    }

    /// True if this diff's modified byte ranges overlap `other`'s.
    ///
    /// Overlapping concurrent diffs indicate a data race in the
    /// application (two writers modified the same bytes between
    /// synchronizations).
    pub fn overlaps(&self, other: &Diff) -> bool {
        // Runs are produced in ascending offset order; merge-scan.
        let mut a = self.runs.iter().peekable();
        let mut b = other.runs.iter().peekable();
        while let (Some(x), Some(y)) = (a.peek(), b.peek()) {
            let (xs, xe) = (x.offset as usize, (x.offset + x.len) as usize);
            let (ys, ye) = (y.offset as usize, (y.offset + y.len) as usize);
            if xs < ye && ys < xe {
                return true;
            }
            if xe <= ys {
                a.next();
            } else {
                b.next();
            }
        }
        false
    }
}

impl fmt::Display for Diff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "diff({} runs, {} bytes)",
            self.run_count(),
            self.payload_bytes()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page_with(writes: &[(usize, u64)]) -> Page {
        let mut p = Page::new();
        for &(off, v) in writes {
            p.write_u64(off, v);
        }
        p
    }

    #[test]
    fn identical_pages_give_empty_diff() {
        let p = page_with(&[(0, 1), (8, 2)]);
        let d = Diff::between(&p, &p.clone());
        assert!(d.is_empty());
        assert_eq!(d.payload_bytes(), 0);
    }

    #[test]
    fn diff_apply_round_trip() {
        let twin = page_with(&[(0, 1)]);
        let current = page_with(&[(0, 1), (100, 9), (2000, 10)]);
        let d = Diff::between(&twin, &current);
        let mut restored = twin.clone();
        d.apply(&mut restored);
        assert_eq!(restored, current);
    }

    #[test]
    fn contiguous_writes_form_one_run() {
        let twin = Page::new();
        let mut current = Page::new();
        for off in (64..128).step_by(8) {
            current.write_u64(off, u64::MAX);
        }
        let d = Diff::between(&twin, &current);
        assert_eq!(d.run_count(), 1, "contiguous writes form one run");
        assert_eq!(d.payload_bytes(), 64);
    }

    #[test]
    fn encoded_size_includes_framing() {
        let twin = Page::new();
        let current = page_with(&[(0, 5), (1024, 6)]);
        let d = Diff::between(&twin, &current);
        assert_eq!(d.run_count(), 2);
        assert_eq!(d.encoded_bytes(), d.payload_bytes() + 8);
    }

    #[test]
    fn disjoint_concurrent_diffs_commute() {
        let twin = Page::new();
        let a = Diff::between(&twin, &page_with(&[(0, 11)]));
        let b = Diff::between(&twin, &page_with(&[(512, 22)]));
        assert!(!a.overlaps(&b));
        let mut p1 = Page::new();
        a.apply(&mut p1);
        b.apply(&mut p1);
        let mut p2 = Page::new();
        b.apply(&mut p2);
        a.apply(&mut p2);
        assert_eq!(p1, p2);
        assert_eq!(p1.read_u64(0), 11);
        assert_eq!(p1.read_u64(512), 22);
    }

    #[test]
    fn overlap_detection() {
        let twin = Page::new();
        let a = Diff::between(&twin, &page_with(&[(0, u64::MAX)]));
        let b = Diff::between(&twin, &page_with(&[(4, u64::MAX)]));
        assert!(a.overlaps(&b), "byte ranges 0..8 and 4..12 overlap");
    }

    #[test]
    fn full_page_diff_replicates_page() {
        let src = page_with(&[(0, 3), (4088, 4)]);
        let d = Diff::full_page(&src);
        let mut dst = Page::new();
        d.apply(&mut dst);
        assert_eq!(dst, src);
        assert_eq!(d.payload_bytes(), PAGE_SIZE);
    }

    #[test]
    fn zero_writes_are_detected() {
        // Writing a zero over a nonzero byte must appear in the diff.
        let twin = page_with(&[(16, u64::MAX)]);
        let mut current = twin.clone();
        current.write_u64(16, 0);
        let d = Diff::between(&twin, &current);
        assert_eq!(d.payload_bytes(), 8);
        let mut restored = twin.clone();
        d.apply(&mut restored);
        assert_eq!(restored.read_u64(16), 0);
    }

    /// Pages with changed runs separated by gaps of every width
    /// around `RUN_HEADER_BYTES`, plus word-boundary edge cases.
    fn gap_cases() -> Vec<(Page, Page)> {
        let mut cases = Vec::new();
        for gap in 0..=8usize {
            let twin = Page::new();
            let mut current = Page::new();
            // Two single changed bytes `gap` unchanged bytes apart,
            // at an unaligned offset crossing a word boundary.
            current.bytes_mut()[5] = 1;
            current.bytes_mut()[5 + 1 + gap] = 2;
            cases.push((twin, current));
        }
        // A changed run ending exactly at the page edge.
        let twin = Page::new();
        let mut current = Page::new();
        current.bytes_mut()[PAGE_SIZE - 1] = 7;
        current.bytes_mut()[PAGE_SIZE - 3] = 7;
        cases.push((twin, current));
        // Dirty first and last bytes only.
        let twin = Page::new();
        let mut current = Page::new();
        current.bytes_mut()[0] = 9;
        current.bytes_mut()[PAGE_SIZE - 1] = 9;
        cases.push((twin, current));
        cases
    }

    #[test]
    fn small_gaps_coalesce_into_one_run() {
        let twin = Page::new();
        let mut current = Page::new();
        // Two changed bytes 3 unchanged bytes apart: one coalesced
        // run of 5 in snapshot mode, two byte-precise runs for
        // coherence traffic.
        current.bytes_mut()[100] = 1;
        current.bytes_mut()[104] = 2;
        let d = Diff::between_coalesced(&twin, &current);
        assert_eq!(d.run_count(), 1);
        assert_eq!(d.payload_bytes(), 5);
        let d = Diff::between(&twin, &current);
        assert_eq!(d.run_count(), 2);
        assert_eq!(d.payload_bytes(), 2);
        // 4 unchanged bytes apart: a header is no more expensive, so
        // even snapshot mode keeps the runs split.
        let mut split = Page::new();
        split.bytes_mut()[100] = 1;
        split.bytes_mut()[105] = 2;
        let d = Diff::between_coalesced(&twin, &split);
        assert_eq!(d.run_count(), 2);
        assert_eq!(d.payload_bytes(), 2);
    }

    #[test]
    fn coalesced_encoding_never_exceeds_the_split_reference() {
        for (twin, current) in gap_cases() {
            let coalesced = Diff::between_coalesced(&twin, &current);
            let reference = Diff::between_reference(&twin, &current);
            assert!(
                coalesced.encoded_bytes() <= reference.encoded_bytes(),
                "snapshot-delta sizing grew: {} > {}",
                coalesced.encoded_bytes(),
                reference.encoded_bytes()
            );
            assert!(coalesced.run_count() <= reference.run_count());
            // Both transform the twin into the current page.
            let mut a = twin.clone();
            coalesced.apply(&mut a);
            assert_eq!(a, current);
            let mut b = twin.clone();
            reference.apply(&mut b);
            assert_eq!(b, current);
        }
    }

    #[test]
    fn coherence_diffs_stay_byte_precise() {
        // `between` must carry exactly the changed bytes — coalescing
        // would smuggle stale twin bytes into concurrent merges. The
        // gap-byte clobbering below is the failure mode: writer A's
        // changed bytes straddle a 3-byte gap that writer B wrote.
        for (twin, current) in gap_cases() {
            let precise = Diff::between(&twin, &current);
            let reference = Diff::between_reference(&twin, &current);
            assert_eq!(precise, reference, "between must match byte-precise runs");
        }
        let twin = Page::new();
        let mut a_page = Page::new();
        a_page.bytes_mut()[6] = 1;
        a_page.bytes_mut()[10] = 2; // gap bytes 7..10
        let mut b_page = Page::new();
        b_page.bytes_mut()[8] = 3; // inside A's gap
        let a = Diff::between(&twin, &a_page);
        let b = Diff::between(&twin, &b_page);
        assert!(!a.overlaps(&b), "changed bytes are disjoint");
        let mut merged = Page::new();
        b.apply(&mut merged);
        a.apply(&mut merged);
        assert_eq!(merged.bytes()[8], 3, "A's diff must not clobber B's byte");
    }

    #[test]
    fn chunked_scan_matches_reference_coverage() {
        // Dense, sparse, and word-straddling writes all round-trip.
        let twin = page_with(&[(0, 1), (2048, 2)]);
        let mut current = twin.clone();
        for off in (16..256).step_by(8) {
            current.write_u64(off, off as u64 * 3 + 1);
        }
        current.bytes_mut()[1023] = 0xAB;
        current.bytes_mut()[1025] = 0xCD;
        current.write_u64(2048, 99);
        let d = Diff::between(&twin, &current);
        let mut restored = twin.clone();
        d.apply(&mut restored);
        assert_eq!(restored, current);
    }

    #[test]
    fn display_mentions_runs_and_bytes() {
        let twin = Page::new();
        let d = Diff::between(&twin, &page_with(&[(0, u64::MAX)]));
        assert_eq!(d.to_string(), "diff(1 runs, 8 bytes)");
    }
}
