//! Twins and run-length-encoded diffs — the multiple-writer protocol.
//!
//! To avoid the ping-pong effects of false sharing, TreadMarks lets
//! several processors write the same page concurrently. Before a node
//! first writes a page in an interval it saves a clean copy (the
//! *twin*); when another node needs the modifications, the writer
//! compares the current page against the twin and run-length encodes
//! the changed bytes into a [`Diff`]. Diffs from different writers of
//! the same page touch disjoint bytes in race-free programs, so
//! applying them in any order consistent with happens-before-1 yields
//! the correct page.
//!
//! # Examples
//!
//! ```
//! use rsdsm_protocol::{Diff, Page};
//!
//! let twin = Page::new();
//! let mut current = twin.clone();
//! current.write_u64(128, 7);
//! let diff = Diff::between(&twin, &current);
//! assert!(!diff.is_empty());
//!
//! let mut other = Page::new();
//! diff.apply(&mut other);
//! assert_eq!(other.read_u64(128), 7);
//! ```

use std::fmt;

use crate::page::{Page, PAGE_SIZE};

/// One contiguous run of modified bytes inside a page.
#[derive(Debug, Clone, PartialEq, Eq)]
struct DiffRun {
    offset: u32,
    bytes: Vec<u8>,
}

/// A run-length-encoded record of the modifications made to one page
/// during one interval.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Diff {
    runs: Vec<DiffRun>,
}

/// Fixed per-run encoding overhead used for message sizing (offset +
/// length fields).
const RUN_HEADER_BYTES: usize = 4;

impl Diff {
    /// Computes the diff that transforms `twin` into `current`.
    pub fn between(twin: &Page, current: &Page) -> Self {
        let t = twin.bytes();
        let c = current.bytes();
        let mut runs = Vec::new();
        let mut i = 0;
        while i < PAGE_SIZE {
            if t[i] != c[i] {
                let start = i;
                while i < PAGE_SIZE && t[i] != c[i] {
                    i += 1;
                }
                runs.push(DiffRun {
                    offset: start as u32,
                    bytes: c[start..i].to_vec(),
                });
            } else {
                i += 1;
            }
        }
        Diff { runs }
    }

    /// A diff covering the whole page (used when a node sends a full
    /// page copy on a first-touch fetch).
    pub fn full_page(page: &Page) -> Self {
        Diff {
            runs: vec![DiffRun {
                offset: 0,
                bytes: page.bytes().to_vec(),
            }],
        }
    }

    /// Applies the recorded modifications to `page`.
    pub fn apply(&self, page: &mut Page) {
        for run in &self.runs {
            let start = run.offset as usize;
            page.bytes_mut()[start..start + run.bytes.len()].copy_from_slice(&run.bytes);
        }
    }

    /// True when the twin and current page were identical.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Number of modified-byte runs.
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// Number of modified bytes carried.
    pub fn payload_bytes(&self) -> usize {
        self.runs.iter().map(|r| r.bytes.len()).sum()
    }

    /// Size of the encoded diff on the wire, for network cost
    /// modeling: payload plus per-run framing.
    pub fn encoded_bytes(&self) -> usize {
        self.payload_bytes() + RUN_HEADER_BYTES * self.runs.len()
    }

    /// Iterates the modified-byte runs as `(offset, bytes)` pairs in
    /// ascending offset order (checkpoint serialization).
    pub fn runs(&self) -> impl Iterator<Item = (usize, &[u8])> + '_ {
        self.runs
            .iter()
            .map(|r| (r.offset as usize, r.bytes.as_slice()))
    }

    /// Rebuilds a diff from `(offset, bytes)` runs as produced by
    /// [`Diff::runs`] (checkpoint restore). Runs must stay inside the
    /// page and be given in ascending, non-overlapping order.
    pub fn from_runs(runs: impl IntoIterator<Item = (usize, Vec<u8>)>) -> Self {
        let runs: Vec<DiffRun> = runs
            .into_iter()
            .map(|(offset, bytes)| {
                assert!(offset + bytes.len() <= PAGE_SIZE, "run extends past page");
                DiffRun {
                    offset: offset as u32,
                    bytes,
                }
            })
            .collect();
        for pair in runs.windows(2) {
            assert!(
                pair[0].offset as usize + pair[0].bytes.len() <= pair[1].offset as usize,
                "runs must be ascending and non-overlapping"
            );
        }
        Diff { runs }
    }

    /// True if the diff modifies any byte in `lo..hi` (diagnostics).
    pub fn covers(&self, lo: usize, hi: usize) -> bool {
        self.runs.iter().any(|r| {
            let s = r.offset as usize;
            let e = s + r.bytes.len();
            s < hi && lo < e
        })
    }

    /// True if this diff's modified byte ranges overlap `other`'s.
    ///
    /// Overlapping concurrent diffs indicate a data race in the
    /// application (two writers modified the same bytes between
    /// synchronizations).
    pub fn overlaps(&self, other: &Diff) -> bool {
        // Runs are produced in ascending offset order; merge-scan.
        let mut a = self.runs.iter().peekable();
        let mut b = other.runs.iter().peekable();
        while let (Some(x), Some(y)) = (a.peek(), b.peek()) {
            let (xs, xe) = (x.offset as usize, x.offset as usize + x.bytes.len());
            let (ys, ye) = (y.offset as usize, y.offset as usize + y.bytes.len());
            if xs < ye && ys < xe {
                return true;
            }
            if xe <= ys {
                a.next();
            } else {
                b.next();
            }
        }
        false
    }
}

impl fmt::Display for Diff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "diff({} runs, {} bytes)",
            self.run_count(),
            self.payload_bytes()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page_with(writes: &[(usize, u64)]) -> Page {
        let mut p = Page::new();
        for &(off, v) in writes {
            p.write_u64(off, v);
        }
        p
    }

    #[test]
    fn identical_pages_give_empty_diff() {
        let p = page_with(&[(0, 1), (8, 2)]);
        let d = Diff::between(&p, &p.clone());
        assert!(d.is_empty());
        assert_eq!(d.payload_bytes(), 0);
    }

    #[test]
    fn diff_apply_round_trip() {
        let twin = page_with(&[(0, 1)]);
        let current = page_with(&[(0, 1), (100, 9), (2000, 10)]);
        let d = Diff::between(&twin, &current);
        let mut restored = twin.clone();
        d.apply(&mut restored);
        assert_eq!(restored, current);
    }

    #[test]
    fn runs_are_coalesced() {
        let twin = Page::new();
        let mut current = Page::new();
        for off in (64..128).step_by(8) {
            current.write_u64(off, u64::MAX);
        }
        let d = Diff::between(&twin, &current);
        assert_eq!(d.run_count(), 1, "contiguous writes form one run");
        assert_eq!(d.payload_bytes(), 64);
    }

    #[test]
    fn encoded_size_includes_framing() {
        let twin = Page::new();
        let current = page_with(&[(0, 5), (1024, 6)]);
        let d = Diff::between(&twin, &current);
        assert_eq!(d.run_count(), 2);
        assert_eq!(d.encoded_bytes(), d.payload_bytes() + 8);
    }

    #[test]
    fn disjoint_concurrent_diffs_commute() {
        let twin = Page::new();
        let a = Diff::between(&twin, &page_with(&[(0, 11)]));
        let b = Diff::between(&twin, &page_with(&[(512, 22)]));
        assert!(!a.overlaps(&b));
        let mut p1 = Page::new();
        a.apply(&mut p1);
        b.apply(&mut p1);
        let mut p2 = Page::new();
        b.apply(&mut p2);
        a.apply(&mut p2);
        assert_eq!(p1, p2);
        assert_eq!(p1.read_u64(0), 11);
        assert_eq!(p1.read_u64(512), 22);
    }

    #[test]
    fn overlap_detection() {
        let twin = Page::new();
        let a = Diff::between(&twin, &page_with(&[(0, u64::MAX)]));
        let b = Diff::between(&twin, &page_with(&[(4, u64::MAX)]));
        assert!(a.overlaps(&b), "byte ranges 0..8 and 4..12 overlap");
    }

    #[test]
    fn full_page_diff_replicates_page() {
        let src = page_with(&[(0, 3), (4088, 4)]);
        let d = Diff::full_page(&src);
        let mut dst = Page::new();
        d.apply(&mut dst);
        assert_eq!(dst, src);
        assert_eq!(d.payload_bytes(), PAGE_SIZE);
    }

    #[test]
    fn zero_writes_are_detected() {
        // Writing a zero over a nonzero byte must appear in the diff.
        let twin = page_with(&[(16, u64::MAX)]);
        let mut current = twin.clone();
        current.write_u64(16, 0);
        let d = Diff::between(&twin, &current);
        assert_eq!(d.payload_bytes(), 8);
        let mut restored = twin.clone();
        d.apply(&mut restored);
        assert_eq!(restored.read_u64(16), 0);
    }

    #[test]
    fn display_mentions_runs_and_bytes() {
        let twin = Page::new();
        let d = Diff::between(&twin, &page_with(&[(0, u64::MAX)]));
        assert_eq!(d.to_string(), "diff(1 runs, 8 bytes)");
    }
}
