//! Write notices, the per-node notice board, and the prefetch diff cache.
//!
//! When a processor releases a synchronization object, it piggybacks
//! *write notices* — (page, writer, interval timestamp) triples — on
//! the reply, telling the acquirer which pages were modified in
//! intervals the acquirer has not yet seen. The acquirer invalidates
//! those pages; a later access faults and fetches the corresponding
//! diffs from their writers.
//!
//! [`NoticeBoard`] is a node's record of the notices it knows about
//! and which of them have already been satisfied by an applied diff.
//! [`DiffCache`] is the separate heap the paper's prefetch
//! implementation stores diff replies in ("a cache of remote diff
//! replies", §3.1) until the page is actually accessed.

use std::collections::HashMap;
use std::sync::Arc;

use crate::clock::VectorClock;
use crate::diff::Diff;
use crate::page::PageId;

/// Notification that `origin` wrote `page` during the interval
/// stamped `stamp`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteNotice {
    /// The modified page.
    pub page: PageId,
    /// The processor that performed the writes.
    pub origin: usize,
    /// Vector timestamp of the writer's interval.
    pub stamp: VectorClock,
}

/// Wire-size estimate of one encoded write notice, for message sizing.
pub const NOTICE_WIRE_BYTES: usize = 24;

#[derive(Debug, Clone)]
struct NoticeEntry {
    origin: usize,
    stamp: VectorClock,
    applied: bool,
}

/// A node's record of known write notices, per page.
///
/// Invariant: at most one entry per (page, origin, stamp).
#[derive(Debug, Clone, Default)]
pub struct NoticeBoard {
    by_page: HashMap<PageId, Vec<NoticeEntry>>,
}

impl NoticeBoard {
    /// An empty board.
    pub fn new() -> Self {
        NoticeBoard::default()
    }

    /// Records a notice received at acquire time (or piggybacked on a
    /// reply). Duplicates are ignored. Returns true if the notice was
    /// new — the caller should then invalidate the page.
    pub fn record(&mut self, notice: WriteNotice) -> bool {
        let entries = self.by_page.entry(notice.page).or_default();
        if entries
            .iter()
            .any(|e| e.origin == notice.origin && e.stamp == notice.stamp)
        {
            return false;
        }
        entries.push(NoticeEntry {
            origin: notice.origin,
            stamp: notice.stamp,
            applied: false,
        });
        true
    }

    /// The distinct origins that have pending (unapplied)
    /// modifications to `page`, with the stamps pending per origin.
    pub fn pending_by_origin(&self, page: PageId) -> Vec<(usize, Vec<VectorClock>)> {
        let mut out: Vec<(usize, Vec<VectorClock>)> = Vec::new();
        if let Some(entries) = self.by_page.get(&page) {
            for e in entries.iter().filter(|e| !e.applied) {
                match out.iter_mut().find(|(o, _)| *o == e.origin) {
                    Some((_, stamps)) => stamps.push(e.stamp.clone()),
                    None => out.push((e.origin, vec![e.stamp.clone()])),
                }
            }
        }
        out.sort_by_key(|(o, _)| *o);
        out
    }

    /// True if any notice for `page` lacks an applied diff.
    pub fn has_pending(&self, page: PageId) -> bool {
        self.by_page
            .get(&page)
            .is_some_and(|es| es.iter().any(|e| !e.applied))
    }

    /// Count of pending notices for `page`.
    pub fn pending_count(&self, page: PageId) -> usize {
        self.by_page
            .get(&page)
            .map_or(0, |es| es.iter().filter(|e| !e.applied).count())
    }

    /// Marks the notice (page, origin, stamp) as satisfied by an
    /// applied diff. Unknown notices are recorded as applied, which
    /// happens when a diff arrives (e.g. via prefetch) before its
    /// notice propagates.
    pub fn mark_applied(&mut self, page: PageId, origin: usize, stamp: &VectorClock) {
        let entries = self.by_page.entry(page).or_default();
        match entries
            .iter_mut()
            .find(|e| e.origin == origin && e.stamp == *stamp)
        {
            Some(e) => e.applied = true,
            None => entries.push(NoticeEntry {
                origin,
                stamp: stamp.clone(),
                applied: true,
            }),
        }
    }

    /// Total notices recorded for `page` (applied or not).
    pub fn total_count(&self, page: PageId) -> usize {
        self.by_page.get(&page).map_or(0, Vec::len)
    }

    /// Whether the diff for (page, origin, stamp) has already been
    /// applied locally. Re-applying an old diff after newer ones is
    /// unsound (diffs are byte-sparse), so consumers check this before
    /// applying cached data.
    pub fn is_applied(&self, page: PageId, origin: usize, stamp: &VectorClock) -> bool {
        self.by_page.get(&page).is_some_and(|es| {
            es.iter()
                .any(|e| e.applied && e.origin == origin && e.stamp == *stamp)
        })
    }

    /// The (origin, stamp) pairs whose diffs have been applied into
    /// the local copy of `page` — sent along with base copies so a
    /// first-touch fetcher knows what the copy already incorporates.
    pub fn applied_for(&self, page: PageId) -> Vec<(usize, VectorClock)> {
        self.by_page.get(&page).map_or_else(Vec::new, |es| {
            es.iter()
                .filter(|e| e.applied)
                .map(|e| (e.origin, e.stamp.clone()))
                .collect()
        })
    }

    /// Drops applied entries older than `horizon` on every page —
    /// the bookkeeping side of TreadMarks garbage collection.
    /// Returns the number of entries discarded.
    pub fn garbage_collect(&mut self, horizon: &VectorClock) -> usize {
        let mut freed = 0;
        for entries in self.by_page.values_mut() {
            let before = entries.len();
            entries.retain(|e| !(e.applied && horizon.dominates(&e.stamp)));
            freed += before - entries.len();
        }
        self.by_page.retain(|_, es| !es.is_empty());
        freed
    }
}

/// A cached diff reply waiting to be applied at access time.
#[derive(Debug, Clone)]
pub struct CachedDiff {
    /// The writer the diff came from.
    pub origin: usize,
    /// Timestamp of the writer's interval.
    pub stamp: VectorClock,
    /// The modifications, shared zero-copy with the transport frame
    /// that carried them (and possibly the writer's own record).
    pub diff: Arc<Diff>,
}

/// The separate heap holding prefetched diff replies ("a cache of
/// remote diff replies", §3.1) until the faulting access applies them.
#[derive(Debug, Clone, Default)]
pub struct DiffCache {
    by_page: HashMap<PageId, Vec<CachedDiff>>,
    bytes: usize,
}

impl DiffCache {
    /// An empty cache.
    pub fn new() -> Self {
        DiffCache::default()
    }

    /// Stores a prefetched diff for `page`. Duplicate (origin, stamp)
    /// entries are ignored.
    pub fn insert(&mut self, page: PageId, cached: CachedDiff) {
        let entry = self.by_page.entry(page).or_default();
        if entry
            .iter()
            .any(|c| c.origin == cached.origin && c.stamp == cached.stamp)
        {
            return;
        }
        self.bytes += cached.diff.encoded_bytes();
        entry.push(cached);
    }

    /// Removes and returns all cached diffs for `page`, ordered
    /// consistently with happens-before-1 so they can be applied
    /// directly.
    pub fn take(&mut self, page: PageId) -> Vec<CachedDiff> {
        let mut diffs = self.by_page.remove(&page).unwrap_or_default();
        self.bytes -= diffs.iter().map(|c| c.diff.encoded_bytes()).sum::<usize>();
        // Order by the same deterministic topological key as
        // VectorClock::sort_hb.
        diffs.sort_by(|a, b| {
            let sa: u64 = (0..a.stamp.len()).map(|i| a.stamp.get(i) as u64).sum();
            let sb: u64 = (0..b.stamp.len()).map(|i| b.stamp.get(i) as u64).sum();
            sa.cmp(&sb).then_with(|| {
                (0..a.stamp.len())
                    .map(|i| a.stamp.get(i))
                    .cmp((0..b.stamp.len()).map(|i| b.stamp.get(i)))
            })
        });
        diffs
    }

    /// Whether any diff for `page` is cached.
    pub fn contains_page(&self, page: PageId) -> bool {
        self.by_page.contains_key(&page)
    }

    /// Whether the diff for (page, origin, stamp) is cached.
    pub fn has_diff(&self, page: PageId, origin: usize, stamp: &VectorClock) -> bool {
        self.by_page
            .get(&page)
            .is_some_and(|cs| cs.iter().any(|c| c.origin == origin && c.stamp == *stamp))
    }

    /// Number of cached diffs across all pages.
    pub fn len(&self) -> usize {
        self.by_page.values().map(Vec::len).sum()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.by_page.is_empty()
    }

    /// Total encoded bytes held (the storage the paper notes relieves
    /// garbage-collection pressure in LU-NCONT, §3.3.2 footnote).
    pub fn encoded_bytes(&self) -> usize {
        self.bytes
    }

    /// Discards everything (e.g. at a garbage-collection point).
    pub fn clear(&mut self) {
        self.by_page.clear();
        self.bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::Page;

    fn stamp(n: usize, ticks: &[usize]) -> VectorClock {
        let mut vc = VectorClock::new(n);
        for &p in ticks {
            vc.tick(p);
        }
        vc
    }

    fn notice(page: u32, origin: usize, s: &VectorClock) -> WriteNotice {
        WriteNotice {
            page: PageId::new(page),
            origin,
            stamp: s.clone(),
        }
    }

    #[test]
    fn record_dedupes() {
        let mut board = NoticeBoard::new();
        let s = stamp(2, &[0]);
        assert!(board.record(notice(1, 0, &s)));
        assert!(!board.record(notice(1, 0, &s)));
        assert_eq!(board.total_count(PageId::new(1)), 1);
    }

    #[test]
    fn pending_grouped_by_origin() {
        let mut board = NoticeBoard::new();
        board.record(notice(1, 0, &stamp(2, &[0])));
        board.record(notice(1, 0, &stamp(2, &[0, 0])));
        board.record(notice(1, 1, &stamp(2, &[1])));
        let pending = board.pending_by_origin(PageId::new(1));
        assert_eq!(pending.len(), 2);
        assert_eq!(pending[0].0, 0);
        assert_eq!(pending[0].1.len(), 2);
        assert_eq!(pending[1].0, 1);
    }

    #[test]
    fn mark_applied_clears_pending() {
        let mut board = NoticeBoard::new();
        let s = stamp(2, &[0]);
        board.record(notice(3, 0, &s));
        assert!(board.has_pending(PageId::new(3)));
        board.mark_applied(PageId::new(3), 0, &s);
        assert!(!board.has_pending(PageId::new(3)));
        assert_eq!(board.pending_count(PageId::new(3)), 0);
    }

    #[test]
    fn diff_applied_before_notice_registers_as_applied() {
        let mut board = NoticeBoard::new();
        let s = stamp(2, &[1]);
        board.mark_applied(PageId::new(9), 1, &s);
        // The notice arriving later is a duplicate of an applied entry.
        assert!(!board.record(notice(9, 1, &s)));
        assert!(!board.has_pending(PageId::new(9)));
    }

    #[test]
    fn garbage_collect_drops_old_applied_entries() {
        let mut board = NoticeBoard::new();
        let old = stamp(2, &[0]);
        let newer = stamp(2, &[0, 0, 1]);
        board.record(notice(1, 0, &old));
        board.record(notice(1, 0, &newer));
        board.mark_applied(PageId::new(1), 0, &old);
        let mut horizon = stamp(2, &[0, 0]);
        horizon.join(&stamp(2, &[1]));
        let freed = board.garbage_collect(&horizon);
        assert_eq!(freed, 1);
        assert_eq!(board.total_count(PageId::new(1)), 1);
    }

    #[test]
    fn diff_cache_round_trip() {
        let mut cache = DiffCache::new();
        let mut page = Page::new();
        page.write_u64(0, 7);
        let d = Arc::new(Diff::full_page(&page));
        cache.insert(
            PageId::new(2),
            CachedDiff {
                origin: 1,
                stamp: stamp(2, &[1]),
                diff: Arc::clone(&d),
            },
        );
        assert!(cache.contains_page(PageId::new(2)));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.encoded_bytes(), d.encoded_bytes());
        let taken = cache.take(PageId::new(2));
        assert_eq!(taken.len(), 1);
        assert!(cache.is_empty());
        assert_eq!(cache.encoded_bytes(), 0);
    }

    #[test]
    fn diff_cache_orders_by_happens_before() {
        let mut cache = DiffCache::new();
        let early = stamp(2, &[0]);
        let late = stamp(2, &[0, 0]);
        let d = Arc::new(Diff::default());
        cache.insert(
            PageId::new(1),
            CachedDiff {
                origin: 0,
                stamp: late.clone(),
                diff: Arc::clone(&d),
            },
        );
        cache.insert(
            PageId::new(1),
            CachedDiff {
                origin: 0,
                stamp: early.clone(),
                diff: d,
            },
        );
        let taken = cache.take(PageId::new(1));
        assert_eq!(taken[0].stamp, early);
        assert_eq!(taken[1].stamp, late);
    }

    #[test]
    fn diff_cache_dedupes() {
        let mut cache = DiffCache::new();
        let s = stamp(2, &[0]);
        for _ in 0..2 {
            cache.insert(
                PageId::new(1),
                CachedDiff {
                    origin: 0,
                    stamp: s.clone(),
                    diff: Arc::new(Diff::default()),
                },
            );
        }
        assert_eq!(cache.len(), 1);
    }
}
