//! Property-based tests of the LRC protocol invariants.

use proptest::prelude::*;
use rsdsm_protocol::{Diff, NoticeBoard, Page, PageId, VectorClock, WriteNotice, PAGE_SIZE};

/// Arbitrary page contents described sparsely as (offset, value) byte writes.
fn sparse_writes() -> impl Strategy<Value = Vec<(usize, u8)>> {
    prop::collection::vec((0..PAGE_SIZE, any::<u8>()), 0..64)
}

fn page_from(writes: &[(usize, u8)]) -> Page {
    let mut p = Page::new();
    for &(off, v) in writes {
        p.bytes_mut()[off] = v;
    }
    p
}

proptest! {
    /// apply(between(twin, current), twin) == current — always.
    #[test]
    fn diff_round_trip(twin_w in sparse_writes(), cur_w in sparse_writes()) {
        let twin = page_from(&twin_w);
        let mut current = twin.clone();
        for &(off, v) in &cur_w {
            current.bytes_mut()[off] = v;
        }
        let diff = Diff::between(&twin, &current);
        let mut restored = twin.clone();
        diff.apply(&mut restored);
        prop_assert_eq!(restored, current);
    }

    /// A diff is idempotent: applying it twice equals applying once.
    #[test]
    fn diff_idempotent(twin_w in sparse_writes(), cur_w in sparse_writes()) {
        let twin = page_from(&twin_w);
        let mut current = twin.clone();
        for &(off, v) in &cur_w {
            current.bytes_mut()[off] = v;
        }
        let diff = Diff::between(&twin, &current);
        let mut once = twin.clone();
        diff.apply(&mut once);
        let mut twice = once.clone();
        diff.apply(&mut twice);
        prop_assert_eq!(once, twice);
    }

    /// Diffs from writers touching disjoint regions commute — the
    /// multiple-writer protocol's correctness condition.
    #[test]
    fn disjoint_diffs_commute(
        a_writes in prop::collection::vec((0..PAGE_SIZE / 2, any::<u8>()), 1..32),
        b_writes in prop::collection::vec((PAGE_SIZE / 2..PAGE_SIZE, any::<u8>()), 1..32),
    ) {
        let twin = Page::new();
        let pa = page_from(&a_writes);
        let pb = page_from(&b_writes);
        let da = Diff::between(&twin, &pa);
        let db = Diff::between(&twin, &pb);
        prop_assert!(!da.overlaps(&db));
        let mut ab = Page::new();
        da.apply(&mut ab);
        db.apply(&mut ab);
        let mut ba = Page::new();
        db.apply(&mut ba);
        da.apply(&mut ba);
        prop_assert_eq!(ab, ba);
    }

    /// Encoded size is payload plus per-run framing, and never
    /// exceeds a full-page diff's size plus framing.
    #[test]
    fn diff_size_bounds(cur_w in sparse_writes()) {
        let twin = Page::new();
        let current = page_from(&cur_w);
        let diff = Diff::between(&twin, &current);
        prop_assert!(diff.payload_bytes() <= PAGE_SIZE);
        prop_assert!(diff.encoded_bytes() >= diff.payload_bytes());
        prop_assert!(diff.run_count() <= diff.payload_bytes().max(1));
    }

    /// Vector clock join is commutative, associative, and idempotent
    /// (a semilattice), and dominates both operands.
    #[test]
    fn clock_join_lattice(
        a in prop::collection::vec(0u32..64, 4),
        b in prop::collection::vec(0u32..64, 4),
        c in prop::collection::vec(0u32..64, 4),
    ) {
        let mk = |v: &[u32]| {
            let mut vc = VectorClock::new(v.len());
            for (i, &n) in v.iter().enumerate() {
                for _ in 0..n {
                    vc.tick(i);
                }
            }
            vc
        };
        let (ca, cb, cc) = (mk(&a), mk(&b), mk(&c));

        // Commutative.
        let mut ab = ca.clone();
        ab.join(&cb);
        let mut ba = cb.clone();
        ba.join(&ca);
        prop_assert_eq!(&ab, &ba);

        // Dominates both operands.
        prop_assert!(ab.dominates(&ca));
        prop_assert!(ab.dominates(&cb));

        // Associative.
        let mut ab_c = ab.clone();
        ab_c.join(&cc);
        let mut bc = cb.clone();
        bc.join(&cc);
        let mut a_bc = ca.clone();
        a_bc.join(&bc);
        prop_assert_eq!(ab_c, a_bc);

        // Idempotent.
        let mut aa = ca.clone();
        aa.join(&ca);
        prop_assert_eq!(aa, ca);
    }

    /// hb_cmp is antisymmetric and consistent with dominates.
    #[test]
    fn clock_partial_order_consistency(
        a in prop::collection::vec(0u32..16, 3),
        b in prop::collection::vec(0u32..16, 3),
    ) {
        let mk = |v: &[u32]| {
            let mut vc = VectorClock::new(v.len());
            for (i, &n) in v.iter().enumerate() {
                for _ in 0..n {
                    vc.tick(i);
                }
            }
            vc
        };
        let (ca, cb) = (mk(&a), mk(&b));
        use std::cmp::Ordering::*;
        match ca.hb_cmp(&cb) {
            Some(Equal) => prop_assert_eq!(&ca, &cb),
            Some(Greater) => {
                prop_assert!(ca.dominates(&cb));
                prop_assert_eq!(cb.hb_cmp(&ca), Some(Less));
            }
            Some(Less) => {
                prop_assert!(cb.dominates(&ca));
                prop_assert_eq!(cb.hb_cmp(&ca), Some(Greater));
            }
            None => {
                prop_assert!(ca.is_concurrent_with(&cb));
                prop_assert_eq!(cb.hb_cmp(&ca), None);
            }
        }
    }

    /// sort_hb produces a valid topological order of the partial order.
    #[test]
    fn sort_hb_is_topological(
        clocks in prop::collection::vec(prop::collection::vec(0u32..8, 3), 1..12),
    ) {
        let mut stamps: Vec<VectorClock> = clocks
            .iter()
            .map(|v| {
                let mut vc = VectorClock::new(3);
                for (i, &n) in v.iter().enumerate() {
                    for _ in 0..n {
                        vc.tick(i);
                    }
                }
                vc
            })
            .collect();
        VectorClock::sort_hb(&mut stamps);
        for i in 0..stamps.len() {
            for j in (i + 1)..stamps.len() {
                // A later element must never strictly precede an earlier one.
                prop_assert!(
                    !(stamps[j].dominates(&stamps[i]) && stamps[j] != stamps[i])
                        || stamps[i].hb_cmp(&stamps[j]).is_none()
                        || stamps[i] == stamps[j]
                        || !stamps[i].dominates(&stamps[j])
                );
                let strictly_before_j =
                    stamps[j].dominates(&stamps[i]) && stamps[i] != stamps[j];
                let strictly_before_i =
                    stamps[i].dominates(&stamps[j]) && stamps[i] != stamps[j];
                // i comes first, so j must not strictly precede i.
                prop_assert!(!strictly_before_i || !strictly_before_j);
                prop_assert!(
                    !strictly_before_i,
                    "element {} strictly precedes element {} but sorted after it",
                    j,
                    i
                );
            }
        }
    }

    /// The chunked `between` and the scalar `between_reference` agree
    /// after apply: both reconstruct `current` exactly from the twin.
    #[test]
    fn chunked_between_matches_reference_apply(
        twin_w in sparse_writes(),
        cur_w in sparse_writes(),
    ) {
        let twin = page_from(&twin_w);
        let mut current = twin.clone();
        for &(off, v) in &cur_w {
            current.bytes_mut()[off] = v;
        }
        let fast = Diff::between(&twin, &current);
        let reference = Diff::between_reference(&twin, &current);
        let mut via_fast = twin.clone();
        fast.apply(&mut via_fast);
        let mut via_reference = twin.clone();
        reference.apply(&mut via_reference);
        prop_assert_eq!(&via_fast, &current);
        prop_assert_eq!(&via_reference, &current);
        // Coherence diffs stay byte-precise: identical runs, so the
        // paper-visible wire size is unchanged by the chunked scan.
        prop_assert_eq!(&fast, &reference);
        // The snapshot-only coalesced variant may merge nearby runs
        // but must never grow the encoding, and must still
        // reconstruct `current` when applied to its own base.
        let coalesced = Diff::between_coalesced(&twin, &current);
        prop_assert!(coalesced.encoded_bytes() <= fast.encoded_bytes());
        prop_assert!(coalesced.run_count() <= fast.run_count());
        let mut via_coalesced = twin.clone();
        coalesced.apply(&mut via_coalesced);
        prop_assert_eq!(&via_coalesced, &current);
    }

    /// The bounds-check-eliding u64 accessors are byte-identical to
    /// naive indexed forms.
    #[test]
    fn u64_accessors_match_indexed_reference(
        writes in prop::collection::vec((0..PAGE_SIZE - 7, any::<u64>()), 0..32),
        probes in prop::collection::vec(0..PAGE_SIZE - 7, 0..32),
    ) {
        let mut fast = Page::new();
        let mut reference = Page::new();
        for &(off, v) in &writes {
            fast.write_u64(off, v);
            // Reference form: plain indexing, the pre-optimization code.
            reference.bytes_mut()[off..off + 8].copy_from_slice(&v.to_le_bytes());
        }
        prop_assert_eq!(&fast, &reference);
        for &off in &probes {
            let direct =
                u64::from_le_bytes(reference.bytes()[off..off + 8].try_into().unwrap());
            prop_assert_eq!(fast.read_u64(off), direct);
        }
    }

    /// `Diff::apply`'s single-range-check form matches a per-byte
    /// indexed reference apply.
    #[test]
    fn apply_matches_indexed_reference(
        twin_w in sparse_writes(),
        cur_w in sparse_writes(),
    ) {
        let twin = page_from(&twin_w);
        let mut current = twin.clone();
        for &(off, v) in &cur_w {
            current.bytes_mut()[off] = v;
        }
        let diff = Diff::between(&twin, &current);
        let mut fast = twin.clone();
        diff.apply(&mut fast);
        let mut reference = twin.clone();
        for (off, bytes) in diff.runs() {
            for (k, &b) in bytes.iter().enumerate() {
                reference.bytes_mut()[off + k] = b;
            }
        }
        prop_assert_eq!(fast, reference);
    }

    /// NoticeBoard: recording then applying leaves nothing pending,
    /// regardless of order and duplicates.
    #[test]
    fn notice_board_record_apply(
        ops in prop::collection::vec((0u32..4, 0usize..3, 1u32..5), 1..40),
    ) {
        let mut board = NoticeBoard::new();
        let mut recorded = Vec::new();
        for &(page, origin, ticks) in &ops {
            let mut stamp = VectorClock::new(3);
            for _ in 0..ticks {
                stamp.tick(origin);
            }
            board.record(WriteNotice {
                page: PageId::new(page),
                origin,
                stamp: stamp.clone(),
            });
            recorded.push((PageId::new(page), origin, stamp));
        }
        for (page, origin, stamp) in &recorded {
            board.mark_applied(*page, *origin, stamp);
        }
        for &(page, ..) in &ops {
            prop_assert!(!board.has_pending(PageId::new(page)));
        }
    }
}
