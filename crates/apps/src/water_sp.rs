//! WATER-SP: O(n) spatial molecular dynamics (SPLASH-2, simplified
//! potential).
//!
//! Molecules live in a grid of cells; forces act only between
//! molecules in neighboring cells, found by chasing per-cell linked
//! lists stored in shared memory (`head` and `next` index arrays) —
//! the pointer-based structure that defeats ordinary prefetch
//! scheduling. Prefetches therefore use the paper's *history* scheme
//! (Luk & Mowry, §3.2): a first traversal pass records the pointers
//! in a private array, and the compute pass prefetches by
//! dereferencing that array one molecule ahead.

use rsdsm_core::{BarrierId, DsmCtx, DsmProgram, Heap, HomePolicy, LockId, SharedVec, VerifyCtx};
use rsdsm_simnet::SimDuration;

use crate::block_range;
use crate::util::{gen_f64, BarrierCycle};

/// Simulated cost per pair-force evaluation.
const NS_PER_PAIR: u64 = 21000;
/// Elements reserved per molecule in each particle array (a real
/// water molecule record is hundreds of bytes; see WATER-NSQ).
const STRIDE: usize = 32;
/// Simulated cost per list-link traversal.
const NS_PER_LINK: u64 = 400;
/// Integration cost per molecule.
const NS_PER_INTEGRATE: u64 = 2000;
/// Domain side length.
const BOX: f64 = 4.0;
/// Interaction cutoff radius.
const CUTOFF: f64 = 1.0;
/// Global potential-energy lock.
const ENERGY_LOCK: LockId = LockId(199);

/// Byte size of a DSM page (for app-side prefetch deduplication).
fn rsdsm_protocol_page_size() -> usize {
    rsdsm_core::PAGE_SIZE
}

fn pair_force(dx: f64, dy: f64, dz: f64) -> [f64; 3] {
    let r2 = dx * dx + dy * dy + dz * dz;
    let denom = (r2 + 0.05) * (r2 + 0.05);
    let k = 1e-3 / denom;
    [k * dx, k * dy, k * dz]
}

fn pair_energy(dx: f64, dy: f64, dz: f64) -> f64 {
    let r2 = dx * dx + dy * dy + dz * dz;
    5e-4 / (r2 + 0.05)
}

/// Spatial O(n) molecular dynamics over `n` molecules.
#[derive(Debug, Clone)]
pub struct WaterSpApp {
    n: usize,
    steps: usize,
    cells_per_side: usize,
}

impl WaterSpApp {
    /// A run of `n` molecules for `steps` steps.
    ///
    /// # Panics
    ///
    /// Panics if `n < 8` or `steps == 0`.
    pub fn new(n: usize, steps: usize) -> Self {
        assert!(n >= 8, "need at least 8 molecules");
        assert!(steps > 0, "need at least one step");
        WaterSpApp {
            n,
            steps,
            cells_per_side: (BOX / CUTOFF) as usize,
        }
    }

    /// The paper's size: 4096 molecules, 9 steps.
    pub fn paper_scale() -> Self {
        WaterSpApp::new(4096, 9)
    }

    /// Scaled-down default.
    pub fn default_scale() -> Self {
        WaterSpApp::new(512, 3)
    }

    fn num_cells(&self) -> usize {
        self.cells_per_side.pow(3)
    }

    fn initial_pos(&self, i: usize, axis: usize) -> f64 {
        gen_f64(0x59A7 | (axis as u64) << 32, i) * BOX
    }

    fn initial_vel(&self, i: usize, axis: usize) -> f64 {
        (gen_f64(0x5BEE | (axis as u64) << 32, i) - 0.5) * 0.01
    }

    fn cell_of(&self, x: f64, y: f64, z: f64) -> usize {
        let ncs = self.cells_per_side;
        let clamp = |v: f64| ((v / CUTOFF) as isize).clamp(0, ncs as isize - 1) as usize;
        (clamp(x) * ncs + clamp(y)) * ncs + clamp(z)
    }

    fn neighbor_cells(&self, cell: usize) -> Vec<usize> {
        let ncs = self.cells_per_side as isize;
        let z = (cell % ncs as usize) as isize;
        let y = ((cell / ncs as usize) % ncs as usize) as isize;
        let x = (cell / (ncs * ncs) as usize) as isize;
        let mut out = Vec::with_capacity(27);
        for dx in -1..=1 {
            for dy in -1..=1 {
                for dz in -1..=1 {
                    let (nx, ny, nz) = (x + dx, y + dy, z + dz);
                    if (0..ncs).contains(&nx) && (0..ncs).contains(&ny) && (0..ncs).contains(&nz) {
                        out.push(((nx * ncs + ny) * ncs + nz) as usize);
                    }
                }
            }
        }
        out
    }

    /// Sequential reference with the same cell structure. List
    /// insertion order is by ascending molecule index.
    fn reference(&self) -> Vec<f64> {
        let n = self.n;
        let mut pos: Vec<f64> = (0..3 * n).map(|x| self.initial_pos(x / 3, x % 3)).collect();
        let mut vel: Vec<f64> = (0..3 * n).map(|x| self.initial_vel(x / 3, x % 3)).collect();
        for _ in 0..self.steps {
            let mut cells: Vec<Vec<usize>> = vec![Vec::new(); self.num_cells()];
            for i in 0..n {
                cells[self.cell_of(pos[3 * i], pos[3 * i + 1], pos[3 * i + 2])].push(i);
            }
            let mut f = vec![0.0f64; 3 * n];
            for i in 0..n {
                let c = self.cell_of(pos[3 * i], pos[3 * i + 1], pos[3 * i + 2]);
                for nc in self.neighbor_cells(c) {
                    for &j in &cells[nc] {
                        if j == i {
                            continue;
                        }
                        let dx = pos[3 * i] - pos[3 * j];
                        let dy = pos[3 * i + 1] - pos[3 * j + 1];
                        let dz = pos[3 * i + 2] - pos[3 * j + 2];
                        if dx * dx + dy * dy + dz * dz <= CUTOFF * CUTOFF {
                            let fv = pair_force(dx, dy, dz);
                            for a in 0..3 {
                                f[3 * i + a] += fv[a];
                            }
                        }
                    }
                }
            }
            for k in 0..3 * n {
                vel[k] += f[k];
                pos[k] += vel[k];
            }
        }
        pos
    }
}

/// Shared handles: particle state plus the cell linked lists.
#[derive(Debug, Clone, Copy)]
pub struct WaterSpHandles {
    pos: SharedVec<f64>,
    vel: SharedVec<f64>,
    force: SharedVec<f64>,
    head: SharedVec<i32>,
    next: SharedVec<i32>,
    cell_id: SharedVec<i32>,
    energy: SharedVec<f64>,
}

impl DsmProgram for WaterSpApp {
    type Handles = WaterSpHandles;

    fn name(&self) -> String {
        "WATER-SP".into()
    }

    fn allocate(&self, heap: &mut Heap) -> Self::Handles {
        WaterSpHandles {
            pos: heap.alloc(STRIDE * self.n, HomePolicy::Blocked),
            vel: heap.alloc(STRIDE * self.n, HomePolicy::Blocked),
            force: heap.alloc(STRIDE * self.n, HomePolicy::Blocked),
            head: heap.alloc(self.num_cells(), HomePolicy::RoundRobin),
            next: heap.alloc(self.n, HomePolicy::Blocked),
            cell_id: heap.alloc(self.n, HomePolicy::Blocked),
            energy: heap.alloc(1, HomePolicy::Single(0)),
        }
    }

    fn run(&self, ctx: &mut DsmCtx, h: &Self::Handles) {
        let t = ctx.thread_id();
        let nt = ctx.num_threads();
        let n = self.n;
        let (m0, m1) = block_range(n, t, nt);
        let (c0, c1) = block_range(self.num_cells(), t, nt);

        if t == 0 {
            let mut init = vec![0.0f64; STRIDE * n];
            for i in 0..n {
                for a in 0..3 {
                    init[i * STRIDE + a] = self.initial_pos(i, a);
                }
            }
            ctx.write_slice(&h.pos, 0, &init);
            for i in 0..n {
                for a in 0..3 {
                    init[i * STRIDE + a] = self.initial_vel(i, a);
                }
            }
            ctx.write_slice(&h.vel, 0, &init);
            ctx.write(&h.energy, 0, 0.0);
        }
        ctx.barrier(BarrierId(0));

        let mut bars = BarrierCycle::new();
        for _ in 0..self.steps {
            // Reset my force block (cell heads are fully rewritten
            // by the list build below).
            ctx.write_slice(&h.force, STRIDE * m0, &vec![0.0f64; STRIDE * (m1 - m0)]);
            if t == 0 {
                ctx.write(&h.energy, 0, 0.0);
            }
            bars.next(ctx);

            // Publish my molecules' cell ids (computed from my own,
            // local position block).
            let my_pos = ctx.read_vec(&h.pos, STRIDE * m0, STRIDE * (m1 - m0));
            let my_cells: Vec<i32> = (m0..m1)
                .map(|i| {
                    let k = STRIDE * (i - m0);
                    self.cell_of(my_pos[k], my_pos[k + 1], my_pos[k + 2]) as i32
                })
                .collect();
            ctx.write_slice(&h.cell_id, m0, &my_cells);
            ctx.compute(SimDuration::from_nanos((m1 - m0) as u64 * 200));
            bars.next(ctx);

            // Build the lists of MY cells from the published cell ids
            // (SPLASH-2 assigns boxes to owners, so list construction
            // needs no locks: a cell's head and its members' next
            // links are written by exactly one thread). Prepending in
            // descending index order leaves each list ascending, the
            // same order as the sequential reference.
            ctx.prefetch(&h.cell_id, 0, n);
            let all_cells = ctx.read_vec(&h.cell_id, 0, n);
            let mut heads = vec![-1i32; c1.saturating_sub(c0)];
            for i in (0..n).rev() {
                let cell = all_cells[i] as usize;
                if (c0..c1).contains(&cell) {
                    ctx.write(&h.next, i, heads[cell - c0]);
                    heads[cell - c0] = i as i32;
                }
            }
            if c0 < c1 {
                ctx.write_slice(&h.head, c0, &heads);
            }
            ctx.compute(SimDuration::from_nanos(n as u64 * 150));
            bars.next(ctx);

            // Pass A: walk the lists once, recording each of my
            // molecules' neighbor set (the history array).
            let mut history: Vec<Vec<usize>> = Vec::with_capacity(m1 - m0);
            let mut links = 0u64;
            for i in m0..m1 {
                let k = STRIDE * (i - m0);
                let c = self.cell_of(my_pos[k], my_pos[k + 1], my_pos[k + 2]);
                let mut recorded = Vec::new();
                for nc in self.neighbor_cells(c) {
                    let mut j = ctx.read(&h.head, nc);
                    while j >= 0 {
                        if j as usize != i {
                            recorded.push(j as usize);
                        }
                        j = ctx.read(&h.next, j as usize);
                        links += 1;
                    }
                }
                history.push(recorded);
            }
            ctx.compute(SimDuration::from_nanos(links * NS_PER_LINK));

            // Pass B: compute forces, prefetching the *next*
            // molecule's recorded neighbors (history prefetching).
            let mut local_e = 0.0f64;
            let mut my_force = vec![0.0f64; 3 * (m1 - m0)];
            let mut pairs = 0u64;
            let mut last_pf_page = usize::MAX;
            for i in m0..m1 {
                if i + 1 < m1 {
                    // History prefetch: dereference the recorded
                    // pointers of the *next* molecule one step ahead
                    // (issuing once per page, as Mowry's scheduling
                    // strips redundant prefetches).
                    for &j in &history[i + 1 - m0] {
                        let pf_page = STRIDE * j * 8 / rsdsm_protocol_page_size();
                        if pf_page != last_pf_page {
                            ctx.prefetch(&h.pos, STRIDE * j, STRIDE * j + 3);
                            last_pf_page = pf_page;
                        }
                    }
                }
                let k = STRIDE * (i - m0);
                let (xi, yi, zi) = (my_pos[k], my_pos[k + 1], my_pos[k + 2]);
                for &j in &history[i - m0] {
                    let pj = ctx.read_vec(&h.pos, STRIDE * j, 3);
                    let (dx, dy, dz) = (xi - pj[0], yi - pj[1], zi - pj[2]);
                    if dx * dx + dy * dy + dz * dz <= CUTOFF * CUTOFF {
                        let fv = pair_force(dx, dy, dz);
                        let kf = 3 * (i - m0);
                        my_force[kf] += fv[0];
                        my_force[kf + 1] += fv[1];
                        my_force[kf + 2] += fv[2];
                        local_e += 0.5 * pair_energy(dx, dy, dz);
                        pairs += 1;
                    }
                }
            }
            ctx.compute(SimDuration::from_nanos(pairs * NS_PER_PAIR));
            let mut force_strided = vec![0.0f64; STRIDE * (m1 - m0)];
            for i in 0..(m1 - m0) {
                for a in 0..3 {
                    force_strided[i * STRIDE + a] = my_force[3 * i + a];
                }
            }
            ctx.write_slice(&h.force, STRIDE * m0, &force_strided);

            ctx.acquire(ENERGY_LOCK);
            let e = ctx.read(&h.energy, 0);
            ctx.write(&h.energy, 0, e + local_e);
            ctx.release(ENERGY_LOCK);
            bars.next(ctx);

            // Integrate my molecules.
            let f = ctx.read_vec(&h.force, STRIDE * m0, STRIDE * (m1 - m0));
            let mut vel = ctx.read_vec(&h.vel, STRIDE * m0, STRIDE * (m1 - m0));
            let mut pos_mine = ctx.read_vec(&h.pos, STRIDE * m0, STRIDE * (m1 - m0));
            for i in 0..(m1 - m0) {
                for a in 0..3 {
                    vel[i * STRIDE + a] += f[i * STRIDE + a];
                    pos_mine[i * STRIDE + a] += vel[i * STRIDE + a];
                }
            }
            ctx.compute(SimDuration::from_nanos((m1 - m0) as u64 * NS_PER_INTEGRATE));
            ctx.write_slice(&h.vel, STRIDE * m0, &vel);
            ctx.write_slice(&h.pos, STRIDE * m0, &pos_mine);
            bars.next(ctx);
        }
    }

    fn verify(&self, mem: &VerifyCtx, h: &Self::Handles) -> bool {
        let expect = self.reference();
        let strided = mem.read_vec(&h.pos, 0, STRIDE * self.n);
        (0..self.n).all(|i| {
            (0..3).all(|a| {
                let got = strided[i * STRIDE + a];
                let want = expect[3 * i + a];
                (got - want).abs() <= 1e-6 * want.abs().max(1.0)
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cells_partition_the_box() {
        let app = WaterSpApp::new(64, 1);
        assert_eq!(app.num_cells(), 64);
        assert_eq!(app.cell_of(0.0, 0.0, 0.0), 0);
        assert_eq!(app.cell_of(3.99, 3.99, 3.99), 63);
        // Out-of-box positions clamp.
        assert_eq!(app.cell_of(-1.0, 5.0, 2.0), app.cell_of(0.0, 3.99, 2.0));
    }

    #[test]
    fn neighbor_cells_include_self_and_respect_bounds() {
        let app = WaterSpApp::new(64, 1);
        let corner = app.neighbor_cells(0);
        assert!(corner.contains(&0));
        assert_eq!(corner.len(), 8, "corner cell has 8 neighbors (incl self)");
        let center = app.cell_of(2.5, 2.5, 2.5);
        assert_eq!(app.neighbor_cells(center).len(), 27);
    }

    #[test]
    fn reference_is_finite() {
        let app = WaterSpApp::new(32, 2);
        let pos = app.reference();
        assert!(pos.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn cutoff_limits_interactions() {
        // Far-apart molecules in non-adjacent cells never interact:
        // their reference trajectories are straight lines.
        let app = WaterSpApp::new(8, 1);
        let pos = app.reference();
        for i in 0..8 {
            for a in 0..3 {
                let expect_straight = app.initial_pos(i, a) + app.initial_vel(i, a);
                let moved = (pos[3 * i + a] - expect_straight).abs();
                // Some molecules interact; at least assert motion is
                // bounded (forces are tiny).
                assert!(moved < 0.1, "molecule {i} axis {a} moved {moved}");
            }
        }
    }
}
