//! FFT: 1D complex fast Fourier transform (SPLASH-2 style).
//!
//! The transform uses the transpose ("six-step") algorithm: the
//! `n = R*C` points are viewed as an `R x C` matrix; three transposes
//! interleave with two batches of row FFTs and a twiddle scaling.
//! Each transpose is an all-to-all exchange — every thread reads
//! column slabs just written by every other thread — which is the
//! communication the paper's FFT numbers are dominated by, including
//! the initialization hot-spot on the master (§3.3.2).

use rsdsm_core::{BarrierId, DsmCtx, DsmProgram, Heap, HomePolicy, SharedVec, VerifyCtx};
use rsdsm_simnet::SimDuration;

use crate::block_range;
use crate::util::{fft_in_place, fft_reference, gen_f64, BarrierCycle, Complex};

/// Effective cost per butterfly flop — calibrated to the 133 MHz
/// PowerPC 604 including its memory hierarchy (the paper's Busy time
/// is wall-clock compute, not peak-flop time).
const NS_PER_FLOP: u64 = 1000;

/// 1D complex FFT over `2^m` points.
#[derive(Debug, Clone)]
pub struct FftApp {
    m: u32,
}

impl FftApp {
    /// An FFT of `2^m` points.
    ///
    /// # Panics
    ///
    /// Panics if `m` is odd (the matrix must be square) or `m < 4`.
    pub fn new(m: u32) -> Self {
        assert!(
            m >= 4 && m.is_multiple_of(2),
            "need an even m >= 4 for a square matrix"
        );
        FftApp { m }
    }

    /// The paper's size: 256K (2^18) points.
    pub fn paper_scale() -> Self {
        FftApp::new(18)
    }

    /// Scaled-down default: 2^14 points.
    pub fn default_scale() -> Self {
        FftApp::new(14)
    }

    fn n(&self) -> usize {
        1 << self.m
    }

    fn side(&self) -> usize {
        1 << (self.m / 2)
    }

    fn input(&self, i: usize) -> Complex {
        Complex::new(gen_f64(0xFF7 ^ 1, i), gen_f64(0xFF7 ^ 2, i))
    }
}

/// Native reference of the same six-step pipeline (for unit tests).
#[cfg(test)]
pub(crate) fn six_step_reference(input: &[Complex], side: usize) -> Vec<Complex> {
    let n = input.len();
    let (r, c) = (side, side);
    // Transpose 1: b[s][q] = a[q][s]  (c x r).
    let mut b = vec![Complex::default(); n];
    for q in 0..r {
        for s in 0..c {
            b[s * r + q] = input[q * c + s];
        }
    }
    // Row FFTs of b (length r) + twiddle b[s][k1] *= w^(s*k1).
    for s in 0..c {
        fft_in_place(&mut b[s * r..(s + 1) * r], false);
        for k1 in 0..r {
            let ang = -2.0 * std::f64::consts::PI * (s * k1) as f64 / n as f64;
            b[s * r + k1] = b[s * r + k1] * Complex::from_angle(ang);
        }
    }
    // Transpose 2: d[k1][s] = b[s][k1]  (r x c).
    let mut d = vec![Complex::default(); n];
    for s in 0..c {
        for k1 in 0..r {
            d[k1 * c + s] = b[s * r + k1];
        }
    }
    // Row FFTs of d (length c): d[k1][k2] = X[k2*r + k1].
    for k1 in 0..r {
        fft_in_place(&mut d[k1 * c..(k1 + 1) * c], false);
    }
    // Transpose 3: out[k2][k1] = d[k1][k2] → natural order.
    let mut out = vec![Complex::default(); n];
    for k1 in 0..r {
        for k2 in 0..c {
            out[k2 * r + k1] = d[k1 * c + k2];
        }
    }
    out
}

/// Shared handles: the two `n`-complex arrays (interleaved re/im).
#[derive(Debug, Clone, Copy)]
pub struct FftHandles {
    a: SharedVec<f64>,
    b: SharedVec<f64>,
}

impl DsmProgram for FftApp {
    type Handles = FftHandles;

    fn name(&self) -> String {
        "FFT".into()
    }

    fn allocate(&self, heap: &mut Heap) -> Self::Handles {
        FftHandles {
            a: heap.alloc(2 * self.n(), HomePolicy::Blocked),
            b: heap.alloc(2 * self.n(), HomePolicy::Blocked),
        }
    }

    fn run(&self, ctx: &mut DsmCtx, h: &Self::Handles) {
        let t = ctx.thread_id();
        let nt = ctx.num_threads();
        let side = self.side();
        let n = self.n();

        // Initialization on the master — the source of the paper's
        // FFT hot-spot.
        if t == 0 {
            let mut row = vec![0.0f64; 2 * side];
            for q in 0..side {
                for s in 0..side {
                    let x = self.input(q * side + s);
                    row[2 * s] = x.re;
                    row[2 * s + 1] = x.im;
                }
                ctx.write_slice(&h.a, q * 2 * side, &row);
            }
        }
        ctx.barrier(BarrierId(0));
        let mut bars = BarrierCycle::new();

        // Three transpose+FFT phases; `src`/`dst` alternate a → b → a → b.
        let (my0, my1) = block_range(side, t, nt);
        let twiddle = |phase: usize, row: usize, k: usize| -> Complex {
            if phase == 0 {
                Complex::from_angle(-2.0 * std::f64::consts::PI * (row * k) as f64 / n as f64)
            } else {
                Complex::new(1.0, 0.0)
            }
        };
        for phase in 0..3usize {
            let (src, dst) = if phase % 2 == 0 {
                (h.a, h.b)
            } else {
                (h.b, h.a)
            };
            // Gather my transposed slab: dst row `o` (my0..my1) takes
            // src column `o`.
            let width = my1 - my0;
            let mut slab = vec![Complex::default(); width * side];
            // Issue all of this phase's slab prefetches up front
            // (strip-mined scheduling, §3.2): the first rows' fetches
            // overlap the later rows' prefetch issue, and the
            // resulting burst is exactly the compressed traffic the
            // paper observes inflating miss latencies (§3.3.2).
            // Start at our own rows and wrap (SPLASH-2 staggers the
            // transpose this way to avoid hot-spotting one source
            // node and to desynchronize sibling threads).
            let start = (t * side / nt) % side;
            let order = (start..side).chain(0..start);
            for q in order.clone() {
                ctx.prefetch(&src, 2 * (q * side + my0), 2 * (q * side + my1));
            }
            for q in order {
                // Compiler-style prefetching cannot classify private
                // buffers and wastes checks on them (Table 1's 98%
                // unnecessary rate for FFT); a no-op in hand mode.
                ctx.prefetch_private(12);
                let vals = ctx.read_vec(&src, 2 * (q * side + my0), 2 * width);
                for o in 0..width {
                    slab[o * side + q] = Complex::new(vals[2 * o], vals[2 * o + 1]);
                }
                ctx.compute(SimDuration::from_nanos(width as u64 * 12));
            }
            // Row FFTs (+ twiddle after the first phase's FFT).
            let mut out_row = vec![0.0f64; 2 * side];
            for o in 0..width {
                let row = &mut slab[o * side..(o + 1) * side];
                if phase < 2 {
                    fft_in_place(row, false);
                    let flops = 5 * side as u64 * side.trailing_zeros() as u64;
                    ctx.compute(SimDuration::from_nanos(flops * NS_PER_FLOP));
                }
                for (k, v) in row.iter_mut().enumerate() {
                    *v = *v * twiddle(phase, my0 + o, k);
                }
                for (k, v) in row.iter().enumerate() {
                    out_row[2 * k] = v.re;
                    out_row[2 * k + 1] = v.im;
                }
                ctx.write_slice(&dst, (my0 + o) * 2 * side, &out_row);
            }
            bars.next(ctx);
        }
    }

    fn verify(&self, mem: &VerifyCtx, h: &Self::Handles) -> bool {
        let n = self.n();
        let input: Vec<Complex> = (0..n).map(|i| self.input(i)).collect();
        let expect = fft_reference(&input);
        let flat = mem.read_vec(&h.b, 0, 2 * n);
        let scale = (n as f64).sqrt();
        (0..n).all(|k| {
            let got = Complex::new(flat[2 * k], flat[2 * k + 1]);
            (got - expect[k]).norm_sq().sqrt() <= 1e-6 * scale
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_step_matches_direct_fft() {
        let side = 8;
        let n = side * side;
        let input: Vec<Complex> = (0..n)
            .map(|i| Complex::new(gen_f64(11, i), gen_f64(13, i)))
            .collect();
        let expect = fft_reference(&input);
        let got = six_step_reference(&input, side);
        for k in 0..n {
            assert!(
                (got[k] - expect[k]).norm_sq() < 1e-16,
                "bin {k}: {:?} vs {:?}",
                got[k],
                expect[k]
            );
        }
    }

    #[test]
    fn input_is_deterministic() {
        let app = FftApp::new(8);
        assert_eq!(app.input(5), app.input(5));
        assert_ne!(app.input(5), app.input(6));
    }

    #[test]
    fn sizes() {
        assert_eq!(FftApp::paper_scale().n(), 1 << 18);
        assert_eq!(FftApp::new(8).side(), 16);
    }

    #[test]
    #[should_panic(expected = "even m")]
    fn odd_m_rejected() {
        FftApp::new(9);
    }
}
