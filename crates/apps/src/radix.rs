//! RADIX: parallel integer radix sort (SPLASH-2).
//!
//! Each pass histograms one digit, computes global ranks from the
//! shared histogram matrix, then permutes keys into the destination
//! array. The permutation writes are scattered across remote pages at
//! positions only known moments before the writes — which is why the
//! paper finds RADIX prefetches hard to schedule early enough (§5.2)
//! and throttles them in the combined mode (§5.1).

use rsdsm_core::{BarrierId, DsmCtx, DsmProgram, Heap, HomePolicy, SharedVec, VerifyCtx};
use rsdsm_simnet::SimDuration;

use crate::block_range;
use crate::util::{gen_u32, BarrierCycle};

/// Simulated cost of histogramming one key.
const NS_PER_COUNT: u64 = 550;
/// Simulated cost of moving one key in the permutation.
const NS_PER_MOVE: u64 = 1100;

/// Parallel radix sort of `n` keys.
#[derive(Debug, Clone)]
pub struct RadixApp {
    n: usize,
    max_key_bits: u32,
    radix_bits: u32,
}

impl RadixApp {
    /// A sort of `n` keys below `2^max_key_bits`, `2^radix_bits`
    /// buckets per pass.
    ///
    /// # Panics
    ///
    /// Panics on degenerate parameters.
    pub fn new(n: usize, max_key_bits: u32, radix_bits: u32) -> Self {
        assert!(n >= 4, "need some keys");
        assert!((1..=31).contains(&max_key_bits), "key bits in 1..=31");
        assert!((1..=16).contains(&radix_bits), "radix bits in 1..=16");
        RadixApp {
            n,
            max_key_bits,
            radix_bits,
        }
    }

    /// The paper's size: 2^20 keys, max key 2^21, radix 1024.
    pub fn paper_scale() -> Self {
        RadixApp::new(1 << 20, 21, 10)
    }

    /// Scaled-down default.
    pub fn default_scale() -> Self {
        RadixApp::new(1 << 14, 18, 8)
    }

    fn radix(&self) -> usize {
        1 << self.radix_bits
    }

    fn passes(&self) -> usize {
        self.max_key_bits.div_ceil(self.radix_bits) as usize
    }

    fn key(&self, i: usize) -> u32 {
        gen_u32(0x52AD_1C5E, i, 1 << self.max_key_bits)
    }
}

/// Shared handles: double-buffered key arrays plus the histogram
/// matrix (one row per thread).
#[derive(Debug, Clone, Copy)]
pub struct RadixHandles {
    keys: [SharedVec<u32>; 2],
    hist: SharedVec<u32>,
}

impl DsmProgram for RadixApp {
    type Handles = RadixHandles;

    fn name(&self) -> String {
        "RADIX".into()
    }

    fn allocate(&self, heap: &mut Heap) -> Self::Handles {
        // The histogram rows are sized by the maximum thread count we
        // support (threads beyond the allocation would be an app bug).
        RadixHandles {
            keys: [
                heap.alloc(self.n, HomePolicy::Blocked),
                heap.alloc(self.n, HomePolicy::Blocked),
            ],
            hist: heap.alloc(64 * self.radix(), HomePolicy::Blocked),
        }
    }

    fn run(&self, ctx: &mut DsmCtx, h: &Self::Handles) {
        let t = ctx.thread_id();
        let nt = ctx.num_threads();
        assert!(nt <= 64, "histogram sized for at most 64 threads");
        let radix = self.radix();
        let (k0, k1) = block_range(self.n, t, nt);

        if t == 0 {
            let init: Vec<u32> = (0..self.n).map(|i| self.key(i)).collect();
            ctx.write_slice(&h.keys[0], 0, &init);
        }
        ctx.barrier(BarrierId(0));

        let mut bars = BarrierCycle::new();
        for pass in 0..self.passes() {
            let shift = pass as u32 * self.radix_bits;
            let (src, dst) = (h.keys[pass % 2], h.keys[(pass + 1) % 2]);

            // Local histogram of my block.
            let mine = ctx.read_vec(&src, k0, k1 - k0);
            let mut counts = vec![0u32; radix];
            for &key in &mine {
                counts[((key >> shift) as usize) & (radix - 1)] += 1;
            }
            ctx.compute(SimDuration::from_nanos(mine.len() as u64 * NS_PER_COUNT));
            ctx.write_slice(&h.hist, t * radix, &counts);
            bars.next(ctx);

            // Global ranks: my write offset for digit d is the total
            // of smaller digits plus earlier threads' counts of d.
            ctx.prefetch(&h.hist, 0, nt * radix);
            let all = ctx.read_vec(&h.hist, 0, nt * radix);
            ctx.compute(SimDuration::from_nanos((nt * radix) as u64 * 8));
            let mut digit_total = vec![0u64; radix];
            for row in 0..nt {
                for d in 0..radix {
                    digit_total[d] += all[row * radix + d] as u64;
                }
            }
            let mut offsets = vec![0usize; radix];
            let mut running = 0usize;
            for d in 0..radix {
                let mut mine_off = running;
                for row in 0..t {
                    mine_off += all[row * radix + d] as usize;
                }
                offsets[d] = mine_off;
                running += digit_total[d] as usize;
            }

            // Gather my keys per digit (stable within the block)...
            let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); radix];
            for &key in &mine {
                buckets[((key >> shift) as usize) & (radix - 1)].push(key);
            }
            // ...prefetch the destination runs (often too late — the
            // addresses were just computed, as the paper observes)...
            for d in 0..radix {
                if !buckets[d].is_empty() {
                    ctx.prefetch(&dst, offsets[d], offsets[d] + buckets[d].len());
                }
            }
            // ...and permute.
            ctx.compute(SimDuration::from_nanos(mine.len() as u64 * NS_PER_MOVE));
            for d in 0..radix {
                if !buckets[d].is_empty() {
                    ctx.write_slice(&dst, offsets[d], &buckets[d]);
                }
            }
            bars.next(ctx);
        }
    }

    fn verify(&self, mem: &VerifyCtx, h: &Self::Handles) -> bool {
        let final_arr = mem.read_vec(&h.keys[self.passes() % 2], 0, self.n);
        // Sorted?
        if !final_arr.windows(2).all(|w| w[0] <= w[1]) {
            return false;
        }
        // Same multiset as the input (sum + xor fingerprints).
        let (mut s1, mut x1, mut s2, mut x2) = (0u64, 0u32, 0u64, 0u32);
        #[allow(clippy::needless_range_loop)]
        for i in 0..self.n {
            let a = self.key(i);
            s1 = s1.wrapping_add(a as u64);
            x1 ^= a;
            let b = final_arr[i];
            s2 = s2.wrapping_add(b as u64);
            x2 ^= b;
        }
        s1 == s2 && x1 == x2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pass_count() {
        assert_eq!(RadixApp::new(16, 20, 8).passes(), 3);
        assert_eq!(RadixApp::new(16, 16, 8).passes(), 2);
        assert_eq!(RadixApp::paper_scale().passes(), 3);
    }

    #[test]
    fn keys_are_bounded_and_deterministic() {
        let app = RadixApp::new(1024, 10, 4);
        for i in 0..1024 {
            assert!(app.key(i) < 1024);
            assert_eq!(app.key(i), app.key(i));
        }
    }

    #[test]
    #[should_panic(expected = "radix bits")]
    fn excessive_radix_rejected() {
        RadixApp::new(16, 20, 20);
    }
}
