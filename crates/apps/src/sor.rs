//! SOR: red-black successive over-relaxation (TreadMarks distribution).
//!
//! A grid is relaxed for a number of iterations; each iteration
//! updates the red cells (reading black neighbors), barriers, then
//! updates the black cells. Rows are block-partitioned across
//! threads, so the only communication is the halo row on each side of
//! a block — plus the initialization hot-spot (thread 0 writes the
//! whole grid, so every other node's first read storms node 0, the
//! effect the paper calls out for SOR in §4.3).

use rsdsm_core::{BarrierId, DsmCtx, DsmProgram, Heap, HomePolicy, SharedVec, VerifyCtx};
use rsdsm_simnet::SimDuration;

use crate::block_range;
use crate::util::BarrierCycle;

/// Simulated compute cost per cell update (a few flops plus index
/// arithmetic on a 133 MHz PowerPC 604).
const NS_PER_CELL: u64 = 470;

/// Red-black successive over-relaxation on a `rows x cols` grid.
#[derive(Debug, Clone)]
pub struct SorApp {
    rows: usize,
    cols: usize,
    iters: usize,
}

impl SorApp {
    /// A SOR problem of the given size.
    ///
    /// # Panics
    ///
    /// Panics if the grid is smaller than 3x3 or `iters` is zero.
    pub fn new(rows: usize, cols: usize, iters: usize) -> Self {
        assert!(rows >= 3 && cols >= 3, "grid too small");
        assert!(iters > 0, "need at least one iteration");
        SorApp { rows, cols, iters }
    }

    /// The paper's problem size: 2000x2000, 50 iterations.
    pub fn paper_scale() -> Self {
        SorApp::new(2000, 2000, 50)
    }

    /// Scaled-down default preserving the sharing structure.
    pub fn default_scale() -> Self {
        SorApp::new(512, 512, 10)
    }

    fn initial_row(&self, i: usize) -> Vec<f64> {
        // Hot top edge, cold interior — the classic heat plate.
        if i == 0 {
            vec![1.0; self.cols]
        } else {
            vec![0.0; self.cols]
        }
    }

    /// Sequential reference with the same update order per color.
    fn reference(&self) -> Vec<f64> {
        let mut g: Vec<f64> = (0..self.rows).flat_map(|i| self.initial_row(i)).collect();
        let cols = self.cols;
        for _ in 0..self.iters {
            for color in 0..2usize {
                let prev = g.clone();
                for i in 1..self.rows - 1 {
                    for j in 1..cols - 1 {
                        if (i + j) % 2 == color {
                            g[i * cols + j] = 0.25
                                * (prev[(i - 1) * cols + j]
                                    + prev[(i + 1) * cols + j]
                                    + prev[i * cols + j - 1]
                                    + prev[i * cols + j + 1]);
                        }
                    }
                }
            }
        }
        g
    }
}

impl DsmProgram for SorApp {
    type Handles = SharedVec<f64>;

    fn name(&self) -> String {
        "SOR".into()
    }

    fn allocate(&self, heap: &mut Heap) -> Self::Handles {
        // The TreadMarks SOR allocates the grid on the master.
        heap.alloc(self.rows * self.cols, HomePolicy::Single(0))
    }

    fn run(&self, ctx: &mut DsmCtx, grid: &Self::Handles) {
        let t = ctx.thread_id();
        let n = ctx.num_threads();
        let cols = self.cols;
        // Interior rows are partitioned; boundary rows stay fixed.
        // With more threads than interior rows the block is empty
        // (r0 == r1): such a thread does no row work but must still
        // hit every barrier.
        let (r0, r1) = block_range(self.rows - 2, t, n);
        let (r0, r1) = (r0 + 1, r1 + 1);
        let has_rows = r1 > r0;

        if t == 0 {
            for i in 0..self.rows {
                ctx.write_slice(grid, i * cols, &self.initial_row(i));
            }
        }
        ctx.barrier(BarrierId(0));
        // First-touch prefetch: the whole grid lives on the master
        // after initialization.
        if has_rows {
            ctx.prefetch(grid, (r0 - 1) * cols, (r1 + 1) * cols);
        }

        let mut bars = BarrierCycle::new();
        for it in 0..self.iters {
            for color in 0..2usize {
                // Prefetch the halo rows owned by our neighbors; they
                // were invalidated by the previous phase's writes.
                if has_rows && r0 > 1 {
                    ctx.prefetch(grid, (r0 - 1) * cols, r0 * cols);
                }
                if has_rows && r1 < self.rows - 1 {
                    ctx.prefetch(grid, r1 * cols, (r1 + 1) * cols);
                }
                // Update one row: reads rows i-1, i, i+1; only cells
                // of the current color change, and they read only the
                // other color, so in-place updates are order-free.
                let update_row = |ctx: &mut DsmCtx, i: usize| {
                    let above = ctx.read_vec(grid, (i - 1) * cols, cols);
                    let here = ctx.read_vec(grid, i * cols, cols);
                    let below = ctx.read_vec(grid, (i + 1) * cols, cols);
                    let mut new_row = here.clone();
                    for j in 1..cols - 1 {
                        if (i + j) % 2 == color {
                            new_row[j] = 0.25 * (above[j] + below[j] + here[j - 1] + here[j + 1]);
                        }
                    }
                    ctx.compute(SimDuration::from_nanos(NS_PER_CELL * (cols as u64 / 2)));
                    ctx.write_slice(grid, i * cols, &new_row);
                };
                // Interior rows first so the halo prefetches have the
                // whole block's compute time to complete (§3.2's
                // scheduling); the halo-dependent edge rows run last.
                for i in r0 + 1..r1.saturating_sub(1) {
                    update_row(ctx, i);
                }
                if has_rows {
                    update_row(ctx, r0);
                    if r1 - r0 > 1 {
                        update_row(ctx, r1 - 1);
                    }
                }
                let _ = it;
                bars.next(ctx);
            }
        }
    }

    fn verify(&self, mem: &VerifyCtx, grid: &Self::Handles) -> bool {
        let expect = self.reference();
        let got = mem.read_vec(grid, 0, grid.len());
        got.iter()
            .zip(&expect)
            .all(|(a, b)| (a - b).abs() <= 1e-12 * b.abs().max(1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_diffuses_heat_downward() {
        let app = SorApp::new(8, 8, 10);
        let g = app.reference();
        // Row 1 interior cells must have warmed above zero.
        assert!(g[8 + 4] > 0.0);
        // Heat decreases with depth.
        assert!(g[8 + 4] > g[3 * 8 + 4]);
        // Boundary unchanged.
        assert_eq!(g[4], 1.0);
        assert_eq!(g[7 * 8 + 4], 0.0);
    }

    #[test]
    #[should_panic(expected = "grid too small")]
    fn tiny_grid_rejected() {
        SorApp::new(2, 8, 1);
    }

    #[test]
    fn scales_are_sane() {
        let p = SorApp::paper_scale();
        assert_eq!((p.rows, p.cols, p.iters), (2000, 2000, 50));
        let d = SorApp::default_scale();
        assert!(d.rows * d.cols < p.rows * p.cols);
    }
}
