//! OCEAN: eddy/boundary-current simulation (SPLASH-2, simplified).
//!
//! The SPLASH-2 OCEAN alternates many short near-neighbor grid phases
//! separated by barriers — it is by far the most barrier-intensive of
//! the paper's applications (Table 2 shows ~7200 barrier episodes).
//! This port preserves that structure with a two-level multigrid
//! V-cycle per time step: fine-grid Jacobi smoothing, residual,
//! restriction to a coarse grid, coarse smoothing, prolongation and
//! correction — each phase a barrier. Rows are block-partitioned, so
//! small grids put several threads' rows on one page (the
//! false-sharing regime the paper notes for OCEAN under
//! multithreading, §4.3).

use rsdsm_core::{BarrierId, DsmCtx, DsmProgram, Heap, HomePolicy, SharedVec, VerifyCtx};
use rsdsm_simnet::SimDuration;

use crate::block_range;
use crate::util::{gen_f64, BarrierCycle};

/// Simulated cost per 5-point stencil evaluation.
const NS_PER_STENCIL: u64 = 1200;
/// Jacobi sweeps on the coarse grid per V-cycle.
const COARSE_SWEEPS: usize = 4;

/// Simplified OCEAN on an `n x n` grid (`n` even), `steps` V-cycles.
#[derive(Debug, Clone)]
pub struct OceanApp {
    n: usize,
    steps: usize,
}

impl OceanApp {
    /// An OCEAN problem of the given size.
    ///
    /// # Panics
    ///
    /// Panics if `n` is odd or too small, or `steps` is zero.
    pub fn new(n: usize, steps: usize) -> Self {
        assert!(
            n >= 8 && n.is_multiple_of(2),
            "need an even grid of at least 8"
        );
        assert!(steps > 0, "need at least one step");
        OceanApp { n, steps }
    }

    /// The paper's grid: 258 x 258 (SPLASH-2 "-n258").
    pub fn paper_scale() -> Self {
        OceanApp::new(258, 6)
    }

    /// Scaled-down default.
    pub fn default_scale() -> Self {
        OceanApp::new(130, 4)
    }

    fn coarse(&self) -> usize {
        self.n / 2
    }

    fn initial(&self, i: usize, j: usize) -> f64 {
        // Eddy-like initial stream function plus noise.
        let n = self.n as f64;
        let (x, y) = (i as f64 / n, j as f64 / n);
        (2.0 * std::f64::consts::PI * x).sin() * (2.0 * std::f64::consts::PI * y).cos()
            + 0.01 * (gen_f64(0x0CEA, i * self.n + j) - 0.5)
    }

    /// Sequential reference with identical phase ordering.
    fn reference(&self) -> Vec<f64> {
        let n = self.n;
        let nc = self.coarse();
        let mut u: Vec<f64> = (0..n * n).map(|x| self.initial(x / n, x % n)).collect();
        let mut res = vec![0.0; n * n];
        let mut cu = vec![0.0; nc * nc];
        for _ in 0..self.steps {
            jacobi_sweep(&mut u, n);
            residual(&u, &mut res, n);
            restrict(&res, &mut cu, n, nc);
            for _ in 0..COARSE_SWEEPS {
                jacobi_sweep(&mut cu, nc);
            }
            prolong_correct(&cu, &mut u, n, nc);
            jacobi_sweep(&mut u, n);
        }
        u
    }
}

fn jacobi_sweep(g: &mut [f64], n: usize) {
    let prev = g.to_vec();
    for i in 1..n - 1 {
        for j in 1..n - 1 {
            g[i * n + j] = 0.25
                * (prev[(i - 1) * n + j]
                    + prev[(i + 1) * n + j]
                    + prev[i * n + j - 1]
                    + prev[i * n + j + 1]);
        }
    }
}

fn residual(u: &[f64], r: &mut [f64], n: usize) {
    for i in 1..n - 1 {
        for j in 1..n - 1 {
            r[i * n + j] =
                u[(i - 1) * n + j] + u[(i + 1) * n + j] + u[i * n + j - 1] + u[i * n + j + 1]
                    - 4.0 * u[i * n + j];
        }
    }
}

fn restrict(r: &[f64], c: &mut [f64], n: usize, nc: usize) {
    for i in 0..nc {
        for j in 0..nc {
            c[i * nc + j] = 0.25
                * (r[(2 * i) * n + 2 * j]
                    + r[(2 * i + 1) * n + 2 * j]
                    + r[(2 * i) * n + 2 * j + 1]
                    + r[(2 * i + 1) * n + 2 * j + 1]);
        }
    }
}

fn prolong_correct(c: &[f64], u: &mut [f64], n: usize, nc: usize) {
    for i in 0..nc {
        for j in 0..nc {
            let v = 0.1 * c[i * nc + j];
            u[(2 * i) * n + 2 * j] += v;
            u[(2 * i + 1) * n + 2 * j] += v;
            u[(2 * i) * n + 2 * j + 1] += v;
            u[(2 * i + 1) * n + 2 * j + 1] += v;
        }
    }
}

/// Shared handles: fine grid, residual grid, coarse grid.
#[derive(Debug, Clone, Copy)]
pub struct OceanHandles {
    u: SharedVec<f64>,
    res: SharedVec<f64>,
    coarse: SharedVec<f64>,
}

impl OceanApp {
    /// Runs one distributed grid phase: rows `[r0, r1)` of an `n x n`
    /// operation that reads `src` rows `r-1..=r+1` and writes `dst`
    /// row `r`.
    #[allow(clippy::too_many_arguments)]
    fn stencil_phase(
        ctx: &mut DsmCtx,
        src: &SharedVec<f64>,
        dst: &SharedVec<f64>,
        n: usize,
        r0: usize,
        r1: usize,
        jacobi: bool,
    ) {
        if r0 >= r1 {
            return;
        }
        // Prefetch the whole input slab (halo rows plus own rows —
        // the prolongation phase writes across block boundaries, so
        // own rows may be invalid too); edge rows are processed last
        // so the fetches overlap the interior compute (§3.2).
        ctx.prefetch(src, (r0 - 1) * n, (r1 + 1).min(n) * n);
        let one_row = |ctx: &mut DsmCtx, i: usize| {
            let above = ctx.read_vec(src, (i - 1) * n, n);
            let here = ctx.read_vec(src, i * n, n);
            let below = ctx.read_vec(src, (i + 1) * n, n);
            let mut out = if jacobi { here.clone() } else { vec![0.0; n] };
            for j in 1..n - 1 {
                out[j] = if jacobi {
                    0.25 * (above[j] + below[j] + here[j - 1] + here[j + 1])
                } else {
                    above[j] + below[j] + here[j - 1] + here[j + 1] - 4.0 * here[j]
                };
            }
            ctx.compute(SimDuration::from_nanos(NS_PER_STENCIL * n as u64));
            ctx.write_slice(dst, i * n, &out);
        };
        for i in r0 + 1..r1.saturating_sub(1) {
            one_row(ctx, i);
        }
        one_row(ctx, r0);
        if r1 - r0 > 1 {
            one_row(ctx, r1 - 1);
        }
    }
}

impl DsmProgram for OceanApp {
    type Handles = OceanHandles;

    fn name(&self) -> String {
        "OCEAN".into()
    }

    fn allocate(&self, heap: &mut Heap) -> Self::Handles {
        let n = self.n;
        let nc = self.coarse();
        OceanHandles {
            u: heap.alloc(n * n, HomePolicy::Blocked),
            res: heap.alloc(n * n, HomePolicy::Blocked),
            coarse: heap.alloc(nc * nc, HomePolicy::Blocked),
        }
    }

    fn run(&self, ctx: &mut DsmCtx, h: &Self::Handles) {
        let t = ctx.thread_id();
        let nt = ctx.num_threads();
        let n = self.n;
        let nc = self.coarse();
        let (fr0, fr1) = block_range(n - 2, t, nt);
        let (fr0, fr1) = (fr0 + 1, fr1 + 1);
        let (cr0c, cr1c) = block_range(nc - 2, t, nt);
        let (cr0, cr1) = (cr0c + 1, cr1c + 1);
        // Restriction/prolongation cover all coarse rows, including
        // boundaries.
        let (ar0, ar1) = block_range(nc, t, nt);

        if t == 0 {
            let mut row = vec![0.0f64; n];
            for i in 0..n {
                for (j, slot) in row.iter_mut().enumerate() {
                    *slot = self.initial(i, j);
                }
                ctx.write_slice(&h.u, i * n, &row);
            }
            let zero_c = vec![0.0f64; nc];
            for i in 0..nc {
                ctx.write_slice(&h.coarse, i * nc, &zero_c);
                ctx.write_slice(&h.res, 2 * i * n, &vec![0.0f64; n]);
                ctx.write_slice(&h.res, (2 * i + 1) * n, &vec![0.0f64; n]);
            }
        }
        ctx.barrier(BarrierId(0));
        // First-touch prefetch of the rows this thread will smooth.
        if fr0 < fr1 {
            ctx.prefetch(&h.u, (fr0 - 1) * n, (fr1 + 1) * n);
        }

        let mut bar = BarrierCycle::new();
        let next_bar = |ctx: &mut DsmCtx, bar: &mut BarrierCycle| {
            bar.next(ctx);
        };

        for _ in 0..self.steps {
            // Jacobi smoothing needs a snapshot semantics: write to
            // res as scratch, then copy back — split into two phases.
            OceanApp::stencil_phase(ctx, &h.u, &h.res, n, fr0, fr1, true);
            next_bar(ctx, &mut bar);
            for i in fr0..fr1 {
                let row = ctx.read_vec(&h.res, i * n, n);
                ctx.write_slice(&h.u, i * n, &row);
            }
            next_bar(ctx, &mut bar);

            // Residual into res.
            OceanApp::stencil_phase(ctx, &h.u, &h.res, n, fr0, fr1, false);
            next_bar(ctx, &mut bar);

            // Restrict res → coarse; the whole input slab is
            // prefetched before the loop so later rows overlap.
            if ar0 < ar1 {
                ctx.prefetch(&h.res, (2 * ar0) * n, (2 * ar1) * n);
            }
            for i in ar0..ar1 {
                let top = ctx.read_vec(&h.res, (2 * i) * n, n);
                let bot = ctx.read_vec(&h.res, (2 * i + 1) * n, n);
                let mut out = vec![0.0f64; nc];
                for j in 0..nc {
                    out[j] = 0.25 * (top[2 * j] + bot[2 * j] + top[2 * j + 1] + bot[2 * j + 1]);
                }
                ctx.compute(SimDuration::from_nanos(NS_PER_STENCIL * nc as u64 / 2));
                ctx.write_slice(&h.coarse, i * nc, &out);
            }
            next_bar(ctx, &mut bar);

            // Coarse smoothing sweeps (scratch in the upper half of
            // res, reusing fine rows 0..nc as a private-ish region
            // would alias; use coarse in place via two phases with
            // res rows as scratch).
            for _ in 0..COARSE_SWEEPS {
                // Write scratch into res rows 0..nc (cols 0..nc).
                if cr0 < cr1 {
                    if cr0 > 1 {
                        ctx.prefetch(&h.coarse, (cr0 - 1) * nc, cr0 * nc);
                    }
                    if cr1 < nc - 1 {
                        ctx.prefetch(&h.coarse, cr1 * nc, (cr1 + 1) * nc);
                    }
                    let mut above = ctx.read_vec(&h.coarse, (cr0 - 1) * nc, nc);
                    for i in cr0..cr1 {
                        let here = ctx.read_vec(&h.coarse, i * nc, nc);
                        let below = ctx.read_vec(&h.coarse, (i + 1) * nc, nc);
                        let mut out = here.clone();
                        for j in 1..nc - 1 {
                            out[j] = 0.25 * (above[j] + below[j] + here[j - 1] + here[j + 1]);
                        }
                        ctx.compute(SimDuration::from_nanos(NS_PER_STENCIL * nc as u64));
                        ctx.write_slice(&h.res, i * n, &out);
                        above = here;
                    }
                }
                next_bar(ctx, &mut bar);
                for i in cr0..cr1 {
                    let row = ctx.read_vec(&h.res, i * n, nc);
                    ctx.write_slice(&h.coarse, i * nc, &row);
                }
                next_bar(ctx, &mut bar);
            }

            // Prolongate + correct my fine rows (inputs prefetched
            // up front: the coarse rows were written by the coarse
            // sweep owners, the fine rows by the smoothing owners).
            if ar0 < ar1 {
                ctx.prefetch(&h.coarse, ar0 * nc, ar1 * nc);
                ctx.prefetch(&h.u, (2 * ar0) * n, (2 * ar1) * n);
            }
            for i in ar0..ar1 {
                let crow = ctx.read_vec(&h.coarse, i * nc, nc);
                for half in 0..2 {
                    let fi = 2 * i + half;
                    let mut row = ctx.read_vec(&h.u, fi * n, n);
                    for j in 0..nc {
                        let v = 0.1 * crow[j];
                        row[2 * j] += v;
                        row[2 * j + 1] += v;
                    }
                    ctx.write_slice(&h.u, fi * n, &row);
                }
                ctx.compute(SimDuration::from_nanos(NS_PER_STENCIL * nc as u64));
            }
            next_bar(ctx, &mut bar);

            // Final smoothing phase.
            OceanApp::stencil_phase(ctx, &h.u, &h.res, n, fr0, fr1, true);
            next_bar(ctx, &mut bar);
            for i in fr0..fr1 {
                let row = ctx.read_vec(&h.res, i * n, n);
                ctx.write_slice(&h.u, i * n, &row);
            }
            next_bar(ctx, &mut bar);
        }
    }

    fn verify(&self, mem: &VerifyCtx, h: &Self::Handles) -> bool {
        let expect = self.reference();
        let got = mem.read_vec(&h.u, 0, self.n * self.n);
        got.iter()
            .zip(&expect)
            .all(|(a, b)| (a - b).abs() <= 1e-9 * b.abs().max(1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_is_finite_and_evolves() {
        let app = OceanApp::new(16, 2);
        let u = app.reference();
        assert!(u.iter().all(|v| v.is_finite()));
        let init: Vec<f64> = (0..16 * 16).map(|x| app.initial(x / 16, x % 16)).collect();
        let changed = u
            .iter()
            .zip(&init)
            .filter(|(a, b)| (*a - *b).abs() > 1e-12)
            .count();
        assert!(changed > 100, "smoothing must change the interior");
    }

    #[test]
    fn restriction_halves_grid() {
        let n = 8;
        let r: Vec<f64> = (0..n * n).map(|i| i as f64).collect();
        let mut c = vec![0.0; 16];
        restrict(&r, &mut c, n, 4);
        // c[0][0] = mean of r[0][0], r[1][0], r[0][1], r[1][1].
        assert_eq!(c[0], 0.25 * (0.0 + 8.0 + 1.0 + 9.0));
    }

    #[test]
    #[should_panic(expected = "even grid")]
    fn odd_grid_rejected() {
        OceanApp::new(9, 1);
    }
}
