//! LU: blocked dense LU factorization without pivoting (SPLASH-2).
//!
//! The paper runs two variants distinguished only by data layout:
//!
//! - **LU-CONT**: blocks are allocated contiguously (block-major), so
//!   a 32x32 block occupies whole pages by itself — little false
//!   sharing.
//! - **LU-NCONT**: the matrix is row-major, so a block's rows are
//!   strided across pages shared with neighboring blocks — the page-
//!   level false sharing that the multiple-writer protocol absorbs.
//!
//! Blocks are owned 2D-cyclically; each step factors the diagonal
//! block, solves the perimeter, then updates the interior, with
//! barriers between phases.

use rsdsm_core::{BarrierId, DsmCtx, DsmProgram, Heap, HomePolicy, SharedVec, VerifyCtx};
use rsdsm_simnet::SimDuration;

use crate::util::{gen_f64, BarrierCycle};

/// Effective cost per floating-point operation (calibrated; includes
/// the 1998 memory hierarchy).
const NS_PER_FLOP: u64 = 480;

/// Matrix layout variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LuLayout {
    /// Block-major allocation (the paper's LU-CONT).
    Contiguous,
    /// Row-major allocation (the paper's LU-NCONT).
    NonContiguous,
}

/// Blocked LU factorization of an `n x n` matrix.
#[derive(Debug, Clone)]
pub struct LuApp {
    n: usize,
    block: usize,
    layout: LuLayout,
}

impl LuApp {
    /// A factorization problem.
    ///
    /// # Panics
    ///
    /// Panics unless `block` divides `n` and both are at least 2.
    pub fn new(n: usize, block: usize, layout: LuLayout) -> Self {
        assert!(block >= 2 && n >= 2 * block, "degenerate blocking");
        assert_eq!(n % block, 0, "block must divide n");
        LuApp { n, block, layout }
    }

    /// The paper's LU-CONT: 1024x1024, 32x32 contiguous blocks.
    pub fn paper_cont() -> Self {
        LuApp::new(1024, 32, LuLayout::Contiguous)
    }

    /// The paper's LU-NCONT: 1024x1024, 128x128 non-contiguous blocks.
    pub fn paper_ncont() -> Self {
        LuApp::new(1024, 128, LuLayout::NonContiguous)
    }

    /// Scaled-down LU-CONT (12x12 blocks keep the 2D-cyclic
    /// ownership balanced, as the paper's 32x32 of 1024 does).
    pub fn default_cont() -> Self {
        LuApp::new(384, 32, LuLayout::Contiguous)
    }

    /// Scaled-down LU-NCONT (larger blocks, row-major layout — the
    /// paper's 128-of-1024 ratio).
    pub fn default_ncont() -> Self {
        LuApp::new(384, 48, LuLayout::NonContiguous)
    }

    fn nb(&self) -> usize {
        self.n / self.block
    }

    /// Flat index of element (i, j) under the layout.
    fn idx(&self, i: usize, j: usize) -> usize {
        match self.layout {
            LuLayout::NonContiguous => i * self.n + j,
            LuLayout::Contiguous => {
                let b = self.block;
                let (bi, bj) = (i / b, j / b);
                (bi * self.nb() + bj) * b * b + (i % b) * b + (j % b)
            }
        }
    }

    /// 2D-cyclic block owner.
    fn owner(bi: usize, bj: usize, nthreads: usize) -> usize {
        let pr = (1..=nthreads)
            .filter(|p| nthreads.is_multiple_of(*p) && *p * *p <= nthreads)
            .max()
            .unwrap_or(1);
        let pc = nthreads / pr;
        (bi % pr) * pc + (bj % pc)
    }

    fn initial(&self, i: usize, j: usize) -> f64 {
        let v = gen_f64(0x10, i * self.n + j) - 0.5;
        if i == j {
            v + self.n as f64
        } else {
            v
        }
    }

    /// The same blocked factorization, sequentially, for verification.
    fn reference(&self) -> Vec<f64> {
        let n = self.n;
        let b = self.block;
        let nb = self.nb();
        let mut a: Vec<f64> = (0..n * n).map(|x| self.initial(x / n, x % n)).collect();
        for k in 0..nb {
            factor_diag(&mut a, n, k * b, b);
            for bj in k + 1..nb {
                solve_row_block(&mut a, n, k * b, bj * b, b);
            }
            for bi in k + 1..nb {
                solve_col_block(&mut a, n, bi * b, k * b, b);
            }
            for bi in k + 1..nb {
                for bj in k + 1..nb {
                    gemm_update(&mut a, n, bi * b, bj * b, k * b, b);
                }
            }
        }
        a
    }
}

// Dense helpers on row-major n x n storage, operating on one block.

fn factor_diag(a: &mut [f64], n: usize, d: usize, b: usize) {
    for kk in 0..b {
        let pivot = a[(d + kk) * n + d + kk];
        for i in kk + 1..b {
            a[(d + i) * n + d + kk] /= pivot;
            let l = a[(d + i) * n + d + kk];
            for j in kk + 1..b {
                a[(d + i) * n + d + j] -= l * a[(d + kk) * n + d + j];
            }
        }
    }
}

/// A(k, bj) := L(k,k)^-1 A(k, bj) (unit lower triangular solve).
fn solve_row_block(a: &mut [f64], n: usize, k: usize, cj: usize, b: usize) {
    for kk in 0..b {
        for i in kk + 1..b {
            let l = a[(k + i) * n + k + kk];
            for j in 0..b {
                a[(k + i) * n + cj + j] -= l * a[(k + kk) * n + cj + j];
            }
        }
    }
}

/// A(bi, k) := A(bi, k) U(k,k)^-1.
fn solve_col_block(a: &mut [f64], n: usize, ri: usize, k: usize, b: usize) {
    for kk in 0..b {
        let pivot = a[(k + kk) * n + k + kk];
        for i in 0..b {
            a[(ri + i) * n + k + kk] /= pivot;
            let l = a[(ri + i) * n + k + kk];
            for j in kk + 1..b {
                a[(ri + i) * n + k + j] -= l * a[(k + kk) * n + k + j];
            }
        }
    }
}

/// A(bi, bj) -= A(bi, k) * A(k, bj).
fn gemm_update(a: &mut [f64], n: usize, ri: usize, cj: usize, k: usize, b: usize) {
    for i in 0..b {
        for kk in 0..b {
            let l = a[(ri + i) * n + k + kk];
            for j in 0..b {
                a[(ri + i) * n + cj + j] -= l * a[(k + kk) * n + cj + j];
            }
        }
    }
}

impl DsmProgram for LuApp {
    type Handles = SharedVec<f64>;

    fn name(&self) -> String {
        match self.layout {
            LuLayout::Contiguous => "LU-CONT".into(),
            LuLayout::NonContiguous => "LU-NCONT".into(),
        }
    }

    fn allocate(&self, heap: &mut Heap) -> Self::Handles {
        heap.alloc(self.n * self.n, HomePolicy::Blocked)
    }

    fn run(&self, ctx: &mut DsmCtx, mat: &Self::Handles) {
        let t = ctx.thread_id();
        let nt = ctx.num_threads();
        let (n, b, nb) = (self.n, self.block, self.nb());

        // Master initialization.
        if t == 0 {
            let mut row = vec![0.0f64; n];
            for i in 0..n {
                for (j, slot) in row.iter_mut().enumerate() {
                    *slot = self.initial(i, j);
                }
                match self.layout {
                    LuLayout::NonContiguous => ctx.write_slice(mat, i * n, &row),
                    LuLayout::Contiguous => {
                        for (j, &v) in row.iter().enumerate() {
                            ctx.write(mat, self.idx(i, j), v);
                        }
                    }
                }
            }
        }
        ctx.barrier(BarrierId(0));

        // Block I/O through the DSM: rows of a block are contiguous
        // runs in both layouts.
        let read_block = |ctx: &mut DsmCtx, bi: usize, bj: usize| -> Vec<f64> {
            // Compiler-style prefetching also issues checks for the
            // private block buffer (Table 1's LU-NCONT rate).
            ctx.prefetch_private(2);
            let mut out = vec![0.0f64; b * b];
            for i in 0..b {
                let start = self.idx(bi * b + i, bj * b);
                ctx.read_slice(mat, start, &mut out[i * b..(i + 1) * b]);
            }
            out
        };
        let write_block = |ctx: &mut DsmCtx, bi: usize, bj: usize, data: &[f64]| {
            for i in 0..b {
                let start = self.idx(bi * b + i, bj * b);
                ctx.write_slice(mat, start, &data[i * b..(i + 1) * b]);
            }
        };
        let prefetch_block = |ctx: &mut DsmCtx, bi: usize, bj: usize| {
            for i in 0..b {
                let start = self.idx(bi * b + i, bj * b);
                ctx.prefetch(mat, start, start + b);
            }
        };

        // First-touch prefetch of every owned block (the matrix was
        // initialized on the master, so all our blocks are remote).
        for bi in 0..nb {
            for bj in 0..nb {
                if LuApp::owner(bi, bj, nt) == t {
                    prefetch_block(ctx, bi, bj);
                }
            }
        }

        let mut bars = BarrierCycle::new();
        for k in 0..nb {
            // Diagonal factorization by its owner.
            if LuApp::owner(k, k, nt) == t {
                let mut d = read_block(ctx, k, k);
                factor_diag(&mut d, b, 0, b);
                ctx.compute(SimDuration::from_nanos(
                    2 * (b as u64).pow(3) / 3 * NS_PER_FLOP,
                ));
                write_block(ctx, k, k, &d);
            }
            bars.next(ctx);

            // Perimeter: prefetch the (remote) diagonal block first.
            let mine_in_perimeter =
                (k + 1..nb).any(|x| LuApp::owner(k, x, nt) == t || LuApp::owner(x, k, nt) == t);
            if mine_in_perimeter {
                prefetch_block(ctx, k, k);
                let diag = read_block(ctx, k, k);
                for bj in k + 1..nb {
                    if LuApp::owner(k, bj, nt) == t {
                        let mut blk = read_block(ctx, k, bj);
                        solve_with_diag(&diag, &mut blk, b, true);
                        ctx.compute(SimDuration::from_nanos((b as u64).pow(3) * NS_PER_FLOP));
                        write_block(ctx, k, bj, &blk);
                    }
                }
                for bi in k + 1..nb {
                    if LuApp::owner(bi, k, nt) == t {
                        let mut blk = read_block(ctx, bi, k);
                        solve_with_diag(&diag, &mut blk, b, false);
                        ctx.compute(SimDuration::from_nanos((b as u64).pow(3) * NS_PER_FLOP));
                        write_block(ctx, bi, k, &blk);
                    }
                }
            }
            bars.next(ctx);

            // Interior updates: prefetch perimeter blocks we will read.
            for bi in k + 1..nb {
                for bj in k + 1..nb {
                    if LuApp::owner(bi, bj, nt) == t {
                        prefetch_block(ctx, bi, k);
                        prefetch_block(ctx, k, bj);
                        prefetch_block(ctx, bi, bj);
                    }
                }
            }
            for bi in k + 1..nb {
                for bj in k + 1..nb {
                    if LuApp::owner(bi, bj, nt) != t {
                        continue;
                    }
                    let left = read_block(ctx, bi, k);
                    let up = read_block(ctx, k, bj);
                    let mut blk = read_block(ctx, bi, bj);
                    for i in 0..b {
                        for kk in 0..b {
                            let l = left[i * b + kk];
                            for j in 0..b {
                                blk[i * b + j] -= l * up[kk * b + j];
                            }
                        }
                    }
                    ctx.compute(SimDuration::from_nanos(2 * (b as u64).pow(3) * NS_PER_FLOP));
                    write_block(ctx, bi, bj, &blk);
                }
            }
            bars.next(ctx);
        }
    }

    fn verify(&self, mem: &VerifyCtx, mat: &Self::Handles) -> bool {
        let expect = self.reference();
        let n = self.n;
        let debug = std::env::var_os("RSDSM_TRACE").is_some();
        let mut ok = true;
        #[allow(clippy::needless_range_loop)]
        for i in 0..n {
            for j in 0..n {
                let got = mem.read(mat, self.idx(i, j));
                if (got - expect[i * n + j]).abs() > 1e-6 * expect[i * n + j].abs().max(1.0) {
                    ok = false;
                    if debug {
                        eprintln!(
                            "LU mismatch at ({i},{j}) block ({},{}): got {got}, expect {}",
                            i / self.block,
                            j / self.block,
                            expect[i * n + j]
                        );
                    } else {
                        return false;
                    }
                }
            }
        }
        ok
    }
}

/// Applies the diagonal block's triangular factors to a b x b block
/// held in private memory (`row_solve` picks L^-1·B vs B·U^-1).
fn solve_with_diag(diag: &[f64], blk: &mut [f64], b: usize, row_solve: bool) {
    if row_solve {
        for kk in 0..b {
            for i in kk + 1..b {
                let l = diag[i * b + kk];
                for j in 0..b {
                    blk[i * b + j] -= l * blk[kk * b + j];
                }
            }
        }
    } else {
        for kk in 0..b {
            let pivot = diag[kk * b + kk];
            for i in 0..b {
                blk[i * b + kk] /= pivot;
                let l = blk[i * b + kk];
                for j in kk + 1..b {
                    blk[i * b + j] -= l * diag[kk * b + j];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Multiplies the L and U factors packed in `lu` and compares to
    /// the original matrix.
    fn residual(original: &[f64], lu: &[f64], n: usize) -> f64 {
        let mut worst = 0.0f64;
        for i in 0..n {
            for j in 0..n {
                let mut sum = 0.0;
                for k in 0..=i.min(j) {
                    let l = if k == i { 1.0 } else { lu[i * n + k] };
                    let l = if k < i { lu[i * n + k] } else { l };
                    let u = lu[k * n + j];
                    sum += if k <= j { l * u } else { 0.0 };
                }
                worst = worst.max((sum - original[i * n + j]).abs());
            }
        }
        worst
    }

    #[test]
    fn reference_factorization_reconstructs_matrix() {
        let app = LuApp::new(32, 8, LuLayout::NonContiguous);
        let n = app.n;
        let original: Vec<f64> = (0..n * n).map(|x| app.initial(x / n, x % n)).collect();
        let lu = app.reference();
        let r = residual(&original, &lu, n);
        assert!(r < 1e-8, "LU residual {r}");
    }

    #[test]
    fn contiguous_indexing_is_block_major() {
        let app = LuApp::new(8, 4, LuLayout::Contiguous);
        // Block (0,0) occupies indices 0..16.
        assert_eq!(app.idx(0, 0), 0);
        assert_eq!(app.idx(3, 3), 15);
        // Block (0,1) starts right after.
        assert_eq!(app.idx(0, 4), 16);
        // Block (1,0) after the first block row.
        assert_eq!(app.idx(4, 0), 32);
    }

    #[test]
    fn noncontiguous_indexing_is_row_major() {
        let app = LuApp::new(8, 4, LuLayout::NonContiguous);
        assert_eq!(app.idx(3, 5), 3 * 8 + 5);
    }

    #[test]
    fn ownership_is_a_partition() {
        for nt in [1, 2, 4, 8] {
            for bi in 0..6 {
                for bj in 0..6 {
                    assert!(LuApp::owner(bi, bj, nt) < nt);
                }
            }
        }
    }

    #[test]
    fn diagonal_dominance() {
        let app = LuApp::new(64, 8, LuLayout::Contiguous);
        for i in 0..64 {
            assert!(app.initial(i, i) > 32.0);
        }
    }

    #[test]
    #[should_panic(expected = "block must divide n")]
    fn bad_blocking_rejected() {
        LuApp::new(100, 32, LuLayout::Contiguous);
    }
}
