//! The benchmark suite: one entry point over all eight applications.
//!
//! [`Benchmark`] enumerates the paper's applications in its figure
//! order and dispatches runs, hiding each program's concrete handle
//! type. The experiment harness sweeps over `Benchmark::ALL`.

use rsdsm_core::{
    golden_run, DsmConfig, GoldenRun, GrantRecord, PrefetchConfig, QueueBackend, RunReport,
    SimError, Simulation, Trace,
};

use crate::fft::FftApp;
use crate::lu::LuApp;
use crate::ocean::OceanApp;
use crate::radix::RadixApp;
use crate::sor::SorApp;
use crate::water_nsq::WaterNsqApp;
use crate::water_sp::WaterSpApp;

/// Problem size selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Scaled-down sizes preserving the sharing structure (default
    /// for the experiment binaries; each run takes well under a
    /// second of wall-clock time).
    Default,
    /// The paper's exact problem sizes (slow).
    Paper,
    /// Tiny sizes for tests.
    Test,
}

/// Dispatches a `(Benchmark, Scale)` pair to the concrete application
/// value, binding it to `$app` inside `$body`. [`DsmProgram`]
/// (rsdsm_core::DsmProgram) has an associated `Handles` type, so it is
/// not object-safe; this macro is how [`Benchmark::run`],
/// [`Benchmark::run_traced`], and [`Benchmark::golden`] share the
/// 24-arm problem-size table without trait objects.
macro_rules! with_app {
    ($bench:expr, $scale:expr, |$app:ident| $body:expr) => {
        match ($bench, $scale) {
            (Benchmark::Fft, Scale::Paper) => {
                let $app = FftApp::paper_scale();
                $body
            }
            (Benchmark::Fft, Scale::Default) => {
                let $app = FftApp::default_scale();
                $body
            }
            (Benchmark::Fft, Scale::Test) => {
                let $app = FftApp::new(10);
                $body
            }
            (Benchmark::LuNcont, Scale::Paper) => {
                let $app = LuApp::paper_ncont();
                $body
            }
            (Benchmark::LuNcont, Scale::Default) => {
                let $app = LuApp::default_ncont();
                $body
            }
            (Benchmark::LuNcont, Scale::Test) => {
                let $app = LuApp::new(64, 16, crate::lu::LuLayout::NonContiguous);
                $body
            }
            (Benchmark::LuCont, Scale::Paper) => {
                let $app = LuApp::paper_cont();
                $body
            }
            (Benchmark::LuCont, Scale::Default) => {
                let $app = LuApp::default_cont();
                $body
            }
            (Benchmark::LuCont, Scale::Test) => {
                let $app = LuApp::new(64, 16, crate::lu::LuLayout::Contiguous);
                $body
            }
            (Benchmark::Ocean, Scale::Paper) => {
                let $app = OceanApp::paper_scale();
                $body
            }
            (Benchmark::Ocean, Scale::Default) => {
                let $app = OceanApp::default_scale();
                $body
            }
            (Benchmark::Ocean, Scale::Test) => {
                let $app = OceanApp::new(34, 2);
                $body
            }
            (Benchmark::Radix, Scale::Paper) => {
                let $app = RadixApp::paper_scale();
                $body
            }
            (Benchmark::Radix, Scale::Default) => {
                let $app = RadixApp::default_scale();
                $body
            }
            (Benchmark::Radix, Scale::Test) => {
                let $app = RadixApp::new(1 << 11, 12, 6);
                $body
            }
            (Benchmark::Sor, Scale::Paper) => {
                let $app = SorApp::paper_scale();
                $body
            }
            (Benchmark::Sor, Scale::Default) => {
                let $app = SorApp::default_scale();
                $body
            }
            (Benchmark::Sor, Scale::Test) => {
                let $app = SorApp::new(64, 64, 3);
                $body
            }
            (Benchmark::WaterNsq, Scale::Paper) => {
                let $app = WaterNsqApp::paper_scale();
                $body
            }
            (Benchmark::WaterNsq, Scale::Default) => {
                let $app = WaterNsqApp::default_scale();
                $body
            }
            (Benchmark::WaterNsq, Scale::Test) => {
                let $app = WaterNsqApp::new(48, 2);
                $body
            }
            (Benchmark::WaterSp, Scale::Paper) => {
                let $app = WaterSpApp::paper_scale();
                $body
            }
            (Benchmark::WaterSp, Scale::Default) => {
                let $app = WaterSpApp::default_scale();
                $body
            }
            (Benchmark::WaterSp, Scale::Test) => {
                let $app = WaterSpApp::new(96, 2);
                $body
            }
        }
    };
}

/// One of the paper's eight applications.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// 1D complex FFT (SPLASH-2).
    Fft,
    /// Blocked LU, non-contiguous layout (SPLASH-2).
    LuNcont,
    /// Blocked LU, contiguous layout (SPLASH-2).
    LuCont,
    /// Ocean current simulation (SPLASH-2, simplified).
    Ocean,
    /// Integer radix sort (SPLASH-2).
    Radix,
    /// Red-black successive over-relaxation (TreadMarks).
    Sor,
    /// O(n^2) molecular dynamics (SPLASH-2, simplified potential).
    WaterNsq,
    /// O(n) spatial molecular dynamics (SPLASH-2, simplified).
    WaterSp,
}

impl Benchmark {
    /// All benchmarks, in the order of the paper's Figure 2.
    pub const ALL: [Benchmark; 8] = [
        Benchmark::Fft,
        Benchmark::LuNcont,
        Benchmark::LuCont,
        Benchmark::Ocean,
        Benchmark::Radix,
        Benchmark::Sor,
        Benchmark::WaterNsq,
        Benchmark::WaterSp,
    ];

    /// The paper's name for the application.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Fft => "FFT",
            Benchmark::LuNcont => "LU-NCONT",
            Benchmark::LuCont => "LU-CONT",
            Benchmark::Ocean => "OCEAN",
            Benchmark::Radix => "RADIX",
            Benchmark::Sor => "SOR",
            Benchmark::WaterNsq => "WATER-NSQ",
            Benchmark::WaterSp => "WATER-SP",
        }
    }

    /// Parses a paper-style name (case-insensitive).
    pub fn from_name(name: &str) -> Option<Benchmark> {
        Benchmark::ALL
            .into_iter()
            .find(|b| b.name().eq_ignore_ascii_case(name))
    }

    /// Whether the paper used compiler-inserted prefetching for this
    /// application (FFT and LU-NCONT; hand-tuned elsewhere, §3.2).
    pub fn uses_compiler_prefetch(self) -> bool {
        matches!(self, Benchmark::Fft | Benchmark::LuNcont)
    }

    /// The prefetch mode the paper's "P" bars use for this app.
    pub fn paper_prefetch(self) -> PrefetchConfig {
        if self.uses_compiler_prefetch() {
            PrefetchConfig::compiler()
        } else {
            PrefetchConfig::hand()
        }
    }

    /// Runs the benchmark at `scale` under `cfg`.
    ///
    /// # Errors
    ///
    /// Propagates any [`SimError`] from the engine.
    pub fn run(self, scale: Scale, cfg: DsmConfig) -> Result<RunReport, SimError> {
        let sim = Simulation::new(cfg);
        with_app!(self, scale, |app| sim.run(&app))
    }

    /// Runs the benchmark like [`Benchmark::run`] on an explicitly
    /// chosen event-queue backend. Backend choice can never change
    /// results (the wheel and the heap reference are pop-for-pop
    /// identical); this entry point exists so differential tests can
    /// pin exactly that, race-free, without touching `RSDSM_QUEUE`.
    ///
    /// # Errors
    ///
    /// Propagates any [`SimError`] from the engine.
    pub fn run_queued(
        self,
        scale: Scale,
        cfg: DsmConfig,
        backend: QueueBackend,
    ) -> Result<RunReport, SimError> {
        let sim = Simulation::new(cfg).with_queue_backend(backend);
        with_app!(self, scale, |app| sim.run(&app))
    }

    /// [`Benchmark::run_traced`] on an explicitly chosen event-queue
    /// backend; see [`Benchmark::run_queued`].
    ///
    /// # Errors
    ///
    /// Propagates any [`SimError`] from the engine.
    pub fn run_traced_queued(
        self,
        scale: Scale,
        cfg: DsmConfig,
        backend: QueueBackend,
    ) -> Result<(RunReport, Trace), SimError> {
        let sim = Simulation::new(cfg).with_queue_backend(backend);
        with_app!(self, scale, |app| sim.run_traced(&app))
    }

    /// Runs the benchmark at `scale` under `cfg` with event tracing
    /// enabled, returning the report (with its `trace` metrics
    /// populated) and the full event [`Trace`].
    ///
    /// The traced run is event-for-event identical to what
    /// [`Benchmark::run`] would simulate: tracing charges no cost,
    /// draws no randomness, and the returned report digests
    /// identically to the untraced one.
    ///
    /// # Errors
    ///
    /// Propagates any [`SimError`] from the engine.
    pub fn run_traced(self, scale: Scale, cfg: DsmConfig) -> Result<(RunReport, Trace), SimError> {
        let sim = Simulation::new(cfg);
        with_app!(self, scale, |app| sim.run_traced(&app))
    }

    /// Runs the benchmark through the golden sequential executor
    /// ([`golden_run`]) at `scale`, using the same problem sizes as
    /// [`Benchmark::run`], replaying `lock_trace` for per-lock
    /// critical-section order. The result is the reference final
    /// memory image for differential checking against a DSM run under
    /// the same `cfg`.
    ///
    /// # Errors
    ///
    /// Returns a description when a thread panics or the replay
    /// schedule wedges (see [`golden_run`]).
    pub fn golden(
        self,
        scale: Scale,
        cfg: &DsmConfig,
        lock_trace: &[GrantRecord],
    ) -> Result<GoldenRun, String> {
        with_app!(self, scale, |app| golden_run(&app, cfg, lock_trace))
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for b in Benchmark::ALL {
            assert_eq!(Benchmark::from_name(b.name()), Some(b));
            assert_eq!(Benchmark::from_name(&b.name().to_lowercase()), Some(b));
        }
        assert_eq!(Benchmark::from_name("nope"), None);
    }

    #[test]
    fn compiler_prefetch_matches_paper() {
        assert!(Benchmark::Fft.uses_compiler_prefetch());
        assert!(Benchmark::LuNcont.uses_compiler_prefetch());
        assert!(!Benchmark::Sor.uses_compiler_prefetch());
        assert!(Benchmark::Fft.paper_prefetch().compiler_style);
        assert!(!Benchmark::Sor.paper_prefetch().compiler_style);
    }
}
