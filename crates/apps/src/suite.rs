//! The benchmark suite: one entry point over all eight applications.
//!
//! [`Benchmark`] enumerates the paper's applications in its figure
//! order and dispatches runs, hiding each program's concrete handle
//! type. The experiment harness sweeps over `Benchmark::ALL`.

use rsdsm_core::{
    golden_run, DsmConfig, GoldenRun, GrantRecord, PrefetchConfig, RunReport, SimError, Simulation,
};

use crate::fft::FftApp;
use crate::lu::LuApp;
use crate::ocean::OceanApp;
use crate::radix::RadixApp;
use crate::sor::SorApp;
use crate::water_nsq::WaterNsqApp;
use crate::water_sp::WaterSpApp;

/// Problem size selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Scaled-down sizes preserving the sharing structure (default
    /// for the experiment binaries; each run takes well under a
    /// second of wall-clock time).
    Default,
    /// The paper's exact problem sizes (slow).
    Paper,
    /// Tiny sizes for tests.
    Test,
}

/// One of the paper's eight applications.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// 1D complex FFT (SPLASH-2).
    Fft,
    /// Blocked LU, non-contiguous layout (SPLASH-2).
    LuNcont,
    /// Blocked LU, contiguous layout (SPLASH-2).
    LuCont,
    /// Ocean current simulation (SPLASH-2, simplified).
    Ocean,
    /// Integer radix sort (SPLASH-2).
    Radix,
    /// Red-black successive over-relaxation (TreadMarks).
    Sor,
    /// O(n^2) molecular dynamics (SPLASH-2, simplified potential).
    WaterNsq,
    /// O(n) spatial molecular dynamics (SPLASH-2, simplified).
    WaterSp,
}

impl Benchmark {
    /// All benchmarks, in the order of the paper's Figure 2.
    pub const ALL: [Benchmark; 8] = [
        Benchmark::Fft,
        Benchmark::LuNcont,
        Benchmark::LuCont,
        Benchmark::Ocean,
        Benchmark::Radix,
        Benchmark::Sor,
        Benchmark::WaterNsq,
        Benchmark::WaterSp,
    ];

    /// The paper's name for the application.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Fft => "FFT",
            Benchmark::LuNcont => "LU-NCONT",
            Benchmark::LuCont => "LU-CONT",
            Benchmark::Ocean => "OCEAN",
            Benchmark::Radix => "RADIX",
            Benchmark::Sor => "SOR",
            Benchmark::WaterNsq => "WATER-NSQ",
            Benchmark::WaterSp => "WATER-SP",
        }
    }

    /// Parses a paper-style name (case-insensitive).
    pub fn from_name(name: &str) -> Option<Benchmark> {
        Benchmark::ALL
            .into_iter()
            .find(|b| b.name().eq_ignore_ascii_case(name))
    }

    /// Whether the paper used compiler-inserted prefetching for this
    /// application (FFT and LU-NCONT; hand-tuned elsewhere, §3.2).
    pub fn uses_compiler_prefetch(self) -> bool {
        matches!(self, Benchmark::Fft | Benchmark::LuNcont)
    }

    /// The prefetch mode the paper's "P" bars use for this app.
    pub fn paper_prefetch(self) -> PrefetchConfig {
        if self.uses_compiler_prefetch() {
            PrefetchConfig::compiler()
        } else {
            PrefetchConfig::hand()
        }
    }

    /// Runs the benchmark at `scale` under `cfg`.
    ///
    /// # Errors
    ///
    /// Propagates any [`SimError`] from the engine.
    pub fn run(self, scale: Scale, cfg: DsmConfig) -> Result<RunReport, SimError> {
        let sim = Simulation::new(cfg);
        match (self, scale) {
            (Benchmark::Fft, Scale::Paper) => sim.run(&FftApp::paper_scale()),
            (Benchmark::Fft, Scale::Default) => sim.run(&FftApp::default_scale()),
            (Benchmark::Fft, Scale::Test) => sim.run(&FftApp::new(10)),
            (Benchmark::LuNcont, Scale::Paper) => sim.run(&LuApp::paper_ncont()),
            (Benchmark::LuNcont, Scale::Default) => sim.run(&LuApp::default_ncont()),
            (Benchmark::LuNcont, Scale::Test) => {
                sim.run(&LuApp::new(64, 16, crate::lu::LuLayout::NonContiguous))
            }
            (Benchmark::LuCont, Scale::Paper) => sim.run(&LuApp::paper_cont()),
            (Benchmark::LuCont, Scale::Default) => sim.run(&LuApp::default_cont()),
            (Benchmark::LuCont, Scale::Test) => {
                sim.run(&LuApp::new(64, 16, crate::lu::LuLayout::Contiguous))
            }
            (Benchmark::Ocean, Scale::Paper) => sim.run(&OceanApp::paper_scale()),
            (Benchmark::Ocean, Scale::Default) => sim.run(&OceanApp::default_scale()),
            (Benchmark::Ocean, Scale::Test) => sim.run(&OceanApp::new(34, 2)),
            (Benchmark::Radix, Scale::Paper) => sim.run(&RadixApp::paper_scale()),
            (Benchmark::Radix, Scale::Default) => sim.run(&RadixApp::default_scale()),
            (Benchmark::Radix, Scale::Test) => sim.run(&RadixApp::new(1 << 11, 12, 6)),
            (Benchmark::Sor, Scale::Paper) => sim.run(&SorApp::paper_scale()),
            (Benchmark::Sor, Scale::Default) => sim.run(&SorApp::default_scale()),
            (Benchmark::Sor, Scale::Test) => sim.run(&SorApp::new(64, 64, 3)),
            (Benchmark::WaterNsq, Scale::Paper) => sim.run(&WaterNsqApp::paper_scale()),
            (Benchmark::WaterNsq, Scale::Default) => sim.run(&WaterNsqApp::default_scale()),
            (Benchmark::WaterNsq, Scale::Test) => sim.run(&WaterNsqApp::new(48, 2)),
            (Benchmark::WaterSp, Scale::Paper) => sim.run(&WaterSpApp::paper_scale()),
            (Benchmark::WaterSp, Scale::Default) => sim.run(&WaterSpApp::default_scale()),
            (Benchmark::WaterSp, Scale::Test) => sim.run(&WaterSpApp::new(96, 2)),
        }
    }

    /// Runs the benchmark through the golden sequential executor
    /// ([`golden_run`]) at `scale`, using the same problem sizes as
    /// [`Benchmark::run`], replaying `lock_trace` for per-lock
    /// critical-section order. The result is the reference final
    /// memory image for differential checking against a DSM run under
    /// the same `cfg`.
    ///
    /// # Errors
    ///
    /// Returns a description when a thread panics or the replay
    /// schedule wedges (see [`golden_run`]).
    pub fn golden(
        self,
        scale: Scale,
        cfg: &DsmConfig,
        lock_trace: &[GrantRecord],
    ) -> Result<GoldenRun, String> {
        match (self, scale) {
            (Benchmark::Fft, Scale::Paper) => golden_run(&FftApp::paper_scale(), cfg, lock_trace),
            (Benchmark::Fft, Scale::Default) => {
                golden_run(&FftApp::default_scale(), cfg, lock_trace)
            }
            (Benchmark::Fft, Scale::Test) => golden_run(&FftApp::new(10), cfg, lock_trace),
            (Benchmark::LuNcont, Scale::Paper) => {
                golden_run(&LuApp::paper_ncont(), cfg, lock_trace)
            }
            (Benchmark::LuNcont, Scale::Default) => {
                golden_run(&LuApp::default_ncont(), cfg, lock_trace)
            }
            (Benchmark::LuNcont, Scale::Test) => golden_run(
                &LuApp::new(64, 16, crate::lu::LuLayout::NonContiguous),
                cfg,
                lock_trace,
            ),
            (Benchmark::LuCont, Scale::Paper) => golden_run(&LuApp::paper_cont(), cfg, lock_trace),
            (Benchmark::LuCont, Scale::Default) => {
                golden_run(&LuApp::default_cont(), cfg, lock_trace)
            }
            (Benchmark::LuCont, Scale::Test) => golden_run(
                &LuApp::new(64, 16, crate::lu::LuLayout::Contiguous),
                cfg,
                lock_trace,
            ),
            (Benchmark::Ocean, Scale::Paper) => {
                golden_run(&OceanApp::paper_scale(), cfg, lock_trace)
            }
            (Benchmark::Ocean, Scale::Default) => {
                golden_run(&OceanApp::default_scale(), cfg, lock_trace)
            }
            (Benchmark::Ocean, Scale::Test) => golden_run(&OceanApp::new(34, 2), cfg, lock_trace),
            (Benchmark::Radix, Scale::Paper) => {
                golden_run(&RadixApp::paper_scale(), cfg, lock_trace)
            }
            (Benchmark::Radix, Scale::Default) => {
                golden_run(&RadixApp::default_scale(), cfg, lock_trace)
            }
            (Benchmark::Radix, Scale::Test) => {
                golden_run(&RadixApp::new(1 << 11, 12, 6), cfg, lock_trace)
            }
            (Benchmark::Sor, Scale::Paper) => golden_run(&SorApp::paper_scale(), cfg, lock_trace),
            (Benchmark::Sor, Scale::Default) => {
                golden_run(&SorApp::default_scale(), cfg, lock_trace)
            }
            (Benchmark::Sor, Scale::Test) => golden_run(&SorApp::new(64, 64, 3), cfg, lock_trace),
            (Benchmark::WaterNsq, Scale::Paper) => {
                golden_run(&WaterNsqApp::paper_scale(), cfg, lock_trace)
            }
            (Benchmark::WaterNsq, Scale::Default) => {
                golden_run(&WaterNsqApp::default_scale(), cfg, lock_trace)
            }
            (Benchmark::WaterNsq, Scale::Test) => {
                golden_run(&WaterNsqApp::new(48, 2), cfg, lock_trace)
            }
            (Benchmark::WaterSp, Scale::Paper) => {
                golden_run(&WaterSpApp::paper_scale(), cfg, lock_trace)
            }
            (Benchmark::WaterSp, Scale::Default) => {
                golden_run(&WaterSpApp::default_scale(), cfg, lock_trace)
            }
            (Benchmark::WaterSp, Scale::Test) => {
                golden_run(&WaterSpApp::new(96, 2), cfg, lock_trace)
            }
        }
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for b in Benchmark::ALL {
            assert_eq!(Benchmark::from_name(b.name()), Some(b));
            assert_eq!(Benchmark::from_name(&b.name().to_lowercase()), Some(b));
        }
        assert_eq!(Benchmark::from_name("nope"), None);
    }

    #[test]
    fn compiler_prefetch_matches_paper() {
        assert!(Benchmark::Fft.uses_compiler_prefetch());
        assert!(Benchmark::LuNcont.uses_compiler_prefetch());
        assert!(!Benchmark::Sor.uses_compiler_prefetch());
        assert!(Benchmark::Fft.paper_prefetch().compiler_style);
        assert!(!Benchmark::Sor.paper_prefetch().compiler_style);
    }
}
