//! # rsdsm-apps
//!
//! The eight benchmark applications of the HPCA-4 1998 paper, ported
//! to the rsdsm software DSM: FFT, LU-CONT, LU-NCONT, OCEAN, RADIX,
//! SOR, WATER-NSQ and WATER-SP. Each preserves its SPLASH-2 (or
//! TreadMarks) parallel decomposition, sharing pattern, and
//! synchronization structure, carries the paper's prefetch
//! annotations (enabled or disabled per run configuration), and
//! verifies its numeric result against a sequential reference.
//!
//! # Examples
//!
//! ```
//! use rsdsm_apps::{Benchmark, Scale};
//! use rsdsm_core::DsmConfig;
//!
//! let report = Benchmark::Sor
//!     .run(Scale::Test, DsmConfig::paper_cluster(2).with_seed(1))
//!     .expect("run succeeds");
//! assert!(report.verified);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fft;
mod lu;
mod ocean;
mod radix;
mod sor;
mod suite;
mod util;
mod water_nsq;
mod water_sp;

pub use fft::{FftApp, FftHandles};
pub use lu::{LuApp, LuLayout};
pub use ocean::{OceanApp, OceanHandles};
pub use radix::{RadixApp, RadixHandles};
pub use sor::SorApp;
pub use suite::{Benchmark, Scale};
pub use util::{block_range, fft_in_place, fft_reference, gen_f64, gen_u32, BarrierCycle, Complex};
pub use water_nsq::{WaterNsqApp, WaterNsqHandles};
pub use water_sp::{WaterSpApp, WaterSpHandles};
