//! Shared helpers for the benchmark applications: block
//! partitioning, complex arithmetic for FFT, and deterministic data
//! generation.

use rsdsm_core::{BarrierId, DsmCtx};
use rsdsm_simnet::DetRng;

/// The elements `[start, end)` assigned to worker `t` of `n` under
/// block partitioning (earlier workers get the remainder).
///
/// # Examples
///
/// ```
/// use rsdsm_apps::block_range;
///
/// assert_eq!(block_range(10, 0, 3), (0, 4));
/// assert_eq!(block_range(10, 1, 3), (4, 7));
/// assert_eq!(block_range(10, 2, 3), (7, 10));
/// ```
///
/// # Panics
///
/// Panics if `t >= n` or `n == 0`.
pub fn block_range(len: usize, t: usize, n: usize) -> (usize, usize) {
    assert!(n > 0 && t < n, "worker {t} of {n}");
    let base = len / n;
    let rem = len % n;
    let start = t * base + t.min(rem);
    let size = base + usize::from(t < rem);
    (start, start + size)
}

/// A complex number for the FFT kernels.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Constructs a complex number.
    pub fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// `e^{i·theta}`.
    pub fn from_angle(theta: f64) -> Self {
        Complex {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Squared magnitude.
    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }
}

impl std::ops::Add for Complex {
    type Output = Complex;
    fn add(self, o: Complex) -> Complex {
        Complex {
            re: self.re + o.re,
            im: self.im + o.im,
        }
    }
}

impl std::ops::Sub for Complex {
    type Output = Complex;
    fn sub(self, o: Complex) -> Complex {
        Complex {
            re: self.re - o.re,
            im: self.im - o.im,
        }
    }
}

impl std::ops::Mul for Complex {
    type Output = Complex;
    fn mul(self, o: Complex) -> Complex {
        Complex {
            re: self.re * o.re - self.im * o.im,
            im: self.re * o.im + self.im * o.re,
        }
    }
}

/// In-place iterative radix-2 FFT (decimation in time).
/// `inverse` selects the conjugate transform (unnormalized).
///
/// # Panics
///
/// Panics if the length is not a power of two.
pub fn fft_in_place(data: &mut [Complex], inverse: bool) {
    let n = data.len();
    assert!(n.is_power_of_two(), "FFT length must be a power of two");
    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            data.swap(i, j);
        }
    }
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::from_angle(ang);
        let mut i = 0;
        while i < n {
            let mut w = Complex::new(1.0, 0.0);
            for k in 0..len / 2 {
                let u = data[i + k];
                let v = data[i + k + len / 2] * w;
                data[i + k] = u + v;
                data[i + k + len / 2] = u - v;
                w = w * wlen;
            }
            i += len;
        }
        len <<= 1;
    }
}

/// Reference sequential FFT used for verification.
pub fn fft_reference(input: &[Complex]) -> Vec<Complex> {
    let mut out = input.to_vec();
    fft_in_place(&mut out, false);
    out
}

/// Deterministic pseudo-random f64 in `[0, 1)` for element `i` of a
/// seeded stream — lets verification re-generate the same inputs
/// without storing them.
pub fn gen_f64(seed: u64, i: usize) -> f64 {
    let mut rng = DetRng::new(seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    rng.next_f64()
}

/// Deterministic pseudo-random u32 below `bound` for element `i`.
pub fn gen_u32(seed: u64, i: usize, bound: u32) -> u32 {
    let mut rng = DetRng::new(seed ^ (i as u64).wrapping_mul(0xA076_1D64_78BD_642F));
    rng.next_below(bound as u64) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_range_covers_everything() {
        for len in [0usize, 1, 7, 10, 64] {
            for n in 1..=8usize {
                let mut covered = 0;
                let mut prev_end = 0;
                for t in 0..n {
                    let (s, e) = block_range(len, t, n);
                    assert_eq!(s, prev_end, "contiguous blocks");
                    assert!(e >= s);
                    covered += e - s;
                    prev_end = e;
                }
                assert_eq!(covered, len);
                assert_eq!(prev_end, len);
            }
        }
    }

    #[test]
    fn block_range_balanced() {
        for t in 0..4 {
            let (s, e) = block_range(100, t, 4);
            assert_eq!(e - s, 25);
            assert_eq!(s, t * 25);
        }
    }

    #[test]
    fn fft_matches_naive_dft() {
        let n = 16;
        let input: Vec<Complex> = (0..n)
            .map(|i| Complex::new(gen_f64(1, i), gen_f64(2, i)))
            .collect();
        let fast = fft_reference(&input);
        #[allow(clippy::needless_range_loop)]
        for k in 0..n {
            let mut acc = Complex::default();
            for (j, x) in input.iter().enumerate() {
                let ang = -2.0 * std::f64::consts::PI * (j * k) as f64 / n as f64;
                acc = acc + *x * Complex::from_angle(ang);
            }
            assert!(
                (acc - fast[k]).norm_sq() < 1e-18,
                "bin {k}: {acc:?} vs {:?}",
                fast[k]
            );
        }
    }

    #[test]
    fn fft_round_trip() {
        let n = 64;
        let input: Vec<Complex> = (0..n).map(|i| Complex::new(gen_f64(3, i), 0.0)).collect();
        let mut data = input.clone();
        fft_in_place(&mut data, false);
        fft_in_place(&mut data, true);
        for (a, b) in input.iter().zip(&data) {
            let restored = Complex::new(b.re / n as f64, b.im / n as f64);
            assert!((*a - restored).norm_sq() < 1e-18);
        }
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(gen_f64(5, 10), gen_f64(5, 10));
        assert_ne!(gen_f64(5, 10), gen_f64(5, 11));
        assert_eq!(gen_u32(7, 3, 100), gen_u32(7, 3, 100));
        assert!(gen_u32(7, 3, 100) < 100);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn fft_rejects_non_power_of_two() {
        let mut d = vec![Complex::default(); 12];
        fft_in_place(&mut d, false);
    }
}

/// Issues successive global barriers over a small set of reusable
/// barrier ids, the way SPLASH-2 programs reuse one static barrier
/// object. Reuse matters for the runtime's history-based automatic
/// prefetcher, which keys access histories by synchronization object.
///
/// Four alternating ids are used: an episode is always fully drained
/// before its id comes around again, and the even cycle length keeps
/// period-2 phase structures (e.g. red/black sweeps) aligned with
/// their histories.
#[derive(Debug, Clone, Default)]
pub struct BarrierCycle {
    count: u32,
}

impl BarrierCycle {
    /// A fresh cycle (ids start after the conventional init barrier 0).
    pub fn new() -> Self {
        BarrierCycle::default()
    }

    /// Arrives at the next barrier in the cycle.
    pub fn next(&mut self, ctx: &mut DsmCtx) {
        ctx.barrier(BarrierId(1 + self.count % 4));
        self.count += 1;
    }
}
