//! WATER-NSQ: O(n^2) molecular dynamics (SPLASH-2, simplified
//! potential).
//!
//! Molecules are block-owned; each step every thread computes pair
//! forces for its molecules against a half shell of the others,
//! accumulates privately, then merges into the shared force array
//! under per-block locks — the multiple-producer, multiple-consumer
//! pattern the paper highlights: the major misses happen at lock-
//! protected shared updates, and the *non-binding* property lets
//! prefetches be hoisted above the acquires (§3.2).
//!
//! The intermolecular potential is a softened repulsive pair force
//! rather than the real water potential, and each molecule occupies a
//! realistic record footprint ([`STRIDE`] elements per array) so page-
//! level sharing behaves like the original; the sharing, locking and
//! synchronization structure — which is what the paper measures — is
//! preserved.

use rsdsm_core::{BarrierId, DsmCtx, DsmProgram, Heap, HomePolicy, LockId, SharedVec, VerifyCtx};
use rsdsm_simnet::SimDuration;

use crate::block_range;
use crate::util::{gen_f64, BarrierCycle};

/// Simulated cost per pair-force evaluation (the real water potential
/// is expensive — dozens of flops).
const NS_PER_PAIR: u64 = 8000;
/// Integration cost per molecule.
const NS_PER_INTEGRATE: u64 = 2000;
/// Elements reserved per molecule in each shared array. A real
/// SPLASH-2 water molecule record carries positions, derivatives and
/// forces for three atoms (hundreds of bytes); this stride models that
/// footprint so page-level sharing behaves like the original.
const STRIDE: usize = 32;
/// Molecules covered by one force-merge lock. Fine-grained, close to
/// the SPLASH-2 per-molecule locking that keeps holders from queueing
/// behind each other.
const MOLS_PER_LOCK: usize = 4;
/// Lock ids used by this app start here.
const LOCK_BASE: u32 = 100;
/// The global potential-energy accumulator lock.
const ENERGY_LOCK: LockId = LockId(99);

/// Softened repulsive pair force: `f(r) = k / (r^2 + eps)^2` along
/// the separation vector.
fn pair_force(dx: f64, dy: f64, dz: f64) -> [f64; 3] {
    let r2 = dx * dx + dy * dy + dz * dz;
    let denom = (r2 + 0.05) * (r2 + 0.05);
    let k = 1e-3 / denom;
    [k * dx, k * dy, k * dz]
}

fn pair_energy(dx: f64, dy: f64, dz: f64) -> f64 {
    let r2 = dx * dx + dy * dy + dz * dz;
    5e-4 / (r2 + 0.05)
}

/// O(n^2) molecular dynamics over `n` molecules for `steps` steps.
#[derive(Debug, Clone)]
pub struct WaterNsqApp {
    n: usize,
    steps: usize,
}

impl WaterNsqApp {
    /// A run of `n` molecules for `steps` time steps.
    ///
    /// # Panics
    ///
    /// Panics if `n < 8` or `steps == 0`.
    pub fn new(n: usize, steps: usize) -> Self {
        assert!(n >= 8, "need at least 8 molecules");
        assert!(steps > 0, "need at least one step");
        WaterNsqApp { n, steps }
    }

    /// The paper's size: 512 molecules, 9 steps.
    pub fn paper_scale() -> Self {
        WaterNsqApp::new(512, 9)
    }

    /// Scaled-down default.
    pub fn default_scale() -> Self {
        WaterNsqApp::new(256, 3)
    }

    fn initial_pos(&self, i: usize, axis: usize) -> f64 {
        gen_f64(0x3A7E | (axis as u64) << 32, i) * 4.0
    }

    fn initial_vel(&self, i: usize, axis: usize) -> f64 {
        (gen_f64(0xBEE5 | (axis as u64) << 32, i) - 0.5) * 0.01
    }

    /// The half-shell partner range of molecule `i`: `i+1 ..= i+n/2`
    /// (mod n), as in SPLASH-2 WATER.
    fn partners(&self, i: usize) -> impl Iterator<Item = usize> + '_ {
        let n = self.n;
        (1..=n / 2).filter_map(move |d| {
            let j = (i + d) % n;
            // For even n, the d = n/2 pair would be visited twice
            // (once from each side); keep only the lower index's view.
            if d == n / 2 && n.is_multiple_of(2) && i >= j {
                None
            } else {
                Some(j)
            }
        })
    }

    /// The reference force field of the final step (diagnostics).
    pub fn reference_forces_last_step(&self) -> Vec<f64> {
        let n = self.n;
        let mut pos: Vec<f64> = (0..3 * n).map(|x| self.initial_pos(x / 3, x % 3)).collect();
        let mut vel: Vec<f64> = (0..3 * n).map(|x| self.initial_vel(x / 3, x % 3)).collect();
        let mut f = vec![0.0f64; 3 * n];
        for _ in 0..self.steps {
            f = vec![0.0f64; 3 * n];
            for i in 0..n {
                for j in self.partners(i) {
                    let fv = pair_force(
                        pos[3 * i] - pos[3 * j],
                        pos[3 * i + 1] - pos[3 * j + 1],
                        pos[3 * i + 2] - pos[3 * j + 2],
                    );
                    for a in 0..3 {
                        f[3 * i + a] += fv[a];
                        f[3 * j + a] -= fv[a];
                    }
                }
            }
            for k in 0..3 * n {
                vel[k] += f[k];
                pos[k] += vel[k];
            }
        }
        f
    }

    /// Sequential reference (same force law, deterministic order).
    fn reference(&self) -> (Vec<f64>, f64) {
        let n = self.n;
        let mut pos: Vec<f64> = (0..3 * n).map(|x| self.initial_pos(x / 3, x % 3)).collect();
        let mut vel: Vec<f64> = (0..3 * n).map(|x| self.initial_vel(x / 3, x % 3)).collect();
        let mut energy = 0.0;
        for _ in 0..self.steps {
            let mut f = vec![0.0f64; 3 * n];
            energy = 0.0;
            for i in 0..n {
                for j in self.partners(i) {
                    let dx = pos[3 * i] - pos[3 * j];
                    let dy = pos[3 * i + 1] - pos[3 * j + 1];
                    let dz = pos[3 * i + 2] - pos[3 * j + 2];
                    let fv = pair_force(dx, dy, dz);
                    for a in 0..3 {
                        f[3 * i + a] += fv[a];
                        f[3 * j + a] -= fv[a];
                    }
                    energy += pair_energy(dx, dy, dz);
                }
            }
            for i in 0..n {
                for a in 0..3 {
                    vel[3 * i + a] += f[3 * i + a];
                    pos[3 * i + a] += vel[3 * i + a];
                }
            }
        }
        (pos, energy)
    }
}

/// Shared handles: positions, velocities, forces (all strided per
/// molecule), and the potential-energy cell.
#[derive(Debug, Clone, Copy)]
pub struct WaterNsqHandles {
    pos: SharedVec<f64>,
    vel: SharedVec<f64>,
    force: SharedVec<f64>,
    energy: SharedVec<f64>,
}

impl WaterNsqHandles {
    /// The strided shared force array (exposed for diagnostics).
    pub fn force_handle(&self) -> &SharedVec<f64> {
        &self.force
    }
}

impl DsmProgram for WaterNsqApp {
    type Handles = WaterNsqHandles;

    fn name(&self) -> String {
        "WATER-NSQ".into()
    }

    fn allocate(&self, heap: &mut Heap) -> Self::Handles {
        WaterNsqHandles {
            pos: heap.alloc(STRIDE * self.n, HomePolicy::Blocked),
            vel: heap.alloc(STRIDE * self.n, HomePolicy::Blocked),
            force: heap.alloc(STRIDE * self.n, HomePolicy::Blocked),
            energy: heap.alloc(1, HomePolicy::Single(0)),
        }
    }

    fn run(&self, ctx: &mut DsmCtx, h: &Self::Handles) {
        let t = ctx.thread_id();
        let nt = ctx.num_threads();
        let n = self.n;
        let (m0, m1) = block_range(n, t, nt);
        let mine = m1 - m0;

        if t == 0 {
            let mut init = vec![0.0f64; STRIDE * n];
            for i in 0..n {
                for a in 0..3 {
                    init[i * STRIDE + a] = self.initial_pos(i, a);
                }
            }
            ctx.write_slice(&h.pos, 0, &init);
            for i in 0..n {
                for a in 0..3 {
                    init[i * STRIDE + a] = self.initial_vel(i, a);
                }
            }
            ctx.write_slice(&h.vel, 0, &init);
            ctx.write(&h.energy, 0, 0.0);
        }
        ctx.barrier(BarrierId(0));

        let mut bars = BarrierCycle::new();
        for _ in 0..self.steps {
            // Zero my block of the shared force array (and the energy
            // cell, by thread 0). The position prefetch is issued here
            // — before the barrier — so the fetches overlap the
            // barrier round-trip (positions were invalidated by the
            // previous integrate phase, so the notices are in hand).
            ctx.prefetch(&h.pos, 0, STRIDE * n);
            ctx.write_slice(&h.force, STRIDE * m0, &vec![0.0f64; STRIDE * mine]);
            if t == 0 {
                ctx.write(&h.energy, 0, 0.0);
            }
            bars.next(ctx);

            // Pair forces: read all positions (prefetched), then walk
            // each owned molecule's half shell. Partner (j) force
            // updates go straight into the shared array under the
            // per-block locks, *inline* with the computation — this is
            // the SPLASH-2 structure: lock traffic is spread through
            // the compute phase, the token stays local across
            // consecutive same-block partners, and the non-binding
            // prefetch is hoisted above each acquire (§3.2).
            ctx.prefetch(&h.pos, 0, STRIDE * n);
            let strided = ctx.read_vec(&h.pos, 0, STRIDE * n);
            let pos: Vec<f64> = (0..n)
                .flat_map(|i| {
                    [
                        strided[i * STRIDE],
                        strided[i * STRIDE + 1],
                        strided[i * STRIDE + 2],
                    ]
                })
                .collect();
            let mut local_e = 0.0f64;
            let blocks = n.div_ceil(MOLS_PER_LOCK);
            // Sweep partner blocks block-major: all of this thread's
            // pair contributions into one block are accumulated
            // privately and flushed under the block's lock exactly
            // once per step (SPLASH-2 WATER batches its shared
            // inter-molecular updates the same way; the prefetch is
            // hoisted above each acquire, §3.2).
            let mut f_i = vec![0.0f64; 3 * mine];
            // Start the sweep at this thread's own block and wrap, so
            // threads hit different locks at any instant (SPLASH-2
            // staggers exactly this way to avoid convoys).
            let start_blk = m0 / MOLS_PER_LOCK;
            for blk_idx in 0..blocks {
                let blk = (start_blk + blk_idx) % blocks;
                let lo = blk * MOLS_PER_LOCK;
                let hi = ((blk + 1) * MOLS_PER_LOCK).min(n);
                let mut acc = vec![0.0f64; 3 * (hi - lo)];
                let mut touched = false;
                let mut pairs = 0u64;
                for i in m0..m1 {
                    for j in self.partners(i) {
                        if j < lo || j >= hi {
                            continue;
                        }
                        let dx = pos[3 * i] - pos[3 * j];
                        let dy = pos[3 * i + 1] - pos[3 * j + 1];
                        let dz = pos[3 * i + 2] - pos[3 * j + 2];
                        let fv = pair_force(dx, dy, dz);
                        pairs += 1;
                        for a in 0..3 {
                            f_i[3 * (i - m0) + a] += fv[a];
                            acc[3 * (j - lo) + a] -= fv[a];
                        }
                        local_e += pair_energy(dx, dy, dz);
                        touched = true;
                    }
                }
                ctx.compute(SimDuration::from_nanos(pairs * NS_PER_PAIR));
                if !touched {
                    continue;
                }
                ctx.prefetch(&h.force, STRIDE * lo, STRIDE * hi);
                ctx.acquire(LockId(LOCK_BASE + blk as u32));
                let mut cur = ctx.read_vec(&h.force, STRIDE * lo, STRIDE * (hi - lo));
                for m in lo..hi {
                    for a in 0..3 {
                        cur[(m - lo) * STRIDE + a] += acc[3 * (m - lo) + a];
                    }
                }
                ctx.write_slice(&h.force, STRIDE * lo, &cur);
                ctx.release(LockId(LOCK_BASE + blk as u32));
            }
            // Flush the accumulated forces of this thread's own
            // molecules, block by block.
            let my_first_blk = m0 / MOLS_PER_LOCK;
            let my_last_blk = (m1 - 1) / MOLS_PER_LOCK;
            for blk in my_first_blk..=my_last_blk {
                let lo = (blk * MOLS_PER_LOCK).max(m0);
                let hi = ((blk + 1) * MOLS_PER_LOCK).min(m1);
                ctx.prefetch(&h.force, STRIDE * lo, STRIDE * hi);
                ctx.acquire(LockId(LOCK_BASE + blk as u32));
                let mut cur = ctx.read_vec(&h.force, STRIDE * lo, STRIDE * (hi - lo));
                for m in lo..hi {
                    for a in 0..3 {
                        cur[(m - lo) * STRIDE + a] += f_i[3 * (m - m0) + a];
                    }
                }
                ctx.write_slice(&h.force, STRIDE * lo, &cur);
                ctx.release(LockId(LOCK_BASE + blk as u32));
            }

            // Potential energy under the global lock.
            ctx.prefetch(&h.energy, 0, 1);
            ctx.acquire(ENERGY_LOCK);
            let e = ctx.read(&h.energy, 0);
            ctx.write(&h.energy, 0, e + local_e);
            ctx.release(ENERGY_LOCK);

            bars.next(ctx);

            // Integrate my molecules.
            ctx.prefetch(&h.force, STRIDE * m0, STRIDE * m1);
            let f = ctx.read_vec(&h.force, STRIDE * m0, STRIDE * mine);
            let mut vel = ctx.read_vec(&h.vel, STRIDE * m0, STRIDE * mine);
            let mut pos_mine = ctx.read_vec(&h.pos, STRIDE * m0, STRIDE * mine);
            for i in 0..mine {
                for a in 0..3 {
                    vel[i * STRIDE + a] += f[i * STRIDE + a];
                    pos_mine[i * STRIDE + a] += vel[i * STRIDE + a];
                }
            }
            ctx.compute(SimDuration::from_nanos(mine as u64 * NS_PER_INTEGRATE));
            ctx.write_slice(&h.vel, STRIDE * m0, &vel);
            ctx.write_slice(&h.pos, STRIDE * m0, &pos_mine);
            bars.next(ctx);
        }
    }

    fn verify(&self, mem: &VerifyCtx, h: &Self::Handles) -> bool {
        let (expect_pos, expect_e) = self.reference();
        let strided = mem.read_vec(&h.pos, 0, STRIDE * self.n);
        let mut worst = 0.0f64;
        let pos_ok = (0..self.n).all(|i| {
            (0..3).all(|a| {
                let got = strided[i * STRIDE + a];
                let want = expect_pos[3 * i + a];
                worst = worst.max((got - want).abs());
                (got - want).abs() <= 1e-6 * want.abs().max(1.0)
            })
        });
        let e = mem.read(&h.energy, 0);
        let e_ok = (e - expect_e).abs() <= 1e-6 * expect_e.abs().max(1e-12);
        if std::env::var_os("RSDSM_TRACE").is_some() {
            eprintln!(
                "WATER-NSQ verify: worst pos delta {worst:e}, energy {e} vs {expect_e} (delta {:e})",
                (e - expect_e).abs()
            );
            for i in 0..self.n {
                for a in 0..3 {
                    let d = (strided[i * STRIDE + a] - expect_pos[3 * i + a]).abs();
                    if d > 1e-9 {
                        eprintln!("  molecule {i} axis {a}: delta {d:e}");
                    }
                }
            }
        }
        pos_ok && e_ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn half_shell_covers_each_pair_once() {
        for n in [8usize, 9, 12] {
            let app = WaterNsqApp::new(n, 1);
            let mut seen = std::collections::HashSet::new();
            for i in 0..n {
                for j in app.partners(i) {
                    let key = (i.min(j), i.max(j));
                    assert!(seen.insert(key), "pair {key:?} visited twice (n={n})");
                }
            }
            assert_eq!(seen.len(), n * (n - 1) / 2, "n={n}");
        }
    }

    #[test]
    fn forces_obey_newtons_third_law() {
        let f = pair_force(1.0, 2.0, -1.0);
        let g = pair_force(-1.0, -2.0, 1.0);
        for a in 0..3 {
            assert!((f[a] + g[a]).abs() < 1e-18);
        }
    }

    #[test]
    fn reference_conserves_momentum() {
        let app = WaterNsqApp::new(16, 3);
        let (pos, energy) = app.reference();
        assert!(pos.iter().all(|v| v.is_finite()));
        assert!(energy > 0.0);
        let n = 16;
        let init_p: f64 = (0..3 * n).map(|x| app.initial_vel(x / 3, x % 3)).sum();
        let mut posv: Vec<f64> = (0..3 * n).map(|x| app.initial_pos(x / 3, x % 3)).collect();
        let mut vel: Vec<f64> = (0..3 * n).map(|x| app.initial_vel(x / 3, x % 3)).collect();
        for _ in 0..app.steps {
            let mut f = vec![0.0f64; 3 * n];
            for i in 0..n {
                for j in app.partners(i) {
                    let fv = pair_force(
                        posv[3 * i] - posv[3 * j],
                        posv[3 * i + 1] - posv[3 * j + 1],
                        posv[3 * i + 2] - posv[3 * j + 2],
                    );
                    for a in 0..3 {
                        f[3 * i + a] += fv[a];
                        f[3 * j + a] -= fv[a];
                    }
                }
            }
            for k in 0..3 * n {
                vel[k] += f[k];
                posv[k] += vel[k];
            }
        }
        let final_p: f64 = vel.iter().sum();
        assert!((final_p - init_p).abs() < 1e-9, "momentum drifted");
    }

    #[test]
    fn lock_blocks_do_not_straddle_pages() {
        assert_eq!(rsdsm_core::PAGE_SIZE % (STRIDE * MOLS_PER_LOCK * 8), 0);
    }
}
