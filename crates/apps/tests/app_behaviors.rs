//! Behavioural tests: each application must exhibit the
//! communication and synchronization signature the paper attributes
//! to it — not merely produce the right numbers.

use rsdsm_apps::{Benchmark, Scale};
use rsdsm_core::{Category, DsmConfig};
use rsdsm_simnet::SimDuration;

fn run(b: Benchmark) -> rsdsm_core::RunReport {
    let r = b
        .run(Scale::Default, DsmConfig::paper_cluster(8).with_seed(1998))
        .expect("run");
    assert!(r.verified);
    r
}

/// WATER-NSQ is the lock application: it must dominate the suite in
/// remote lock events, and locks must contribute real stall time.
#[test]
fn water_nsq_is_lock_bound() {
    let nsq = run(Benchmark::WaterNsq);
    assert!(nsq.locks.events > 100, "got {}", nsq.locks.events);
    assert!(nsq.locks.stall_sum > SimDuration::ZERO);
    for other in [Benchmark::Fft, Benchmark::Sor, Benchmark::LuCont] {
        let r = run(other);
        assert!(
            nsq.locks.events > 10 * r.locks.events.max(1),
            "{other} should have far fewer remote locks ({} vs {})",
            r.locks.events,
            nsq.locks.events
        );
    }
}

/// OCEAN is the barrier application: most barrier episodes per unit
/// of work in the suite.
#[test]
fn ocean_is_barrier_heavy() {
    let ocean = run(Benchmark::Ocean);
    let sor = run(Benchmark::Sor);
    // Episodes per node: OCEAN's many V-cycle phases must outnumber
    // SOR's two-per-iteration structure.
    assert!(
        ocean.barriers.events > sor.barriers.events,
        "OCEAN {} vs SOR {}",
        ocean.barriers.events,
        sor.barriers.events
    );
}

/// FFT's transposes are all-to-all: every node must both send and
/// receive a substantial share of the traffic (no idle spectators).
#[test]
fn fft_traffic_is_all_to_all() {
    let r = run(Benchmark::Fft);
    let diff_bytes: u64 = r
        .net
        .per_kind
        .iter()
        .filter(|row| row.kind.starts_with("diff"))
        .map(|row| row.bytes)
        .sum();
    assert!(
        diff_bytes > r.net.total_bytes / 2,
        "transposes should dominate traffic"
    );
}

/// LU-NCONT's row-major layout must cost far more traffic than
/// LU-CONT's block-major layout for the same matrix (the paper's
/// entire reason for running both variants).
#[test]
fn lu_layouts_differ_in_traffic() {
    let ncont = run(Benchmark::LuNcont);
    let cont = run(Benchmark::LuCont);
    assert!(
        ncont.net.total_bytes > 3 * cont.net.total_bytes / 2,
        "NCONT ({}) must move substantially more than CONT ({})",
        ncont.net.total_bytes,
        cont.net.total_bytes
    );
    assert!(
        ncont.misses.misses > 2 * cont.misses.misses,
        "false sharing must multiply NCONT misses"
    );
}

/// SOR's hot-spot: the master (node 0) serves the initial grid, so it
/// must send far more bytes than the average node.
#[test]
fn sor_initialization_hot_spots_the_master() {
    let r = run(Benchmark::Sor);
    // diff_reply traffic concentrates at node 0; approximate via the
    // per-kind table plus totals (per-node send stats are inside the
    // engine); instead check the paper-visible symptom: plenty of
    // misses and long average latency relative to the uncongested RTT.
    assert!(r.misses.misses > 300);
    assert!(
        r.misses.avg_latency() > SimDuration::from_micros(800),
        "hot-spot queueing should inflate miss latency (got {})",
        r.misses.avg_latency()
    );
}

/// RADIX moves nearly its whole key array across the cluster every
/// pass (scattered permutation writes).
#[test]
fn radix_permutation_is_communication_bound() {
    let r = run(Benchmark::Radix);
    let b = r.breakdown.normalized_to_self();
    assert!(
        b.fraction(Category::Busy) < 0.2,
        "RADIX must be communication-bound (busy {:.2})",
        b.fraction(Category::Busy)
    );
    // Remote-miss stall must be a major component. (Kernel-level
    // acks shave miss latency a little, pushing some of the stall
    // into sync idle, so the floor sits below the paper's ~30%.)
    assert!(
        b.fraction(Category::MemoryIdle) > 0.2,
        "RADIX must stall on remote misses (memory idle {:.2})",
        b.fraction(Category::MemoryIdle)
    );
}

/// WATER-SP does asymptotically less pair work than WATER-NSQ at
/// comparable molecule counts, so it runs compute-lean structures:
/// its busy share must exceed NSQ's (paper: 57% vs 27%).
#[test]
fn water_sp_is_more_compute_efficient() {
    let sp = run(Benchmark::WaterSp);
    let nsq = run(Benchmark::WaterNsq);
    let sp_busy = sp.breakdown.normalized_to_self().fraction(Category::Busy);
    let nsq_busy = nsq.breakdown.normalized_to_self().fraction(Category::Busy);
    assert!(
        sp_busy > nsq_busy,
        "WATER-SP busy {sp_busy:.2} should exceed WATER-NSQ {nsq_busy:.2}"
    );
}

/// Every application's aggregate time categories must cover the run
/// on every node (conservation through the whole suite).
#[test]
fn all_apps_conserve_time() {
    for b in Benchmark::ALL {
        let r = b
            .run(Scale::Test, DsmConfig::paper_cluster(4).with_seed(3))
            .expect("run");
        assert!(r.verified, "{b}");
        for (n, breakdown) in r.node_breakdowns.iter().enumerate() {
            assert!(
                breakdown.total() >= r.total_time,
                "{b} node {n}: {} < {}",
                breakdown.total(),
                r.total_time
            );
        }
    }
}
