//! End-to-end runs of every benchmark under every latency-tolerance
//! mode, each verifying its numeric result.

use rsdsm_apps::{Benchmark, Scale};
use rsdsm_core::{DsmConfig, PrefetchConfig, ThreadConfig};

fn cfg(nodes: usize) -> DsmConfig {
    DsmConfig::paper_cluster(nodes).with_seed(7)
}

fn check(b: Benchmark, cfg: DsmConfig) {
    let report = b.run(Scale::Test, cfg).unwrap_or_else(|e| {
        panic!("{b} failed: {e}");
    });
    assert!(report.verified, "{b} produced a wrong result");
    assert!(report.net.total_msgs > 0, "{b} never communicated");
}

macro_rules! mode_tests {
    ($($name:ident => $bench:expr),* $(,)?) => {$(
        mod $name {
            use super::*;

            #[test]
            fn original() {
                check($bench, cfg(4));
            }

            #[test]
            fn prefetch() {
                check($bench, cfg(4).with_prefetch($bench.paper_prefetch()));
            }

            #[test]
            fn multithreaded_2t() {
                check($bench, cfg(2).with_threads(ThreadConfig::multithreaded(2)));
            }

            #[test]
            fn combined_2tp() {
                check(
                    $bench,
                    cfg(2)
                        .with_threads(ThreadConfig::combined(2))
                        .with_prefetch(PrefetchConfig {
                            suppress_redundant: true,
                            ..$bench.paper_prefetch()
                        }),
                );
            }
        }
    )*};
}

mode_tests! {
    fft => Benchmark::Fft,
    lu_ncont => Benchmark::LuNcont,
    lu_cont => Benchmark::LuCont,
    ocean => Benchmark::Ocean,
    radix => Benchmark::Radix,
    sor => Benchmark::Sor,
    water_nsq => Benchmark::WaterNsq,
    water_sp => Benchmark::WaterSp,
}

#[test]
fn all_benchmarks_deterministic() {
    for b in Benchmark::ALL {
        let r1 = b.run(Scale::Test, cfg(2)).expect("run 1");
        let r2 = b.run(Scale::Test, cfg(2)).expect("run 2");
        assert_eq!(r1.total_time, r2.total_time, "{b} not deterministic");
        assert_eq!(
            r1.net.total_bytes, r2.net.total_bytes,
            "{b} traffic differs"
        );
    }
}
