//! # rsdsm-oracle
//!
//! The consistency oracle for the DSM suite: end-to-end differential
//! checking of every benchmark under every latency-tolerance
//! technique, with and without injected faults.
//!
//! One [`check`] performs the full proof obligation for one
//! (benchmark, technique, fault plan) cell:
//!
//! 1. **Run the DSM** with [`OracleConfig::full`]: the engine checks
//!    the LRC invariants as it executes (vector-clock monotonicity,
//!    write-notice coverage, twin/diff round trips, lock-token
//!    uniqueness, barrier epochs) and captures the merged final memory
//!    image plus the per-lock grant order.
//! 2. **Run the golden model**: [`Benchmark::golden`] executes the
//!    same program with no DSM at all — one flat memory, one thread at
//!    a time — replaying the captured lock-grant order so that
//!    order-sensitive results (floating-point accumulation under
//!    locks) are reproduced exactly. The two final images must match
//!    **byte for byte**.
//! 3. **Re-run the DSM** with the same seed and config: the two
//!    run-report digests must be identical (the whole simulation is
//!    deterministic, faults included).
//!
//! The verdict for each cell is an [`OracleVerdict`];
//! [`OracleVerdict::ok`] demands zero invariant violations, zero
//! mismatched pages, digest-identical repeat runs, and both the DSM
//! and golden runs passing the application's own verification.
//!
//! The oracle roughly triples the cost of a run (two DSM executions
//! plus a golden one) and captures a full memory image, so it is for
//! tests only — paper-scale benches keep [`OracleConfig::off`], the
//! default.

use rsdsm_apps::{Benchmark, Scale};
use rsdsm_core::{DsmConfig, OracleConfig, PrefetchConfig, SimError, ThreadConfig};

/// The paper's four technique configurations, in figure order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Technique {
    /// The original protocol ("O" bars): no prefetching, one thread
    /// per node.
    Base,
    /// Software-controlled prefetching only ("P" bars), with the
    /// paper's per-application insertion mode.
    Prefetch,
    /// Multithreading only ("2T" bars): two threads per node,
    /// switching on memory and synchronization stalls.
    Multithread,
    /// The combined approach ("2TP" bars): two threads per node
    /// switching on synchronization only, prefetching with
    /// redundant-prefetch suppression (and throttling for RADIX).
    Combined,
}

impl Technique {
    /// All four techniques, in the order of the paper's figures.
    pub const ALL: [Technique; 4] = [
        Technique::Base,
        Technique::Prefetch,
        Technique::Multithread,
        Technique::Combined,
    ];

    /// Short label used in test output ("O", "P", "2T", "2TP").
    pub fn label(self) -> &'static str {
        match self {
            Technique::Base => "O",
            Technique::Prefetch => "P",
            Technique::Multithread => "2T",
            Technique::Combined => "2TP",
        }
    }

    /// Applies this technique to a base config for `bench`, mirroring
    /// the experiment harness (`rsdsm-bench`): hand vs compiler
    /// prefetch insertion per application, suppression and RADIX
    /// throttling in combined mode.
    pub fn configure(self, bench: Benchmark, base: DsmConfig) -> DsmConfig {
        match self {
            Technique::Base => base,
            Technique::Prefetch => base.with_prefetch(bench.paper_prefetch()),
            Technique::Multithread => base.with_threads(ThreadConfig::multithreaded(2)),
            Technique::Combined => {
                let throttle = if bench == Benchmark::Radix { 2 } else { 1 };
                base.with_threads(ThreadConfig::combined(2))
                    .with_prefetch(PrefetchConfig {
                        suppress_redundant: true,
                        throttle,
                        ..bench.paper_prefetch()
                    })
            }
        }
    }
}

/// The outcome of one oracle cell: everything [`check`] measured.
#[derive(Debug, Clone)]
pub struct OracleVerdict {
    /// The application's paper name.
    pub app: &'static str,
    /// The technique label ("O", "P", "2T", "2TP").
    pub technique: &'static str,
    /// Whether the run had a fault plan injecting message loss.
    pub faulty: bool,
    /// Invariant violations the engine recorded (each is a distinct
    /// broken-LRC observation; zero on a coherent run).
    pub violations: usize,
    /// Pages whose final bytes differ between the DSM run and the
    /// golden model (empty on a correct run).
    pub mismatched_pages: Vec<usize>,
    /// FNV-1a digest of the DSM run's merged final image.
    pub dsm_digest: u64,
    /// FNV-1a digest of the golden model's final image.
    pub golden_digest: u64,
    /// Whether a second DSM run with identical (seed, config) produced
    /// an identical report digest.
    pub deterministic: bool,
    /// Whether the application's own verification accepted the DSM
    /// run.
    pub dsm_verified: bool,
    /// Whether the application's own verification accepted the golden
    /// run.
    pub golden_verified: bool,
}

impl OracleVerdict {
    /// The full proof obligation: no violations, byte-identical
    /// images, deterministic replay, and both executions verified.
    pub fn ok(&self) -> bool {
        self.violations == 0
            && self.mismatched_pages.is_empty()
            && self.dsm_digest == self.golden_digest
            && self.deterministic
            && self.dsm_verified
            && self.golden_verified
    }

    /// One-line summary for test logs.
    pub fn summary_line(&self) -> String {
        format!(
            "{:<9} {:<3} faults={} violations={} mismatched={} det={} dsm_ok={} golden_ok={}",
            self.app,
            self.technique,
            self.faulty,
            self.violations,
            self.mismatched_pages.len(),
            self.deterministic,
            self.dsm_verified,
            self.golden_verified,
        )
    }
}

/// Runs the full oracle for one cell: DSM run (invariants + capture),
/// golden replay, byte-for-byte image comparison, and a same-seed
/// repeat run for determinism.
///
/// # Errors
///
/// Propagates [`SimError`] from either DSM run, and surfaces golden
/// executor failures as [`SimError::AppThread`].
///
/// # Panics
///
/// Panics if the engine fails to capture an oracle outcome despite the
/// config enabling it (an engine bug, not an application failure).
pub fn check(bench: Benchmark, scale: Scale, cfg: DsmConfig) -> Result<OracleVerdict, SimError> {
    let cfg = cfg.with_oracle(OracleConfig::full());
    let report = bench.run(scale, cfg.clone())?;
    let outcome = report
        .oracle
        .as_ref()
        .expect("oracle enabled but no outcome captured");

    let golden = bench
        .golden(scale, &cfg, &outcome.lock_trace)
        .map_err(SimError::AppThread)?;

    // A page-count mismatch (impossible unless the heap layout
    // diverged) marks every trailing page as mismatched.
    let common = golden.pages.len().min(outcome.final_image.len());
    let mut mismatched_pages: Vec<usize> = (0..common)
        .filter(|&i| golden.pages[i] != outcome.final_image[i])
        .collect();
    mismatched_pages.extend(common..golden.pages.len().max(outcome.final_image.len()));

    let repeat = bench.run(scale, cfg.clone())?;
    let deterministic = report.digest() == repeat.digest()
        && outcome.image_digest
            == repeat
                .oracle
                .as_ref()
                .expect("oracle enabled but no outcome captured")
                .image_digest;

    Ok(OracleVerdict {
        app: bench.name(),
        technique: "?",
        faulty: !cfg.faults.is_none(),
        violations: outcome.violations.len(),
        mismatched_pages,
        dsm_digest: outcome.image_digest,
        golden_digest: golden.image_digest,
        deterministic,
        dsm_verified: report.verified,
        golden_verified: golden.verified,
    })
}

/// [`check`] for one technique: builds the config from `base` via
/// [`Technique::configure`] and stamps the verdict with the
/// technique's label.
///
/// # Errors
///
/// Propagates [`SimError`] exactly as [`check`] does.
pub fn check_technique(
    bench: Benchmark,
    scale: Scale,
    technique: Technique,
    base: DsmConfig,
) -> Result<OracleVerdict, SimError> {
    let cfg = technique.configure(bench, base);
    let mut verdict = check(bench, scale, cfg)?;
    verdict.technique = technique.label();
    Ok(verdict)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn techniques_configure_like_the_harness() {
        let base = DsmConfig::paper_cluster(4);
        let p = Technique::Prefetch.configure(Benchmark::Fft, base.clone());
        assert!(p.prefetch.enabled && p.prefetch.compiler_style);
        let t = Technique::Multithread.configure(Benchmark::Sor, base.clone());
        assert!(t.threads.switch_on_memory && t.threads.switch_on_sync);
        let c = Technique::Combined.configure(Benchmark::Radix, base.clone());
        assert_eq!(c.prefetch.throttle, 2);
        assert!(c.prefetch.suppress_redundant);
        assert!(!c.threads.switch_on_memory && c.threads.switch_on_sync);
        let c2 = Technique::Combined.configure(Benchmark::Sor, base);
        assert_eq!(c2.prefetch.throttle, 1);
    }

    #[test]
    fn labels_are_paper_style() {
        let labels: Vec<_> = Technique::ALL.iter().map(|t| t.label()).collect();
        assert_eq!(labels, vec!["O", "P", "2T", "2TP"]);
    }
}
