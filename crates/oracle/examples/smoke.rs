//! Quick manual smoke run of the oracle over a few cells.
use rsdsm_apps::{Benchmark, Scale};
use rsdsm_core::{DsmConfig, FaultPlan};
use rsdsm_oracle::{check_technique, Technique};

fn main() {
    let base = DsmConfig::paper_cluster(4).with_seed(1998);
    for bench in [Benchmark::Sor, Benchmark::Radix, Benchmark::WaterNsq] {
        for tech in [Technique::Base, Technique::Combined] {
            for faulty in [false, true] {
                let cfg = if faulty {
                    base.clone()
                        .with_faults(FaultPlan::uniform_loss(0xFA11, 0.05))
                } else {
                    base.clone()
                };
                match check_technique(bench, Scale::Test, tech, cfg) {
                    Ok(v) => println!("{} ok={}", v.summary_line(), v.ok()),
                    Err(e) => println!("{bench} {} faults={faulty}: ERROR {e:?}", tech.label()),
                }
            }
        }
    }
}
