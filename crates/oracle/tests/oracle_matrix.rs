//! The consistency-oracle matrix: golden-model differential checking,
//! runtime LRC invariants, and determinism over benchmarks ×
//! techniques × fault plans.
//!
//! Every cell asserts the full [`rsdsm_oracle::OracleVerdict::ok`]
//! obligation: zero invariant violations, a byte-identical final
//! memory image between the DSM run and the golden sequential
//! executor, digest-identical same-seed repeat runs, and both
//! executions passing the application's own verification.
//!
//! Per-PR CI runs a fast subset (three representative applications —
//! including the lock-order-sensitive WATER-NSQ — under the base and
//! combined techniques). Set `RSDSM_ORACLE=full` for the full
//! 8 apps × 4 techniques × {no-fault, loss} grid, which the scheduled
//! CI job runs in release mode. Cells fan out across cores via
//! `rsdsm_bench::pool` (override the worker count with `RSDSM_JOBS`).

use rsdsm_apps::{Benchmark, Scale};
use rsdsm_bench::pool;
use rsdsm_core::{DsmConfig, FaultPlan};
use rsdsm_oracle::{check_technique, Technique};

fn base(nodes: usize) -> DsmConfig {
    DsmConfig::paper_cluster(nodes).with_seed(1998)
}

fn loss() -> FaultPlan {
    FaultPlan::uniform_loss(0xFA11, 0.05)
}

fn full_grid() -> bool {
    std::env::var("RSDSM_ORACLE").as_deref() == Ok("full")
}

/// Fans independent oracle cells across cores; each cell panics on
/// failure and [`pool::run`] re-raises that panic, so a failing cell
/// still fails the test. Cells are pure, so the verdicts do not
/// depend on the worker count.
fn assert_cells(cells: Vec<(Benchmark, Technique, Option<FaultPlan>)>) {
    let tasks: Vec<_> = cells
        .into_iter()
        .map(|(bench, technique, faults)| move || assert_cell(bench, technique, faults))
        .collect();
    pool::run(pool::matrix_jobs(), tasks);
}

fn assert_cell(bench: Benchmark, technique: Technique, faults: Option<FaultPlan>) {
    let mut cfg = base(4);
    if let Some(plan) = faults {
        cfg = cfg.with_faults(plan);
    }
    let verdict = check_technique(bench, Scale::Test, technique, cfg)
        .unwrap_or_else(|e| panic!("{bench} {}: {e:?}", technique.label()));
    assert!(verdict.ok(), "oracle failed: {}", verdict.summary_line());
}

#[test]
fn fast_subset_no_faults() {
    let mut cells = Vec::new();
    for bench in [Benchmark::Sor, Benchmark::Radix, Benchmark::WaterNsq] {
        for technique in [Technique::Base, Technique::Combined] {
            cells.push((bench, technique, None));
        }
    }
    assert_cells(cells);
}

#[test]
fn fast_subset_under_message_loss() {
    let mut cells = Vec::new();
    for bench in [Benchmark::Sor, Benchmark::Radix, Benchmark::WaterNsq] {
        for technique in [Technique::Base, Technique::Combined] {
            cells.push((bench, technique, Some(loss())));
        }
    }
    assert_cells(cells);
}

#[test]
fn full_matrix() {
    if !full_grid() {
        eprintln!("skipping full oracle matrix (set RSDSM_ORACLE=full)");
        return;
    }
    let mut cells = Vec::new();
    for bench in Benchmark::ALL {
        for technique in Technique::ALL {
            for faults in [None, Some(loss())] {
                cells.push((bench, technique, faults));
            }
        }
    }
    assert_cells(cells);
}
