//! Golden snapshots of the figure/table binaries' emitted rows.
//!
//! `fig1_row` and `table1_row` produce exactly the text the `fig1` and
//! `table1` binaries print per application; these tests pin an FNV-1a
//! digest of that text for a small deterministic configuration
//! (4 nodes, test scale, seed 1998). The simulation is fully
//! deterministic, so the digests must reproduce everywhere.
//!
//! When an intentional change moves a digest (a cost-model
//! recalibration, a new breakdown category, a formatting fix), the
//! failure message prints the full emitted text — eyeball it, then
//! re-pin the constant. Unexplained drift is a determinism bug.

use rsdsm_apps::{Benchmark, Scale};
use rsdsm_bench::{fig1_row, table1_row, ExpOpts, Runner};
use rsdsm_core::fnv1a_extend;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FIG1_DIGEST: u64 = 0x46bc_ac07_1090_ad66;
const TABLE1_DIGEST: u64 = 0xbb13_541c_cc2e_4453;

fn snapshot_opts() -> ExpOpts {
    ExpOpts {
        scale: Scale::Test,
        nodes: 4,
        seed: 1998,
        ..ExpOpts::default()
    }
}

#[test]
fn fig1_rows_match_snapshot() {
    let opts = snapshot_opts();
    let mut runner = Runner::new(&opts);
    let mut digest = FNV_OFFSET;
    let mut emitted = String::new();
    for bench in Benchmark::ALL {
        let row = fig1_row(bench, &mut runner);
        digest = fnv1a_extend(digest, row.as_bytes());
        emitted.push_str(&row);
    }
    assert_eq!(
        digest, FIG1_DIGEST,
        "fig1 output drifted; emitted rows were:\n{emitted}"
    );
}

#[test]
fn table1_rows_match_snapshot() {
    let opts = snapshot_opts();
    let mut runner = Runner::new(&opts);
    let mut digest = FNV_OFFSET;
    let mut emitted = String::new();
    for bench in Benchmark::ALL {
        let row = table1_row(bench, &mut runner).join("|");
        digest = fnv1a_extend(digest, row.as_bytes());
        emitted.push_str(&row);
        emitted.push('\n');
    }
    assert_eq!(
        digest, TABLE1_DIGEST,
        "table1 output drifted; emitted rows were:\n{emitted}"
    );
}

/// Sanity anchors on the row *content* so a digest re-pin cannot
/// silently bless nonsense: SOR's hand prefetching reaches full
/// coverage at this scale, and prefetching must not increase misses.
#[test]
fn table1_rows_are_sane() {
    let opts = snapshot_opts();
    let mut runner = Runner::new(&opts);
    let sor = table1_row(Benchmark::Sor, &mut runner);
    assert_eq!(sor[0], "SOR");
    assert_eq!(sor[2], "100.00%", "SOR coverage fell below full");
    for bench in [Benchmark::Sor, Benchmark::Fft, Benchmark::Radix] {
        let row = table1_row(bench, &mut runner);
        let misses_o: u64 = row[5].parse().expect("misses O");
        let misses_p: u64 = row[6].parse().expect("misses P");
        assert!(
            misses_p < misses_o,
            "{bench}: prefetching did not reduce misses ({misses_o} -> {misses_p})"
        );
    }
}
