//! End-to-end simulation benchmarks: full DSM runs of applications at
//! test scale, original vs prefetching vs multithreading. These
//! measure the *simulator's* wall-clock throughput; the experiment
//! binaries (`fig1` … `table2`) report the *simulated* results that
//! reproduce the paper.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use rsdsm_apps::{Benchmark, Scale};
use rsdsm_core::{DsmConfig, ThreadConfig};

fn base() -> DsmConfig {
    DsmConfig::paper_cluster(8).with_seed(1998)
}

fn bench_apps_original(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_original");
    group.sample_size(10);
    for bench in [Benchmark::Sor, Benchmark::Radix, Benchmark::WaterSp] {
        group.bench_function(bench.name(), |b| {
            b.iter(|| {
                let r = bench.run(Scale::Test, base()).expect("run");
                assert!(r.verified);
                black_box(r.total_time)
            })
        });
    }
    group.finish();
}

fn bench_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_fft_modes");
    group.sample_size(10);
    group.bench_function("original", |b| {
        b.iter(|| {
            black_box(
                Benchmark::Fft
                    .run(Scale::Test, base())
                    .expect("run")
                    .total_time,
            )
        })
    });
    group.bench_function("prefetch", |b| {
        let cfg = base().with_prefetch(Benchmark::Fft.paper_prefetch());
        b.iter(|| {
            black_box(
                Benchmark::Fft
                    .run(Scale::Test, cfg.clone())
                    .expect("run")
                    .total_time,
            )
        })
    });
    group.bench_function("4_threads", |b| {
        let cfg = base().with_threads(ThreadConfig::multithreaded(4));
        b.iter(|| {
            black_box(
                Benchmark::Fft
                    .run(Scale::Test, cfg.clone())
                    .expect("run")
                    .total_time,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_apps_original, bench_modes);
criterion_main!(benches);
