//! Micro-benchmarks of the protocol and simulation substrates:
//! twin/diff operations, vector clocks, the event queue, and the
//! network model — the per-operation costs that bound how fast the
//! simulator itself runs.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use rsdsm_apps::{Benchmark, Scale};
use rsdsm_bench::queue_replay;
use rsdsm_core::DsmConfig;
use rsdsm_protocol::{Diff, NoticeBoard, Page, PageId, PagePool, VectorClock, WriteNotice};
use rsdsm_simnet::{EventQueue, HeapQueue, NetConfig, Network, Reliability, SimTime};

fn page_pair(stride: usize) -> (Page, Page) {
    let twin = Page::new();
    let mut current = twin.clone();
    for off in (0..rsdsm_protocol::PAGE_SIZE - 8).step_by(stride) {
        current.write_u64(off, off as u64 + 1);
    }
    (twin, current)
}

fn bench_diffs(c: &mut Criterion) {
    let mut group = c.benchmark_group("diff");
    for (label, stride) in [("dense", 8), ("sparse", 256)] {
        let (twin, current) = page_pair(stride);
        group.bench_function(format!("create_{label}"), |b| {
            b.iter(|| Diff::between(black_box(&twin), black_box(&current)))
        });
        // The pre-optimization scan (byte-at-a-time, one allocation
        // per run): the denominator for the hot-path pass's speedup
        // claims, measured in the same process.
        group.bench_function(format!("create_{label}_reference"), |b| {
            b.iter(|| Diff::between_reference(black_box(&twin), black_box(&current)))
        });
        // Snapshot-delta variant (gap coalescing; not used on
        // coherence paths — see DESIGN.md §6g).
        group.bench_function(format!("create_{label}_coalesced"), |b| {
            b.iter(|| Diff::between_coalesced(black_box(&twin), black_box(&current)))
        });
        let diff = Diff::between(&twin, &current);
        group.bench_function(format!("apply_{label}"), |b| {
            b.iter_batched(
                || twin.clone(),
                |mut page| diff.apply(&mut page),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_page_pool(c: &mut Criterion) {
    let mut group = c.benchmark_group("page_pool");
    let (_, src) = page_pair(64);
    // Twin creation through a warm pool: one memcpy, no zero-init.
    group.bench_function("take_copy_of_warm", |b| {
        let mut pool = PagePool::new();
        pool.put(Box::new(Page::new()));
        b.iter(|| {
            let twin = pool.take_copy_of(black_box(&src));
            pool.put(twin);
        })
    });
    // The pre-pool path: fresh allocation + clone per twin.
    group.bench_function("boxed_clone_reference", |b| {
        b.iter(|| black_box(Box::new(src.clone())))
    });
    group.finish();
}

fn bench_trace_and_report(c: &mut Criterion) {
    let base = DsmConfig::paper_cluster(4).with_seed(1998);
    let (_, trace) = Benchmark::Radix
        .run_traced(Scale::Test, base.clone())
        .expect("traced RADIX");
    c.bench_function("trace/encode_rtr1", |b| {
        b.iter(|| black_box(&trace).encode())
    });

    let lossy = Benchmark::Fft
        .run(
            Scale::Test,
            base.with_faults(rsdsm_core::FaultPlan::uniform_loss(0xFA11, 0.05)),
        )
        .expect("lossy FFT");
    // The consolidated single-buffer summary formatter.
    c.bench_function("report/fault_summary_line", |b| {
        b.iter(|| black_box(&lossy).fault_summary_line())
    });
}

fn bench_vector_clocks(c: &mut Criterion) {
    let mut group = c.benchmark_group("vector_clock");
    let mut a = VectorClock::new(8);
    let mut b = VectorClock::new(8);
    for i in 0..8 {
        for _ in 0..i {
            a.tick(i);
            b.tick(7 - i);
        }
    }
    group.bench_function("dominates", |bch| {
        bch.iter(|| black_box(&a).dominates(black_box(&b)))
    });
    group.bench_function("join", |bch| {
        bch.iter_batched(
            || a.clone(),
            |mut x| x.join(black_box(&b)),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("hb_cmp", |bch| {
        bch.iter(|| black_box(&a).hb_cmp(black_box(&b)))
    });
    group.finish();
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue/push_pop_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1000u64 {
                q.push(SimTime::from_nanos((i * 7919) % 4096), i);
            }
            let mut sum = 0u64;
            while let Some((_, v)) = q.pop() {
                sum = sum.wrapping_add(v);
            }
            black_box(sum)
        })
    });

    // Steady-state replay against a standing population — the same
    // workload as the pinned `queue_replay_speedup` row in
    // BENCH_matrix.json, at a tenth of its million-event population
    // so a criterion pass stays quick. Priming and the delta schedule
    // happen in the setup closure; the timed region is queue work
    // plus the checksum fold only.
    let mut group = c.benchmark_group("event_queue_replay");
    group.sample_size(10);
    let population = 100_000u64;
    let steps = 100_000u64;
    group.bench_function("wheel_100k", |b| {
        b.iter_batched(
            || {
                let mut q = EventQueue::with_capacity(population as usize);
                let mut rng = queue_replay::prime(&mut q, population, 0x5D5);
                (q, queue_replay::schedule(&mut rng, steps))
            },
            |(mut q, deltas)| queue_replay::replay(&mut q, &deltas),
            BatchSize::PerIteration,
        )
    });
    group.bench_function("heap_100k", |b| {
        b.iter_batched(
            || {
                let mut q = HeapQueue::with_capacity(population as usize);
                let mut rng = queue_replay::prime(&mut q, population, 0x5D5);
                (q, queue_replay::schedule(&mut rng, steps))
            },
            |(mut q, deltas)| queue_replay::replay(&mut q, &deltas),
            BatchSize::PerIteration,
        )
    });
    group.finish();
}

fn bench_prefetch_detect(c: &mut Criterion) {
    use rsdsm_core::{AdaptiveConfig, MissClass, StrideDetector, ThrottleController};

    let mut group = c.benchmark_group("prefetch_detect");
    // The detector's per-fault hot path — one observe on a steady
    // strided stream (the amortized O(1) claim: ring-buffer slide
    // plus two count updates, no rescan).
    group.bench_function("observe_steady_stride", |b| {
        let mut d = StrideDetector::new(8);
        let mut page = 0u64;
        for _ in 0..16 {
            page += 2;
            d.observe(page);
        }
        b.iter(|| {
            page += 2;
            black_box(d.observe(black_box(page)))
        })
    });
    // Worst case for the majority count: every delta different, so
    // the window's counts churn on each slide.
    group.bench_function("observe_trendless", |b| {
        let mut d = StrideDetector::new(8);
        let mut page = 0u64;
        let mut step = 1u64;
        b.iter(|| {
            step = step % 97 + 1;
            page += step;
            black_box(d.observe(black_box(page)))
        })
    });
    // The throttle's per-fault feedback fold: a counter bump on most
    // faults, a windowed evaluation every eval_period-th.
    group.bench_function("throttle_observe", |b| {
        let mut t = ThrottleController::new(&AdaptiveConfig::on());
        let mut k = 0u64;
        b.iter(|| {
            k += 1;
            let class = if k.is_multiple_of(3) {
                MissClass::Hit
            } else {
                MissClass::NoPf
            };
            black_box(t.observe(black_box(class)))
        })
    });
    group.finish();
}

fn bench_network(c: &mut Criterion) {
    c.bench_function("network/send_page", |b| {
        let mut net = Network::new(8, NetConfig::atm_155(1));
        let mut now = SimTime::ZERO;
        b.iter(|| {
            now += rsdsm_simnet::SimDuration::from_micros(100);
            black_box(net.send(now, 0, 1, 4096, Reliability::Reliable, "bench"))
        })
    });
}

fn bench_notice_board(c: &mut Criterion) {
    c.bench_function("notice_board/record_and_resolve", |b| {
        b.iter(|| {
            let mut board = NoticeBoard::new();
            for origin in 0..8usize {
                let mut stamp = VectorClock::new(8);
                for _ in 0..origin + 1 {
                    stamp.tick(origin);
                }
                board.record(WriteNotice {
                    page: PageId::new(3),
                    origin,
                    stamp,
                });
            }
            black_box(board.pending_by_origin(PageId::new(3)))
        })
    });
}

criterion_group!(
    benches,
    bench_diffs,
    bench_page_pool,
    bench_trace_and_report,
    bench_vector_clocks,
    bench_event_queue,
    bench_prefetch_detect,
    bench_network,
    bench_notice_board
);
criterion_main!(benches);
