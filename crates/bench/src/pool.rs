//! Fixed-thread scheduler for independent simulation cells.
//!
//! Every cell the suite runs — one (app, technique, seed, fault plan)
//! simulation — is a pure function of its config: it owns its RNG, its
//! channels, and its report. That makes the experiment matrices
//! embarrassingly parallel, and this module is the one scheduler they
//! all share: a work queue drained by a fixed set of `std::thread`
//! workers (no work stealing, no external dependencies).
//!
//! Determinism contract: [`run`] returns results **in task order**, and
//! each task runs exactly once, so output is bit-identical to a serial
//! loop no matter how the OS schedules the workers. Only wall-clock
//! changes. `tests/parallel_determinism.rs` pins this with full
//! report/trace digests at `--jobs 1` vs `--jobs 8`.

use std::sync::mpsc;
use std::sync::Mutex;

/// The scheduler's default parallelism: the machine's available cores
/// (1 when that cannot be determined).
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Explicit override from the `RSDSM_JOBS` environment variable, used
/// by the test matrices (which take no CLI flags). Unset, empty, or
/// unparsable values mean "no override"; `0` means [`default_jobs`].
pub fn jobs_from_env() -> Option<usize> {
    let raw = std::env::var("RSDSM_JOBS").ok()?;
    let n: usize = raw.trim().parse().ok()?;
    Some(if n == 0 { default_jobs() } else { n })
}

/// The parallelism the matrices should use: `RSDSM_JOBS` when set,
/// otherwise every available core.
pub fn matrix_jobs() -> usize {
    jobs_from_env().unwrap_or_else(default_jobs)
}

/// Runs every task, fanning them across at most `jobs` worker threads,
/// and returns the results in task order.
///
/// With `jobs <= 1` (or one task) this is exactly the serial loop — no
/// threads are spawned. A panicking task panics `run` itself once all
/// workers have drained (propagated by `std::thread::scope`), so a
/// failing cell still fails the caller.
pub fn run<T, F>(jobs: usize, tasks: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = tasks.len();
    if jobs <= 1 || n <= 1 {
        return tasks.into_iter().map(|f| f()).collect();
    }
    let workers = jobs.min(n);
    // Hand out (index, task) pairs through a shared iterator; workers
    // pull the next cell as soon as they finish their last, so a slow
    // cell never blocks the rest of the queue.
    let queue = Mutex::new(tasks.into_iter().enumerate());
    let (tx, rx) = mpsc::channel::<(usize, T)>();
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    std::thread::scope(|s| {
        for _ in 0..workers {
            let tx = tx.clone();
            let queue = &queue;
            s.spawn(move || loop {
                // Take the lock only to grab the next task; run it
                // with the lock released.
                let Some((idx, task)) = queue.lock().expect("task queue").next() else {
                    return;
                };
                // Receiver gone means the main thread is unwinding
                // from another worker's panic; stop quietly.
                if tx.send((idx, task())).is_err() {
                    return;
                }
            });
        }
        drop(tx);
        // The channel closes when the last worker drops its sender, so
        // this loop ends exactly when all tasks are done. If a worker
        // panicked, its results are simply missing here and the scope
        // re-raises the panic on exit.
        for (idx, result) in rx {
            slots[idx] = Some(result);
        }
    });
    slots
        .into_iter()
        .map(|r| r.expect("every task ran"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_task_order() {
        for jobs in [1, 2, 8] {
            let tasks: Vec<_> = (0..37)
                .map(|i| {
                    move || {
                        // Stagger finish order so late tasks finish first.
                        std::thread::sleep(std::time::Duration::from_micros((37 - i) as u64 * 10));
                        i * i
                    }
                })
                .collect();
            let out = run(jobs, tasks);
            assert_eq!(
                out,
                (0..37).map(|i| i * i).collect::<Vec<_>>(),
                "jobs={jobs}"
            );
        }
    }

    #[test]
    fn serial_and_parallel_agree() {
        let serial = run(1, (0..100).map(|i| move || i + 1).collect::<Vec<_>>());
        let parallel = run(8, (0..100).map(|i| move || i + 1).collect::<Vec<_>>());
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_and_oversubscribed() {
        let none: Vec<i32> = run(4, Vec::<fn() -> i32>::new());
        assert!(none.is_empty());
        // More workers than tasks must not hang.
        let out = run(64, vec![|| 1, || 2]);
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn panics_propagate() {
        let result = std::panic::catch_unwind(|| {
            run(
                4,
                (0..8)
                    .map(|i| move || if i == 5 { panic!("cell failed") } else { i })
                    .collect::<Vec<_>>(),
            )
        });
        assert!(result.is_err(), "a panicking cell must fail the caller");
    }

    #[test]
    fn jobs_env_parsing() {
        // Not set in the test environment unless CI exports it; only
        // check the parse contract indirectly via matrix_jobs' bounds.
        assert!(matrix_jobs() >= 1);
        assert!(default_jobs() >= 1);
    }
}
