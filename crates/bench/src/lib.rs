//! # rsdsm-bench
//!
//! The experiment harness that regenerates every figure and table of
//! the HPCA-4 1998 paper. Each binary (`fig1` … `fig5`, `table1`,
//! `table2`, `ablations`) sweeps the relevant configurations over the
//! benchmark suite and prints paper-style output; this library holds
//! the shared runner and command-line plumbing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod pool;
pub mod queue_replay;

use std::collections::HashMap;

use rsdsm_apps::{Benchmark, Scale};
use rsdsm_core::{
    DsmConfig, FaultPlan, NodeCrash, Partition, PersistConfig, PrefetchConfig, RecoveryConfig,
    RunReport, ThreadConfig, Trace,
};
use rsdsm_simnet::{SimDuration, SimTime};
use rsdsm_stats::{chrome_trace_json, render_bars, Bar};

/// Shared command-line options for the experiment binaries.
///
/// Usage: `[--paper-scale] [--nodes N] [--app NAME]... [--seed S]
/// [--fault-loss P] [--fault-crash NODE@MS[:restart=MS]]...
/// [--fault-partition GROUPS@MS:heal=MS[:asym]]...
/// [--checkpoint-every N] [--trace OUT] [--trace-metrics]`
#[derive(Debug, Clone)]
pub struct ExpOpts {
    /// Problem scale for all runs.
    pub scale: Scale,
    /// Cluster size (the paper uses 8).
    pub nodes: usize,
    /// Benchmarks to run (defaults to all eight).
    pub apps: Vec<Benchmark>,
    /// Seed for deterministic runs.
    pub seed: u64,
    /// Uniform message-loss probability injected into every run
    /// (0 disables fault injection; the default).
    pub fault_loss: f64,
    /// Scheduled node crashes (`--fault-crash`). Any crash enables
    /// recovery for the run.
    pub crashes: Vec<NodeCrash>,
    /// Scheduled network partitions (`--fault-partition`). Any
    /// partition enables recovery for the run (the quorum rule and
    /// checkpoint-based rejoin live there).
    pub partitions: Vec<Partition>,
    /// Checkpoint cadence in barrier epochs (`--checkpoint-every`;
    /// 0 disables checkpointing).
    pub checkpoint_every: u32,
    /// Persist checkpoints to the modeled per-node durable device
    /// through the two-slot commit protocol (`--persist`). Requires a
    /// checkpoint cadence.
    pub persist: bool,
    /// Device write bandwidth in MB/s (`--persist-bw`; read bandwidth
    /// is modeled at twice this). `0` keeps the default.
    pub persist_bw: u64,
    /// Device fence latency in microseconds (`--fence-us`). `0` keeps
    /// the default.
    pub fence_us: u64,
    /// Chrome trace-event JSON output path (`--trace`). Each traced
    /// run writes a per-run `OUT-APP-VARIANT.json` next to it, plus
    /// the exact `OUT` path (last run wins), so a single-run sweep
    /// leaves its trace exactly where asked.
    pub trace_out: Option<String>,
    /// Print trace-derived metrics per run (`--trace-metrics`).
    pub trace_metrics: bool,
    /// Worker threads for independent simulation cells (`--jobs`;
    /// default: all available cores). Results and printed output are
    /// bit-identical at any value — only wall-clock changes.
    pub jobs: usize,
    /// Benchmark-JSON output path (`--bench-json`), written by the
    /// `perf` binary with the machine-readable speedup numbers.
    pub bench_json: Option<String>,
}

impl Default for ExpOpts {
    fn default() -> Self {
        ExpOpts {
            scale: Scale::Default,
            nodes: 8,
            apps: Benchmark::ALL.to_vec(),
            seed: 1998,
            fault_loss: 0.0,
            crashes: Vec::new(),
            partitions: Vec::new(),
            checkpoint_every: 0,
            persist: false,
            persist_bw: 0,
            fence_us: 0,
            trace_out: None,
            trace_metrics: false,
            jobs: pool::default_jobs(),
            bench_json: None,
        }
    }
}

impl ExpOpts {
    /// Parses `std::env::args`, exiting with a usage message on error.
    pub fn from_args() -> Self {
        let mut opts = ExpOpts::default();
        let mut apps = Vec::new();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--paper-scale" => opts.scale = Scale::Paper,
                "--test-scale" => opts.scale = Scale::Test,
                "--nodes" => {
                    opts.nodes = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--nodes needs a number"));
                }
                "--seed" => {
                    opts.seed = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--seed needs a number"));
                }
                "--fault-loss" => {
                    opts.fault_loss = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .filter(|p: &f64| (0.0..1.0).contains(p))
                        .unwrap_or_else(|| usage("--fault-loss needs a probability in [0, 1)"));
                }
                "--fault-crash" => {
                    let spec = args
                        .next()
                        .unwrap_or_else(|| usage("--fault-crash needs NODE@MS[:restart=MS]"));
                    match parse_crash(&spec) {
                        Some(crash) => opts.crashes.push(crash),
                        None => usage(&format!(
                            "bad crash spec {spec:?}; expected NODE@MS[:restart=MS]"
                        )),
                    }
                }
                "--fault-partition" => {
                    let spec = args.next().unwrap_or_else(|| {
                        usage("--fault-partition needs GROUPS@MS:heal=MS[:asym]")
                    });
                    match parse_partition(&spec) {
                        Some(p) => opts.partitions.push(p),
                        None => usage(&format!(
                            "bad partition spec {spec:?}; expected GROUPS@MS:heal=MS[:asym] \
                             (groups `|`-separated, nodes comma-separated, e.g. 2@5:heal=10)"
                        )),
                    }
                }
                "--checkpoint-every" => {
                    opts.checkpoint_every = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--checkpoint-every needs a number of epochs"));
                }
                "--persist" => opts.persist = true,
                "--persist-bw" => {
                    opts.persist_bw = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&bw: &u64| bw > 0)
                        .unwrap_or_else(|| usage("--persist-bw needs a bandwidth in MB/s"));
                }
                "--fence-us" => {
                    opts.fence_us = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&us: &u64| us > 0)
                        .unwrap_or_else(|| usage("--fence-us needs a latency in microseconds"));
                }
                "--trace" => {
                    opts.trace_out =
                        Some(args.next().unwrap_or_else(|| usage("--trace needs a path")));
                }
                "--trace-metrics" => opts.trace_metrics = true,
                "--jobs" => {
                    opts.jobs = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .map(|n: usize| if n == 0 { pool::default_jobs() } else { n })
                        .unwrap_or_else(|| usage("--jobs needs a number"));
                }
                "--bench-json" => {
                    opts.bench_json = Some(
                        args.next()
                            .unwrap_or_else(|| usage("--bench-json needs a path")),
                    );
                }
                "--app" => {
                    let name = args.next().unwrap_or_else(|| usage("--app needs a name"));
                    match Benchmark::from_name(&name) {
                        Some(b) => apps.push(b),
                        None => usage(&format!("unknown app {name}")),
                    }
                }
                "--help" | "-h" => usage(""),
                other => usage(&format!("unknown option {other}")),
            }
        }
        if !apps.is_empty() {
            opts.apps = apps;
        }
        // Flag combinations that would silently do nothing are
        // rejected up front (the engine asserts the same invariants).
        if !opts.crashes.is_empty() && opts.checkpoint_every == 0 {
            usage("--fault-crash needs --checkpoint-every N: without a checkpoint cadence a crashed node would recover from nothing");
        }
        if opts.persist && opts.checkpoint_every == 0 {
            usage("--persist needs --checkpoint-every N: without a checkpoint cadence there is nothing to persist");
        }
        if (opts.persist_bw > 0 || opts.fence_us > 0) && !opts.persist {
            usage("--persist-bw/--fence-us need --persist");
        }
        opts
    }

    /// The baseline configuration for these options.
    pub fn base_config(&self) -> DsmConfig {
        let mut cfg = DsmConfig::paper_cluster(self.nodes).with_seed(self.seed);
        if self.fault_loss > 0.0 {
            // Derive the plan seed from the run seed so `--seed` alone
            // pins the whole experiment, faults included.
            cfg = cfg.with_faults(FaultPlan::uniform_loss(self.seed ^ 0xfa17, self.fault_loss));
        }
        for &crash in &self.crashes {
            cfg.faults = cfg.faults.with_node_crash(crash);
        }
        for p in &self.partitions {
            cfg.faults = cfg.faults.with_partition(p.clone());
        }
        let faulted = !self.crashes.is_empty() || !self.partitions.is_empty();
        if faulted || self.checkpoint_every > 0 {
            // Crashes and partitions need the failure detector and
            // restart/rejoin machinery; a bare --checkpoint-every
            // measures checkpoint overhead without them (detection
            // stays off so the run's timeline is untouched).
            cfg = cfg.with_recovery(RecoveryConfig {
                enabled: faulted,
                checkpoint_every: self.checkpoint_every,
                ..RecoveryConfig::off()
            });
        }
        if self.persist {
            let mut dev = PersistConfig {
                enabled: true,
                ..PersistConfig::off()
            };
            if self.persist_bw > 0 {
                // MB/s is numerically bytes/us, the device's unit.
                dev.write_bw = self.persist_bw;
                dev.read_bw = self.persist_bw * 2;
            }
            if self.fence_us > 0 {
                dev.fence_latency = SimDuration::from_micros(self.fence_us);
            }
            cfg.recovery.persist = dev;
        }
        cfg
    }
}

/// Parses a `--fault-crash` spec: `NODE@MS` (crash-stop) or
/// `NODE@MS:restart=MS` (crash-restart), times in simulated
/// milliseconds.
fn parse_crash(spec: &str) -> Option<NodeCrash> {
    let (head, restart) = match spec.split_once(":restart=") {
        Some((head, rest)) => (head, Some(rest)),
        None => (spec, None),
    };
    let (node, at_ms) = head.split_once('@')?;
    let node: usize = node.parse().ok()?;
    let at_ms: u64 = at_ms.parse().ok()?;
    let restart_after = match restart {
        Some(ms) => Some(SimDuration::from_millis(ms.parse().ok()?)),
        None => None,
    };
    Some(NodeCrash {
        node,
        at: SimTime::ZERO + SimDuration::from_millis(at_ms),
        restart_after,
    })
}

/// Parses a `--fault-partition` spec: `GROUPS@MS:heal=MS[:asym]`,
/// where `GROUPS` is `|`-separated groups of comma-separated node
/// ids (unlisted nodes form the implicit final group), `@MS` is the
/// cut instant and `:heal=MS` the cut duration, both in simulated
/// milliseconds. `:asym` makes the cut one-way (earlier-listed groups
/// cannot reach later ones; the reverse direction still delivers).
fn parse_partition(spec: &str) -> Option<Partition> {
    let (groups_str, rest) = spec.split_once('@')?;
    let mut groups = Vec::new();
    for group in groups_str.split('|') {
        let nodes: Vec<usize> = group
            .split(',')
            .map(|n| n.parse().ok())
            .collect::<Option<_>>()?;
        if nodes.is_empty() {
            return None;
        }
        groups.push(nodes);
    }
    let mut tail = rest.split(':');
    let at_ms: u64 = tail.next()?.parse().ok()?;
    let mut heal_ms = None;
    let mut asym = false;
    for token in tail {
        if let Some(ms) = token.strip_prefix("heal=") {
            heal_ms = Some(ms.parse().ok()?);
        } else if token == "asym" {
            asym = true;
        } else {
            return None;
        }
    }
    Some(Partition {
        groups,
        at: SimTime::ZERO + SimDuration::from_millis(at_ms),
        heal_after: SimDuration::from_millis(heal_ms?),
        asym,
    })
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: <experiment> [--paper-scale|--test-scale] [--nodes N] [--app NAME]... [--seed S] \
         [--fault-loss P] [--fault-crash NODE@MS[:restart=MS]]... [--checkpoint-every N]\n\
         \x20             [--fault-partition GROUPS@MS:heal=MS[:asym]]...\n\
         \x20             [--persist] [--persist-bw MBPS] [--fence-us US]\n\
         \x20             [--trace OUT] [--trace-metrics] [--jobs N] [--bench-json PATH]\n\
         \n\
         --jobs N        run independent simulation cells on N worker threads\n\
         \x20               (default: all cores; results are bit-identical at any N)\n\
         --bench-json PATH   (perf binary) write machine-readable benchmark numbers\n\
         --fault-crash   crash NODE at MS simulated milliseconds; with :restart=MS the\n\
         \x20               node reboots after that outage (crash-restart), otherwise a\n\
         \x20               replacement rejoins from its last checkpoint (crash-stop).\n\
         \x20               Repeatable. Enables lease-based failure detection and recovery.\n\
         --fault-partition   cut the network into GROUPS (`|`-separated groups of\n\
         \x20               comma-separated node ids; unlisted nodes form the final\n\
         \x20               group) at MS, healing after :heal=MS. With :asym the cut is\n\
         \x20               one-way. The manager-side component must keep a strict\n\
         \x20               majority; minority nodes freeze and rejoin from their last\n\
         \x20               checkpoint at heal. Repeatable; enables recovery.\n\
         --checkpoint-every   take a barrier-aligned checkpoint every N barrier epochs\n\
         --persist       write each checkpoint to a modeled per-node durable device\n\
         \x20               through a two-slot commit protocol; crashed nodes recover\n\
         \x20               from the newest committed slot (needs --checkpoint-every)\n\
         --persist-bw    device write bandwidth in MB/s (reads are modeled at 2x);\n\
         \x20               default 200\n\
         --fence-us      device fence latency in microseconds; default 5\n\
         --trace OUT     record every simulated event and write a Chrome trace-event\n\
         \x20               JSON (Perfetto-loadable) per run; tracing never changes the\n\
         \x20               run itself (same events, same digest)\n\
         --trace-metrics   print trace-derived metrics per run (per-class message\n\
         \x20               latency, fault service time, retry timelines, prefetch\n\
         \x20               coverage/accuracy/lateness)"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}

/// The experiment variants of the paper's figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// Unmodified TreadMarks ("O").
    Original,
    /// With prefetching ("P"), compiler-style for FFT and LU-NCONT.
    Prefetch,
    /// History-based automatic prefetching ("H", Bianchini-style).
    History,
    /// Online adaptive stride prefetching ("A"), annotations ignored.
    Adaptive,
    /// Adaptive detection plus the static annotations ("A+P").
    AdaptiveStatic,
    /// Multithreading with n threads/processor ("nT").
    Threads(usize),
    /// Combined: n threads for sync latency + prefetching ("nTP").
    Combined(usize),
}

impl Variant {
    /// The paper's bar label.
    pub fn label(self) -> String {
        match self {
            Variant::Original => "O".into(),
            Variant::Prefetch => "P".into(),
            Variant::History => "H".into(),
            Variant::Adaptive => "A".into(),
            Variant::AdaptiveStatic => "A+P".into(),
            Variant::Threads(n) => format!("{n}T"),
            Variant::Combined(n) => format!("{n}TP"),
        }
    }

    /// Builds the configuration for `bench` under these options.
    pub fn config(self, bench: Benchmark, opts: &ExpOpts) -> DsmConfig {
        self.config_on(bench, opts.base_config())
    }

    /// Layers this variant's technique onto an arbitrary base config
    /// (a faulted, fabric, or otherwise specialized baseline).
    pub fn config_on(self, bench: Benchmark, base: DsmConfig) -> DsmConfig {
        match self {
            Variant::Original => base,
            Variant::Prefetch => base.with_prefetch(bench.paper_prefetch()),
            Variant::History => base.with_prefetch(PrefetchConfig::automatic()),
            Variant::Adaptive => base.with_prefetch(PrefetchConfig::adaptive()),
            Variant::AdaptiveStatic => base.with_prefetch(PrefetchConfig {
                // The static half keeps the paper's per-app insertion
                // style (compiler-inserted for FFT and LU-NCONT).
                compiler_style: bench.uses_compiler_prefetch(),
                ..PrefetchConfig::adaptive_static()
            }),
            Variant::Threads(n) => base.with_threads(ThreadConfig::multithreaded(n)),
            Variant::Combined(n) => {
                // §5.1: suppress redundant sibling prefetches; RADIX
                // additionally throttles every other prefetch.
                let throttle = if bench == Benchmark::Radix { 2 } else { 1 };
                base.with_threads(ThreadConfig::combined(n))
                    .with_prefetch(PrefetchConfig {
                        suppress_redundant: true,
                        throttle,
                        ..bench.paper_prefetch()
                    })
            }
        }
    }
}

/// Per-run trace output path: `OUT-APP-VARIANT.json` (extension
/// preserved when `OUT` has one).
fn trace_run_path(out: &str, bench: Benchmark, variant: Variant) -> String {
    let suffix = format!("-{}-{}", bench.name(), variant.label());
    match out.rsplit_once('.') {
        Some((stem, ext)) if !stem.is_empty() => format!("{stem}{suffix}.{ext}"),
        _ => format!("{out}{suffix}"),
    }
}

/// Prints the trace-derived metrics block for one traced run.
fn print_trace_metrics(bench: Benchmark, variant: Variant, report: &RunReport) {
    let Some(m) = &report.trace else { return };
    let label = variant.label();
    println!("  {bench} [{label}] trace metrics: {} events", m.events);
    for (kind, h) in &m.msg_latency {
        println!(
            "    msg {kind:<16} {:>6} msgs  mean {:>9.1} ns  min {} max {}",
            h.count(),
            h.mean(),
            h.min(),
            h.max(),
        );
    }
    if m.fault_service.count() > 0 {
        println!(
            "    fault service    {:>6} faults mean {:>9.1} ns  min {} max {}",
            m.fault_service.count(),
            m.fault_service.mean(),
            m.fault_service.min(),
            m.fault_service.max(),
        );
    }
    for l in &m.retry_links {
        println!(
            "    retries n{}->n{}  {} retransmissions between {} and {} (max rto {})",
            l.src, l.dst, l.retries, l.first, l.last, l.max_rto,
        );
    }
    let p = &m.prefetch;
    if p.issued > 0 || p.covered() + p.no_pf > 0 {
        println!(
            "    prefetch         {} issued; coverage {:.1}%  accuracy {:.1}%  lateness {:.1}%  \
             ({} hit / {} late / {} invalidated / {} no-pf; {} reqs lost, {} replies lost)",
            p.issued,
            p.coverage() * 100.0,
            p.accuracy() * 100.0,
            p.lateness() * 100.0,
            p.hits,
            p.too_late,
            p.invalidated,
            p.no_pf,
            p.requests_lost,
            p.replies_lost,
        );
    }
}

/// The pure half of a cell: runs the simulation and returns its
/// report (plus the event trace when the options ask for one). Safe
/// to call from any worker thread — no printing, no file writes.
fn compute_variant(
    bench: Benchmark,
    variant: Variant,
    opts: &ExpOpts,
) -> (RunReport, Option<Trace>) {
    let cfg = variant.config(bench, opts);
    let (report, trace) = if opts.trace_out.is_some() || opts.trace_metrics {
        let (report, trace) = bench
            .run_traced(opts.scale, cfg)
            .unwrap_or_else(|e| panic!("{bench} [{}] failed: {e}", variant.label()));
        (report, Some(trace))
    } else {
        let report = bench
            .run(opts.scale, cfg)
            .unwrap_or_else(|e| panic!("{bench} [{}] failed: {e}", variant.label()));
        (report, None)
    };
    assert!(
        report.verified,
        "{bench} [{}] produced a wrong result",
        variant.label()
    );
    (report, trace)
}

/// The side-effect half of a cell: trace export, trace metrics, and
/// fault summaries. Always called on the main thread, in the same
/// order as a serial sweep, so printed output and trace files are
/// identical at any `--jobs` value.
fn emit_variant(
    bench: Benchmark,
    variant: Variant,
    opts: &ExpOpts,
    report: &RunReport,
    trace: Option<&Trace>,
) {
    if let (Some(out), Some(trace)) = (&opts.trace_out, trace) {
        let json = chrome_trace_json(trace);
        let per_run = trace_run_path(out, bench, variant);
        for path in [per_run.as_str(), out.as_str()] {
            std::fs::write(path, &json).unwrap_or_else(|e| panic!("writing trace {path}: {e}"));
        }
        println!(
            "  {bench} [{}] trace: {} events, digest {:016x} -> {per_run}",
            variant.label(),
            trace.len(),
            trace.digest(),
        );
    }
    if opts.trace_metrics {
        print_trace_metrics(bench, variant, report);
    }
    if opts.fault_loss > 0.0
        || !opts.crashes.is_empty()
        || !opts.partitions.is_empty()
        || opts.persist
    {
        match report.fault_summary_line() {
            Some(line) => println!("  {bench} [{}] {line}", variant.label()),
            None => println!("  {bench} [{}] faults: none observed", variant.label()),
        }
    }
}

/// Runs `bench` under `variant`, panicking with context on failure
/// (experiments must not silently drop bars).
///
/// With `--fault-loss` active, each run also prints its injected-fault
/// and retry counters so figures produced under loss say so. With
/// `--trace`/`--trace-metrics` the run records its full event trace
/// (same events, same digest as the untraced run) and exports it.
pub fn run_variant(bench: Benchmark, variant: Variant, opts: &ExpOpts) -> RunReport {
    let (report, trace) = compute_variant(bench, variant, opts);
    emit_variant(bench, variant, opts, &report, trace.as_ref());
    report
}

/// Precomputing cell runner shared by the experiment binaries.
///
/// [`Runner::precompute`] fans a whole sweep's cells across
/// `opts.jobs` worker threads ([`pool::run`]); [`Runner::run`] then
/// hands each report back in whatever order the binary consumes them,
/// performing the cell's printing/exporting side effects at that
/// moment. Because the side effects run on the consuming thread in
/// consumption order, output is byte-identical to a serial sweep.
/// Cells never precomputed are simply run on demand.
pub struct Runner<'a> {
    opts: &'a ExpOpts,
    // Key → FIFO of precomputed results, so a sweep that consumes the
    // same cell twice may also precompute it twice.
    cache: HashMap<(Benchmark, String), Vec<CellResult>>,
}

/// What `compute_variant` produces for one cell: the report, plus the
/// event trace when the options ask for one.
type CellResult = (RunReport, Option<Trace>);

impl<'a> Runner<'a> {
    /// A runner with an empty cache; cells run serially on demand.
    pub fn new(opts: &'a ExpOpts) -> Self {
        Runner {
            opts,
            cache: HashMap::new(),
        }
    }

    /// The experiment options every cell runs under.
    pub fn opts(&self) -> &'a ExpOpts {
        self.opts
    }

    /// Runs every `(bench, variant)` cell across `opts.jobs` threads
    /// and caches the results for later [`Runner::run`] calls.
    pub fn precompute(&mut self, cells: &[(Benchmark, Variant)]) {
        let opts = self.opts;
        let tasks: Vec<_> = cells
            .iter()
            .map(|&(bench, variant)| move || compute_variant(bench, variant, opts))
            .collect();
        let results = pool::run(opts.jobs, tasks);
        for (&(bench, variant), result) in cells.iter().zip(results) {
            self.cache
                .entry((bench, variant.label()))
                .or_default()
                .push(result);
        }
    }

    /// The standard sweep: every app in `opts` × the given variants.
    pub fn precompute_matrix(&mut self, variants: &[Variant]) {
        let cells: Vec<_> = self
            .opts
            .apps
            .iter()
            .flat_map(|&b| variants.iter().map(move |&v| (b, v)))
            .collect();
        self.precompute(&cells);
    }

    /// The cell's report, from the cache when precomputed (otherwise
    /// computed now), with its side effects performed here and now.
    pub fn run(&mut self, bench: Benchmark, variant: Variant) -> RunReport {
        let cached = self
            .cache
            .get_mut(&(bench, variant.label()))
            .filter(|v| !v.is_empty())
            // FIFO: earliest precompute is consumed first.
            .map(|v| v.remove(0));
        let (report, trace) = cached.unwrap_or_else(|| compute_variant(bench, variant, self.opts));
        emit_variant(bench, variant, self.opts, &report, trace.as_ref());
        report
    }
}

/// Renders Figure 1's per-application block for `bench` — exactly the
/// text the `fig1` binary prints per app, so snapshot tests can pin a
/// digest of the emitted rows.
pub fn fig1_row(bench: Benchmark, runner: &mut Runner<'_>) -> String {
    let report = runner.run(bench, Variant::Original);
    let bars = [Bar::new("O", report.breakdown)];
    format!(
        "{}\n  total {}   msgs {}   bytes {}K   misses {}\n",
        render_bars(bench.name(), &bars, report.breakdown.total()),
        report.total_time,
        report.net.total_msgs,
        report.net.total_bytes / 1024,
        report.misses.misses,
    )
}

/// Computes Table 1's row cells for `bench` — exactly the strings the
/// `table1` binary puts in its table, shared with the snapshot tests.
pub fn table1_row(bench: Benchmark, runner: &mut Runner<'_>) -> Vec<String> {
    let orig = runner.run(bench, Variant::Original);
    let pf = runner.run(bench, Variant::Prefetch);
    vec![
        bench.name().to_string(),
        format!("{:.2}%", pf.prefetch.unnecessary_fraction() * 100.0),
        format!("{:.2}%", pf.prefetch.coverage() * 100.0),
        (orig.net.total_bytes / 1024).to_string(),
        (pf.net.total_bytes / 1024).to_string(),
        orig.misses.misses.to_string(),
        pf.misses.misses.to_string(),
        orig.misses.avg_latency().as_micros().to_string(),
        pf.misses.avg_latency().as_micros().to_string(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_labels() {
        assert_eq!(Variant::Original.label(), "O");
        assert_eq!(Variant::Prefetch.label(), "P");
        assert_eq!(Variant::History.label(), "H");
        assert_eq!(Variant::Adaptive.label(), "A");
        assert_eq!(Variant::AdaptiveStatic.label(), "A+P");
        assert_eq!(Variant::Threads(4).label(), "4T");
        assert_eq!(Variant::Combined(8).label(), "8TP");
    }

    #[test]
    fn adaptive_variants_configure_their_modes() {
        use rsdsm_core::PrefetchMode;
        let opts = ExpOpts::default();
        let h = Variant::History.config(Benchmark::Radix, &opts);
        assert_eq!(h.prefetch.mode(), PrefetchMode::History);
        let a = Variant::Adaptive.config(Benchmark::Fft, &opts);
        assert_eq!(a.prefetch.mode(), PrefetchMode::Adaptive);
        assert!(!a.prefetch.compiler_style, "adaptive ignores annotations");
        let ap = Variant::AdaptiveStatic.config(Benchmark::Fft, &opts);
        assert_eq!(ap.prefetch.mode(), PrefetchMode::AdaptiveStatic);
        assert!(
            ap.prefetch.compiler_style,
            "FFT's static half is compiler-inserted"
        );
        let ap_sor = Variant::AdaptiveStatic.config(Benchmark::Sor, &opts);
        assert!(
            !ap_sor.prefetch.compiler_style,
            "SOR's static half is hand-inserted"
        );
    }

    #[test]
    fn combined_config_throttles_radix_only() {
        let opts = ExpOpts::default();
        let radix = Variant::Combined(2).config(Benchmark::Radix, &opts);
        assert_eq!(radix.prefetch.throttle, 2);
        let fft = Variant::Combined(2).config(Benchmark::Fft, &opts);
        assert_eq!(fft.prefetch.throttle, 1);
        assert!(fft.prefetch.compiler_style);
        assert!(!fft.threads.switch_on_memory);
        assert!(fft.threads.switch_on_sync);
    }

    #[test]
    fn default_opts_cover_all_apps() {
        let opts = ExpOpts::default();
        assert_eq!(opts.apps.len(), 8);
        assert_eq!(opts.nodes, 8);
    }

    #[test]
    fn crash_specs_parse() {
        let c = parse_crash("3@250").expect("crash-stop spec");
        assert_eq!(c.node, 3);
        assert_eq!(c.at, SimTime::ZERO + SimDuration::from_millis(250));
        assert_eq!(c.restart_after, None);
        let c = parse_crash("1@10:restart=500").expect("crash-restart spec");
        assert_eq!(c.node, 1);
        assert_eq!(c.restart_after, Some(SimDuration::from_millis(500)));
        assert!(parse_crash("nope").is_none());
        assert!(parse_crash("1@x").is_none());
        assert!(parse_crash("1@5:restart=").is_none());
    }

    #[test]
    fn crash_flags_enable_recovery() {
        let mut opts = ExpOpts::default();
        opts.crashes.push(parse_crash("2@100").unwrap());
        opts.checkpoint_every = 4;
        let cfg = opts.base_config();
        assert_eq!(cfg.faults.crashes.len(), 1);
        assert!(cfg.recovery.enabled);
        assert_eq!(cfg.recovery.checkpoint_every, 4);

        // Checkpointing alone measures overhead: detection stays off.
        let ckpt_only = ExpOpts {
            checkpoint_every: 2,
            ..ExpOpts::default()
        };
        let cfg = ckpt_only.base_config();
        assert!(!cfg.recovery.enabled);
        assert_eq!(cfg.recovery.checkpoint_every, 2);

        // And the default stays exactly off.
        assert_eq!(
            ExpOpts::default().base_config().recovery,
            RecoveryConfig::off()
        );
    }

    #[test]
    fn partition_specs_parse() {
        let p = parse_partition("2@5:heal=10").expect("single-minority spec");
        assert_eq!(p.groups, vec![vec![2]]);
        assert_eq!(p.at, SimTime::ZERO + SimDuration::from_millis(5));
        assert_eq!(p.heal_after, SimDuration::from_millis(10));
        assert!(!p.asym);

        let p = parse_partition("0,1|2,3@250:heal=40:asym").expect("two-group asym spec");
        assert_eq!(p.groups, vec![vec![0, 1], vec![2, 3]]);
        assert_eq!(p.at, SimTime::ZERO + SimDuration::from_millis(250));
        assert_eq!(p.heal_after, SimDuration::from_millis(40));
        assert!(p.asym);

        assert!(parse_partition("nope").is_none());
        assert!(parse_partition("2@5").is_none(), "heal is mandatory");
        assert!(parse_partition("2@x:heal=10").is_none());
        assert!(parse_partition("2@5:heal=").is_none());
        assert!(parse_partition("2@5:heal=10:bogus").is_none());
        assert!(parse_partition("|2@5:heal=10").is_none(), "empty group");
    }

    #[test]
    fn partition_flags_enable_recovery() {
        let mut opts = ExpOpts::default();
        opts.partitions
            .push(parse_partition("2@5:heal=10").unwrap());
        opts.checkpoint_every = 2;
        let cfg = opts.base_config();
        assert_eq!(cfg.faults.partitions.len(), 1);
        assert!(cfg.recovery.enabled);
        assert_eq!(cfg.recovery.checkpoint_every, 2);
    }

    #[test]
    fn persist_flags_shape_the_device() {
        // Defaults: the layer stays off and the config stays stock.
        assert!(!ExpOpts::default().base_config().recovery.persist.enabled);

        let mut opts = ExpOpts {
            checkpoint_every: 2,
            persist: true,
            ..ExpOpts::default()
        };
        let dev = opts.base_config().recovery.persist;
        assert!(dev.enabled);
        assert_eq!(dev.write_bw, PersistConfig::off().write_bw);
        assert_eq!(dev.fence_latency, PersistConfig::off().fence_latency);

        // MB/s is numerically bytes/us; reads model at twice writes.
        opts.persist_bw = 20;
        opts.fence_us = 10;
        let dev = opts.base_config().recovery.persist;
        assert_eq!(dev.write_bw, 20);
        assert_eq!(dev.read_bw, 40);
        assert_eq!(dev.fence_latency, SimDuration::from_micros(10));
    }

    #[test]
    fn fault_loss_installs_a_plan_derived_from_the_seed() {
        let opts = ExpOpts::default();
        assert!(opts.base_config().faults.is_none());
        let lossy = ExpOpts {
            fault_loss: 0.1,
            seed: 42,
            ..ExpOpts::default()
        };
        let cfg = lossy.base_config();
        assert!(!cfg.faults.is_none());
        assert_eq!(cfg.faults.seed, 42 ^ 0xfa17);
        assert_eq!(cfg.faults.drop.control, 0.1);
    }
}
