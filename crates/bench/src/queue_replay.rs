//! A RADIX-shaped event-queue replay: the workload the engine's
//! timing wheel is sized for, isolated from the protocol so queue
//! throughput can be measured (and the two backends cross-checked)
//! without simulating anything.
//!
//! The schedule mimics what a large RADIX cell keeps in flight: a
//! standing population of pending events (in-flight frames and armed
//! retry timers across every directed link), churned by pop-one
//! push-one steps whose deltas follow the engine's actual mix —
//! mostly sub-millisecond arrivals, a band of ~4 ms retry timers,
//! some same-instant self-sends (CPU-queue wakeups), and a trickle of
//! far-future timers (backed-off retries, heartbeat leases). Every
//! step pops the earliest event and schedules exactly one successor,
//! so the population — and therefore the heap's `log n` — stays
//! constant for the whole measurement.

use rsdsm_simnet::{DetRng, EventQueue, HeapQueue, SimDuration, SimTime};

/// The queue surface the replay exercises, implemented by both
/// backends so the same driver measures either. Payloads are bare
/// words: the replay measures the cost of the queue *structure*, so
/// the payload contributes as little of its own traffic as possible.
pub trait ReplayQueue {
    /// Schedules `payload` at `at`.
    fn push(&mut self, at: SimTime, payload: u64);
    /// Pops the earliest (FIFO-tie-broken) event.
    fn pop(&mut self) -> Option<(SimTime, u64)>;
}

impl ReplayQueue for EventQueue<u64> {
    fn push(&mut self, at: SimTime, payload: u64) {
        EventQueue::push(self, at, payload);
    }
    fn pop(&mut self) -> Option<(SimTime, u64)> {
        EventQueue::pop(self)
    }
}

impl ReplayQueue for HeapQueue<u64> {
    fn push(&mut self, at: SimTime, payload: u64) {
        HeapQueue::push(self, at, payload);
    }
    fn pop(&mut self) -> Option<(SimTime, u64)> {
        HeapQueue::pop(self)
    }
}

/// The engine-shaped delta to the next event a popped event spawns.
fn next_delta(rng: &mut DetRng) -> SimDuration {
    match rng.next_below(100) {
        // Message arrivals: queueing + wire time on the simulated ATM
        // LAN, tens of microseconds to a couple of milliseconds.
        0..=64 => SimDuration::from_nanos(20_000 + rng.next_below(2_000_000)),
        // Retry timers armed alongside each data frame (~4 ms RTO,
        // with jitter from the send completion time).
        65..=84 => SimDuration::from_nanos(4_000_000 + rng.next_below(500_000)),
        // CPU-queue wakeups: zero to a few microseconds.
        85..=94 => SimDuration::from_nanos(rng.next_below(5_000)),
        // Backed-off retries and heartbeat leases: far future.
        _ => SimDuration::from_nanos(200_000_000 + rng.next_below(1_800_000_000)),
    }
}

/// Fills `q` with `population` pending events spread like a cluster's
/// steady state, and returns the seeded RNG for [`schedule`].
pub fn prime(q: &mut impl ReplayQueue, population: u64, seed: u64) -> DetRng {
    let mut rng = DetRng::new(seed);
    let mut t = SimTime::ZERO;
    for i in 0..population {
        t += SimDuration::from_nanos(rng.next_below(1_000));
        q.push(t + next_delta(&mut rng), i);
    }
    rng
}

/// Pre-draws the delta for every replay step. Generating the schedule
/// up front keeps RNG cost out of the measured region — the benchmark
/// claims queue throughput, so the timed loop must be queue work plus
/// nothing but a streaming read of this array and the checksum fold
/// (which both backends pay identically).
pub fn schedule(rng: &mut DetRng, steps: u64) -> Vec<SimDuration> {
    (0..steps).map(|_| next_delta(rng)).collect()
}

/// Runs one pop-one push-one step per scheduled delta against the
/// primed queue and returns a checksum folding every popped
/// (time, payload) pair — the wheel and the heap must produce the
/// same value, so a benchmark run doubles as one more differential
/// check. The fold is a rotate-xor rather than a hash multiply: it is
/// still order-sensitive (the same pairs popped in a different order
/// land on different rotations), but it keeps the per-step dependency
/// chain — overhead both backends pay — as short as possible.
pub fn replay(q: &mut impl ReplayQueue, deltas: &[SimDuration]) -> u64 {
    let mut checksum = 0u64;
    for (i, &delta) in deltas.iter().enumerate() {
        let (t, p) = q.pop().expect("population stays constant");
        checksum = checksum.rotate_left(7) ^ t.as_nanos() ^ p;
        q.push(t + delta, i as u64);
    }
    checksum
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The replay itself is deterministic and backend-agnostic: both
    /// queues produce the identical checksum (i.e. identical pop
    /// sequences) over a non-trivial schedule.
    #[test]
    fn backends_agree_on_the_replay_checksum() {
        let mut wheel = EventQueue::new();
        let mut heap = HeapQueue::new();
        let mut wheel_rng = prime(&mut wheel, 10_000, 0xADD);
        let mut heap_rng = prime(&mut heap, 10_000, 0xADD);
        let deltas = schedule(&mut wheel_rng, 50_000);
        assert_eq!(deltas, schedule(&mut heap_rng, 50_000));
        let w = replay(&mut wheel, &deltas);
        let h = replay(&mut heap, &deltas);
        assert_eq!(w, h, "wheel and heap diverged during the replay");
    }
}
