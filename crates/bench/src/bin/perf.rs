//! The performance pinner: measures every optimization this crate's
//! hot-path pass claims, end to end, and emits the numbers as
//! machine-readable JSON (committed as `BENCH_matrix.json`).
//!
//! Unlike `cargo bench` (the criterion micro-suite, which prints
//! per-op wall-clock for eyeballing), this binary asserts nothing and
//! measures *ratios* on the same machine in the same process — the
//! only form in which cross-machine perf claims are honest:
//!
//! * `diff_between` — chunked u64 page scan vs the byte-at-a-time
//!   reference, on sparse and dense pages.
//! * `trace_encode` — RTR1 encoding with exact pre-sizing, per event.
//! * `fault_summary` — the single-buffer summary-line formatter.
//! * `radix_end_to_end` — a full RADIX 2TP simulation cell.
//! * `queue_replay` — the timing-wheel event queue vs the binary-heap
//!   reference on a million-event RADIX-shaped schedule (interleaved
//!   rounds, median-of-rounds ratio).
//! * `oracle_matrix` — the oracle's fast grid at `--jobs 1` vs the
//!   requested `--jobs`, the scheduler's headline speedup.
//!
//! Usage: `perf [--jobs N] [--bench-json PATH]` (plus the usual
//! experiment flags; `--test-scale` is the default for CI budgets).

use std::time::Instant;

use rsdsm_apps::{Benchmark, Scale};
use rsdsm_bench::{pool, queue_replay, ExpOpts, Variant};
use rsdsm_core::{
    AdaptiveConfig, DsmConfig, FaultPlan, MissClass, StrideDetector, ThrottleController,
};
use rsdsm_oracle::{check_technique, Technique};
use rsdsm_protocol::{Diff, Page, PAGE_SIZE};
use rsdsm_simnet::{EventQueue, HeapQueue};

/// One measured quantity, reported in nanoseconds.
struct Sample {
    name: &'static str,
    /// Mean wall-clock per iteration, nanoseconds.
    nanos: f64,
    iters: u64,
}

/// Times `f` over `iters` iterations and returns the mean ns/iter.
fn time<O>(iters: u64, mut f: impl FnMut() -> O) -> f64 {
    // One warm-up pass keeps first-touch page faults and lazy init
    // out of the measurement.
    std::hint::black_box(f());
    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

fn dirty_page(stride: usize) -> (Page, Page) {
    let twin = Page::new();
    let mut current = twin.clone();
    for off in (0..PAGE_SIZE - 8).step_by(stride) {
        current.write_u64(off, off as u64 + 1);
    }
    (twin, current)
}

fn main() {
    let opts = ExpOpts::from_args();
    let mut samples: Vec<Sample> = Vec::new();
    let mut ratios: Vec<(&'static str, f64)> = Vec::new();

    // --- Diff::between: chunked scan vs byte-at-a-time reference ---
    for (label_new, label_ref, label_ratio, stride) in [
        (
            "diff_between_sparse_ns",
            "diff_between_sparse_reference_ns",
            "diff_between_sparse_speedup",
            256,
        ),
        (
            "diff_between_dense_ns",
            "diff_between_dense_reference_ns",
            "diff_between_dense_speedup",
            8,
        ),
    ] {
        let (twin, current) = dirty_page(stride);
        let iters = 2_000;
        let fast = time(iters, || Diff::between(&twin, &current));
        let slow = time(iters, || Diff::between_reference(&twin, &current));
        samples.push(Sample {
            name: label_new,
            nanos: fast,
            iters,
        });
        samples.push(Sample {
            name: label_ref,
            nanos: slow,
            iters,
        });
        ratios.push((label_ratio, slow / fast));
    }

    // --- RTR1 trace encoding (exact pre-sizing) ---
    let (_, trace) = Benchmark::Radix
        .run_traced(
            Scale::Test,
            Variant::Combined(2).config(Benchmark::Radix, &opts),
        )
        .expect("traced RADIX");
    let iters = 200;
    let encode = time(iters, || trace.encode());
    samples.push(Sample {
        name: "trace_encode_ns",
        nanos: encode,
        iters,
    });
    samples.push(Sample {
        name: "trace_encode_ns_per_event",
        nanos: encode / trace.len() as f64,
        iters,
    });

    // --- fault_summary_line (single-buffer formatter) ---
    let lossy = Benchmark::Fft
        .run(
            Scale::Test,
            DsmConfig::paper_cluster(opts.nodes)
                .with_seed(opts.seed)
                .with_faults(FaultPlan::uniform_loss(0xFA11, 0.05)),
        )
        .expect("lossy FFT");
    let iters = 20_000;
    samples.push(Sample {
        name: "fault_summary_line_ns",
        nanos: time(iters, || lossy.fault_summary_line()),
        iters,
    });

    // --- Adaptive-prefetch per-fault hot path ---
    // The detector's amortized-O(1) claim, measured: one observe on a
    // steady strided stream (ring slide + two count updates) and on a
    // trendless stream (maximal count churn), plus the throttle's
    // feedback fold. These run on every remote fault of an adaptive
    // run, so they must stay in the tens of nanoseconds.
    let iters = 1_000_000;
    let mut detector = StrideDetector::new(8);
    let mut page = 0u64;
    samples.push(Sample {
        name: "prefetch_detect_steady_ns",
        nanos: time(iters, || {
            page += 2;
            detector.observe(page)
        }),
        iters,
    });
    let mut detector = StrideDetector::new(8);
    let mut page = 0u64;
    let mut step = 1u64;
    samples.push(Sample {
        name: "prefetch_detect_trendless_ns",
        nanos: time(iters, || {
            step = step % 97 + 1;
            page += step;
            detector.observe(page)
        }),
        iters,
    });
    let mut throttle = ThrottleController::new(&AdaptiveConfig::on());
    let mut k = 0u64;
    samples.push(Sample {
        name: "prefetch_throttle_observe_ns",
        nanos: time(iters, || {
            k += 1;
            throttle.observe(if k.is_multiple_of(3) {
                MissClass::Hit
            } else {
                MissClass::NoPf
            })
        }),
        iters,
    });

    // --- End-to-end simulation cell ---
    let iters = 5;
    samples.push(Sample {
        name: "radix_2tp_end_to_end_ns",
        nanos: time(iters, || {
            Benchmark::Radix
                .run(
                    opts.scale,
                    Variant::Combined(2).config(Benchmark::Radix, &opts),
                )
                .expect("RADIX cell")
        }),
        iters,
    });

    // --- Event-queue replay: timing wheel vs binary-heap reference ---
    // A million-step RADIX-shaped schedule (see
    // `rsdsm_bench::queue_replay`) against a million-event standing
    // population. Each step is one pop plus one push, so a step
    // processes two queue events.
    // The standing population is one million pending events — the
    // regime the ROADMAP's datacenter scale-out items (64–1024 nodes)
    // put the engine in, and the regime the rewrite exists for: the
    // heap reference pays ~log₂(10⁶) sift levels over a ~24 MB
    // working set per operation, while the wheel's cost is bounded by
    // its geometry and stays flat as the population grows.
    //
    // Priming and the delta schedule are outside the measurement: the
    // timed region is queue work plus the checksum fold only. A single
    // pass per backend is too noisy for a pinned ratio — the heap's
    // working set makes it hypersensitive to ambient memory pressure —
    // so we run interleaved rounds and report the best ns/event per
    // backend alongside the *median* of the per-round adjacent ratios
    // (the ratio a regression gate can trust).
    let population = 1_000_000;
    let steps = 1_000_000u64;
    let rounds = 5;
    let mut events_per_sec: Vec<(&'static str, f64)> = Vec::new();
    let mut best_ns = [f64::INFINITY; 2];
    let mut round_ratios = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let mut pair = [0.0f64; 2];
        let mut checksums = [0u64; 2];
        for i in 0..2 {
            let ns_total = if i == 0 {
                let mut q = EventQueue::with_capacity(population as usize);
                let mut rng = queue_replay::prime(&mut q, population, 0x5D5);
                let deltas = queue_replay::schedule(&mut rng, steps);
                let start = Instant::now();
                checksums[i] = queue_replay::replay(&mut q, &deltas);
                start.elapsed().as_nanos() as f64
            } else {
                let mut q = HeapQueue::with_capacity(population as usize);
                let mut rng = queue_replay::prime(&mut q, population, 0x5D5);
                let deltas = queue_replay::schedule(&mut rng, steps);
                let start = Instant::now();
                checksums[i] = queue_replay::replay(&mut q, &deltas);
                start.elapsed().as_nanos() as f64
            };
            pair[i] = ns_total / (2.0 * steps as f64);
            best_ns[i] = best_ns[i].min(pair[i]);
        }
        assert_eq!(
            checksums[0], checksums[1],
            "wheel and heap diverged during the perf replay"
        );
        round_ratios.push(pair[1] / pair[0]);
    }
    round_ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite ratios"));
    let median_ratio = round_ratios[rounds / 2];
    for (i, name) in [
        "queue_wheel_replay_ns_per_event",
        "queue_heap_replay_ns_per_event",
    ]
    .into_iter()
    .enumerate()
    {
        samples.push(Sample {
            name,
            nanos: best_ns[i],
            iters: 2 * steps * rounds as u64,
        });
    }
    events_per_sec.push(("queue_wheel_events_per_sec", 1e9 / best_ns[0]));
    events_per_sec.push(("queue_heap_events_per_sec", 1e9 / best_ns[1]));
    ratios.push(("queue_replay_speedup", median_ratio));

    // --- Oracle fast grid: serial vs parallel scheduler ---
    let cells: Vec<(Benchmark, Technique)> =
        [Benchmark::Sor, Benchmark::Radix, Benchmark::WaterNsq]
            .into_iter()
            .flat_map(|b| [Technique::Base, Technique::Combined].map(|t| (b, t)))
            .collect();
    let oracle_sweep = |jobs: usize| {
        let tasks: Vec<_> = cells
            .iter()
            .map(|&(bench, technique)| {
                let seed = opts.seed;
                let nodes = opts.nodes;
                move || {
                    let cfg = DsmConfig::paper_cluster(nodes).with_seed(seed);
                    let verdict = check_technique(bench, Scale::Test, technique, cfg)
                        .unwrap_or_else(|e| panic!("{bench} {}: {e:?}", technique.label()));
                    assert!(verdict.ok(), "oracle failed: {}", verdict.summary_line());
                }
            })
            .collect();
        pool::run(jobs, tasks);
    };
    let serial = time(1, || oracle_sweep(1));
    let parallel = time(1, || oracle_sweep(opts.jobs));
    samples.push(Sample {
        name: "oracle_fast_grid_serial_ns",
        nanos: serial,
        iters: 1,
    });
    samples.push(Sample {
        name: "oracle_fast_grid_parallel_ns",
        nanos: parallel,
        iters: 1,
    });
    ratios.push(("oracle_fast_grid_speedup", serial / parallel));

    // --- Report ---
    println!(
        "perf: {} nodes, {:?} scale, seed {}, jobs {} ({} cores)",
        opts.nodes,
        opts.scale,
        opts.seed,
        opts.jobs,
        pool::default_jobs()
    );
    for s in &samples {
        println!(
            "  {:<36} {:>14.1} ns/iter  ({} iters)",
            s.name, s.nanos, s.iters
        );
    }
    for (name, rate) in &events_per_sec {
        println!("  {name:<36} {rate:>14.0} events/s");
    }
    for (name, ratio) in &ratios {
        println!("  {name:<36} {ratio:>13.2}x");
    }

    if let Some(path) = &opts.bench_json {
        let mut json = String::from("{\n");
        json.push_str(&format!(
            "  \"config\": {{\"nodes\": {}, \"scale\": \"{:?}\", \"seed\": {}, \
             \"jobs\": {}, \"cores\": {}}},\n",
            opts.nodes,
            opts.scale,
            opts.seed,
            opts.jobs,
            pool::default_jobs()
        ));
        json.push_str("  \"samples_ns\": {\n");
        for (i, s) in samples.iter().enumerate() {
            let comma = if i + 1 < samples.len() { "," } else { "" };
            json.push_str(&format!("    \"{}\": {:.1}{comma}\n", s.name, s.nanos));
        }
        json.push_str("  },\n  \"events_per_sec\": {\n");
        for (i, (name, rate)) in events_per_sec.iter().enumerate() {
            let comma = if i + 1 < events_per_sec.len() {
                ","
            } else {
                ""
            };
            json.push_str(&format!("    \"{name}\": {rate:.0}{comma}\n"));
        }
        json.push_str("  },\n  \"speedups\": {\n");
        for (i, (name, ratio)) in ratios.iter().enumerate() {
            let comma = if i + 1 < ratios.len() { "," } else { "" };
            json.push_str(&format!("    \"{name}\": {ratio:.2}{comma}\n"));
        }
        json.push_str("  }\n}\n");
        std::fs::write(path, json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("  wrote {path}");
    }
}
