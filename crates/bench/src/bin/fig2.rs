//! Figure 2: performance impact of prefetching (O vs P), normalized
//! to the original execution time, with the prefetch-overhead
//! category and the paper's speedup summary.

use rsdsm_bench::{ExpOpts, Runner, Variant};
use rsdsm_stats::{render_bars, speedup_label, Bar};

fn main() {
    let opts = ExpOpts::from_args();
    println!(
        "Figure 2: impact of prefetching (O = original, P = with prefetching) — {} nodes, {:?} scale\n",
        opts.nodes, opts.scale
    );
    let mut runner = Runner::new(&opts);
    runner.precompute_matrix(&[Variant::Original, Variant::Prefetch]);
    for bench in opts.apps.clone() {
        let orig = runner.run(bench, Variant::Original);
        let pf = runner.run(bench, Variant::Prefetch);
        let bars = [Bar::new("O", orig.breakdown), Bar::new("P", pf.breakdown)];
        println!(
            "{}",
            render_bars(bench.name(), &bars, orig.breakdown.total())
        );
        let mem_orig = orig.breakdown[rsdsm_core::Category::MemoryIdle];
        let mem_pf = pf.breakdown[rsdsm_core::Category::MemoryIdle];
        let mem_cut = if mem_orig.is_zero() {
            0.0
        } else {
            100.0 * (1.0 - mem_pf.as_nanos() as f64 / mem_orig.as_nanos() as f64)
        };
        println!(
            "  speedup {}   memory-stall reduction {:.0}%\n",
            speedup_label(orig.total_time, pf.total_time),
            mem_cut,
        );
    }
}
