//! Figure 3: breakdown of the original remote misses under
//! prefetching — no-pf / pf-miss:invalidated / pf-miss:too-late /
//! pf-hit, normalized to all faults.

use rsdsm_bench::{ExpOpts, Runner, Variant};
use rsdsm_stats::{percent, Align, AsciiTable};

fn main() {
    let opts = ExpOpts::from_args();
    println!(
        "Figure 3: what happened to the original remote misses (prefetching run) — {} nodes, {:?} scale\n",
        opts.nodes, opts.scale
    );
    let mut table = AsciiTable::new(
        vec![
            "Benchmark",
            "no pf",
            "pf-miss: invalidated",
            "pf-miss: too late",
            "pf-hit",
        ],
        vec![
            Align::Left,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
        ],
    );
    let mut runner = Runner::new(&opts);
    runner.precompute_matrix(&[Variant::Prefetch]);
    for bench in opts.apps.clone() {
        let pf = runner.run(bench, Variant::Prefetch);
        let p = &pf.prefetch;
        let total = p.no_pf + p.invalidated + p.too_late + p.hits;
        table.add_row(vec![
            bench.name().to_string(),
            format!("{:.0}%", percent(p.no_pf, total)),
            format!("{:.0}%", percent(p.invalidated, total)),
            format!("{:.0}%", percent(p.too_late, total)),
            format!("{:.0}%", percent(p.hits, total)),
        ]);
    }
    println!("{table}");
}
