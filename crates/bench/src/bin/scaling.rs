//! Node scaling: speedup of each application from 1 to 8 nodes, with
//! and without the latency tolerance techniques. Not a figure in the
//! paper, but the context for its §1 claim that software DSMs can be
//! competitive "for certain classes of applications" while others are
//! communication-bound.

use rsdsm_bench::{ExpOpts, Runner, Variant};
use rsdsm_stats::{Align, AsciiTable};

fn main() {
    let mut opts = ExpOpts::from_args();
    println!(
        "Node scaling ({:?} scale): simulated time and self-relative speedup\n",
        opts.scale
    );
    for bench in opts.apps.clone() {
        let mut table = AsciiTable::new(
            vec![
                "nodes",
                "O total",
                "O speedup",
                "best-technique total",
                "best variant",
            ],
            vec![
                Align::Right,
                Align::Right,
                Align::Right,
                Align::Right,
                Align::Left,
            ],
        );
        let mut base_time = None;
        for nodes in [1usize, 2, 4, 8] {
            opts.nodes = nodes;
            // All variants for this (app, node count) run in parallel;
            // the table still prints them in sweep order.
            let mut runner = Runner::new(&opts);
            if nodes > 1 {
                runner.precompute(&[
                    (bench, Variant::Original),
                    (bench, Variant::Prefetch),
                    (bench, Variant::Threads(2)),
                    (bench, Variant::Combined(2)),
                ]);
            }
            let orig = runner.run(bench, Variant::Original);
            let base = *base_time.get_or_insert(orig.total_time);
            // The paper's per-app winner: prefetching and modest
            // multithreading are the candidates worth sweeping here.
            let mut best = (orig.total_time, "O".to_string());
            if nodes > 1 {
                for variant in [Variant::Prefetch, Variant::Threads(2), Variant::Combined(2)] {
                    let r = runner.run(bench, variant);
                    if r.total_time < best.0 {
                        best = (r.total_time, variant.label());
                    }
                }
            }
            table.add_row(vec![
                nodes.to_string(),
                orig.total_time.to_string(),
                format!(
                    "{:.2}x",
                    base.as_nanos() as f64 / orig.total_time.as_nanos() as f64
                ),
                best.0.to_string(),
                best.1,
            ]);
        }
        println!("{}\n{table}", bench.name());
    }
}
