//! The scale-out suite: switched topologies, directory-sharded
//! homes, and the 64/256/1024-node scaling study.
//!
//! The paper stops at 8 nodes on one ATM switch. This binary takes
//! the same engine beyond the paper: each tier of the sweep runs
//! hot-spot and incast micro-studies (plus the RADIX and FFT kernels
//! where the interval-broadcast barrier protocol keeps them
//! tractable) on the flat bus and on a rack-and-spine fabric, with
//! and without directory-sharded homes, and reports events/sec,
//! per-tier wall-clock, and the breakdown behind each number:
//! barrier cost, directory hot-spots, and incast retry storms.
//!
//! Usage: `scaling [--nodes N] [--tiers A,B,..] [--full]
//! [--topology rack:R,spine:S] [--oversub K] [--seed S]
//! [--bench-json PATH]`
//!
//! With no arguments the fast subset (8 and 64 nodes) runs — the CI
//! experiments budget. `--full` (or `RSDSM_SCALING_MATRIX=full`) adds
//! the 256- and 1024-node tiers and writes the numbers behind the
//! committed `BENCH_scaling.json`.

use std::time::Instant;

use rsdsm_apps::{Benchmark, Scale};
use rsdsm_core::{
    BarrierId, DirectoryConfig, DirectoryPolicy, DsmConfig, DsmCtx, DsmProgram, Heap, HomePolicy,
    PrefetchConfig, RunReport, SharedVec, Simulation, Topology, PAGE_SIZE,
};

/// Shared-array words per page.
const WORDS: usize = PAGE_SIZE / 8;

/// Hot pages every node reads in the hot-spot micro-study.
const HOT_PAGES: usize = 8;

/// Upper bound on incast fan-in (memory guard: every node holds a
/// slot for every allocated page, so the page count must stay fixed
/// as the cluster grows).
const INCAST_MAX: usize = 64;

/// Wall-clock samples per gate value; the CI gate compares medians.
const GATE_SAMPLES: usize = 5;

/// Every node reads the same few pages, all homed on node 0 — the
/// directory hot-spot in its purest form. Read-only, so no write
/// intervals: the 1024-node tier stays memory-feasible.
struct HotSpot;

impl DsmProgram for HotSpot {
    type Handles = SharedVec<u64>;

    fn name(&self) -> String {
        "hotspot".into()
    }

    fn allocate(&self, heap: &mut Heap) -> Self::Handles {
        heap.alloc(HOT_PAGES * WORDS, HomePolicy::Single(0))
    }

    fn run(&self, ctx: &mut DsmCtx, v: &Self::Handles) {
        for p in 0..HOT_PAGES {
            let _ = ctx.read(v, p * WORDS);
        }
        ctx.barrier(BarrierId(0));
    }
}

/// Node 0 prefetches one page homed on each of many peers at once:
/// the replies converge on its ingress link, congestion drops the
/// droppable ones, and the demand faults that follow measure the
/// retry storm.
struct Incast {
    pages: usize,
}

impl DsmProgram for Incast {
    type Handles = SharedVec<u64>;

    fn name(&self) -> String {
        "incast".into()
    }

    fn allocate(&self, heap: &mut Heap) -> Self::Handles {
        heap.alloc(self.pages * WORDS, HomePolicy::RoundRobin)
    }

    fn run(&self, ctx: &mut DsmCtx, v: &Self::Handles) {
        if ctx.node() == 0 {
            ctx.prefetch(v, 0, v.len());
            for p in 0..self.pages {
                let _ = ctx.read(v, p * WORDS);
            }
        }
        ctx.barrier(BarrierId(0));
    }
}

struct Opts {
    seed: u64,
    tiers: Vec<usize>,
    topology: Option<Topology>,
    oversub: u32,
    bench_json: Option<String>,
}

fn usage(msg: &str) -> ! {
    eprintln!(
        "error: {msg}\nusage: scaling [--nodes N] [--tiers A,B,..] [--full] \
         [--topology rack:R,spine:S] [--oversub K] [--seed S] [--bench-json PATH]"
    );
    std::process::exit(2)
}

fn parse_topology(spec: &str, oversub: u32) -> Topology {
    let mut rack = None;
    let mut spine = None;
    for part in spec.split(',') {
        match part.split_once(':') {
            Some(("rack", v)) => rack = v.parse().ok(),
            Some(("spine", v)) => spine = v.parse().ok(),
            _ => usage("--topology expects rack:R,spine:S"),
        }
    }
    match (rack, spine) {
        (Some(r), Some(s)) => Topology::rack_spine(r, s, oversub),
        _ => usage("--topology expects rack:R,spine:S"),
    }
}

fn parse_args() -> Opts {
    let mut seed = 1998u64;
    let mut tiers: Option<Vec<usize>> = None;
    let mut nodes: Option<usize> = None;
    let mut full = std::env::var("RSDSM_SCALING_MATRIX").as_deref() == Ok("full");
    let mut topology_spec: Option<String> = None;
    let mut oversub = 4u32;
    let mut bench_json = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs a number"));
            }
            "--nodes" => {
                nodes = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--nodes needs a number")),
                );
            }
            "--tiers" => {
                let spec = args.next().unwrap_or_else(|| usage("--tiers needs a list"));
                tiers = Some(
                    spec.split(',')
                        .map(|t| t.parse().unwrap_or_else(|_| usage("bad tier")))
                        .collect(),
                );
            }
            "--full" => full = true,
            "--topology" => {
                topology_spec = Some(
                    args.next()
                        .unwrap_or_else(|| usage("--topology needs a spec")),
                );
            }
            "--oversub" => {
                oversub = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--oversub needs a number"));
            }
            "--bench-json" => {
                bench_json = Some(
                    args.next()
                        .unwrap_or_else(|| usage("--bench-json needs a path")),
                );
            }
            other => usage(&format!("unknown argument {other}")),
        }
    }
    let tiers = tiers.or(nodes.map(|n| vec![n])).unwrap_or_else(|| {
        if full {
            vec![8, 64, 256, 1024]
        } else {
            vec![8, 64]
        }
    });
    Opts {
        seed,
        tiers,
        topology: topology_spec.map(|s| parse_topology(&s, oversub)),
        oversub,
        bench_json,
    }
}

/// The default fabric for a tier: racks of 8 (halved for tiny
/// clusters so there are always at least two racks), two spines,
/// the requested oversubscription.
fn default_fabric(nodes: usize, oversub: u32) -> Topology {
    let rack = if nodes >= 16 { 8 } else { (nodes / 2).max(1) };
    Topology::rack_spine(rack, 2, oversub)
}

/// One measured cell of the suite.
struct Cell {
    tier: usize,
    name: &'static str,
    report: RunReport,
    wall_ms: f64,
}

impl Cell {
    fn events_per_sec(&self) -> f64 {
        if self.wall_ms <= 0.0 {
            0.0
        } else {
            self.report.events_processed as f64 / (self.wall_ms / 1e3)
        }
    }
}

fn run_cell(tier: usize, name: &'static str, cfg: DsmConfig, app: &dyn Runnable) -> Cell {
    let start = Instant::now();
    let report = app
        .run(cfg)
        .unwrap_or_else(|e| panic!("{name} at {tier} nodes: {e}"));
    let wall_ms = start.elapsed().as_nanos() as f64 / 1e6;
    assert!(
        report.verified,
        "{name} at {tier} nodes failed verification"
    );
    Cell {
        tier,
        name,
        report,
        wall_ms,
    }
}

/// Erases the difference between the micro-study programs and the
/// suite kernels so one runner covers both.
trait Runnable {
    fn run(&self, cfg: DsmConfig) -> Result<RunReport, rsdsm_core::SimError>;
}

struct Micro<P: DsmProgram>(P);

impl<P: DsmProgram> Runnable for Micro<P> {
    fn run(&self, cfg: DsmConfig) -> Result<RunReport, rsdsm_core::SimError> {
        Simulation::new(cfg).run(&self.0)
    }
}

struct Kernel(Benchmark);

impl Runnable for Kernel {
    fn run(&self, cfg: DsmConfig) -> Result<RunReport, rsdsm_core::SimError> {
        self.0.run(Scale::Test, cfg)
    }
}

fn main() {
    let opts = parse_args();
    let dir_hash = DirectoryConfig::on(DirectoryPolicy::Hash);
    let mut cells: Vec<Cell> = Vec::new();

    println!(
        "Scale-out suite (seed {}): tiers {:?}, oversub {}:1\n",
        opts.seed, opts.tiers, opts.oversub
    );

    for &nodes in &opts.tiers {
        let fabric = opts
            .topology
            .unwrap_or_else(|| default_fabric(nodes, opts.oversub));
        let base = || DsmConfig::paper_cluster(nodes).with_seed(opts.seed);
        let pf = PrefetchConfig {
            enabled: true,
            ..PrefetchConfig::off()
        };
        let incast = Incast {
            pages: nodes.min(INCAST_MAX),
        };

        cells.push(run_cell(nodes, "hotspot_flat", base(), &Micro(HotSpot)));
        cells.push(run_cell(
            nodes,
            "hotspot_fabric",
            base().with_topology(fabric),
            &Micro(HotSpot),
        ));
        cells.push(run_cell(
            nodes,
            "hotspot_fabric_dir",
            base().with_topology(fabric).with_directory(dir_hash),
            &Micro(HotSpot),
        ));
        cells.push(run_cell(
            nodes,
            "incast_flat",
            base().with_prefetch(pf.clone()),
            &Micro(Incast {
                pages: incast.pages,
            }),
        ));
        cells.push(run_cell(
            nodes,
            "incast_fabric",
            base().with_prefetch(pf.clone()).with_topology(fabric),
            &Micro(Incast {
                pages: incast.pages,
            }),
        ));

        // The kernels write, and every write interval carries an
        // O(nodes) vector clock broadcast O(nodes) wide at each
        // barrier; past 64 nodes that interval traffic (not the
        // engine) dominates, so the big tiers are measured on the
        // read-only micro-studies instead.
        if nodes <= 64 {
            for (bench, flat_name, fabric_name) in [
                (Benchmark::Radix, "radix_flat", "radix_fabric"),
                (Benchmark::Fft, "fft_flat", "fft_fabric"),
            ] {
                cells.push(run_cell(nodes, flat_name, base(), &Kernel(bench)));
                cells.push(run_cell(
                    nodes,
                    fabric_name,
                    base().with_topology(fabric),
                    &Kernel(bench),
                ));
            }
        }
    }

    // --- Human-readable report ---
    println!(
        "{:>5}  {:<18} {:>14} {:>10} {:>9} {:>12} {:>9} {:>8} {:>8}",
        "nodes",
        "cell",
        "sim time",
        "events",
        "wall ms",
        "events/sec",
        "barr us",
        "homehit",
        "pfdrops"
    );
    for c in &cells {
        let r = &c.report;
        println!(
            "{:>5}  {:<18} {:>14} {:>10} {:>9.1} {:>12.0} {:>9} {:>8} {:>8}",
            c.tier,
            c.name,
            r.total_time.to_string(),
            r.events_processed,
            c.wall_ms,
            c.events_per_sec(),
            r.barriers.stall_sum.as_micros(),
            r.directory.home_hits,
            r.prefetch.send_drops + r.prefetch.reply_drops,
        );
    }

    // --- Breakdown analysis per tier ---
    println!("\nper-tier breakdown (hot-spot cell unless noted):");
    for &nodes in &opts.tiers {
        let get = |name: &str| cells.iter().find(|c| c.tier == nodes && c.name == name);
        let (Some(flat), Some(fabric), Some(dir)) = (
            get("hotspot_flat"),
            get("hotspot_fabric"),
            get("hotspot_fabric_dir"),
        ) else {
            continue;
        };
        let barrier_share = |c: &Cell| {
            let total = c.report.total_time.as_nanos() as f64 * nodes as f64;
            if total == 0.0 {
                0.0
            } else {
                100.0 * c.report.barriers.stall_sum.as_nanos() as f64 / total
            }
        };
        println!(
            "  {nodes:>5} nodes: barrier cost {:.1}% of node-time (flat), \
             fabric slows hot-spot {:.2}x, directory spreads {} home hits \
             and recovers to {:.2}x",
            barrier_share(flat),
            fabric.report.total_time.as_nanos() as f64 / flat.report.total_time.as_nanos() as f64,
            dir.report.directory.home_hits,
            dir.report.total_time.as_nanos() as f64 / flat.report.total_time.as_nanos() as f64,
        );
        if let Some(inc) = get("incast_fabric") {
            let p = &inc.report.prefetch;
            println!(
                "  {nodes:>5} nodes: incast storm dropped {} prefetch replies \
                 ({} requests lost), {} demand retries, max queue delay {} us",
                p.reply_drops,
                p.send_drops,
                inc.report.transport.retransmissions,
                inc.report.net.max_queue_delay.as_micros(),
            );
        }
    }

    // --- Machine-readable artifact ---
    if let Some(path) = &opts.bench_json {
        let mut json = String::from("{\n");
        json.push_str(&format!(
            "  \"config\": {{\"seed\": {}, \"tiers\": {:?}, \"oversub\": {}}},\n",
            opts.seed, opts.tiers, opts.oversub
        ));
        json.push_str("  \"cells\": [\n");
        for (i, c) in cells.iter().enumerate() {
            let r = &c.report;
            let comma = if i + 1 < cells.len() { "," } else { "" };
            json.push_str(&format!(
                "    {{\"nodes\": {}, \"cell\": \"{}\", \"sim_us\": {}, \
                 \"events\": {}, \"wall_ms\": {:.1}, \"events_per_sec\": {:.0}, \
                 \"barrier_stall_us\": {}, \"max_queue_delay_us\": {}, \
                 \"dir_home_hits\": {}, \"dir_migrations\": {}, \
                 \"pf_reply_drops\": {}, \"retransmissions\": {}}}{comma}\n",
                c.tier,
                c.name,
                r.total_time.as_micros(),
                r.events_processed,
                c.wall_ms,
                c.events_per_sec(),
                r.barriers.stall_sum.as_micros(),
                r.net.max_queue_delay.as_micros(),
                r.directory.home_hits,
                r.directory.migrations,
                r.prefetch.reply_drops,
                r.transport.retransmissions,
            ));
        }
        // The gate values are wall-clock throughput, so one sample
        // is noise; re-run the hot-spot cell a few times and keep
        // the median, which is what the CI regression gate compares.
        json.push_str("  ],\n  \"events_per_sec\": {\n");
        for (i, &nodes) in opts.tiers.iter().enumerate() {
            let mut samples: Vec<f64> = (0..GATE_SAMPLES)
                .map(|_| {
                    let cfg = DsmConfig::paper_cluster(nodes).with_seed(opts.seed);
                    run_cell(nodes, "hotspot_flat", cfg, &Micro(HotSpot)).events_per_sec()
                })
                .collect();
            samples.sort_by(|a, b| a.total_cmp(b));
            let comma = if i + 1 < opts.tiers.len() { "," } else { "" };
            json.push_str(&format!(
                "    \"scaling_{nodes}_hotspot\": {:.0}{comma}\n",
                samples[samples.len() / 2]
            ));
        }
        json.push_str("  }\n}\n");
        std::fs::write(path, json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("\nwrote {path}");
    }
}
