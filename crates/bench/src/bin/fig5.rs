//! Figure 5: combining prefetching and multithreading — O, nT, P,
//! and nTP bars normalized to the original run, with the paper's
//! best-variant summary.

use rsdsm_bench::{ExpOpts, Runner, Variant};
use rsdsm_stats::{render_bars, speedup_label, Bar};

fn main() {
    let opts = ExpOpts::from_args();
    println!(
        "Figure 5: combining prefetching and multithreading — {} nodes, {:?} scale\n\
         (O = original, nT = threads only, P = prefetching only, nTP = combined)\n",
        opts.nodes, opts.scale
    );
    let mut runner = Runner::new(&opts);
    runner.precompute_matrix(&[
        Variant::Original,
        Variant::Threads(2),
        Variant::Threads(4),
        Variant::Threads(8),
        Variant::Prefetch,
        Variant::Combined(2),
        Variant::Combined(4),
        Variant::Combined(8),
    ]);
    for bench in opts.apps.clone() {
        let orig = runner.run(bench, Variant::Original);
        let mut bars = vec![Bar::new("O", orig.breakdown)];
        let mut best = (String::from("O"), orig.total_time);
        let mut track = |label: String, t: rsdsm_simnet::SimDuration| {
            if t < best.1 {
                best = (label, t);
            }
        };
        for n in [2usize, 4, 8] {
            let r = runner.run(bench, Variant::Threads(n));
            track(format!("{n}T"), r.total_time);
            bars.push(Bar::new(format!("{n}T"), r.breakdown));
        }
        let p = runner.run(bench, Variant::Prefetch);
        track("P".into(), p.total_time);
        bars.push(Bar::new("P", p.breakdown));
        for n in [2usize, 4, 8] {
            let r = runner.run(bench, Variant::Combined(n));
            track(format!("{n}TP"), r.total_time);
            bars.push(Bar::new(format!("{n}TP"), r.breakdown));
        }
        println!(
            "{}",
            render_bars(bench.name(), &bars, orig.breakdown.total())
        );
        println!(
            "  best: {} (speedup {})\n",
            best.0,
            speedup_label(orig.total_time, best.1)
        );
    }
}
