//! Ablation experiments for the design choices the paper discusses
//! but does not plot:
//!
//! 1. **Naive combination** (§5): applying multithreading to *memory*
//!    latency as well as synchronization while also prefetching —
//!    the approach the paper tried first and rejected.
//! 2. **Redundant-prefetch suppression** (§5.1): the per-node dynamic
//!    flag that stops sibling threads re-prefetching the same pages.
//! 3. **RADIX prefetch throttling** (§5.1).
//! 4. **Reliable prefetches** (§3.1 footnote 3): what happens if
//!    prefetch messages are never dropped.
//! 5. **Context-switch cost sensitivity** (§4.3).

use rsdsm_apps::Benchmark;
use rsdsm_bench::{ExpOpts, Runner, Variant};
use rsdsm_core::{PrefetchConfig, ThreadConfig};
use rsdsm_stats::{speedup_label, Align, AsciiTable};

fn main() {
    let opts = ExpOpts::from_args();
    println!("Ablations ({} nodes, {:?} scale)\n", opts.nodes, opts.scale);
    let mut runner = Runner::new(&opts);
    // Every standard-variant cell each section consumes, in consumption
    // order; the scheduler fans them across cores up front and the
    // sections then pop their results in the usual serial order.
    let mut cells = Vec::new();
    for bench in [Benchmark::Fft, Benchmark::WaterNsq, Benchmark::Sor] {
        cells.push((bench, Variant::Original));
        cells.push((bench, Variant::Combined(4)));
    }
    for bench in [Benchmark::WaterNsq, Benchmark::Ocean, Benchmark::Sor] {
        cells.push((bench, Variant::Combined(4)));
    }
    cells.push((Benchmark::Radix, Variant::Combined(4)));
    for bench in [Benchmark::Fft, Benchmark::Radix, Benchmark::Sor] {
        cells.push((bench, Variant::Prefetch));
    }
    for bench in [
        Benchmark::Sor,
        Benchmark::Fft,
        Benchmark::WaterNsq,
        Benchmark::Ocean,
    ] {
        cells.push((bench, Variant::Original));
        cells.push((bench, Variant::Prefetch));
    }
    runner.precompute(&cells);
    naive_combination(&mut runner);
    suppression(&mut runner);
    radix_throttle(&mut runner);
    reliable_prefetch(&mut runner);
    switch_cost(runner.opts());
    automatic_prefetch(&mut runner);
}

/// §3 / §6: hand-inserted prefetching vs a Bianchini-style
/// history-based runtime prefetcher (the paper's claim: explicit
/// insertion prefetches "more intelligently and more aggressively").
fn automatic_prefetch(runner: &mut Runner<'_>) {
    println!("6. Hand-inserted vs automatic (history-based) prefetching");
    let mut t = AsciiTable::new(
        vec![
            "App",
            "O total",
            "hand total",
            "auto total",
            "hand cover",
            "auto cover",
        ],
        vec![
            Align::Left,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
        ],
    );
    for bench in [
        Benchmark::Sor,
        Benchmark::Fft,
        Benchmark::WaterNsq,
        Benchmark::Ocean,
    ] {
        let orig = runner.run(bench, Variant::Original);
        let hand = runner.run(bench, Variant::Prefetch);
        let auto_cfg = runner
            .opts()
            .base_config()
            .with_prefetch(PrefetchConfig::automatic());
        let auto = bench.run(runner.opts().scale, auto_cfg).expect("auto run");
        assert!(auto.verified);
        t.add_row(vec![
            bench.name().into(),
            orig.total_time.to_string(),
            hand.total_time.to_string(),
            auto.total_time.to_string(),
            format!("{:.0}%", hand.prefetch.coverage() * 100.0),
            format!("{:.0}%", auto.prefetch.coverage() * 100.0),
        ]);
    }
    println!("{t}");
}

/// §5: "we apply both prefetching and multithreading to memory
/// latency" — the rejected design.
fn naive_combination(runner: &mut Runner<'_>) {
    println!("1. Combined approach: switch on sync only (paper) vs switch on everything (naive)");
    let mut t = AsciiTable::new(
        vec![
            "App",
            "O total",
            "4TP (paper)",
            "4TP (naive)",
            "paper speedup",
            "naive speedup",
        ],
        vec![
            Align::Left,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
        ],
    );
    for bench in [Benchmark::Fft, Benchmark::WaterNsq, Benchmark::Sor] {
        let orig = runner.run(bench, Variant::Original);
        let paper = runner.run(bench, Variant::Combined(4));
        let mut naive_cfg = Variant::Combined(4).config(bench, runner.opts());
        naive_cfg.threads = ThreadConfig {
            switch_on_memory: true,
            ..naive_cfg.threads
        };
        let naive = bench
            .run(runner.opts().scale, naive_cfg)
            .expect("naive run");
        assert!(naive.verified);
        t.add_row(vec![
            bench.name().into(),
            orig.total_time.to_string(),
            paper.total_time.to_string(),
            naive.total_time.to_string(),
            speedup_label(orig.total_time, paper.total_time),
            speedup_label(orig.total_time, naive.total_time),
        ]);
    }
    println!("{t}");
}

/// §5.1: value of the redundant-prefetch suppression flag.
fn suppression(runner: &mut Runner<'_>) {
    println!("2. Redundant-prefetch suppression in combined mode (4 threads/node)");
    let mut t = AsciiTable::new(
        vec![
            "App",
            "pf msgs (on)",
            "pf msgs (off)",
            "total (on)",
            "total (off)",
        ],
        vec![
            Align::Left,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
        ],
    );
    for bench in [Benchmark::WaterNsq, Benchmark::Ocean, Benchmark::Sor] {
        let on = runner.run(bench, Variant::Combined(4));
        let mut off_cfg = Variant::Combined(4).config(bench, runner.opts());
        off_cfg.prefetch.suppress_redundant = false;
        let off = bench.run(runner.opts().scale, off_cfg).expect("run");
        assert!(off.verified);
        t.add_row(vec![
            bench.name().into(),
            on.prefetch.messages.to_string(),
            off.prefetch.messages.to_string(),
            on.total_time.to_string(),
            off.total_time.to_string(),
        ]);
    }
    println!("{t}");
}

/// §5.1: RADIX throttling (every other prefetch dropped).
fn radix_throttle(runner: &mut Runner<'_>) {
    println!("3. RADIX prefetch throttling in combined mode (4 threads/node)");
    let with = runner.run(Benchmark::Radix, Variant::Combined(4));
    let mut unthrottled_cfg = Variant::Combined(4).config(Benchmark::Radix, runner.opts());
    unthrottled_cfg.prefetch.throttle = 1;
    let without = Benchmark::Radix
        .run(runner.opts().scale, unthrottled_cfg)
        .expect("run");
    assert!(without.verified);
    println!(
        "  throttled:   total {}  pf msgs {}  drops {}\n  unthrottled: total {}  pf msgs {}  drops {}\n",
        with.total_time,
        with.prefetch.messages,
        with.net.drops,
        without.total_time,
        without.prefetch.messages,
        without.net.drops,
    );
}

/// §3.1 footnote 3: reliable vs droppable prefetch messages.
fn reliable_prefetch(runner: &mut Runner<'_>) {
    println!("4. Reliable vs droppable prefetch messages (prefetch-only runs)");
    let mut t = AsciiTable::new(
        vec![
            "App",
            "droppable total",
            "reliable total",
            "drops (droppable)",
        ],
        vec![Align::Left, Align::Right, Align::Right, Align::Right],
    );
    for bench in [Benchmark::Fft, Benchmark::Radix, Benchmark::Sor] {
        let droppable = runner.run(bench, Variant::Prefetch);
        let reliable_cfg = runner.opts().base_config().with_prefetch(PrefetchConfig {
            reliable: true,
            ..bench.paper_prefetch()
        });
        let reliable = bench.run(runner.opts().scale, reliable_cfg).expect("run");
        assert!(reliable.verified);
        t.add_row(vec![
            bench.name().into(),
            droppable.total_time.to_string(),
            reliable.total_time.to_string(),
            droppable.net.drops.to_string(),
        ]);
    }
    println!("{t}");
}

/// §4.3: sensitivity of multithreading to the context-switch cost.
fn switch_cost(opts: &ExpOpts) {
    println!("5. Context-switch cost sensitivity (WATER-SP, 2 threads/node)");
    let mut t = AsciiTable::new(
        vec!["switch cost", "total", "switches"],
        vec![Align::Right, Align::Right, Align::Right],
    );
    for micros in [0u64, 55, 110, 220, 440] {
        let mut cfg = Variant::Threads(2).config(Benchmark::WaterSp, opts);
        cfg.costs.context_switch = rsdsm_simnet::SimDuration::from_micros(micros);
        let r = Benchmark::WaterSp.run(opts.scale, cfg).expect("run");
        assert!(r.verified);
        t.add_row(vec![
            format!("{micros}us"),
            r.total_time.to_string(),
            r.mt.switches.to_string(),
        ]);
    }
    println!("{t}");
}
