//! Table 2: multithreading statistics — average stall time, average
//! run length, message counts and volume, and per-category remote
//! event counts with their stall times.

use rsdsm_bench::{ExpOpts, Runner, Variant};
use rsdsm_stats::{Align, AsciiTable};

fn main() {
    let opts = ExpOpts::from_args();
    println!(
        "Table 2: multithreading statistics (O = original, nT = n threads/processor) — {} nodes, {:?} scale\n",
        opts.nodes, opts.scale
    );
    let mut runner = Runner::new(&opts);
    runner.precompute_matrix(&[
        Variant::Original,
        Variant::Threads(2),
        Variant::Threads(4),
        Variant::Threads(8),
    ]);
    for bench in opts.apps.clone() {
        let mut table = AsciiTable::new(
            vec![
                "Cfg",
                "Avg Stall (us)",
                "Avg Run Len (us)",
                "Msgs",
                "Volume (KB)",
                "Misses",
                "Miss Stall (us)",
                "Rem Locks",
                "Lock Stall (us)",
                "Barriers",
                "Barr Stall (us)",
            ],
            vec![
                Align::Left,
                Align::Right,
                Align::Right,
                Align::Right,
                Align::Right,
                Align::Right,
                Align::Right,
                Align::Right,
                Align::Right,
                Align::Right,
                Align::Right,
            ],
        );
        for (label, variant) in [
            ("O", Variant::Original),
            ("2T", Variant::Threads(2)),
            ("4T", Variant::Threads(4)),
            ("8T", Variant::Threads(8)),
        ] {
            let r = runner.run(bench, variant);
            let avg_miss = if r.misses.misses == 0 {
                0
            } else {
                (r.misses.stall_sum / r.misses.misses).as_micros()
            };
            table.add_row(vec![
                label.to_string(),
                r.mt.avg_stall().as_micros().to_string(),
                r.mt.avg_run_length().as_micros().to_string(),
                r.net.total_msgs.to_string(),
                (r.net.total_bytes / 1024).to_string(),
                r.misses.misses.to_string(),
                avg_miss.to_string(),
                r.locks.events.to_string(),
                r.locks.avg_stall().as_micros().to_string(),
                r.barriers.events.to_string(),
                r.barriers.avg_stall().as_micros().to_string(),
            ]);
        }
        println!("{}\n{table}", bench.name());
    }
}
