//! Table 1: prefetching statistics — unnecessary prefetches, coverage
//! factor, total traffic, total misses, and average miss latency for
//! the original and prefetching runs.

use rsdsm_bench::{table1_row, ExpOpts, Runner, Variant};
use rsdsm_stats::{Align, AsciiTable};

fn main() {
    let opts = ExpOpts::from_args();
    println!(
        "Table 1: prefetching statistics (O = original, P = with prefetching) — {} nodes, {:?} scale\n",
        opts.nodes, opts.scale
    );
    let mut table = AsciiTable::new(
        vec![
            "Benchmark",
            "Unnecessary",
            "Coverage",
            "Traffic O (KB)",
            "Traffic P (KB)",
            "Misses O",
            "Misses P",
            "Avg Lat O (us)",
            "Avg Lat P (us)",
        ],
        vec![
            Align::Left,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
        ],
    );
    let mut runner = Runner::new(&opts);
    runner.precompute_matrix(&[Variant::Original, Variant::Prefetch]);
    for bench in opts.apps.clone() {
        table.add_row(table1_row(bench, &mut runner));
    }
    println!("{table}");
}
