//! Table 1: prefetching statistics — unnecessary prefetches, coverage
//! factor, total traffic, total misses, and average miss latency for
//! the original and prefetching runs.

use rsdsm_bench::{run_variant, ExpOpts, Variant};
use rsdsm_stats::{Align, AsciiTable};

fn main() {
    let opts = ExpOpts::from_args();
    println!(
        "Table 1: prefetching statistics (O = original, P = with prefetching) — {} nodes, {:?} scale\n",
        opts.nodes, opts.scale
    );
    let mut table = AsciiTable::new(
        vec![
            "Benchmark",
            "Unnecessary",
            "Coverage",
            "Traffic O (KB)",
            "Traffic P (KB)",
            "Misses O",
            "Misses P",
            "Avg Lat O (us)",
            "Avg Lat P (us)",
        ],
        vec![
            Align::Left,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
        ],
    );
    for bench in &opts.apps {
        let orig = run_variant(*bench, Variant::Original, &opts);
        let pf = run_variant(*bench, Variant::Prefetch, &opts);
        table.add_row(vec![
            bench.name().to_string(),
            format!("{:.2}%", pf.prefetch.unnecessary_fraction() * 100.0),
            format!("{:.2}%", pf.prefetch.coverage() * 100.0),
            (orig.net.total_bytes / 1024).to_string(),
            (pf.net.total_bytes / 1024).to_string(),
            orig.misses.misses.to_string(),
            pf.misses.misses.to_string(),
            orig.misses.avg_latency().as_micros().to_string(),
            pf.misses.avg_latency().as_micros().to_string(),
        ]);
    }
    println!("{table}");
}
