//! Figure 1: execution time breakdown of unmodified TreadMarks on
//! eight ATM-connected workstations.
//!
//! Prints, per application, the normalized stacked-bar percentages of
//! the paper's four baseline categories.

use rsdsm_bench::{run_variant, ExpOpts, Variant};
use rsdsm_stats::{render_bars, Bar};

fn main() {
    let opts = ExpOpts::from_args();
    println!(
        "Figure 1: baseline TreadMarks execution time breakdown ({} nodes, {:?} scale)\n",
        opts.nodes, opts.scale
    );
    for bench in &opts.apps {
        let report = run_variant(*bench, Variant::Original, &opts);
        let bars = [Bar::new("O", report.breakdown)];
        println!(
            "{}\n  total {}   msgs {}   bytes {}K   misses {}\n",
            render_bars(bench.name(), &bars, report.breakdown.total()),
            report.total_time,
            report.net.total_msgs,
            report.net.total_bytes / 1024,
            report.misses.misses,
        );
    }
}
