//! Figure 1: execution time breakdown of unmodified TreadMarks on
//! eight ATM-connected workstations.
//!
//! Prints, per application, the normalized stacked-bar percentages of
//! the paper's four baseline categories.

use rsdsm_bench::{fig1_row, ExpOpts};

fn main() {
    let opts = ExpOpts::from_args();
    println!(
        "Figure 1: baseline TreadMarks execution time breakdown ({} nodes, {:?} scale)\n",
        opts.nodes, opts.scale
    );
    for bench in &opts.apps {
        println!("{}", fig1_row(*bench, &opts));
    }
}
