//! Figure 1: execution time breakdown of unmodified TreadMarks on
//! eight ATM-connected workstations.
//!
//! Prints, per application, the normalized stacked-bar percentages of
//! the paper's four baseline categories.

use rsdsm_bench::{fig1_row, ExpOpts, Runner, Variant};

fn main() {
    let opts = ExpOpts::from_args();
    println!(
        "Figure 1: baseline TreadMarks execution time breakdown ({} nodes, {:?} scale)\n",
        opts.nodes, opts.scale
    );
    let mut runner = Runner::new(&opts);
    runner.precompute_matrix(&[Variant::Original]);
    for bench in opts.apps.clone() {
        println!("{}", fig1_row(bench, &mut runner));
    }
}
