//! Figure 4: performance impact of multithreading with 2, 4, and 8
//! threads per processor, normalized to the original run.

use rsdsm_bench::{run_variant, ExpOpts, Variant};
use rsdsm_stats::{render_bars, speedup_label, Bar};

fn main() {
    let opts = ExpOpts::from_args();
    println!(
        "Figure 4: impact of multithreading (O = original, nT = n threads/processor) — {} nodes, {:?} scale\n",
        opts.nodes, opts.scale
    );
    for bench in &opts.apps {
        let orig = run_variant(*bench, Variant::Original, &opts);
        let mut bars = vec![Bar::new("O", orig.breakdown)];
        let mut best = (String::from("O"), orig.total_time);
        for n in [2usize, 4, 8] {
            let report = run_variant(*bench, Variant::Threads(n), &opts);
            if report.total_time < best.1 {
                best = (format!("{n}T"), report.total_time);
            }
            bars.push(Bar::new(format!("{n}T"), report.breakdown));
        }
        println!(
            "{}",
            render_bars(bench.name(), &bars, orig.breakdown.total())
        );
        println!(
            "  best: {} (speedup {})\n",
            best.0,
            speedup_label(orig.total_time, best.1)
        );
    }
}
