//! Figure 4: performance impact of multithreading with 2, 4, and 8
//! threads per processor, normalized to the original run.

use rsdsm_bench::{ExpOpts, Runner, Variant};
use rsdsm_stats::{render_bars, speedup_label, Bar};

fn main() {
    let opts = ExpOpts::from_args();
    println!(
        "Figure 4: impact of multithreading (O = original, nT = n threads/processor) — {} nodes, {:?} scale\n",
        opts.nodes, opts.scale
    );
    let mut runner = Runner::new(&opts);
    runner.precompute_matrix(&[
        Variant::Original,
        Variant::Threads(2),
        Variant::Threads(4),
        Variant::Threads(8),
    ]);
    for bench in opts.apps.clone() {
        let orig = runner.run(bench, Variant::Original);
        let mut bars = vec![Bar::new("O", orig.breakdown)];
        let mut best = (String::from("O"), orig.total_time);
        for n in [2usize, 4, 8] {
            let report = runner.run(bench, Variant::Threads(n));
            if report.total_time < best.1 {
                best = (format!("{n}T"), report.total_time);
            }
            bars.push(Bar::new(format!("{n}T"), report.breakdown));
        }
        println!(
            "{}",
            render_bars(bench.name(), &bars, orig.breakdown.total())
        );
        println!(
            "  best: {} (speedup {})\n",
            best.0,
            speedup_label(orig.total_time, best.1)
        );
    }
}
