//! The prefetching head-to-head: static annotations ("P"), history
//! replay ("H"), online adaptive stride detection ("A"), and the
//! combination ("A+P"), judged by the §3.3 trace taxonomy — per-cell
//! coverage, accuracy, and lateness next to end-to-end speedup.
//!
//! Three tiers:
//!
//! * **clean** — the paper's eight applications at 8 nodes, all five
//!   variants, stacked-bar figure and taxonomy table per app;
//! * **faults** — RADIX and FFT under 5% uniform loss, a
//!   crash-restart, and a partition+heal, comparing P/H/A where the
//!   droppable static prefetches and the reliable adaptive stream
//!   diverge hardest;
//! * **fabric** — RADIX and FFT at 64 nodes on a 4:1-oversubscribed
//!   rack-and-spine switch with hash-sharded homes, where prefetch
//!   interference with demand traffic is at its worst.
//!
//! Usage: `prefetch [--seed S] [--jobs N] [--app NAME]... [--full]
//! [--bench-json PATH]`
//!
//! With no arguments the fast subset runs (clean tier, RADIX + FFT) —
//! the CI experiments budget. `--full` (or
//! `RSDSM_PREFETCH_MATRIX=full`) runs all eight applications plus the
//! fault and fabric tiers and writes the numbers behind the committed
//! `BENCH_prefetch.json`.

use rsdsm_apps::{Benchmark, Scale};
use rsdsm_bench::{pool, Variant};
use rsdsm_core::{
    DirectoryConfig, DirectoryPolicy, DsmConfig, FaultPlan, NodeCrash, Partition, RecoveryConfig,
    RunReport, Topology,
};
use rsdsm_simnet::{SimDuration, SimTime};
use rsdsm_stats::{render_bars, Align, AsciiTable, Bar};

/// The variants of the head-to-head, in figure order.
const VARIANTS: [Variant; 5] = [
    Variant::Original,
    Variant::Prefetch,
    Variant::History,
    Variant::Adaptive,
    Variant::AdaptiveStatic,
];

/// The fault-tier fault shapes, by label.
const FAULT_TIERS: [&str; 3] = ["loss", "crash", "partition"];

struct Opts {
    seed: u64,
    jobs: usize,
    apps: Vec<Benchmark>,
    full: bool,
    bench_json: Option<String>,
}

fn usage(msg: &str) -> ! {
    eprintln!(
        "error: {msg}\nusage: prefetch [--seed S] [--jobs N] [--app NAME]... \
         [--full] [--bench-json PATH]"
    );
    std::process::exit(2)
}

fn parse_args() -> Opts {
    let mut seed = 1998u64;
    let mut jobs = pool::default_jobs();
    let mut apps = Vec::new();
    let mut full = std::env::var("RSDSM_PREFETCH_MATRIX").as_deref() == Ok("full");
    let mut bench_json = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs a number"));
            }
            "--jobs" => {
                jobs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .map(|n: usize| if n == 0 { pool::default_jobs() } else { n })
                    .unwrap_or_else(|| usage("--jobs needs a number"));
            }
            "--app" => {
                let name = args.next().unwrap_or_else(|| usage("--app needs a name"));
                match Benchmark::from_name(&name) {
                    Some(b) => apps.push(b),
                    None => usage(&format!("unknown app {name}")),
                }
            }
            "--full" => full = true,
            "--bench-json" => {
                bench_json = Some(
                    args.next()
                        .unwrap_or_else(|| usage("--bench-json needs a path")),
                );
            }
            other => usage(&format!("unknown argument {other}")),
        }
    }
    if apps.is_empty() {
        apps = if full {
            Benchmark::ALL.to_vec()
        } else {
            vec![Benchmark::Radix, Benchmark::Fft]
        };
    }
    Opts {
        seed,
        jobs,
        apps,
        full,
        bench_json,
    }
}

/// One measured cell: tier, app, variant label, and the run.
struct Cell {
    tier: &'static str,
    bench: Benchmark,
    label: String,
    report: RunReport,
}

/// §3.3 accuracy: fraction of covered faults the prefetch actually
/// served in time.
fn accuracy(r: &RunReport) -> f64 {
    let p = &r.prefetch;
    let covered = p.hits + p.too_late + p.invalidated;
    if covered == 0 {
        0.0
    } else {
        p.hits as f64 / covered as f64
    }
}

/// §3.3 lateness: fraction of covered faults whose reply lost the
/// race with the demand access.
fn lateness(r: &RunReport) -> f64 {
    let p = &r.prefetch;
    let covered = p.hits + p.too_late + p.invalidated;
    if covered == 0 {
        0.0
    } else {
        p.too_late as f64 / covered as f64
    }
}

/// The clean-tier base config.
fn clean_base(seed: u64) -> DsmConfig {
    DsmConfig::paper_cluster(8).with_seed(seed)
}

/// Recovery parameters sized for `Scale::Default` runs (tens of
/// simulated milliseconds end to end): detection and restart resolve
/// well inside the run instead of outliving it.
fn study_recovery() -> RecoveryConfig {
    RecoveryConfig {
        heartbeat_every: SimDuration::from_millis(1),
        lease_timeout: SimDuration::from_millis(5),
        confirm_grace: SimDuration::from_millis(1),
        restart_base: SimDuration::from_millis(5),
        restore_per_page: SimDuration::from_micros(5),
        ..RecoveryConfig::on(2)
    }
}

/// The fault-tier config for one fault shape.
fn faulted_base(seed: u64, fault: &str) -> DsmConfig {
    let base = clean_base(seed);
    match fault {
        "loss" => base.with_faults(FaultPlan::uniform_loss(seed ^ 0xfa17, 0.05)),
        "crash" => {
            let mut cfg = base.with_recovery(study_recovery());
            cfg.faults = cfg.faults.with_node_crash(NodeCrash {
                node: 2,
                at: SimTime::ZERO + SimDuration::from_millis(10),
                restart_after: Some(SimDuration::from_millis(10)),
            });
            cfg
        }
        "partition" => {
            let mut cfg = base.with_recovery(study_recovery());
            cfg.faults = cfg.faults.with_partition(Partition::cut(
                vec![vec![2]],
                SimTime::ZERO + SimDuration::from_millis(10),
                SimDuration::from_millis(10),
            ));
            cfg
        }
        other => unreachable!("unknown fault tier {other}"),
    }
}

/// The 64-node fabric-tier base config.
fn fabric_base(seed: u64) -> DsmConfig {
    DsmConfig::paper_cluster(64)
        .with_seed(seed)
        .with_topology(Topology::rack_spine(8, 2, 4))
        .with_directory(DirectoryConfig::on(DirectoryPolicy::Hash))
}

fn run_cell(
    tier: &'static str,
    bench: Benchmark,
    variant: Variant,
    scale: Scale,
    cfg: DsmConfig,
) -> Cell {
    let label = variant.label();
    let report = bench
        .run(scale, cfg)
        .unwrap_or_else(|e| panic!("{tier}/{bench} [{label}]: {e}"));
    assert!(
        report.verified,
        "{tier}/{bench} [{label}] produced a wrong result"
    );
    Cell {
        tier,
        bench,
        label,
        report,
    }
}

fn main() {
    let opts = parse_args();
    println!(
        "Prefetching head-to-head (seed {}): {} apps, {}{}\n",
        opts.seed,
        opts.apps.len(),
        if opts.full {
            "full matrix (clean + faults + fabric)"
        } else {
            "fast subset (clean tier)"
        },
        if opts.bench_json.is_some() {
            ", writing JSON"
        } else {
            ""
        },
    );

    // --- Build the whole matrix as independent cells and fan out ---
    let mut tasks: Vec<Box<dyn FnOnce() -> Cell + Send>> = Vec::new();
    for &bench in &opts.apps {
        for variant in VARIANTS {
            let seed = opts.seed;
            tasks.push(Box::new(move || {
                run_cell(
                    "clean",
                    bench,
                    variant,
                    Scale::Default,
                    variant.config_on(bench, clean_base(seed)),
                )
            }));
        }
    }
    if opts.full {
        for bench in [Benchmark::Radix, Benchmark::Fft] {
            for fault in FAULT_TIERS {
                for variant in [Variant::Prefetch, Variant::History, Variant::Adaptive] {
                    let seed = opts.seed;
                    tasks.push(Box::new(move || {
                        run_cell(
                            fault,
                            bench,
                            variant,
                            Scale::Default,
                            variant.config_on(bench, faulted_base(seed, fault)),
                        )
                    }));
                }
            }
            for variant in [Variant::Original, Variant::History, Variant::Adaptive] {
                let seed = opts.seed;
                tasks.push(Box::new(move || {
                    run_cell(
                        "fabric",
                        bench,
                        variant,
                        Scale::Test,
                        variant.config_on(bench, fabric_base(seed)),
                    )
                }));
            }
        }
    }
    let cells = pool::run(opts.jobs, tasks);

    let find = |tier: &str, bench: Benchmark, label: &str| {
        cells
            .iter()
            .find(|c| c.tier == tier && c.bench == bench && c.label == label)
    };
    let baseline =
        |tier: &str, bench: Benchmark| find(tier, bench, "O").map(|c| c.report.total_time);

    // --- Figure: stacked bars per app, all five variants ---
    println!("Figure: execution-time breakdown, normalized to O = 100\n");
    for &bench in &opts.apps {
        let bars: Vec<Bar> = VARIANTS
            .iter()
            .filter_map(|v| find("clean", bench, &v.label()))
            .map(|c| Bar::new(c.label.clone(), c.report.breakdown))
            .collect();
        let base = find("clean", bench, "O").expect("O cell").report.breakdown;
        println!("{}", render_bars(bench.name(), &bars, base.total()));
    }

    // --- Table: the §3.3 taxonomy row pair per app ---
    println!("Table: §3.3 taxonomy per cell (speedup vs O, coverage/accuracy/lateness)\n");
    let mut table = AsciiTable::new(
        vec![
            "Benchmark",
            "variant",
            "time",
            "speedup",
            "coverage",
            "accuracy",
            "lateness",
            "issued",
            "strides",
        ],
        vec![
            Align::Left,
            Align::Left,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
        ],
    );
    for &bench in &opts.apps {
        let orig = baseline("clean", bench).expect("O cell");
        for variant in VARIANTS {
            let Some(c) = find("clean", bench, &variant.label()) else {
                continue;
            };
            let r = &c.report;
            let a = r.adaptive.as_ref();
            table.add_row(vec![
                bench.name().to_string(),
                c.label.clone(),
                r.total_time.to_string(),
                format!(
                    "{:.2}x",
                    orig.as_nanos() as f64 / r.total_time.as_nanos() as f64
                ),
                format!("{:.1}%", r.prefetch.coverage() * 100.0),
                format!("{:.1}%", accuracy(r) * 100.0),
                format!("{:.1}%", lateness(r) * 100.0),
                a.map_or_else(|| r.prefetch.messages.to_string(), |a| a.issued.to_string()),
                a.map_or_else(String::new, |a| a.detected_strides.to_string()),
            ]);
        }
    }
    println!("{table}");

    // --- Fault and fabric tiers (full matrix only) ---
    if opts.full {
        println!("Fault and fabric tiers (H vs A where transports diverge)\n");
        let mut table = AsciiTable::new(
            vec![
                "tier",
                "Benchmark",
                "variant",
                "time",
                "coverage",
                "accuracy",
                "lateness",
                "pf lost",
                "retx",
            ],
            vec![
                Align::Left,
                Align::Left,
                Align::Left,
                Align::Right,
                Align::Right,
                Align::Right,
                Align::Right,
                Align::Right,
                Align::Right,
            ],
        );
        for c in &cells {
            if c.tier == "clean" {
                continue;
            }
            let r = &c.report;
            table.add_row(vec![
                c.tier.to_string(),
                c.bench.name().to_string(),
                c.label.clone(),
                r.total_time.to_string(),
                format!("{:.1}%", r.prefetch.coverage() * 100.0),
                format!("{:.1}%", accuracy(r) * 100.0),
                format!("{:.1}%", lateness(r) * 100.0),
                (r.prefetch.send_drops + r.prefetch.reply_drops).to_string(),
                r.transport.retransmissions.to_string(),
            ]);
        }
        println!("{table}");
    }

    // --- Summary: where adaptive beats history ---
    let mut cov_wins = 0usize;
    let mut apps_with_both = 0usize;
    for &bench in &opts.apps {
        let (Some(h), Some(a)) = (find("clean", bench, "H"), find("clean", bench, "A")) else {
            continue;
        };
        apps_with_both += 1;
        if a.report.prefetch.coverage() > h.report.prefetch.coverage() {
            cov_wins += 1;
        }
    }
    println!("adaptive coverage beats history on {cov_wins}/{apps_with_both} apps (clean tier)");

    // --- Machine-readable artifact ---
    if let Some(path) = &opts.bench_json {
        let mut json = String::from("{\n");
        json.push_str(&format!(
            "  \"config\": {{\"seed\": {}, \"apps\": {}, \"full\": {}}},\n",
            opts.seed,
            opts.apps.len(),
            opts.full
        ));
        json.push_str("  \"cells\": [\n");
        for (i, c) in cells.iter().enumerate() {
            let r = &c.report;
            let comma = if i + 1 < cells.len() { "," } else { "" };
            let speedup = baseline(c.tier, c.bench).map_or(0.0, |orig| {
                orig.as_nanos() as f64 / r.total_time.as_nanos() as f64
            });
            let p = &r.prefetch;
            let (strides, flips, issued, cancelled) = r.adaptive.map_or((0, 0, 0, 0), |a| {
                (a.detected_strides, a.window_flips, a.issued, a.cancelled)
            });
            json.push_str(&format!(
                "    {{\"tier\": \"{}\", \"app\": \"{}\", \"variant\": \"{}\", \
                 \"sim_us\": {}, \"speedup\": {:.4}, \
                 \"coverage\": {:.4}, \"accuracy\": {:.4}, \"lateness\": {:.4}, \
                 \"hits\": {}, \"too_late\": {}, \"invalidated\": {}, \"no_pf\": {}, \
                 \"pf_messages\": {}, \"pf_lost\": {}, \
                 \"strides\": {strides}, \"flips\": {flips}, \
                 \"issued\": {issued}, \"cancelled\": {cancelled}}}{comma}\n",
                c.tier,
                c.bench.name(),
                c.label,
                r.total_time.as_micros(),
                speedup,
                p.coverage(),
                accuracy(r),
                lateness(r),
                p.hits,
                p.too_late,
                p.invalidated,
                p.no_pf,
                p.messages,
                p.send_drops + p.reply_drops,
            ));
        }
        json.push_str("  ]\n}\n");
        std::fs::write(path, json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("\nwrote {path}");
    }
}
