//! # rsdsm-stats
//!
//! Reporting helpers for the rsdsm experiment harness: an ASCII table
//! renderer and paper-style normalized stacked-bar figures
//! (Figures 1–5 of the HPCA-4 1998 paper are rendered with
//! [`render_bars`]; Tables 1–2 with [`AsciiTable`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chrome;
mod figure;
mod table;

pub use chrome::chrome_trace_json;
pub use figure::{percent, render_bars, speedup_label, Bar};
pub use table::{Align, AsciiTable};
