//! A small ASCII table renderer for the experiment harness.

use std::fmt;

/// Column alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    /// Left-aligned (labels).
    Left,
    /// Right-aligned (numbers).
    Right,
}

/// A simple monospace table with a header row.
///
/// # Examples
///
/// ```
/// use rsdsm_stats::{Align, AsciiTable};
///
/// let mut t = AsciiTable::new(vec!["App", "Speedup"], vec![Align::Left, Align::Right]);
/// t.add_row(vec!["FFT".into(), "1.29".into()]);
/// let s = t.to_string();
/// assert!(s.contains("FFT"));
/// assert!(s.contains("1.29"));
/// ```
#[derive(Debug, Clone)]
pub struct AsciiTable {
    headers: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
}

impl AsciiTable {
    /// A table with the given headers and per-column alignment.
    ///
    /// # Panics
    ///
    /// Panics if `headers` and `aligns` differ in length or are empty.
    pub fn new<S: Into<String>>(headers: Vec<S>, aligns: Vec<Align>) -> Self {
        let headers: Vec<String> = headers.into_iter().map(Into::into).collect();
        assert!(!headers.is_empty(), "table needs at least one column");
        assert_eq!(headers.len(), aligns.len(), "one alignment per column");
        AsciiTable {
            headers,
            aligns,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn add_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }
}

impl fmt::Display for AsciiTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for c in 0..cols {
                if c > 0 {
                    write!(f, "  ")?;
                }
                match self.aligns[c] {
                    Align::Left => write!(f, "{:<width$}", cells[c], width = widths[c])?,
                    Align::Right => write!(f, "{:>width$}", cells[c], width = widths[c])?,
                }
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = AsciiTable::new(vec!["a", "bb"], vec![Align::Left, Align::Right]);
        t.add_row(vec!["xxx".into(), "1".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("a  "));
        assert!(lines[2].starts_with("xxx"));
        assert!(lines[2].ends_with(" 1"));
        assert_eq!(t.row_count(), 1);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = AsciiTable::new(vec!["a"], vec![Align::Left]);
        t.add_row(vec!["x".into(), "y".into()]);
    }

    #[test]
    #[should_panic(expected = "one alignment per column")]
    fn alignment_count_checked() {
        AsciiTable::new(vec!["a", "b"], vec![Align::Left]);
    }
}
