//! Renderers for the paper's stacked-bar figures.
//!
//! The paper presents execution time as stacked bars normalized to
//! the original run (= 100). [`render_bars`] reproduces the same
//! information as text: one column per experiment, one row per
//! category, values in percent of the baseline total.

use rsdsm_core::{Breakdown, Category};
use rsdsm_simnet::SimDuration;

use crate::table::{Align, AsciiTable};

/// One bar of a figure: a label (e.g. "O", "P", "4T") and the run's
/// aggregate breakdown.
#[derive(Debug, Clone)]
pub struct Bar {
    /// Bar label, as in the paper's x-axis.
    pub label: String,
    /// The run's summed per-node breakdown.
    pub breakdown: Breakdown,
}

impl Bar {
    /// Convenience constructor.
    pub fn new(label: impl Into<String>, breakdown: Breakdown) -> Self {
        Bar {
            label: label.into(),
            breakdown,
        }
    }
}

/// Renders a group of bars normalized to `base` (the original run's
/// total), paper-style: topmost categories first, a total row last.
///
/// # Examples
///
/// ```
/// use rsdsm_core::{Breakdown, Category};
/// use rsdsm_simnet::SimDuration;
/// use rsdsm_stats::{render_bars, Bar};
///
/// let mut orig = Breakdown::new();
/// orig[Category::Busy] = SimDuration::from_millis(60);
/// orig[Category::MemoryIdle] = SimDuration::from_millis(40);
/// let mut pf = Breakdown::new();
/// pf[Category::Busy] = SimDuration::from_millis(60);
/// pf[Category::MemoryIdle] = SimDuration::from_millis(10);
/// let out = render_bars(
///     "FFT",
///     &[Bar::new("O", orig), Bar::new("P", pf)],
///     orig.total(),
/// );
/// assert!(out.contains("FFT"));
/// assert!(out.contains("100.0"));
/// assert!(out.contains("70.0"));
/// ```
pub fn render_bars(title: &str, bars: &[Bar], base: SimDuration) -> String {
    let mut headers: Vec<String> = vec!["Category".to_string()];
    headers.extend(bars.iter().map(|b| b.label.clone()));
    let mut aligns = vec![Align::Left];
    aligns.extend(std::iter::repeat_n(Align::Right, bars.len()));
    let mut table = AsciiTable::new(headers, aligns);

    // Paper stacking order: overheads on top, busy at the bottom.
    let order = [
        Category::PrefetchOverhead,
        Category::MtOverhead,
        Category::SyncIdle,
        Category::MemoryIdle,
        Category::DsmOverhead,
        Category::Busy,
    ];
    for cat in order {
        let values: Vec<f64> = bars
            .iter()
            .map(|b| b.breakdown.normalized_to(base).percent(cat))
            .collect();
        if values.iter().all(|v| *v < 0.05) {
            continue;
        }
        let mut row = vec![cat.label().to_string()];
        row.extend(values.iter().map(|v| format!("{v:.1}")));
        table.add_row(row);
    }
    let mut row = vec!["Total".to_string()];
    row.extend(bars.iter().map(|b| {
        format!(
            "{:.1}",
            b.breakdown.normalized_to(base).total_fraction() * 100.0
        )
    }));
    table.add_row(row);
    format!("{title}\n{table}")
}

/// Percent helper used across the harness: `part / whole * 100`,
/// zero when the whole is zero.
pub fn percent(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        part as f64 / whole as f64 * 100.0
    }
}

/// Formats a speedup factor like the paper's prose ("1.29x").
pub fn speedup_label(baseline: SimDuration, improved: SimDuration) -> String {
    if improved.is_zero() {
        return "inf".to_string();
    }
    format!(
        "{:.2}x",
        baseline.as_nanos() as f64 / improved.as_nanos() as f64
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breakdown(busy_ms: u64, mem_ms: u64) -> Breakdown {
        let mut b = Breakdown::new();
        b[Category::Busy] = SimDuration::from_millis(busy_ms);
        b[Category::MemoryIdle] = SimDuration::from_millis(mem_ms);
        b
    }

    #[test]
    fn bars_normalize_to_base() {
        let orig = breakdown(50, 50);
        let pf = breakdown(50, 25);
        let out = render_bars("X", &[Bar::new("O", orig), Bar::new("P", pf)], orig.total());
        assert!(out.contains("100.0"), "{out}");
        assert!(out.contains("75.0"), "{out}");
        assert!(out.contains("Busy"));
        assert!(out.contains("Memory Miss Idle"));
    }

    #[test]
    fn zero_categories_are_omitted() {
        let b = breakdown(10, 0);
        let out = render_bars("X", &[Bar::new("O", b)], b.total());
        assert!(!out.contains("Multithreading"));
        assert!(!out.contains("Memory Miss Idle"));
    }

    #[test]
    fn percent_helper() {
        assert_eq!(percent(1, 4), 25.0);
        assert_eq!(percent(5, 0), 0.0);
        assert!(percent(u64::MAX, 1).is_finite());
        assert!(percent(0, 0).is_finite());
    }

    /// A zero normalization base (degenerate but reachable when an
    /// app's original run is elided) must render all-zero bars, not
    /// NaN cells: figure output goes straight into the paper tables.
    #[test]
    fn zero_base_renders_without_nan() {
        let b = breakdown(10, 5);
        let out = render_bars("X", &[Bar::new("O", b)], SimDuration::ZERO);
        assert!(
            !out.contains("NaN") && !out.contains("inf"),
            "figure output leaked a non-finite value: {out}"
        );
        assert!(out.contains("Total"), "{out}");
        assert!(out.contains("0.0"), "{out}");
    }

    /// All-zero breakdowns with a zero base collapse to just the
    /// Total row — finite, no NaN, no phantom categories.
    #[test]
    fn empty_bars_render_finite() {
        let out = render_bars(
            "X",
            &[
                Bar::new("O", Breakdown::new()),
                Bar::new("P", Breakdown::new()),
            ],
            SimDuration::ZERO,
        );
        assert!(!out.contains("NaN") && !out.contains("inf"), "{out}");
        assert!(out.contains("Total"), "{out}");
        assert!(!out.contains("Busy"), "{out}");
    }

    #[test]
    fn speedup_formatting() {
        assert_eq!(
            speedup_label(SimDuration::from_millis(200), SimDuration::from_millis(100)),
            "2.00x"
        );
        assert_eq!(
            speedup_label(SimDuration::from_millis(1), SimDuration::ZERO),
            "inf"
        );
    }
}
