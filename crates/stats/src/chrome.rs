//! Chrome trace-event exporter for engine event traces.
//!
//! Serializes a [`Trace`] into the Chrome trace-event JSON format
//! (the `traceEvents` array flavour), loadable in Perfetto or
//! `chrome://tracing`. One process per simulated node, one named
//! track per node for the engine (protocol handlers, transport) and
//! one per application thread. Page-fault begin/end pairs become
//! duration (`"X"`) slices so fault service time is visible as slice
//! width; every other event is an instant (`"i"`).
//!
//! The output is deterministic: records are emitted in trace order
//! with fixed formatting, so the JSON bytes are a function of the
//! trace alone.

use std::collections::HashMap;
use std::fmt::Write as _;

use rsdsm_core::{kind_label, trace_class, Trace, TraceEvent, NO_THREAD};

/// Track id used for engine-side records (no owning app thread).
const ENGINE_TID: u32 = 0;

/// Perfetto-visible track for a record: `0` is the node's engine
/// track, app thread `t` maps to its node-local slot `t % tpn + 1`.
fn track(thread: u32, tpn: u32) -> u32 {
    if thread == NO_THREAD {
        ENGINE_TID
    } else {
        thread % tpn.max(1) + 1
    }
}

/// `ts` in fractional microseconds from sim-time nanoseconds, fixed
/// to 3 decimals so formatting is deterministic.
fn ts_us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

fn class_name(c: u8) -> &'static str {
    match c {
        trace_class::HIT => "hit",
        trace_class::NO_PF => "no_pf",
        trace_class::TOO_LATE => "too_late",
        trace_class::INVALIDATED => "invalidated",
        _ => "unknown",
    }
}

/// Event-specific `args` entries (already JSON, appended after the
/// common `"id"`/`"cause"` keys).
fn args_of(event: &TraceEvent, out: &mut String) {
    match event {
        TraceEvent::MsgSend {
            kind,
            peer,
            seq,
            bytes,
            retransmit,
        } => {
            let _ = write!(
                out,
                ",\"kind\":\"{}\",\"peer\":{peer},\"seq\":{seq},\"bytes\":{bytes},\"retransmit\":{retransmit}",
                kind_label(*kind)
            );
        }
        TraceEvent::MsgRecv { kind, peer, seq } => {
            let _ = write!(
                out,
                ",\"kind\":\"{}\",\"peer\":{peer},\"seq\":{seq}",
                kind_label(*kind)
            );
        }
        TraceEvent::FaultBegin { page, write } => {
            let _ = write!(out, ",\"page\":{page},\"write\":{write}");
        }
        TraceEvent::FaultEnd { page, class } => {
            let _ = write!(out, ",\"page\":{page},\"class\":\"{}\"", class_name(*class));
        }
        TraceEvent::DiffCreate { page, seq, bytes } => {
            let _ = write!(out, ",\"page\":{page},\"seq\":{seq},\"bytes\":{bytes}");
        }
        TraceEvent::DiffApply { page, origin, seq } => {
            let _ = write!(out, ",\"page\":{page},\"origin\":{origin},\"seq\":{seq}");
        }
        TraceEvent::TwinCreate { page } | TraceEvent::PrefetchIssue { page } => {
            let _ = write!(out, ",\"page\":{page}");
        }
        TraceEvent::WriteNotice { page, origin, seq } => {
            let _ = write!(out, ",\"page\":{page},\"origin\":{origin},\"seq\":{seq}");
        }
        TraceEvent::LockRequest { lock }
        | TraceEvent::LockGrant { lock }
        | TraceEvent::LockLocalPass { lock } => {
            let _ = write!(out, ",\"lock\":{lock}");
        }
        TraceEvent::BarrierArrive { barrier } => {
            let _ = write!(out, ",\"barrier\":{barrier}");
        }
        TraceEvent::BarrierRelease { barrier, epoch } => {
            let _ = write!(out, ",\"barrier\":{barrier},\"epoch\":{epoch}");
        }
        TraceEvent::ThreadSwitch { to } => {
            let _ = write!(out, ",\"to\":{to}");
        }
        TraceEvent::PrefetchDrop { page, reply } => {
            let _ = write!(out, ",\"page\":{page},\"reply\":{reply}");
        }
        TraceEvent::TransportRetry { peer, seq, rto_ns } => {
            let _ = write!(out, ",\"peer\":{peer},\"seq\":{seq},\"rto_ns\":{rto_ns}");
        }
        TraceEvent::FrameParked { peer, seq } => {
            let _ = write!(out, ",\"peer\":{peer},\"seq\":{seq}");
        }
        TraceEvent::Crash { restarts } => {
            let _ = write!(out, ",\"restarts\":{restarts}");
        }
        TraceEvent::Restart
        | TraceEvent::PartitionFreeze
        | TraceEvent::PartitionHeal
        | TraceEvent::PartitionRejoin => {}
        TraceEvent::Suspect { peer } | TraceEvent::ConfirmDown { peer } => {
            let _ = write!(out, ",\"peer\":{peer}");
        }
        TraceEvent::CheckpointTaken { epoch, bytes }
        | TraceEvent::PersistCommit { epoch, bytes } => {
            let _ = write!(out, ",\"epoch\":{epoch},\"bytes\":{bytes}");
        }
        TraceEvent::AdaptiveDetect { page, stride } => {
            let _ = write!(out, ",\"page\":{page},\"stride\":{stride}");
        }
        TraceEvent::AdaptiveThrottle {
            change,
            degree,
            lead,
        } => {
            let _ = write!(
                out,
                ",\"change\":{change},\"degree\":{degree},\"lead\":{lead}"
            );
        }
    }
}

/// Renders `trace` as Chrome trace-event JSON (Perfetto-loadable).
///
/// Layout: process `pid = node`, track `tid = 0` for the engine and
/// `tid = t + 1` for node-local app thread `t`. Fault begin/end pairs
/// (linked by the end record's causal id) become `"X"` duration
/// slices; all other records are `"i"` instants carrying their record
/// id and causal-link id in `args`.
#[must_use]
pub fn chrome_trace_json(trace: &Trace) -> String {
    let tpn = trace.threads_per_node.max(1);

    // End records index their begin by cause id; pre-pass so the
    // single forward emission loop can turn begins into slices.
    let mut fault_ends: HashMap<u64, (u64, u8)> = HashMap::new();
    for rec in &trace.records {
        if let TraceEvent::FaultEnd { class, .. } = rec.event {
            if rec.cause != 0 {
                fault_ends.insert(rec.cause, (rec.at.as_nanos(), class));
            }
        }
    }

    let mut out = String::with_capacity(96 * trace.records.len() + 1024);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if first {
            first = false;
        } else {
            out.push(',');
        }
        out.push('\n');
    };

    // Track metadata: names for every process and track.
    for n in 0..trace.nodes {
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"pid\":{n},\"tid\":0,\"name\":\"process_name\",\
             \"args\":{{\"name\":\"node {n}\"}}}}"
        );
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"pid\":{n},\"tid\":0,\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"engine\"}}}}"
        );
        for t in 0..tpn {
            sep(&mut out);
            let _ = write!(
                out,
                "{{\"ph\":\"M\",\"pid\":{n},\"tid\":{},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"thread {}\"}}}}",
                t + 1,
                n * tpn + t
            );
        }
    }

    for (i, rec) in trace.records.iter().enumerate() {
        let id = i as u64 + 1;
        let tid = track(rec.thread, tpn);
        let ns = rec.at.as_nanos();
        match &rec.event {
            // A begin with a matching end becomes one duration slice.
            TraceEvent::FaultBegin { page, write } if fault_ends.contains_key(&id) => {
                let (end_ns, class) = fault_ends[&id];
                sep(&mut out);
                let _ = write!(
                    out,
                    "{{\"ph\":\"X\",\"pid\":{},\"tid\":{tid},\"ts\":{},\"dur\":{},\
                     \"name\":\"fault p{page}\",\"args\":{{\"id\":{id},\"cause\":{},\
                     \"page\":{page},\"write\":{write},\"class\":\"{}\"}}}}",
                    rec.node,
                    ts_us(ns),
                    ts_us(end_ns.saturating_sub(ns)),
                    rec.cause,
                    class_name(class)
                );
            }
            // The end is folded into its begin's slice.
            TraceEvent::FaultEnd { .. } if rec.cause != 0 => {}
            event => {
                sep(&mut out);
                let _ = write!(
                    out,
                    "{{\"ph\":\"i\",\"s\":\"t\",\"pid\":{},\"tid\":{tid},\"ts\":{},\
                     \"name\":\"{}\",\"args\":{{\"id\":{id},\"cause\":{}",
                    rec.node,
                    ts_us(ns),
                    event.label(),
                    rec.cause
                );
                args_of(event, &mut out);
                out.push_str("}}");
            }
        }
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsdsm_core::trace_kind;
    use rsdsm_simnet::SimTime;

    fn sample() -> Trace {
        use rsdsm_core::{TraceRecord, NO_CAUSE};
        let rec = |ns, node, thread, cause, event| TraceRecord {
            at: SimTime::from_nanos(ns),
            node,
            thread,
            cause,
            event,
        };
        Trace {
            nodes: 2,
            threads_per_node: 2,
            records: vec![
                rec(
                    100,
                    0,
                    0,
                    NO_CAUSE,
                    TraceEvent::FaultBegin {
                        page: 7,
                        write: true,
                    },
                ),
                rec(
                    150,
                    1,
                    NO_THREAD,
                    NO_CAUSE,
                    TraceEvent::MsgSend {
                        kind: trace_kind::DIFF_REPLY,
                        peer: 0,
                        seq: 3,
                        bytes: 512,
                        retransmit: false,
                    },
                ),
                rec(
                    400,
                    0,
                    0,
                    1,
                    TraceEvent::FaultEnd {
                        page: 7,
                        class: trace_class::NO_PF,
                    },
                ),
            ],
        }
    }

    #[test]
    fn fault_pair_becomes_duration_slice() {
        let json = chrome_trace_json(&sample());
        assert!(json.contains("\"ph\":\"X\""), "{json}");
        assert!(json.contains("\"dur\":0.300"), "{json}");
        assert!(json.contains("\"name\":\"fault p7\""), "{json}");
        // The folded end must not appear as an instant.
        assert!(!json.contains("fault_end"), "{json}");
    }

    #[test]
    fn output_is_deterministic_and_track_mapped() {
        let a = chrome_trace_json(&sample());
        let b = chrome_trace_json(&sample());
        assert_eq!(a, b);
        // Engine-side send lands on tid 0 of pid 1.
        assert!(a.contains("\"pid\":1,\"tid\":0,\"ts\":0.150"), "{a}");
        // Metadata names both processes.
        assert!(a.contains("\"name\":\"node 0\""));
        assert!(a.contains("\"name\":\"node 1\""));
    }

    #[test]
    fn json_has_balanced_brackets() {
        let json = chrome_trace_json(&sample());
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
        assert!(json.ends_with("]}\n"));
    }
}
