//! Integration tests for engine edge cases: garbage collection,
//! safety limits, barrier identifier reuse, and home policies.

use rsdsm_core::{
    BarrierId, Category, DsmConfig, DsmCtx, DsmProgram, Heap, HomePolicy, SharedVec, SimError,
    Simulation, VerifyCtx,
};
use rsdsm_simnet::SimDuration;

/// Threads repeatedly rewrite their block and barrier, generating
/// diff storage that crosses the GC threshold.
struct Churner {
    rounds: usize,
}

impl DsmProgram for Churner {
    type Handles = SharedVec<u64>;

    fn name(&self) -> String {
        "churner".into()
    }

    fn allocate(&self, heap: &mut Heap) -> Self::Handles {
        heap.alloc(4096, HomePolicy::Blocked)
    }

    fn run(&self, ctx: &mut DsmCtx, data: &Self::Handles) {
        let t = ctx.thread_id();
        let n = ctx.num_threads();
        let chunk = data.len() / n;
        for round in 0..self.rounds {
            let vals: Vec<u64> = (0..chunk)
                .map(|i| (round * 1000 + t * 10 + i) as u64)
                .collect();
            ctx.write_slice(data, t * chunk, &vals);
            // Reuse two alternating barrier ids across all rounds.
            ctx.barrier(BarrierId(round as u32 % 2));
            // Read a neighbour's chunk so diffs actually travel.
            let other = (t + 1) % n;
            let got = ctx.read_vec(data, other * chunk, chunk);
            assert_eq!(got[0], (round * 1000 + other * 10) as u64);
            ctx.barrier(BarrierId(2 + round as u32 % 2));
        }
    }

    fn verify(&self, mem: &VerifyCtx, data: &Self::Handles) -> bool {
        mem.read(data, 0) == (self.rounds - 1) as u64 * 1000
    }
}

#[test]
fn garbage_collection_triggers_under_pressure() {
    let mut cfg = DsmConfig::paper_cluster(4).with_seed(5);
    cfg.gc_threshold_bytes = 1024; // far below the diff churn
    let report = Simulation::new(cfg)
        .run(&Churner { rounds: 8 })
        .expect("run");
    assert!(report.verified);
    assert!(report.gc_passes > 0, "GC must have run");
}

#[test]
fn barrier_ids_are_reusable_across_episodes() {
    // Churner already alternates two ids; many rounds stress reuse.
    let cfg = DsmConfig::paper_cluster(4).with_seed(6);
    let report = Simulation::new(cfg)
        .run(&Churner { rounds: 12 })
        .expect("run");
    assert!(report.verified);
}

#[test]
fn simulated_time_limit_aborts_cleanly() {
    let mut cfg = DsmConfig::paper_cluster(4).with_seed(7);
    cfg.max_sim_time = SimDuration::from_micros(50); // absurdly small
    let err = Simulation::new(cfg)
        .run(&Churner { rounds: 4 })
        .expect_err("must exceed the limit");
    assert!(matches!(err, SimError::TimeLimit), "got {err:?}");
}

/// Round-robin homed pages spread first-touch fetches across nodes.
struct RoundRobinReader;

impl DsmProgram for RoundRobinReader {
    type Handles = SharedVec<u64>;

    fn name(&self) -> String {
        "rr-reader".into()
    }

    fn allocate(&self, heap: &mut Heap) -> Self::Handles {
        heap.alloc(4096, HomePolicy::RoundRobin)
    }

    fn run(&self, ctx: &mut DsmCtx, data: &Self::Handles) {
        if ctx.thread_id() == 0 {
            let vals: Vec<u64> = (0..data.len() as u64).collect();
            ctx.write_slice(data, 0, &vals);
        }
        ctx.barrier(BarrierId(0));
        let sum: u64 = ctx.read_vec(data, 0, data.len()).iter().sum();
        assert_eq!(sum, (data.len() as u64 - 1) * data.len() as u64 / 2);
        ctx.barrier(BarrierId(1));
    }
}

#[test]
fn round_robin_homes_work() {
    let report = Simulation::new(DsmConfig::paper_cluster(4).with_seed(8))
        .run(&RoundRobinReader)
        .expect("run");
    assert!(report.verified);
    // The writer's first-touch fetches must hit several homes.
    assert!(report.misses.misses > 0);
}

/// A single-node run never touches the network.
#[test]
fn single_node_runs_offline() {
    let report = Simulation::new(DsmConfig::paper_cluster(1).with_seed(9))
        .run(&Churner { rounds: 2 })
        .expect("run");
    assert!(report.verified);
    assert_eq!(report.net.total_msgs, 0, "no cluster, no messages");
    assert_eq!(report.misses.misses, 0);
    assert_eq!(report.breakdown[Category::MemoryIdle], SimDuration::ZERO);
}

/// Accounting sanity at the report level: every node's per-category
/// total covers the whole run.
#[test]
fn per_node_accounts_cover_the_run() {
    let report = Simulation::new(DsmConfig::paper_cluster(4).with_seed(10))
        .run(&Churner { rounds: 4 })
        .expect("run");
    for (n, b) in report.node_breakdowns.iter().enumerate() {
        assert!(
            b.total() >= report.total_time,
            "node {n} categories ({}) below total ({})",
            b.total(),
            report.total_time
        );
    }
}
