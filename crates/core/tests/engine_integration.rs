//! Integration tests driving the full DSM engine with small programs.

use rsdsm_core::{
    BarrierId, Category, DsmConfig, DsmCtx, DsmProgram, Heap, HomePolicy, LockId, PrefetchConfig,
    SharedVec, SimError, Simulation, ThreadConfig, VerifyCtx,
};
use rsdsm_simnet::SimDuration;

/// Each thread writes its own disjoint block, everyone barriers, then
/// each thread reads the whole array (forcing remote fetches).
struct BlockShare {
    elems_per_thread: usize,
}

impl DsmProgram for BlockShare {
    type Handles = SharedVec<f64>;

    fn name(&self) -> String {
        "block-share".into()
    }

    fn allocate(&self, heap: &mut Heap) -> Self::Handles {
        heap.alloc(self.elems_per_thread * 8 * 4, HomePolicy::Blocked)
    }

    fn run(&self, ctx: &mut DsmCtx, data: &Self::Handles) {
        let t = ctx.thread_id();
        let n = ctx.num_threads();
        let chunk = data.len() / n;
        let vals: Vec<f64> = (0..chunk).map(|i| (t * chunk + i) as f64).collect();
        ctx.write_slice(data, t * chunk, &vals);
        ctx.barrier(BarrierId(0));
        // Read everything; prefetch annotations cover remote blocks.
        for other in 0..n {
            if other != t {
                ctx.prefetch(data, other * chunk, (other + 1) * chunk);
            }
        }
        let mut sum = 0.0;
        for other in 0..n {
            let got = ctx.read_vec(data, other * chunk, chunk);
            sum += got.iter().sum::<f64>();
        }
        let expect = (0..data.len()).map(|i| i as f64).sum::<f64>();
        assert!((sum - expect).abs() < 1e-6, "thread {t} read wrong data");
        ctx.barrier(BarrierId(1));
    }

    fn verify(&self, mem: &VerifyCtx, data: &Self::Handles) -> bool {
        (0..data.len()).all(|i| mem.read(data, i) == i as f64)
    }
}

/// Threads increment a shared counter under a lock, many times.
struct LockCounter {
    rounds: usize,
}

impl DsmProgram for LockCounter {
    type Handles = SharedVec<u64>;

    fn name(&self) -> String {
        "lock-counter".into()
    }

    fn allocate(&self, heap: &mut Heap) -> Self::Handles {
        heap.alloc(8, HomePolicy::Single(0))
    }

    fn run(&self, ctx: &mut DsmCtx, counter: &Self::Handles) {
        for _ in 0..self.rounds {
            ctx.acquire(LockId(3));
            let v = ctx.read(counter, 0);
            ctx.compute(SimDuration::from_micros(5));
            ctx.write(counter, 0, v + 1);
            ctx.release(LockId(3));
        }
        ctx.barrier(BarrierId(0));
    }

    fn verify(&self, mem: &VerifyCtx, counter: &Self::Handles) -> bool {
        mem.read(counter, 0) == (self.rounds * 4) as u64 // 4 threads in tests
    }
}

/// Two writers touch disjoint halves of the *same page* between
/// barriers — the multiple-writer protocol must merge their diffs.
struct FalseSharing;

impl DsmProgram for FalseSharing {
    type Handles = SharedVec<u64>;

    fn name(&self) -> String {
        "false-sharing".into()
    }

    fn allocate(&self, heap: &mut Heap) -> Self::Handles {
        heap.alloc(512, HomePolicy::Single(0)) // exactly one page of u64
    }

    fn run(&self, ctx: &mut DsmCtx, page: &Self::Handles) {
        let t = ctx.thread_id();
        if t < 2 {
            let half = 256;
            for i in 0..half {
                ctx.write(page, t * half + i, (t as u64 + 1) * 1000 + i as u64);
            }
        }
        ctx.barrier(BarrierId(0));
        // Everyone validates the merged page.
        for i in 0..512 {
            let expect = if i < 256 {
                1000 + i as u64
            } else {
                2000 + (i - 256) as u64
            };
            assert_eq!(ctx.read(page, i), expect, "thread {t} index {i}");
        }
        ctx.barrier(BarrierId(1));
    }

    fn verify(&self, mem: &VerifyCtx, page: &Self::Handles) -> bool {
        (0..512).all(|i| {
            mem.read(page, i)
                == if i < 256 {
                    1000 + i as u64
                } else {
                    2000 + (i - 256) as u64
                }
        })
    }
}

/// A program whose thread 1 never reaches the barrier.
struct Lopsided;

impl DsmProgram for Lopsided {
    type Handles = SharedVec<u64>;

    fn name(&self) -> String {
        "lopsided".into()
    }

    fn allocate(&self, heap: &mut Heap) -> Self::Handles {
        heap.alloc(1, HomePolicy::Single(0))
    }

    fn run(&self, ctx: &mut DsmCtx, _h: &Self::Handles) {
        if ctx.thread_id() == 0 {
            ctx.barrier(BarrierId(0));
        }
    }
}

/// A program that panics on one thread.
struct Panicky;

impl DsmProgram for Panicky {
    type Handles = SharedVec<u64>;

    fn name(&self) -> String {
        "panicky".into()
    }

    fn allocate(&self, heap: &mut Heap) -> Self::Handles {
        heap.alloc(1, HomePolicy::Single(0))
    }

    fn run(&self, ctx: &mut DsmCtx, _h: &Self::Handles) {
        if ctx.thread_id() == 1 {
            panic!("deliberate test panic");
        }
        ctx.barrier(BarrierId(0));
    }
}

fn base_config(nodes: usize) -> DsmConfig {
    DsmConfig::paper_cluster(nodes).with_seed(42)
}

#[test]
fn block_share_runs_and_verifies() {
    let report = Simulation::new(base_config(4))
        .run(&BlockShare {
            elems_per_thread: 600,
        })
        .expect("run succeeds");
    assert!(report.verified);
    assert!(report.misses.misses > 0, "remote reads must miss");
    assert!(report.net.total_msgs > 0);
    assert!(report.total_time > SimDuration::ZERO);
}

#[test]
fn runs_are_deterministic() {
    let app = BlockShare {
        elems_per_thread: 600,
    };
    let r1 = Simulation::new(base_config(4)).run(&app).unwrap();
    let r2 = Simulation::new(base_config(4)).run(&app).unwrap();
    assert_eq!(r1.total_time, r2.total_time);
    assert_eq!(r1.net.total_bytes, r2.net.total_bytes);
    assert_eq!(r1.misses.misses, r2.misses.misses);
    assert_eq!(r1.breakdown, r2.breakdown);
}

#[test]
fn accounting_conserves_time() {
    let report = Simulation::new(base_config(4))
        .run(&BlockShare {
            elems_per_thread: 600,
        })
        .unwrap();
    for (n, b) in report.node_breakdowns.iter().enumerate() {
        let total = b.total();
        // Each node's categories must fill the run exactly (finish()
        // pads trailing idle); allow small excess from bursts that
        // straddle the finish instant.
        assert!(
            total >= report.total_time,
            "node {n}: categories {total} < run {}",
            report.total_time
        );
        let excess = total.saturating_sub(report.total_time);
        assert!(
            excess < SimDuration::from_millis(60),
            "node {n}: categories exceed run by {excess}"
        );
    }
}

#[test]
fn prefetching_reduces_memory_idle() {
    let app = BlockShare {
        elems_per_thread: 1200,
    };
    let orig = Simulation::new(base_config(4)).run(&app).unwrap();
    let pf = Simulation::new(base_config(4).with_prefetch(PrefetchConfig::hand()))
        .run(&app)
        .unwrap();
    assert!(pf.verified);
    assert!(pf.prefetch.calls > 0);
    assert!(
        pf.prefetch.hits > 0,
        "some prefetches must fully cover faults"
    );
    assert!(
        pf.breakdown[Category::MemoryIdle] < orig.breakdown[Category::MemoryIdle],
        "prefetching must reduce memory idle: {} vs {}",
        pf.breakdown[Category::MemoryIdle],
        orig.breakdown[Category::MemoryIdle]
    );
    assert!(
        pf.misses.misses < orig.misses.misses,
        "prefetching must reduce remote misses"
    );
    // Prefetching is non-binding and never corrupts results.
    assert!(orig.verified);
}

#[test]
fn lock_counter_is_mutually_exclusive() {
    let report = Simulation::new(base_config(4))
        .run(&LockCounter { rounds: 25 })
        .expect("run succeeds");
    assert!(report.verified, "lost updates under the lock");
    assert!(report.locks.events > 0, "token must move between nodes");
    assert!(report.locks.stall_sum > SimDuration::ZERO);
}

#[test]
fn lock_counter_with_local_threads_combines() {
    // 2 nodes x 2 threads: local lock passing must occur.
    let cfg = base_config(2).with_threads(ThreadConfig::multithreaded(2));
    let report = Simulation::new(cfg)
        .run(&LockCounter { rounds: 25 })
        .unwrap();
    assert!(report.verified);
    assert!(report.mt.switches > 0, "multithreading must switch threads");
}

#[test]
fn false_sharing_merges_concurrent_writers() {
    let report = Simulation::new(base_config(2)).run(&FalseSharing).unwrap();
    assert!(report.verified);
}

#[test]
fn false_sharing_with_prefetch_is_still_correct() {
    let cfg = base_config(2).with_prefetch(PrefetchConfig::hand());
    let report = Simulation::new(cfg).run(&FalseSharing).unwrap();
    assert!(report.verified);
}

#[test]
fn multithreading_overlaps_stalls() {
    // With more threads per node, per-node memory idle should drop
    // for a fetch-heavy workload.
    let app = BlockShare {
        elems_per_thread: 600,
    };
    let one = Simulation::new(base_config(4)).run(&app).unwrap();
    let four = Simulation::new(base_config(2).with_threads(ThreadConfig::multithreaded(2)))
        .run(&app)
        .unwrap();
    assert!(four.verified && one.verified);
    assert!(four.mt.switches > 0);
    assert!(four.breakdown[Category::MtOverhead] > SimDuration::ZERO);
}

#[test]
fn combined_mode_runs() {
    let cfg = base_config(2)
        .with_threads(ThreadConfig::combined(2))
        .with_prefetch(PrefetchConfig {
            suppress_redundant: true,
            ..PrefetchConfig::hand()
        });
    let report = Simulation::new(cfg)
        .run(&BlockShare {
            elems_per_thread: 600,
        })
        .unwrap();
    assert!(report.verified);
}

#[test]
fn missing_barrier_arrival_is_a_deadlock() {
    let err = Simulation::new(base_config(2)).run(&Lopsided).unwrap_err();
    assert!(matches!(err, SimError::Deadlock(_)), "got {err:?}");
}

#[test]
fn app_panic_is_reported() {
    let err = Simulation::new(base_config(2)).run(&Panicky).unwrap_err();
    match err {
        SimError::AppThread(msg) => assert!(msg.contains("deliberate"), "msg: {msg}"),
        other => panic!("expected AppThread, got {other:?}"),
    }
}

#[test]
fn throttled_prefetching_issues_fewer_messages() {
    let app = BlockShare {
        elems_per_thread: 1200,
    };
    let full = Simulation::new(base_config(4).with_prefetch(PrefetchConfig::hand()))
        .run(&app)
        .unwrap();
    let throttled = Simulation::new(base_config(4).with_prefetch(PrefetchConfig {
        throttle: 2,
        ..PrefetchConfig::hand()
    }))
    .run(&app)
    .unwrap();
    assert!(throttled.prefetch.throttled > 0);
    assert!(throttled.prefetch.messages < full.prefetch.messages);
    assert!(throttled.verified);
}

#[test]
fn prefetch_off_is_a_free_noop() {
    let app = BlockShare {
        elems_per_thread: 600,
    };
    let report = Simulation::new(base_config(4)).run(&app).unwrap();
    assert_eq!(report.prefetch.calls, 0);
    assert_eq!(report.prefetch.messages, 0);
    assert_eq!(
        report.breakdown[Category::PrefetchOverhead],
        SimDuration::ZERO
    );
}

#[test]
fn speedup_helper() {
    let app = BlockShare {
        elems_per_thread: 600,
    };
    let orig = Simulation::new(base_config(4)).run(&app).unwrap();
    let pf = Simulation::new(base_config(4).with_prefetch(PrefetchConfig::hand()))
        .run(&app)
        .unwrap();
    let s = pf.speedup_vs(orig.total_time);
    assert!(s > 0.5 && s < 5.0, "implausible speedup {s}");
}
