//! Property-based tests of the CPU-time accounting invariants.

use proptest::prelude::*;
use rsdsm_core::{Category, IdleReason, NodeAccount};
use rsdsm_simnet::{SimDuration, SimTime};

/// A randomized charge: request time offset, duration, category
/// index, idle-reason selector.
fn charges() -> impl Strategy<Value = Vec<(u64, u64, usize, u8)>> {
    prop::collection::vec((0u64..10_000, 0u64..5_000, 0usize..6, 0u8..3), 1..200)
}

proptest! {
    /// The account conserves time: after any sequence of charges, the
    /// sum of categories equals the CPU-busy spans plus the
    /// attributed idle gaps, i.e. exactly `cpu_free` once finished.
    #[test]
    fn categories_partition_the_timeline(ops in charges()) {
        let mut account = NodeAccount::new();
        let mut clock = SimTime::ZERO;
        for (offset, dur, cat, idle_sel) in ops {
            // Requests move forward in time (events are ordered).
            clock += SimDuration::from_nanos(offset);
            let cat = Category::ALL[cat];
            let idle = match idle_sel {
                0 => None,
                1 => Some(IdleReason::Memory),
                _ => Some(IdleReason::Sync),
            };
            let end = account.consume(clock, SimDuration::from_nanos(dur), cat, idle);
            prop_assert!(end >= clock, "work cannot finish before it starts");
            prop_assert_eq!(end, account.cpu_free());
        }
        // Everything up to cpu_free is attributed to some category.
        let total = account.breakdown().total();
        prop_assert_eq!(
            total.as_nanos(),
            account.cpu_free().as_nanos(),
            "categories must partition [0, cpu_free)"
        );
    }

    /// cpu_free is monotone regardless of request order jitter.
    #[test]
    fn cpu_free_is_monotone(ops in charges()) {
        let mut account = NodeAccount::new();
        let mut prev = SimTime::ZERO;
        for (offset, dur, cat, _) in ops {
            let at = SimTime::from_nanos(offset);
            account.consume(at, SimDuration::from_nanos(dur), Category::ALL[cat], None);
            prop_assert!(account.cpu_free() >= prev);
            prev = account.cpu_free();
        }
    }

    /// finish() closes the account exactly at the requested end and
    /// never shrinks it.
    #[test]
    fn finish_pads_to_end(ops in charges(), pad in 0u64..100_000) {
        let mut account = NodeAccount::new();
        for (offset, dur, cat, _) in ops {
            account.consume(
                SimTime::from_nanos(offset),
                SimDuration::from_nanos(dur),
                Category::ALL[cat],
                None,
            );
        }
        let end = account.cpu_free() + SimDuration::from_nanos(pad);
        account.finish(end, IdleReason::Sync);
        prop_assert_eq!(account.cpu_free(), end);
        prop_assert_eq!(account.breakdown().total().as_nanos(), end.as_nanos());
    }
}
