//! Protocol fuzzing: randomized (but race-free) programs run through
//! the full DSM engine, with in-run assertions on every cross-thread
//! read and a final check of the materialized memory. Slots are small
//! enough that many threads share each page, so the multiple-writer
//! twin/diff machinery, notice propagation, prefetching, and lock
//! token movement all get exercised under false sharing.

use proptest::prelude::*;
use rsdsm_core::{
    golden_run, BarrierId, DsmConfig, DsmCtx, DsmProgram, Heap, HomePolicy, LockId, OracleConfig,
    PrefetchConfig, SharedVec, Simulation, ThreadConfig, VerifyCtx, PAGE_SIZE,
};
use rsdsm_simnet::{DetRng, SimDuration};

/// The deterministic value thread `t` writes to its slot `k` in phase
/// `p` for a given fuzz seed.
fn pattern(seed: u64, phase: usize, thread: usize, k: usize) -> u64 {
    DetRng::new(seed ^ (phase as u64) << 40 ^ (thread as u64) << 20 ^ k as u64).next_u64()
}

#[derive(Debug, Clone)]
struct FuzzProgram {
    seed: u64,
    phases: usize,
    slots_per_thread: usize,
    counter_rounds: usize,
    prefetch_ratio: f64,
}

#[derive(Debug, Clone, Copy)]
struct FuzzHandles {
    slots: SharedVec<u64>,
    counters: SharedVec<u64>,
}

const NUM_COUNTERS: usize = 3;

impl DsmProgram for FuzzProgram {
    type Handles = FuzzHandles;

    fn name(&self) -> String {
        format!("fuzz-{:x}", self.seed)
    }

    fn allocate(&self, heap: &mut Heap) -> Self::Handles {
        // Allocation sized for up to 16 threads; slots are 8 bytes so
        // hundreds share a page.
        FuzzHandles {
            slots: heap.alloc(16 * self.slots_per_thread, HomePolicy::Blocked),
            counters: heap.alloc(NUM_COUNTERS, HomePolicy::Single(0)),
        }
    }

    fn run(&self, ctx: &mut DsmCtx, h: &Self::Handles) {
        let t = ctx.thread_id();
        let n = ctx.num_threads();
        let mut rng = DetRng::new(self.seed ^ 0xF022 ^ t as u64);
        let my_base = t * self.slots_per_thread;

        if t == 0 {
            ctx.write_slice(&h.counters, 0, &[0u64; NUM_COUNTERS]);
        }
        ctx.barrier(BarrierId(0));

        for phase in 0..self.phases {
            // Write my slots for this phase (sub-page, false shared).
            for k in 0..self.slots_per_thread {
                ctx.write(&h.slots, my_base + k, pattern(self.seed, phase, t, k));
            }
            ctx.compute(SimDuration::from_micros(rng.next_range(10, 200)));

            // Lock-protected shared counters.
            for _ in 0..self.counter_rounds {
                let c = rng.next_below(NUM_COUNTERS as u64) as usize;
                if rng.chance(0.5) {
                    ctx.prefetch(&h.counters, c, c + 1);
                }
                ctx.acquire(LockId(40 + c as u32));
                let v = ctx.read(&h.counters, c);
                ctx.compute(SimDuration::from_micros(3));
                ctx.write(&h.counters, c, v + 1);
                ctx.release(LockId(40 + c as u32));
            }

            ctx.barrier(BarrierId(1 + 2 * phase as u32));

            // Read a random selection of other threads' slots; every
            // value must be this phase's pattern (release consistency
            // guarantees it after the barrier).
            for _ in 0..2 * self.slots_per_thread {
                let other = rng.next_below(n as u64) as usize;
                let k = rng.next_below(self.slots_per_thread as u64) as usize;
                if rng.chance(self.prefetch_ratio) {
                    let idx = other * self.slots_per_thread + k;
                    ctx.prefetch(&h.slots, idx, idx + 1);
                }
                let got = ctx.read(&h.slots, other * self.slots_per_thread + k);
                let want = pattern(self.seed, phase, other, k);
                assert_eq!(
                    got, want,
                    "phase {phase}: thread {t} read slot ({other},{k}) stale"
                );
            }
            ctx.barrier(BarrierId(2 + 2 * phase as u32));
        }
    }

    fn verify(&self, mem: &VerifyCtx, h: &Self::Handles) -> bool {
        // Final slots hold the last phase's pattern; we cannot know
        // the thread count here, so check the counters instead: each
        // increment ran under a lock, so the totals must add up.
        let total: u64 = (0..NUM_COUNTERS).map(|c| mem.read(&h.counters, c)).sum();
        let _ = total; // checked precisely in the test harness below
        true
    }
}

fn run_fuzz(
    seed: u64,
    nodes: usize,
    threads_per_node: usize,
    prefetch: bool,
    phases: usize,
    counter_rounds: usize,
) {
    let program = FuzzProgram {
        seed,
        phases,
        slots_per_thread: 24,
        counter_rounds,
        prefetch_ratio: 0.6,
    };
    let mut cfg = DsmConfig::paper_cluster(nodes).with_seed(seed);
    if threads_per_node > 1 {
        cfg = cfg.with_threads(ThreadConfig::multithreaded(threads_per_node));
    }
    // Cycle the prefetch style by seed so every mode gets fuzzed.
    if prefetch {
        cfg = cfg.with_prefetch(if seed.is_multiple_of(3) {
            PrefetchConfig::automatic()
        } else {
            PrefetchConfig::hand()
        });
    }
    let total_threads = cfg.total_threads();
    let report = Simulation::new(cfg)
        .run(&program)
        .unwrap_or_else(|e| panic!("fuzz seed {seed}: {e}"));
    assert!(report.verified);
    // Counter conservation: every lock-protected increment landed.
    let expected = (total_threads * phases * counter_rounds) as u64;
    assert_eq!(
        counter_total(&program, &report),
        expected,
        "fuzz seed {seed}: lost counter increments"
    );
}

/// Re-runs verification to read the final counters (the report does
/// not carry raw memory, so the program stores what it needs via the
/// verify hook — here we recompute through a second deterministic run
/// at identical configuration, which must agree by determinism).
fn counter_total(program: &FuzzProgram, report: &rsdsm_core::RunReport) -> u64 {
    // The sum of lock-protected increments equals threads*phases*rounds
    // iff no increment was lost; we detect loss through the in-run
    // assertions plus this recount using a verifying wrapper.
    struct Recount<'a>(&'a FuzzProgram, std::sync::Mutex<u64>);
    impl DsmProgram for Recount<'_> {
        type Handles = FuzzHandles;
        fn name(&self) -> String {
            "recount".into()
        }
        fn allocate(&self, heap: &mut Heap) -> Self::Handles {
            self.0.allocate(heap)
        }
        fn run(&self, ctx: &mut DsmCtx, h: &Self::Handles) {
            self.0.run(ctx, h);
        }
        fn verify(&self, mem: &VerifyCtx, h: &Self::Handles) -> bool {
            let total: u64 = (0..NUM_COUNTERS).map(|c| mem.read(&h.counters, c)).sum();
            *self.1.lock().expect("recount mutex") = total;
            true
        }
    }
    let recount = Recount(program, std::sync::Mutex::new(0));
    let r = Simulation::new(report.config.clone())
        .run(&recount)
        .expect("recount run");
    assert!(r.verified);
    let total = *recount.1.lock().expect("recount mutex");
    total
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        .. ProptestConfig::default()
    })]

    #[test]
    fn randomized_programs_stay_coherent(
        seed in any::<u64>(),
        nodes in 2usize..=6,
        tpn in 1usize..=2,
        prefetch in any::<bool>(),
        phases in 1usize..=3,
        counter_rounds in 0usize..=3,
    ) {
        run_fuzz(seed, nodes, tpn, prefetch, phases, counter_rounds);
    }
}

/// A fixed set of historically interesting configurations (regression
/// anchors for the bugs found during construction: base/open-interval
/// leaks, stale cached diffs, split-interval causality).
#[test]
fn regression_configurations() {
    for (seed, nodes, tpn, prefetch) in [
        (1998, 8, 1, true),
        (1998, 8, 2, false),
        (0x5D5, 8, 2, true),
        (7, 4, 4, true),
        (42, 6, 2, true),
    ] {
        run_fuzz(seed, nodes, tpn, prefetch, 3, 2);
    }
}

// ---------------------------------------------------------------------
// Multi-writer same-page merge torture
// ---------------------------------------------------------------------

const SLOTS: usize = PAGE_SIZE / 8;

/// Deliberately adversarial input for the twin/diff merge path: every
/// thread writes the *same* page concurrently each phase, producing:
///
/// - **overlapping diffs from concurrent intervals** — strided,
///   byte-disjoint writes into one page from every thread at once;
/// - **empty diffs** — each thread dirties a scratch page with a
///   net-zero write in an interval of its own, so the interval closes
///   with a zero-run diff;
/// - **full-page diffs** — one rotating thread rewrites every byte of
///   a bulk page each phase.
///
/// Run with the oracle on, the twin/diff round-trip invariant covers
/// the empty and full extremes, and a golden-model comparison proves
/// the merged image byte-correct.
#[derive(Debug, Clone)]
struct MergeProgram {
    seed: u64,
    phases: usize,
    /// Total thread count, fixed by the harness so `verify` can
    /// recompute every expected slot.
    threads: usize,
}

#[derive(Debug, Clone, Copy)]
struct MergeHandles {
    /// One page, strided-written by all threads at once.
    shared: SharedVec<u64>,
    /// One page, fully rewritten by a rotating single thread.
    bulk: SharedVec<u64>,
    /// One page of per-thread slots for net-zero (empty-diff) writes.
    scratch: SharedVec<u64>,
}

fn bulk_pattern(seed: u64, phase: usize, k: usize) -> u64 {
    DetRng::new(seed ^ 0xB0_14 ^ ((phase as u64) << 32) ^ k as u64).next_u64()
}

impl DsmProgram for MergeProgram {
    type Handles = MergeHandles;

    fn name(&self) -> String {
        format!("merge-{:x}", self.seed)
    }

    fn allocate(&self, heap: &mut Heap) -> Self::Handles {
        MergeHandles {
            shared: heap.alloc(SLOTS, HomePolicy::Blocked),
            bulk: heap.alloc(SLOTS, HomePolicy::Blocked),
            scratch: heap.alloc(SLOTS, HomePolicy::Blocked),
        }
    }

    fn run(&self, ctx: &mut DsmCtx, h: &Self::Handles) {
        let t = ctx.thread_id();
        let n = ctx.num_threads();
        assert_eq!(n, self.threads, "harness wired the wrong thread count");
        ctx.barrier(BarrierId(0));

        for phase in 0..self.phases {
            // (a) Concurrent same-page writes: thread t owns slots
            // t, t+n, t+2n, ... — every thread's interval carries a
            // diff for this page, all overlapping in time, disjoint
            // in bytes.
            let mut k = t;
            while k < SLOTS {
                ctx.write(&h.shared, k, pattern(self.seed, phase, t, k));
                k += n;
            }

            // (c) Full-page diff: one thread rewrites every byte.
            if t == phase % n {
                for k in 0..SLOTS {
                    ctx.write(&h.bulk, k, bulk_pattern(self.seed, phase, k));
                }
            }

            // Close the interval so the next one holds only the
            // net-zero write below.
            ctx.acquire(LockId(90 + t as u32));
            ctx.release(LockId(90 + t as u32));

            // (b) Empty diff: dirty the scratch page without changing
            // it (the slot always holds 0), so this interval closes
            // with a zero-run diff.
            ctx.write(&h.scratch, t, 0u64);

            ctx.barrier(BarrierId(1 + 2 * phase as u32));

            // Everyone checks the fully merged page contents.
            for k in 0..SLOTS {
                let got = ctx.read(&h.shared, k);
                let want = pattern(self.seed, phase, k % n, k);
                assert_eq!(got, want, "phase {phase}: thread {t} shared slot {k} stale");
                let got = ctx.read(&h.bulk, k);
                let want = bulk_pattern(self.seed, phase, k);
                assert_eq!(got, want, "phase {phase}: thread {t} bulk slot {k} stale");
            }
            ctx.barrier(BarrierId(2 + 2 * phase as u32));
        }
    }

    fn verify(&self, mem: &VerifyCtx, h: &Self::Handles) -> bool {
        let last = self.phases - 1;
        (0..SLOTS).all(|k| {
            mem.read(&h.shared, k) == pattern(self.seed, last, k % self.threads, k)
                && mem.read(&h.bulk, k) == bulk_pattern(self.seed, last, k)
                && mem.read(&h.scratch, k) == 0
        })
    }
}

fn run_merge(seed: u64, nodes: usize, threads_per_node: usize, prefetch: bool) {
    let mut cfg = DsmConfig::paper_cluster(nodes)
        .with_seed(seed)
        .with_oracle(OracleConfig::full());
    if threads_per_node > 1 {
        cfg = cfg.with_threads(ThreadConfig::multithreaded(threads_per_node));
    }
    if prefetch {
        cfg = cfg.with_prefetch(PrefetchConfig::hand());
    }
    let program = MergeProgram {
        seed,
        phases: 3,
        threads: cfg.total_threads(),
    };
    let report = Simulation::new(cfg.clone())
        .run(&program)
        .unwrap_or_else(|e| panic!("merge seed {seed}: {e}"));
    assert!(report.verified, "merge seed {seed}: bad final memory");
    let outcome = report.oracle.expect("oracle enabled");
    assert!(
        outcome.violations.is_empty(),
        "merge seed {seed}: invariant violations {:?}",
        outcome.violations
    );
    // Differential check: the merged image must equal the golden
    // sequential executor's, byte for byte.
    let golden = golden_run(&program, &cfg, &outcome.lock_trace)
        .unwrap_or_else(|e| panic!("merge seed {seed} golden: {e}"));
    assert!(
        golden.verified,
        "merge seed {seed}: golden run not verified"
    );
    assert_eq!(
        golden.image_digest, outcome.image_digest,
        "merge seed {seed}: DSM image diverges from golden model"
    );
    assert_eq!(golden.pages, outcome.final_image);
}

#[test]
fn multi_writer_same_page_merges() {
    for (seed, nodes, tpn, prefetch) in [
        (1u64, 4, 1, false),
        (2, 6, 1, true),
        (3, 4, 2, true),
        (4, 8, 2, false),
    ] {
        run_merge(seed, nodes, tpn, prefetch);
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 6,
        .. ProptestConfig::default()
    })]

    #[test]
    fn randomized_multi_writer_merges(
        seed in any::<u64>(),
        nodes in 2usize..=6,
        tpn in 1usize..=2,
        prefetch in any::<bool>(),
    ) {
        run_merge(seed, nodes, tpn, prefetch);
    }
}

/// Direct protocol-level edge cases of the diff representation the
/// merge path leans on: empty diffs, full-page diffs, and
/// order-independent application of byte-disjoint concurrent diffs.
#[test]
fn diff_representation_edge_cases() {
    use rsdsm_protocol::{Diff, Page};

    // Empty diff: encoding a page against itself yields zero runs and
    // applies as a no-op.
    let base = Page::new();
    let empty = Diff::between(&base, &base);
    assert_eq!(empty.run_count(), 0);
    assert_eq!(empty.payload_bytes(), 0);
    let mut target = base.clone();
    empty.apply(&mut target);
    assert_eq!(target, base);

    // Full-page diff: every byte changes, and the round trip is exact.
    let mut full = Page::new();
    for k in 0..SLOTS {
        // Every byte non-zero, so every byte differs from the zeroed
        // base and the diff must cover the whole page.
        full.write_u64(k * 8, 0x0101_0101_0101_0101u64 * ((k as u64 % 255) + 1));
    }
    let d = Diff::between(&base, &full);
    assert_eq!(d.payload_bytes(), PAGE_SIZE);
    let mut target = base.clone();
    d.apply(&mut target);
    assert_eq!(target, full);

    // Byte-disjoint concurrent diffs merge the same in either order.
    let mut a = base.clone();
    a.write_u64(0, 7);
    let mut b = base.clone();
    b.write_u64(PAGE_SIZE - 8, 9);
    let da = Diff::between(&base, &a);
    let db = Diff::between(&base, &b);
    assert!(!da.overlaps(&db));
    let mut ab = base.clone();
    da.apply(&mut ab);
    db.apply(&mut ab);
    let mut ba = base.clone();
    db.apply(&mut ba);
    da.apply(&mut ba);
    assert_eq!(ab, ba);
    assert_eq!(ab.read_u64(0), 7);
    assert_eq!(ab.read_u64(PAGE_SIZE - 8), 9);
}
