//! Protocol fuzzing: randomized (but race-free) programs run through
//! the full DSM engine, with in-run assertions on every cross-thread
//! read and a final check of the materialized memory. Slots are small
//! enough that many threads share each page, so the multiple-writer
//! twin/diff machinery, notice propagation, prefetching, and lock
//! token movement all get exercised under false sharing.

use proptest::prelude::*;
use rsdsm_core::{
    BarrierId, DsmConfig, DsmCtx, DsmProgram, Heap, HomePolicy, LockId, PrefetchConfig, SharedVec,
    Simulation, ThreadConfig, VerifyCtx,
};
use rsdsm_simnet::{DetRng, SimDuration};

/// The deterministic value thread `t` writes to its slot `k` in phase
/// `p` for a given fuzz seed.
fn pattern(seed: u64, phase: usize, thread: usize, k: usize) -> u64 {
    DetRng::new(seed ^ (phase as u64) << 40 ^ (thread as u64) << 20 ^ k as u64).next_u64()
}

#[derive(Debug, Clone)]
struct FuzzProgram {
    seed: u64,
    phases: usize,
    slots_per_thread: usize,
    counter_rounds: usize,
    prefetch_ratio: f64,
}

#[derive(Debug, Clone, Copy)]
struct FuzzHandles {
    slots: SharedVec<u64>,
    counters: SharedVec<u64>,
}

const NUM_COUNTERS: usize = 3;

impl DsmProgram for FuzzProgram {
    type Handles = FuzzHandles;

    fn name(&self) -> String {
        format!("fuzz-{:x}", self.seed)
    }

    fn allocate(&self, heap: &mut Heap) -> Self::Handles {
        // Allocation sized for up to 16 threads; slots are 8 bytes so
        // hundreds share a page.
        FuzzHandles {
            slots: heap.alloc(16 * self.slots_per_thread, HomePolicy::Blocked),
            counters: heap.alloc(NUM_COUNTERS, HomePolicy::Single(0)),
        }
    }

    fn run(&self, ctx: &mut DsmCtx, h: &Self::Handles) {
        let t = ctx.thread_id();
        let n = ctx.num_threads();
        let mut rng = DetRng::new(self.seed ^ 0xF022 ^ t as u64);
        let my_base = t * self.slots_per_thread;

        if t == 0 {
            ctx.write_slice(&h.counters, 0, &[0u64; NUM_COUNTERS]);
        }
        ctx.barrier(BarrierId(0));

        for phase in 0..self.phases {
            // Write my slots for this phase (sub-page, false shared).
            for k in 0..self.slots_per_thread {
                ctx.write(&h.slots, my_base + k, pattern(self.seed, phase, t, k));
            }
            ctx.compute(SimDuration::from_micros(rng.next_range(10, 200)));

            // Lock-protected shared counters.
            for _ in 0..self.counter_rounds {
                let c = rng.next_below(NUM_COUNTERS as u64) as usize;
                if rng.chance(0.5) {
                    ctx.prefetch(&h.counters, c, c + 1);
                }
                ctx.acquire(LockId(40 + c as u32));
                let v = ctx.read(&h.counters, c);
                ctx.compute(SimDuration::from_micros(3));
                ctx.write(&h.counters, c, v + 1);
                ctx.release(LockId(40 + c as u32));
            }

            ctx.barrier(BarrierId(1 + 2 * phase as u32));

            // Read a random selection of other threads' slots; every
            // value must be this phase's pattern (release consistency
            // guarantees it after the barrier).
            for _ in 0..2 * self.slots_per_thread {
                let other = rng.next_below(n as u64) as usize;
                let k = rng.next_below(self.slots_per_thread as u64) as usize;
                if rng.chance(self.prefetch_ratio) {
                    let idx = other * self.slots_per_thread + k;
                    ctx.prefetch(&h.slots, idx, idx + 1);
                }
                let got = ctx.read(&h.slots, other * self.slots_per_thread + k);
                let want = pattern(self.seed, phase, other, k);
                assert_eq!(
                    got, want,
                    "phase {phase}: thread {t} read slot ({other},{k}) stale"
                );
            }
            ctx.barrier(BarrierId(2 + 2 * phase as u32));
        }
    }

    fn verify(&self, mem: &VerifyCtx, h: &Self::Handles) -> bool {
        // Final slots hold the last phase's pattern; we cannot know
        // the thread count here, so check the counters instead: each
        // increment ran under a lock, so the totals must add up.
        let total: u64 = (0..NUM_COUNTERS).map(|c| mem.read(&h.counters, c)).sum();
        let _ = total; // checked precisely in the test harness below
        true
    }
}

fn run_fuzz(
    seed: u64,
    nodes: usize,
    threads_per_node: usize,
    prefetch: bool,
    phases: usize,
    counter_rounds: usize,
) {
    let program = FuzzProgram {
        seed,
        phases,
        slots_per_thread: 24,
        counter_rounds,
        prefetch_ratio: 0.6,
    };
    let mut cfg = DsmConfig::paper_cluster(nodes).with_seed(seed);
    if threads_per_node > 1 {
        cfg = cfg.with_threads(ThreadConfig::multithreaded(threads_per_node));
    }
    // Cycle the prefetch style by seed so every mode gets fuzzed.
    if prefetch {
        cfg = cfg.with_prefetch(if seed.is_multiple_of(3) {
            PrefetchConfig::automatic()
        } else {
            PrefetchConfig::hand()
        });
    }
    let total_threads = cfg.total_threads();
    let report = Simulation::new(cfg)
        .run(&program)
        .unwrap_or_else(|e| panic!("fuzz seed {seed}: {e}"));
    assert!(report.verified);
    // Counter conservation: every lock-protected increment landed.
    let expected = (total_threads * phases * counter_rounds) as u64;
    assert_eq!(
        counter_total(&program, &report),
        expected,
        "fuzz seed {seed}: lost counter increments"
    );
}

/// Re-runs verification to read the final counters (the report does
/// not carry raw memory, so the program stores what it needs via the
/// verify hook — here we recompute through a second deterministic run
/// at identical configuration, which must agree by determinism).
fn counter_total(program: &FuzzProgram, report: &rsdsm_core::RunReport) -> u64 {
    // The sum of lock-protected increments equals threads*phases*rounds
    // iff no increment was lost; we detect loss through the in-run
    // assertions plus this recount using a verifying wrapper.
    struct Recount<'a>(&'a FuzzProgram, std::sync::Mutex<u64>);
    impl DsmProgram for Recount<'_> {
        type Handles = FuzzHandles;
        fn name(&self) -> String {
            "recount".into()
        }
        fn allocate(&self, heap: &mut Heap) -> Self::Handles {
            self.0.allocate(heap)
        }
        fn run(&self, ctx: &mut DsmCtx, h: &Self::Handles) {
            self.0.run(ctx, h);
        }
        fn verify(&self, mem: &VerifyCtx, h: &Self::Handles) -> bool {
            let total: u64 = (0..NUM_COUNTERS).map(|c| mem.read(&h.counters, c)).sum();
            *self.1.lock().expect("recount mutex") = total;
            true
        }
    }
    let recount = Recount(program, std::sync::Mutex::new(0));
    let r = Simulation::new(report.config.clone())
        .run(&recount)
        .expect("recount run");
    assert!(r.verified);
    let total = *recount.1.lock().expect("recount mutex");
    total
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        .. ProptestConfig::default()
    })]

    #[test]
    fn randomized_programs_stay_coherent(
        seed in any::<u64>(),
        nodes in 2usize..=6,
        tpn in 1usize..=2,
        prefetch in any::<bool>(),
        phases in 1usize..=3,
        counter_rounds in 0usize..=3,
    ) {
        run_fuzz(seed, nodes, tpn, prefetch, phases, counter_rounds);
    }
}

/// A fixed set of historically interesting configurations (regression
/// anchors for the bugs found during construction: base/open-interval
/// leaks, stale cached diffs, split-interval causality).
#[test]
fn regression_configurations() {
    for (seed, nodes, tpn, prefetch) in [
        (1998, 8, 1, true),
        (1998, 8, 2, false),
        (0x5D5, 8, 2, true),
        (7, 4, 4, true),
        (42, 6, 2, true),
    ] {
        run_fuzz(seed, nodes, tpn, prefetch, 3, 2);
    }
}
