//! Property-based tests of the adaptive-prefetch building blocks:
//! the windowed majority-trend detector and the feedback throttle
//! (see `core::prefetch`). These pin the *algebraic* guarantees the
//! engine relies on — majority independence from arrival order,
//! suppression really meaning no issue authority, planted strides
//! always surfacing — over randomized streams.

use proptest::prelude::*;
use rsdsm_core::{
    AdaptiveConfig, MissClass, StrideDetector, ThrottleChange, ThrottleController, TrendChange,
};

/// The stride alphabet the random cases draw from (selector-indexed:
/// the shim generates unsigned selectors, not signed ranges).
const STRIDES: [i64; 7] = [-17, -9, -3, -1, 1, 2, 7];

/// Turns a delta sequence into a fault-page stream starting high
/// enough that negative deltas never underflow.
fn pages_from(deltas: &[i64]) -> Vec<u64> {
    let mut at: i64 = 1 << 24;
    let mut pages = vec![at as u64];
    for d in deltas {
        at += d;
        pages.push(at as u64);
    }
    pages
}

/// Builds a full detector window holding a strict majority of
/// `stride` (`minority + 1` copies) plus `minority` noise deltas that
/// never collide with the majority value.
fn window_with_majority(stride: i64, minority: usize, noise: &[u8]) -> Vec<i64> {
    let mut w: Vec<i64> = std::iter::repeat_n(stride, minority + 1).collect();
    w.extend(noise.iter().take(minority).map(|&x| {
        let d = i64::from(x) - 50;
        if d == stride {
            d + 101
        } else {
            d
        }
    }));
    w
}

proptest! {
    /// The windowed majority is a multiset property: rotating the
    /// order in which the window's deltas arrive never changes the
    /// detected trend.
    #[test]
    fn trend_is_stable_under_window_rotation(
        stride_sel in 0usize..STRIDES.len(),
        minority in 2usize..=6,
        noise in prop::collection::vec(0u8..100, 6),
        rot in 0usize..16,
    ) {
        let stride = STRIDES[stride_sel];
        let window = window_with_majority(stride, minority, &noise);
        let rot = rot % window.len();
        let mut rotated = window.clone();
        rotated.rotate_left(rot);
        let mut reference = StrideDetector::new(window.len());
        for p in pages_from(&window) {
            reference.observe(p);
        }
        let mut shifted = StrideDetector::new(window.len());
        for p in pages_from(&rotated) {
            shifted.observe(p);
        }
        prop_assert_eq!(reference.trend(), Some(stride));
        prop_assert_eq!(shifted.trend(), reference.trend());
    }

    /// A planted stride stream is always detected, regardless of how
    /// much bounded leading noise precedes it: within two windows of
    /// strided faults the trend is the planted stride.
    #[test]
    fn planted_stride_is_detected(
        stride_sel in 0usize..STRIDES.len(),
        noise in prop::collection::vec(1u64..1_000_000, 0..6),
        window in 3usize..10,
    ) {
        let stride = STRIDES[stride_sel];
        let mut d = StrideDetector::new(window);
        for p in noise {
            d.observe(p);
        }
        let base: i64 = 1 << 30;
        let mut detected = false;
        for k in 0..=(2 * window) as i64 {
            let change = d.observe((base + stride * k) as u64);
            if let TrendChange::Detected(s) | TrendChange::Flipped(s) = change {
                prop_assert_eq!(s, stride, "only the planted stride can win the window");
                detected = true;
            }
        }
        prop_assert!(detected, "a pure stride stream must surface its stride");
        prop_assert_eq!(d.trend(), Some(stride));
    }

    /// Suppression is absolute: from the moment the controller
    /// suppresses until it resumes, `may_issue` stays false and no
    /// operating-point movement (ramp/deepen/backoff) happens — the
    /// only transition that can end the cooldown is `Resume`, which
    /// restores the base operating point.
    #[test]
    fn throttle_never_moves_while_suppressed(classes in prop::collection::vec(0u8..4, 1..600)) {
        let cfg = AdaptiveConfig {
            eval_period: 4,
            min_sample: 2,
            max_lead: 2,
            ..AdaptiveConfig::on()
        };
        let mut c = ThrottleController::new(&cfg);
        let mut suppressed = false;
        for sel in classes {
            let class = match sel {
                0 => MissClass::NoPf,
                1 => MissClass::Hit,
                2 => MissClass::TooLate,
                _ => MissClass::Invalidated,
            };
            let before = (c.degree(), c.lead());
            let change = c.observe(class);
            if suppressed {
                prop_assert!(
                    change.is_none() || change == Some(ThrottleChange::Resume),
                    "suppressed controller moved: {:?}", change
                );
                if change == Some(ThrottleChange::Resume) {
                    suppressed = false;
                    prop_assert!(c.may_issue());
                    prop_assert_eq!(c.degree(), cfg.base_degree);
                    prop_assert_eq!(c.lead(), cfg.base_lead);
                } else {
                    prop_assert!(!c.may_issue(), "cooldown ended without a Resume");
                    prop_assert_eq!((c.degree(), c.lead()), before);
                }
            }
            if change == Some(ThrottleChange::Suppress) {
                suppressed = true;
                prop_assert!(!c.may_issue());
            }
            // Global operating-point sanity, suppressed or not.
            prop_assert!(c.degree() >= 1 && c.degree() <= cfg.max_degree);
            prop_assert!(c.lead() >= cfg.base_lead && c.lead() <= cfg.max_lead);
        }
    }
}
