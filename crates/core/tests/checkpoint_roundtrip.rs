//! Property tests for the checkpoint byte encodings: arbitrary
//! recoverable-state snapshots survive an encode/decode round trip
//! exactly, digests track content, and the format is self-delimiting
//! (no strict prefix of a valid encoding parses). The segmented
//! durable-slot format gets the same treatment plus crash-shape
//! coverage: a slot truncated at any byte classifies as `Torn` or
//! falls back cleanly, and classification never panics.

use proptest::prelude::*;
use rsdsm_core::{
    classify_slot, Checkpoint, CommitRecord, DiffRecord, IntervalRecord, LockId, PageImage,
    SlotState,
};
use rsdsm_protocol::{Diff, Page, PageId, VectorClock, PAGE_SIZE};

/// Raw page spec: sparse (word, value) writes into a zeroed page.
type PageSpec = Vec<(usize, u64)>;
/// Raw diff spec: a walk of (gap, payload) segments.
type DiffSpec = Vec<(usize, Vec<u8>)>;

fn build_page(writes: &PageSpec) -> Page {
    let mut page = Page::new();
    for &(word, value) in writes {
        page.write_u64(word * 8, value);
    }
    page
}

/// Turns (gap, payload) segments into ascending, non-overlapping runs
/// for [`Diff::from_runs`], truncating the walk at the page boundary.
fn build_diff(segments: &DiffSpec) -> Diff {
    let mut runs = Vec::new();
    let mut offset = 0usize;
    for (gap, bytes) in segments {
        let start = offset + gap;
        if start + bytes.len() > PAGE_SIZE {
            break;
        }
        offset = start + bytes.len();
        runs.push((start, bytes.clone()));
    }
    Diff::from_runs(runs)
}

#[allow(clippy::type_complexity)]
fn build_checkpoint(
    node: u32,
    epoch: u32,
    vc: &[u32],
    pages: &[(u32, bool, PageSpec)],
    diffs: &[(u32, u32, DiffSpec)],
    intervals: &[(usize, Vec<u32>, Vec<u32>)],
    tokens: &[u32],
) -> Checkpoint {
    Checkpoint {
        node,
        epoch,
        vc: VectorClock::from_entries(vc),
        pages: pages
            .iter()
            .map(|(index, valid, spec)| PageImage {
                index: *index,
                valid: *valid,
                data: build_page(spec),
            })
            .collect(),
        diffs: diffs
            .iter()
            .map(|(page, seq, spec)| DiffRecord {
                page: *page,
                seq: *seq,
                diff: build_diff(spec),
            })
            .collect(),
        intervals: intervals
            .iter()
            .map(|(origin, stamp, pages)| IntervalRecord {
                origin: *origin,
                stamp: VectorClock::from_entries(stamp),
                pages: pages.iter().copied().map(PageId::new).collect(),
            })
            .collect(),
        tokens: tokens.iter().copied().map(LockId).collect(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        .. ProptestConfig::default()
    })]

    #[test]
    fn encode_decode_round_trips(
        node in 0u32..8,
        epoch in 1u32..100,
        vc in prop::collection::vec(0u32..1000, 1..8),
        pages in prop::collection::vec(
            (0u32..256, any::<bool>(),
             prop::collection::vec((0usize..PAGE_SIZE / 8, any::<u64>()), 0..8)),
            0..6),
        diffs in prop::collection::vec(
            (0u32..256, 0u32..1000,
             prop::collection::vec((0usize..64, prop::collection::vec(any::<u8>(), 1..16)), 0..6)),
            0..6),
        intervals in prop::collection::vec(
            (0usize..8,
             prop::collection::vec(0u32..1000, 1..8),
             prop::collection::vec(0u32..256, 0..10)),
            0..6),
        tokens in prop::collection::vec(0u32..64, 0..6),
        cut_seed in any::<u64>(),
    ) {
        let ckpt = build_checkpoint(node, epoch, &vc, &pages, &diffs, &intervals, &tokens);
        let bytes = ckpt.encode();
        let back = Checkpoint::decode(&bytes).expect("decode");
        prop_assert_eq!(&back, &ckpt);
        prop_assert_eq!(back.digest(), ckpt.digest());
        // Re-encoding is byte-stable (digests are well-defined).
        prop_assert_eq!(back.encode(), bytes);

        // Self-delimiting: no strict prefix parses.
        let cut = (cut_seed % bytes.len() as u64) as usize;
        prop_assert!(
            Checkpoint::decode(&bytes[..cut]).is_err(),
            "a {}-byte prefix of a {}-byte checkpoint decoded",
            cut,
            bytes.len()
        );

        // Segmented (durable-slot) framing round-trips the same state
        // and is byte-stable too.
        let seg = ckpt.encode_segmented();
        let seg_back = Checkpoint::decode_segmented(&seg).expect("segmented decode");
        prop_assert_eq!(&seg_back, &ckpt);
        prop_assert_eq!(seg_back.digest(), ckpt.digest());
        prop_assert_eq!(seg_back.encode_segmented(), seg.clone());

        // An intact payload + matching commit record classifies as
        // Committed and restores the identical checkpoint.
        let commit = CommitRecord::for_payload(epoch, 1, &seg).encode();
        match classify_slot(&seg, &commit) {
            SlotState::Committed { seq, ckpt: restored } => {
                prop_assert_eq!(seq, 1);
                prop_assert_eq!(*restored, ckpt);
            }
            other => prop_assert!(false, "intact slot classified as {other:?}"),
        }

        // Crash shapes: a payload truncated at an arbitrary byte with
        // the commit intact is Torn (the commit's length/fnv check
        // catches it); a truncated commit record alongside a full
        // payload is Torn as well, never a bogus Committed.
        let pcut = (cut_seed % seg.len() as u64) as usize;
        prop_assert_eq!(
            classify_slot(&seg[..pcut], &commit),
            SlotState::Torn,
            "payload truncated to {} of {} bytes",
            pcut,
            seg.len()
        );
        let ccut = (cut_seed % commit.len() as u64) as usize;
        if ccut > 0 {
            prop_assert_eq!(
                classify_slot(&seg, &commit[..ccut]),
                SlotState::Torn,
                "commit truncated to {} of {} bytes",
                ccut,
                commit.len()
            );
        }
    }

    /// A corrupted byte anywhere in the payload is caught: the
    /// per-segment FNV (or the commit's whole-payload FNV) flags the
    /// slot Torn instead of restoring silently-wrong state.
    #[test]
    fn segmented_corruption_is_detected(
        vc in prop::collection::vec(0u32..1000, 1..8),
        tokens in prop::collection::vec(0u32..64, 0..6),
        flip_seed in any::<u64>(),
    ) {
        let ckpt = build_checkpoint(3, 7, &vc, &[], &[], &[], &tokens);
        let seg = ckpt.encode_segmented();
        let commit = CommitRecord::for_payload(7, 9, &seg).encode();
        let mut bad = seg.clone();
        let at = (flip_seed % bad.len() as u64) as usize;
        bad[at] ^= 0x40;
        prop_assert_eq!(
            classify_slot(&bad, &commit),
            SlotState::Torn,
            "bit flip at byte {} survived classification",
            at
        );
    }
}

/// Exhaustive tearing sweep on a small checkpoint: truncating the
/// payload at *every* byte (commit intact) must classify `Torn`, and
/// truncating the commit at every byte over an intact payload must
/// never classify `Committed`. No panic at any cut.
#[test]
fn every_truncation_classifies_cleanly() {
    let ckpt = build_checkpoint(
        1,
        4,
        &[3, 1, 4],
        &[(9, true, vec![(0, 0xdead_beef), (5, 42)])],
        &[(9, 2, vec![(3, vec![1, 2, 3])])],
        &[(0, vec![1, 2], vec![9])],
        &[7],
    );
    let seg = ckpt.encode_segmented();
    let commit = CommitRecord::for_payload(4, 1, &seg).encode();

    for cut in 0..seg.len() {
        assert_eq!(
            classify_slot(&seg[..cut], &commit),
            SlotState::Torn,
            "payload cut at {cut}"
        );
    }
    for cut in 0..commit.len() {
        let state = classify_slot(&seg, &commit[..cut]);
        assert!(
            !matches!(state, SlotState::Committed { .. }),
            "commit cut at {cut} classified Committed"
        );
    }
    // The empty slot (nothing ever written) is Empty, not Torn.
    assert_eq!(classify_slot(&[], &[]), SlotState::Empty);
}
