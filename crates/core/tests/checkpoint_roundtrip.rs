//! Property tests for the checkpoint byte encoding: arbitrary
//! recoverable-state snapshots survive an encode/decode round trip
//! exactly, digests track content, and the format is self-delimiting
//! (no strict prefix of a valid encoding parses).

use proptest::prelude::*;
use rsdsm_core::{Checkpoint, DiffRecord, IntervalRecord, LockId, PageImage};
use rsdsm_protocol::{Diff, Page, PageId, VectorClock, PAGE_SIZE};

/// Raw page spec: sparse (word, value) writes into a zeroed page.
type PageSpec = Vec<(usize, u64)>;
/// Raw diff spec: a walk of (gap, payload) segments.
type DiffSpec = Vec<(usize, Vec<u8>)>;

fn build_page(writes: &PageSpec) -> Page {
    let mut page = Page::new();
    for &(word, value) in writes {
        page.write_u64(word * 8, value);
    }
    page
}

/// Turns (gap, payload) segments into ascending, non-overlapping runs
/// for [`Diff::from_runs`], truncating the walk at the page boundary.
fn build_diff(segments: &DiffSpec) -> Diff {
    let mut runs = Vec::new();
    let mut offset = 0usize;
    for (gap, bytes) in segments {
        let start = offset + gap;
        if start + bytes.len() > PAGE_SIZE {
            break;
        }
        offset = start + bytes.len();
        runs.push((start, bytes.clone()));
    }
    Diff::from_runs(runs)
}

#[allow(clippy::type_complexity)]
fn build_checkpoint(
    node: u32,
    epoch: u32,
    vc: &[u32],
    pages: &[(u32, bool, PageSpec)],
    diffs: &[(u32, u32, DiffSpec)],
    intervals: &[(usize, Vec<u32>, Vec<u32>)],
    tokens: &[u32],
) -> Checkpoint {
    Checkpoint {
        node,
        epoch,
        vc: VectorClock::from_entries(vc),
        pages: pages
            .iter()
            .map(|(index, valid, spec)| PageImage {
                index: *index,
                valid: *valid,
                data: build_page(spec),
            })
            .collect(),
        diffs: diffs
            .iter()
            .map(|(page, seq, spec)| DiffRecord {
                page: *page,
                seq: *seq,
                diff: build_diff(spec),
            })
            .collect(),
        intervals: intervals
            .iter()
            .map(|(origin, stamp, pages)| IntervalRecord {
                origin: *origin,
                stamp: VectorClock::from_entries(stamp),
                pages: pages.iter().copied().map(PageId::new).collect(),
            })
            .collect(),
        tokens: tokens.iter().copied().map(LockId).collect(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        .. ProptestConfig::default()
    })]

    #[test]
    fn encode_decode_round_trips(
        node in 0u32..8,
        epoch in 1u32..100,
        vc in prop::collection::vec(0u32..1000, 1..8),
        pages in prop::collection::vec(
            (0u32..256, any::<bool>(),
             prop::collection::vec((0usize..PAGE_SIZE / 8, any::<u64>()), 0..8)),
            0..6),
        diffs in prop::collection::vec(
            (0u32..256, 0u32..1000,
             prop::collection::vec((0usize..64, prop::collection::vec(any::<u8>(), 1..16)), 0..6)),
            0..6),
        intervals in prop::collection::vec(
            (0usize..8,
             prop::collection::vec(0u32..1000, 1..8),
             prop::collection::vec(0u32..256, 0..10)),
            0..6),
        tokens in prop::collection::vec(0u32..64, 0..6),
        cut_seed in any::<u64>(),
    ) {
        let ckpt = build_checkpoint(node, epoch, &vc, &pages, &diffs, &intervals, &tokens);
        let bytes = ckpt.encode();
        let back = Checkpoint::decode(&bytes).expect("decode");
        prop_assert_eq!(&back, &ckpt);
        prop_assert_eq!(back.digest(), ckpt.digest());
        // Re-encoding is byte-stable (digests are well-defined).
        prop_assert_eq!(back.encode(), bytes);

        // Self-delimiting: no strict prefix parses.
        let cut = (cut_seed % bytes.len() as u64) as usize;
        prop_assert!(
            Checkpoint::decode(&bytes[..cut]).is_err(),
            "a {}-byte prefix of a {}-byte checkpoint decoded",
            cut,
            bytes.len()
        );
    }
}
