//! Property tests for the trace plumbing: arbitrary event sequences
//! survive the `RTR1` encode/decode round trip exactly (and no strict
//! prefix parses), and latency histograms preserve their invariants
//! under insert and merge.

use proptest::prelude::*;
use rsdsm_core::{Histogram, Trace, TraceEvent, TraceRecord, NO_THREAD};
use rsdsm_simnet::SimTime;

/// Raw event spec: a variant selector plus generic operands, mapped
/// onto the 26 event variants (the vendored proptest shim has no
/// `prop_map`, so construction happens in the test body).
type EventSpec = (u8, u32, u32, u64, bool);

fn build_event(spec: EventSpec) -> TraceEvent {
    let (tag, a, b, c, flag) = spec;
    match tag % 26 {
        0 => TraceEvent::MsgSend {
            kind: (a % 13) as u8,
            peer: b,
            seq: c,
            bytes: a,
            retransmit: flag,
        },
        1 => TraceEvent::MsgRecv {
            kind: (a % 13) as u8,
            peer: b,
            seq: c,
        },
        2 => TraceEvent::FaultBegin {
            page: a,
            write: flag,
        },
        3 => TraceEvent::FaultEnd {
            page: a,
            class: (b % 4) as u8,
        },
        4 => TraceEvent::DiffCreate {
            page: a,
            seq: b,
            bytes: c as u32,
        },
        5 => TraceEvent::DiffApply {
            page: a,
            origin: b,
            seq: c as u32,
        },
        6 => TraceEvent::TwinCreate { page: a },
        7 => TraceEvent::WriteNotice {
            page: a,
            origin: b,
            seq: c as u32,
        },
        8 => TraceEvent::LockRequest { lock: a },
        9 => TraceEvent::LockGrant { lock: a },
        10 => TraceEvent::LockLocalPass { lock: a },
        11 => TraceEvent::BarrierArrive { barrier: a },
        12 => TraceEvent::BarrierRelease {
            barrier: a,
            epoch: b,
        },
        13 => TraceEvent::ThreadSwitch { to: a },
        14 => TraceEvent::PrefetchIssue { page: a },
        15 => TraceEvent::PrefetchDrop {
            page: a,
            reply: flag,
        },
        16 => TraceEvent::TransportRetry {
            peer: a,
            seq: c,
            rto_ns: c.rotate_left(7),
        },
        17 => TraceEvent::FrameParked { peer: a, seq: c },
        18 => TraceEvent::Crash { restarts: flag },
        19 => TraceEvent::Restart,
        20 => TraceEvent::Suspect { peer: a },
        21 => TraceEvent::ConfirmDown { peer: a },
        22 => TraceEvent::CheckpointTaken { epoch: a, bytes: b },
        23 => TraceEvent::PartitionFreeze,
        24 => TraceEvent::PartitionHeal,
        _ => TraceEvent::PartitionRejoin,
    }
}

/// An arbitrary-but-valid trace: times ascend, causes point backwards
/// (a record's cause is folded into `1..=index`, or 0).
fn build_trace(nodes: u32, tpn: u32, specs: &[(u64, u32, u32, u64, EventSpec)]) -> Trace {
    let mut at = 0u64;
    let records = specs
        .iter()
        .enumerate()
        .map(|(i, &(dt, node, thread, cause, event))| {
            at += dt;
            TraceRecord {
                at: SimTime::from_nanos(at),
                node: node % nodes,
                thread: if thread % 4 == 0 {
                    NO_THREAD
                } else {
                    thread % (nodes * tpn)
                },
                cause: cause % (i as u64 + 1),
                event: build_event(event),
            }
        })
        .collect();
    Trace {
        nodes,
        threads_per_node: tpn,
        records,
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        .. ProptestConfig::default()
    })]

    #[test]
    fn rtr1_round_trips_and_is_self_delimiting(
        nodes in 1u32..9,
        tpn in 1u32..5,
        specs in prop::collection::vec(
            (0u64..1_000_000, any::<u32>(), any::<u32>(), any::<u64>(),
             (any::<u8>(), any::<u32>(), any::<u32>(), any::<u64>(), any::<bool>())),
            0..40),
        cut_seed in any::<u64>(),
    ) {
        let trace = build_trace(nodes, tpn, &specs);
        let bytes = trace.encode();
        let back = Trace::decode(&bytes).expect("decode");
        prop_assert_eq!(&back, &trace);
        prop_assert_eq!(back.digest(), trace.digest());
        // Re-encoding is byte-stable (digests are well-defined).
        prop_assert_eq!(back.encode(), bytes);

        // Self-delimiting: no strict prefix parses.
        let cut = (cut_seed % bytes.len() as u64) as usize;
        prop_assert!(
            Trace::decode(&bytes[..cut]).is_err(),
            "a {}-byte prefix of a {}-byte trace decoded",
            cut,
            bytes.len()
        );
    }

    #[test]
    fn histogram_insert_preserves_count_sum_and_bounds(
        values in prop::collection::vec(any::<u64>(), 0..200),
    ) {
        let mut h = Histogram::new();
        for &v in &values {
            h.insert(v);
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.count(), h.buckets().iter().sum::<u64>());
        let sum: u64 = values.iter().fold(0, |acc, &v| acc.saturating_add(v));
        prop_assert_eq!(h.sum(), sum);
        if values.is_empty() {
            prop_assert_eq!(h.min(), 0);
            prop_assert_eq!(h.max(), 0);
            prop_assert_eq!(h.mean(), 0.0);
        } else {
            prop_assert_eq!(h.min(), *values.iter().min().unwrap());
            prop_assert_eq!(h.max(), *values.iter().max().unwrap());
            prop_assert!(h.mean().is_finite());
            // Only a saturated sum may pull the mean below the
            // smallest value; within range the mean is bounded
            // (tolerate f64 rounding of u64 endpoints).
            let exact: u128 = values.iter().map(|&v| v as u128).sum();
            if exact <= u64::MAX as u128 {
                prop_assert!(
                    h.min() as f64 * (1.0 - 1e-9) <= h.mean()
                        && h.mean() <= h.max() as f64 * (1.0 + 1e-9)
                );
            }
        }
    }

    #[test]
    fn histogram_merge_is_commutative_and_totals_add(
        xs in prop::collection::vec(any::<u64>(), 0..100),
        ys in prop::collection::vec(any::<u64>(), 0..100),
    ) {
        let mut a = Histogram::new();
        for &v in &xs {
            a.insert(v);
        }
        let mut b = Histogram::new();
        for &v in &ys {
            b.insert(v);
        }

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba);

        prop_assert_eq!(ab.count(), a.count() + b.count());
        prop_assert_eq!(ab.sum(), a.sum().saturating_add(b.sum()));
        if a.count() > 0 && b.count() > 0 {
            prop_assert_eq!(ab.min(), a.min().min(b.min()));
            prop_assert_eq!(ab.max(), a.max().max(b.max()));
        }

        // Merging is equivalent to inserting everything into one.
        let mut all = Histogram::new();
        for &v in xs.iter().chain(&ys) {
            all.insert(v);
        }
        prop_assert_eq!(&all, &ab);
    }
}
