//! Distributed lock state machine with local request combining.
//!
//! TreadMarks locks have a statically assigned manager; acquire
//! requests go to the manager, which forwards them to the probable
//! current owner; the owner passes the token (with piggybacked write
//! notices) directly to the requester when it releases.
//!
//! With multithreading, the paper adds *local combining* (§4.1): a
//! node that holds the token passes the lock between its own threads
//! quickly, and only one token request is outstanding per node no
//! matter how many local threads are queued.
//!
//! This module is the pure per-node state machine; the engine performs
//! the messaging and cost accounting its decisions call for.

use std::collections::{HashMap, VecDeque};

use rsdsm_protocol::VectorClock;
use rsdsm_simnet::NodeId;

use crate::msg::LockId;
use crate::thread::ThreadId;

/// A remote acquire request queued at the token holder.
#[derive(Debug, Clone, PartialEq)]
pub struct RemoteWaiter {
    /// The requesting node.
    pub node: NodeId,
    /// The requester's vector clock (selects the notices to piggyback).
    pub vc: VectorClock,
}

/// Decision returned by [`LockTable::acquire`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcquireOutcome {
    /// The thread holds the lock; continue immediately.
    Granted,
    /// The thread must block; the token is local or already requested.
    QueuedLocal,
    /// The thread must block and the node must request the token from
    /// the manager.
    NeedToken,
}

/// Decision returned by [`LockTable::release`].
#[derive(Debug, Clone, PartialEq)]
pub enum ReleaseOutcome {
    /// The lock was handed to another local thread; wake it.
    PassedLocal(ThreadId),
    /// The token must be granted to a queued remote requester.
    GrantRemote(RemoteWaiter),
    /// Nothing is waiting; the node keeps the token, lock free.
    Idle,
}

/// Decision returned by [`LockTable::handle_forward`].
#[derive(Debug, Clone, PartialEq)]
pub enum ForwardOutcome {
    /// Grant the token to the requester now.
    Grant(RemoteWaiter),
    /// The lock is busy here; the request is queued.
    Queued,
    /// This node no longer holds the token; chase the token by
    /// re-forwarding to the node it was passed to.
    Chain(NodeId),
}

/// Decision returned by [`LockTable::handle_grant`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GrantOutcome {
    /// The token arrived and this local thread now holds the lock.
    WakeLocal(ThreadId),
    /// The token arrived but no local thread wants it anymore (can
    /// happen only if the app releases without a waiting acquire —
    /// kept for robustness).
    TokenParked,
}

#[derive(Debug, Clone)]
struct LockLocal {
    has_token: bool,
    token_requested: bool,
    held_by: Option<ThreadId>,
    local_queue: VecDeque<ThreadId>,
    remote_queue: VecDeque<RemoteWaiter>,
    passed_to: Option<NodeId>,
}

impl LockLocal {
    fn new(has_token: bool) -> Self {
        LockLocal {
            has_token,
            token_requested: false,
            held_by: None,
            local_queue: VecDeque::new(),
            remote_queue: VecDeque::new(),
            passed_to: None,
        }
    }
}

/// Per-node lock state for every lock the node has touched, plus the
/// manager-side owner table for locks this node manages.
#[derive(Debug, Clone)]
pub struct LockTable {
    node: NodeId,
    nodes: usize,
    locks: HashMap<LockId, LockLocal>,
    /// For locks managed here: the probable current owner.
    managed_owner: HashMap<LockId, NodeId>,
}

impl LockTable {
    /// Lock state for `node` in a cluster of `nodes`.
    pub fn new(node: NodeId, nodes: usize) -> Self {
        LockTable {
            node,
            nodes,
            locks: HashMap::new(),
            managed_owner: HashMap::new(),
        }
    }

    /// The manager node of `lock`.
    pub fn manager(&self, lock: LockId) -> NodeId {
        lock.0 as usize % self.nodes
    }

    fn entry(&mut self, lock: LockId) -> &mut LockLocal {
        let starts_here = self.manager(lock) == self.node;
        self.locks
            .entry(lock)
            .or_insert_with(|| LockLocal::new(starts_here))
    }

    /// Thread `tid` wants `lock`.
    pub fn acquire(&mut self, lock: LockId, tid: ThreadId) -> AcquireOutcome {
        let e = self.entry(lock);
        if e.has_token && e.held_by.is_none() && e.local_queue.is_empty() {
            e.held_by = Some(tid);
            return AcquireOutcome::Granted;
        }
        e.local_queue.push_back(tid);
        if e.has_token || e.token_requested {
            AcquireOutcome::QueuedLocal
        } else {
            e.token_requested = true;
            AcquireOutcome::NeedToken
        }
    }

    /// Thread `tid` releases `lock`.
    ///
    /// # Panics
    ///
    /// Panics if `tid` does not hold the lock.
    pub fn release(&mut self, lock: LockId, tid: ThreadId) -> ReleaseOutcome {
        let e = self.entry(lock);
        assert_eq!(e.held_by, Some(tid), "release by non-holder");
        if let Some(next) = e.local_queue.pop_front() {
            e.held_by = Some(next);
            return ReleaseOutcome::PassedLocal(next);
        }
        e.held_by = None;
        if let Some(waiter) = e.remote_queue.pop_front() {
            e.has_token = false;
            e.passed_to = Some(waiter.node);
            return ReleaseOutcome::GrantRemote(waiter);
        }
        ReleaseOutcome::Idle
    }

    /// A request for `lock` was forwarded to this node (it is, or
    /// recently was, the owner).
    pub fn handle_forward(&mut self, lock: LockId, waiter: RemoteWaiter) -> ForwardOutcome {
        let e = self.entry(lock);
        if e.has_token {
            if e.held_by.is_none() && e.local_queue.is_empty() && !e.token_requested {
                e.has_token = false;
                e.passed_to = Some(waiter.node);
                return ForwardOutcome::Grant(waiter);
            }
            e.remote_queue.push_back(waiter);
            return ForwardOutcome::Queued;
        }
        if let Some(next) = e.passed_to {
            return ForwardOutcome::Chain(next);
        }
        // Token is on its way to us; serve the remote after our turn.
        e.remote_queue.push_back(waiter);
        ForwardOutcome::Queued
    }

    /// The token for `lock` arrived (a grant from the previous owner).
    pub fn handle_grant(&mut self, lock: LockId) -> GrantOutcome {
        let e = self.entry(lock);
        debug_assert!(!e.has_token, "grant while already holding token");
        e.has_token = true;
        e.token_requested = false;
        e.passed_to = None;
        match e.local_queue.pop_front() {
            Some(tid) => {
                e.held_by = Some(tid);
                GrantOutcome::WakeLocal(tid)
            }
            None => GrantOutcome::TokenParked,
        }
    }

    /// If the token is held here, free, and unwanted locally, pops a
    /// queued remote waiter to grant the token onward. Used after
    /// [`LockTable::handle_grant`] returns
    /// [`GrantOutcome::TokenParked`] so a parked token never strands
    /// remote requesters.
    pub fn take_remote_if_free(&mut self, lock: LockId) -> Option<RemoteWaiter> {
        let e = self.entry(lock);
        if e.has_token && e.held_by.is_none() && e.local_queue.is_empty() {
            if let Some(w) = e.remote_queue.pop_front() {
                e.has_token = false;
                e.passed_to = Some(w.node);
                return Some(w);
            }
        }
        None
    }

    /// Removes and returns every remote waiter still queued for
    /// `lock`. Called right after the token is granted away: the
    /// leftover requests must chase the token to its new holder, or
    /// they would be stranded at a node that will never hold the
    /// token again.
    pub fn drain_remote_queue(&mut self, lock: LockId) -> Vec<RemoteWaiter> {
        let e = self.entry(lock);
        debug_assert!(!e.has_token, "draining while still holding the token");
        e.remote_queue.drain(..).collect()
    }

    /// Manager side: where to send a new acquire request for a lock
    /// managed by this node, updating the probable owner to the
    /// requester. Returns `None` when this node itself is the
    /// probable owner (the caller should then use
    /// [`LockTable::handle_forward`] locally).
    ///
    /// # Panics
    ///
    /// Panics if this node does not manage `lock`.
    pub fn manager_route(&mut self, lock: LockId, requester: NodeId) -> Option<NodeId> {
        assert_eq!(self.manager(lock), self.node, "not the manager");
        let owner = *self.managed_owner.entry(lock).or_insert(self.node);
        self.managed_owner.insert(lock, requester);
        if owner == self.node {
            None
        } else {
            Some(owner)
        }
    }

    /// True if the node currently holds the token for `lock` (for
    /// tests and assertions).
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn has_token(&self, lock: LockId) -> bool {
        self.locks.get(&lock).is_some_and(|e| e.has_token)
            || (!self.locks.contains_key(&lock) && self.manager(lock) == self.node)
    }

    /// Every lock whose token is currently at this node (for the
    /// engine's debug invariant checks).
    pub fn tokens_held(&self) -> Vec<LockId> {
        let mut held: Vec<LockId> = self
            .locks
            .iter()
            .filter(|(_, e)| e.has_token)
            .map(|(l, _)| *l)
            .collect();
        held.sort();
        held
    }

    /// The local thread currently holding `lock`, if any.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn holder(&self, lock: LockId) -> Option<ThreadId> {
        self.locks.get(&lock).and_then(|e| e.held_by)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vc() -> VectorClock {
        VectorClock::new(2)
    }

    #[test]
    fn manager_starts_with_token_and_grants_locally() {
        let mut t = LockTable::new(0, 2);
        assert_eq!(t.manager(LockId(0)), 0);
        assert_eq!(t.acquire(LockId(0), ThreadId(0)), AcquireOutcome::Granted);
        assert_eq!(t.holder(LockId(0)), Some(ThreadId(0)));
    }

    #[test]
    fn non_manager_needs_token() {
        let mut t = LockTable::new(1, 2);
        assert_eq!(t.acquire(LockId(0), ThreadId(9)), AcquireOutcome::NeedToken);
        // A second local thread piggybacks on the outstanding request.
        assert_eq!(
            t.acquire(LockId(0), ThreadId(10)),
            AcquireOutcome::QueuedLocal
        );
    }

    #[test]
    fn grant_wakes_first_local_waiter() {
        let mut t = LockTable::new(1, 2);
        t.acquire(LockId(0), ThreadId(9));
        t.acquire(LockId(0), ThreadId(10));
        assert_eq!(
            t.handle_grant(LockId(0)),
            GrantOutcome::WakeLocal(ThreadId(9))
        );
        assert!(t.has_token(LockId(0)));
        assert_eq!(t.holder(LockId(0)), Some(ThreadId(9)));
    }

    #[test]
    fn release_passes_locally_before_remote() {
        let mut t = LockTable::new(0, 2);
        t.acquire(LockId(0), ThreadId(0));
        t.acquire(LockId(0), ThreadId(1));
        // A remote request arrives while thread 0 holds the lock.
        let w = RemoteWaiter { node: 1, vc: vc() };
        assert_eq!(
            t.handle_forward(LockId(0), w.clone()),
            ForwardOutcome::Queued
        );
        // Local pass wins first...
        assert_eq!(
            t.release(LockId(0), ThreadId(0)),
            ReleaseOutcome::PassedLocal(ThreadId(1))
        );
        // ...then the remote gets the token.
        assert_eq!(
            t.release(LockId(0), ThreadId(1)),
            ReleaseOutcome::GrantRemote(w)
        );
        assert!(!t.has_token(LockId(0)));
    }

    #[test]
    fn forward_to_free_holder_grants_immediately() {
        let mut t = LockTable::new(0, 2);
        let w = RemoteWaiter { node: 1, vc: vc() };
        assert_eq!(
            t.handle_forward(LockId(0), w.clone()),
            ForwardOutcome::Grant(w)
        );
        assert!(!t.has_token(LockId(0)));
    }

    #[test]
    fn forward_after_token_passed_chains() {
        let mut t = LockTable::new(0, 2);
        let w1 = RemoteWaiter { node: 1, vc: vc() };
        t.handle_forward(LockId(0), w1);
        // Token now passed to node 1; a late forward chases it.
        let w2 = RemoteWaiter { node: 1, vc: vc() };
        assert_eq!(t.handle_forward(LockId(0), w2), ForwardOutcome::Chain(1));
    }

    #[test]
    fn manager_routing_updates_probable_owner() {
        let mut t = LockTable::new(0, 4);
        // First request: manager itself is owner → handle locally.
        assert_eq!(t.manager_route(LockId(0), 2), None);
        // Second request: probable owner is now node 2.
        assert_eq!(t.manager_route(LockId(0), 3), Some(2));
        // Third: owner chain continues through node 3.
        assert_eq!(t.manager_route(LockId(0), 1), Some(3));
    }

    #[test]
    fn release_with_no_waiters_keeps_token() {
        let mut t = LockTable::new(0, 2);
        t.acquire(LockId(0), ThreadId(0));
        assert_eq!(t.release(LockId(0), ThreadId(0)), ReleaseOutcome::Idle);
        assert!(t.has_token(LockId(0)));
        // Re-acquire succeeds instantly.
        assert_eq!(t.acquire(LockId(0), ThreadId(0)), AcquireOutcome::Granted);
    }

    #[test]
    #[should_panic(expected = "non-holder")]
    fn release_by_non_holder_panics() {
        let mut t = LockTable::new(0, 2);
        t.acquire(LockId(0), ThreadId(0));
        t.release(LockId(0), ThreadId(1));
    }

    #[test]
    fn leftover_remote_waiters_are_drained_after_grant() {
        let mut t = LockTable::new(0, 4);
        t.acquire(LockId(0), ThreadId(0));
        // Two remote requests queue while the lock is held.
        t.handle_forward(LockId(0), RemoteWaiter { node: 1, vc: vc() });
        t.handle_forward(LockId(0), RemoteWaiter { node: 2, vc: vc() });
        // Release grants to node 1; node 2 must be drained and chased.
        let out = t.release(LockId(0), ThreadId(0));
        assert!(matches!(
            out,
            ReleaseOutcome::GrantRemote(RemoteWaiter { node: 1, .. })
        ));
        let leftovers = t.drain_remote_queue(LockId(0));
        assert_eq!(leftovers.len(), 1);
        assert_eq!(leftovers[0].node, 2);
        assert!(t.drain_remote_queue(LockId(0)).is_empty());
    }

    #[test]
    fn different_locks_are_independent() {
        let mut t = LockTable::new(0, 2);
        assert_eq!(t.acquire(LockId(0), ThreadId(0)), AcquireOutcome::Granted);
        // Lock 1 is managed by node 1, so node 0 needs the token.
        assert_eq!(t.acquire(LockId(1), ThreadId(1)), AcquireOutcome::NeedToken);
    }
}
