//! DSM protocol messages.
//!
//! Every remote interaction in the system is one of these messages.
//! Wire sizes are estimated from the logical content so the network
//! model charges realistic transfer times (the paper's Table 1 and
//! Table 2 report total traffic in bytes).

use std::sync::Arc;

use rsdsm_protocol::{Diff, Page, PageId, VectorClock, NOTICE_WIRE_BYTES, PAGE_SIZE};
use rsdsm_simnet::NodeId;

/// Identifies an application-level lock. The lock's manager node is
/// `id % nodes`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LockId(pub u32);

/// Identifies an application-level barrier. Barriers are managed
/// centrally by node 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BarrierId(pub u32);

/// A closed interval: `origin` modified `pages` during the interval
/// stamped `stamp`. This is the unit of write-notice propagation.
#[derive(Debug, Clone, PartialEq)]
pub struct IntervalRecord {
    /// The writing processor.
    pub origin: NodeId,
    /// Vector timestamp at the interval's close.
    pub stamp: VectorClock,
    /// Pages dirtied during the interval.
    pub pages: Vec<PageId>,
}

impl IntervalRecord {
    /// Wire size of the encoded record.
    pub fn wire_bytes(&self) -> usize {
        8 + 4 * self.stamp.len() + NOTICE_WIRE_BYTES * self.pages.len()
    }
}

/// One diff payload in a reply: the writer's interval stamp plus the
/// encoded modifications.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffPayload {
    /// The processor whose interval produced the diff.
    pub origin: NodeId,
    /// The interval's timestamp.
    pub stamp: VectorClock,
    /// The run-length-encoded modifications, shared zero-copy with
    /// the sender's own diff record (cloning a payload bumps a
    /// refcount, never copies the encoded bytes).
    pub diff: Arc<Diff>,
}

impl DiffPayload {
    fn wire_bytes(&self) -> usize {
        8 + 4 * self.stamp.len() + self.diff.encoded_bytes()
    }
}

/// A full page copy sent on first-touch fetches, along with the set
/// of (origin, stamp) modifications already incorporated in it.
#[derive(Debug, Clone, PartialEq)]
pub struct BasePayload {
    /// The page contents at the sender, shared zero-copy with the
    /// sender's twin frame when one exists (copy-on-write: a sender
    /// that later mutates its twin un-shares it first).
    pub page: Arc<Page>,
    /// Modifications already applied into `page` by the sender.
    pub incorporated: Vec<(NodeId, VectorClock)>,
}

impl BasePayload {
    fn wire_bytes(&self) -> usize {
        PAGE_SIZE + self.incorporated.len() * 12
    }
}

/// Message bodies of the DSM protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum MsgBody {
    /// Request diffs (and possibly a base copy) for a page. Sent on a
    /// page fault, or — with `prefetch` set — by the prefetch engine,
    /// in which case it travels unreliably.
    DiffRequest {
        /// The faulted/prefetched page.
        page: PageId,
        /// Interval stamps whose diffs are wanted from the recipient.
        stamps: Vec<VectorClock>,
        /// Also send a full page copy (first-touch fetch).
        want_base: bool,
        /// This is a prefetch request (servicing may split an open
        /// interval).
        prefetch: bool,
        /// The prefetch was issued by the adaptive stride engine
        /// (distinguished in traffic statistics; implies `prefetch`).
        adaptive: bool,
        /// Whether the network may drop this message (prefetch
        /// traffic is droppable unless configured reliable).
        droppable: bool,
        /// The requester's vector clock, so the reply can piggyback
        /// the write notices the requester lacks.
        vc: VectorClock,
    },
    /// Response to a [`MsgBody::DiffRequest`].
    DiffReply {
        /// The page in question.
        page: PageId,
        /// Requested (and possibly interval-split) diffs.
        diffs: Vec<DiffPayload>,
        /// Full page copy when requested.
        base: Option<BasePayload>,
        /// Mirrors the request's prefetch flag.
        prefetch: bool,
        /// Mirrors the request's adaptive flag.
        adaptive: bool,
        /// Mirrors the request's droppable flag.
        droppable: bool,
        /// Write notices the requester did not have. Piggybacking
        /// them preserves happens-before: a reply may carry a diff
        /// from a freshly split interval, and the requester must
        /// learn of every causally-prior interval before applying it,
        /// or a later fetch of an older overlapping diff would roll
        /// the page back.
        intervals: Vec<IntervalRecord>,
    },
    /// Acquire request sent to the lock's manager node.
    LockRequest {
        /// The lock.
        lock: LockId,
        /// The acquiring node.
        requester: NodeId,
        /// The acquirer's vector clock, so the granter can select the
        /// write notices the acquirer lacks.
        vc: VectorClock,
    },
    /// Manager (or stale owner) forwarding an acquire request toward
    /// the current token holder.
    LockForward {
        /// The lock.
        lock: LockId,
        /// The acquiring node.
        requester: NodeId,
        /// The acquirer's vector clock.
        vc: VectorClock,
    },
    /// The token plus piggybacked write notices, sent by the previous
    /// holder directly to the new one.
    LockGrant {
        /// The lock.
        lock: LockId,
        /// Intervals the acquirer did not know about.
        intervals: Vec<IntervalRecord>,
        /// The granter's vector clock.
        vc: VectorClock,
    },
    /// A node's last local thread reached the barrier.
    BarrierArrive {
        /// The barrier.
        id: BarrierId,
        /// The arriving node.
        from: NodeId,
        /// The arriver's vector clock.
        vc: VectorClock,
        /// Intervals the manager may not know about.
        intervals: Vec<IntervalRecord>,
    },
    /// The manager releases all nodes from the barrier, redistributing
    /// every interval gathered from the arrivals.
    BarrierRelease {
        /// The barrier.
        id: BarrierId,
        /// Joined vector clock of all participants.
        vc: VectorClock,
        /// Union of intervals from all arrivals.
        intervals: Vec<IntervalRecord>,
    },
    /// A node's lease on a peer expired, or a reliable frame to it
    /// exhausted its retries; reported to the manager, which owns
    /// failure confirmation.
    SuspectReport {
        /// The peer believed failed.
        suspect: NodeId,
    },
    /// The manager confirmed a failure: survivors mark the victim
    /// down and prepare for it to rejoin from its checkpoint.
    RecoveryStart {
        /// The failed node.
        victim: NodeId,
        /// The victim's last checkpointed barrier epoch (0 when it
        /// never checkpointed and will rejoin from its initial
        /// state).
        epoch: u32,
    },
}

/// A protocol message in flight.
#[derive(Debug, Clone, PartialEq)]
pub struct Msg {
    /// Sender node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Payload.
    pub body: MsgBody,
}

/// Fixed per-message body framing (op code, page/lock ids, flags).
const BODY_HEADER_BYTES: usize = 16;

impl MsgBody {
    /// Estimated wire size of the encoded body in bytes.
    pub fn wire_bytes(&self) -> usize {
        BODY_HEADER_BYTES
            + match self {
                MsgBody::DiffRequest { stamps, vc, .. } => {
                    4 * vc.len() + stamps.iter().map(|s| 4 * s.len()).sum::<usize>()
                }
                MsgBody::DiffReply {
                    diffs,
                    base,
                    intervals,
                    ..
                } => {
                    diffs.iter().map(DiffPayload::wire_bytes).sum::<usize>()
                        + base.as_ref().map_or(0, BasePayload::wire_bytes)
                        + intervals
                            .iter()
                            .map(IntervalRecord::wire_bytes)
                            .sum::<usize>()
                }
                MsgBody::LockRequest { vc, .. } | MsgBody::LockForward { vc, .. } => 4 * vc.len(),
                MsgBody::LockGrant { intervals, vc, .. } => {
                    4 * vc.len()
                        + intervals
                            .iter()
                            .map(IntervalRecord::wire_bytes)
                            .sum::<usize>()
                }
                MsgBody::BarrierArrive { intervals, vc, .. }
                | MsgBody::BarrierRelease { intervals, vc, .. } => {
                    4 * vc.len()
                        + intervals
                            .iter()
                            .map(IntervalRecord::wire_bytes)
                            .sum::<usize>()
                }
                // Node id / epoch fit inside the fixed header.
                MsgBody::SuspectReport { .. } | MsgBody::RecoveryStart { .. } => 0,
            }
    }

    /// Statistics label for the network layer.
    pub fn kind(&self) -> &'static str {
        match self {
            MsgBody::DiffRequest { adaptive: true, .. } => "adaptive_request",
            MsgBody::DiffRequest { prefetch: true, .. } => "prefetch_request",
            MsgBody::DiffRequest { .. } => "diff_request",
            MsgBody::DiffReply { adaptive: true, .. } => "adaptive_reply",
            MsgBody::DiffReply { prefetch: true, .. } => "prefetch_reply",
            MsgBody::DiffReply { .. } => "diff_reply",
            MsgBody::LockRequest { .. } => "lock_request",
            MsgBody::LockForward { .. } => "lock_forward",
            MsgBody::LockGrant { .. } => "lock_grant",
            MsgBody::BarrierArrive { .. } => "barrier_arrive",
            MsgBody::BarrierRelease { .. } => "barrier_release",
            MsgBody::SuspectReport { .. } => "suspect_report",
            MsgBody::RecoveryStart { .. } => "recovery_start",
        }
    }

    /// True for messages the network may drop (prefetch traffic,
    /// unless the run configures reliable prefetches).
    pub fn droppable(&self) -> bool {
        matches!(
            self,
            MsgBody::DiffRequest {
                droppable: true,
                ..
            } | MsgBody::DiffReply {
                droppable: true,
                ..
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vc() -> VectorClock {
        VectorClock::new(4)
    }

    #[test]
    fn wire_sizes_scale_with_content() {
        let small = MsgBody::DiffRequest {
            page: PageId::new(0),
            stamps: vec![vc()],
            want_base: false,
            prefetch: false,
            adaptive: false,
            droppable: false,
            vc: vc(),
        };
        let large = MsgBody::DiffRequest {
            page: PageId::new(0),
            stamps: vec![vc(); 4],
            want_base: false,
            prefetch: false,
            adaptive: false,
            droppable: false,
            vc: vc(),
        };
        assert!(large.wire_bytes() > small.wire_bytes());
    }

    #[test]
    fn reply_with_base_is_page_sized() {
        let body = MsgBody::DiffReply {
            page: PageId::new(1),
            diffs: vec![],
            base: Some(BasePayload {
                page: Arc::new(Page::new()),
                incorporated: vec![],
            }),
            prefetch: false,
            adaptive: false,
            droppable: false,
            intervals: vec![],
        };
        assert!(body.wire_bytes() >= PAGE_SIZE);
    }

    #[test]
    fn only_prefetch_traffic_is_droppable() {
        let pf = MsgBody::DiffRequest {
            page: PageId::new(0),
            stamps: vec![],
            want_base: false,
            prefetch: true,
            adaptive: false,
            droppable: true,
            vc: vc(),
        };
        assert!(pf.droppable());
        assert_eq!(pf.kind(), "prefetch_request");
        let normal = MsgBody::LockRequest {
            lock: LockId(0),
            requester: 1,
            vc: vc(),
        };
        assert!(!normal.droppable());
        assert_eq!(normal.kind(), "lock_request");
    }

    #[test]
    fn interval_record_wire_bytes() {
        let rec = IntervalRecord {
            origin: 0,
            stamp: vc(),
            pages: vec![PageId::new(0), PageId::new(1)],
        };
        assert_eq!(rec.wire_bytes(), 8 + 16 + 2 * NOTICE_WIRE_BYTES);
    }
}
