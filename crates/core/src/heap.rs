//! The global shared heap and typed array handles.
//!
//! Applications see shared memory as typed arrays ([`SharedVec`])
//! allocated from a single global, page-granular address space.
//! Each page has a *home* node that holds its initial (zeroed) copy
//! and serves first-touch fetches; [`HomePolicy`] controls how an
//! allocation's pages map to homes, which is how the applications
//! express their data layout (the paper's LU-CONT vs LU-NCONT
//! distinction is exactly a layout difference).

use std::marker::PhantomData;

use rsdsm_protocol::{PageId, PAGE_SIZE};
use rsdsm_simnet::NodeId;

/// A plain-old-data element type storable in shared memory.
///
/// Implementations convert to and from little-endian bytes; all
/// numeric primitives the applications need are covered.
pub trait Pod: Copy + Default + Send + Sync + 'static {
    /// Size of one element in bytes.
    const BYTES: usize;
    /// Writes the little-endian encoding into `out`.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != Self::BYTES`.
    fn write_le(self, out: &mut [u8]);
    /// Reads a value from its little-endian encoding.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != Self::BYTES`.
    fn read_le(input: &[u8]) -> Self;
}

macro_rules! impl_pod {
    ($($t:ty),*) => {$(
        impl Pod for $t {
            const BYTES: usize = std::mem::size_of::<$t>();
            fn write_le(self, out: &mut [u8]) {
                out.copy_from_slice(&self.to_le_bytes());
            }
            fn read_le(input: &[u8]) -> Self {
                <$t>::from_le_bytes(input.try_into().expect("element byte width"))
            }
        }
    )*};
}

impl_pod!(f64, f32, u64, u32, i64, i32, u8);

/// How an allocation's pages are assigned home nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HomePolicy {
    /// Every page homed on one node (the paper's applications
    /// initialize most data on the master, producing the hot-spotting
    /// the paper observes in FFT and SOR).
    Single(NodeId),
    /// Pages split into contiguous equal blocks, one per node.
    Blocked,
    /// Pages dealt round-robin across nodes.
    RoundRobin,
}

/// A typed handle to a shared array.
///
/// Handles are small and `Copy`; they carry no data — all accesses go
/// through the per-thread [`DsmCtx`](crate::DsmCtx).
#[derive(Debug, PartialEq, Eq, Hash)]
pub struct SharedVec<T: Pod> {
    first_page: u32,
    len: usize,
    _marker: PhantomData<fn() -> T>,
}

impl<T: Pod> Clone for SharedVec<T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T: Pod> Copy for SharedVec<T> {}

impl<T: Pod> SharedVec<T> {
    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the array has no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of pages the array spans.
    pub fn page_count(&self) -> usize {
        (self.len * T::BYTES).div_ceil(PAGE_SIZE)
    }

    /// All pages backing the array, in order.
    pub fn pages(&self) -> impl Iterator<Item = PageId> + '_ {
        (0..self.page_count() as u32).map(move |i| PageId::new(self.first_page + i))
    }

    /// The page and in-page byte offset of element `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn locate(&self, i: usize) -> (PageId, usize) {
        assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        let byte = i * T::BYTES;
        (
            PageId::new(self.first_page + (byte / PAGE_SIZE) as u32),
            byte % PAGE_SIZE,
        )
    }

    /// The pages touched by elements `start..end`, each with the
    /// element subrange it holds.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or reversed.
    pub fn locate_range(
        &self,
        start: usize,
        end: usize,
    ) -> impl Iterator<Item = (PageId, std::ops::Range<usize>)> + '_ {
        assert!(start <= end && end <= self.len, "bad range {start}..{end}");
        let elems_per_page = PAGE_SIZE / T::BYTES;
        let mut cur = start;
        std::iter::from_fn(move || {
            if cur >= end {
                return None;
            }
            let page_index = cur * T::BYTES / PAGE_SIZE;
            let page_end_elem = ((page_index + 1) * elems_per_page).min(end);
            let range = cur..page_end_elem;
            cur = page_end_elem;
            Some((PageId::new(self.first_page + page_index as u32), range))
        })
    }

    /// The pages touched by elements `start..end` (no element ranges).
    pub fn pages_for_range(&self, start: usize, end: usize) -> Vec<PageId> {
        self.locate_range(start, end).map(|(p, _)| p).collect()
    }
}

/// The global shared heap: a bump allocator over pages with per-page
/// home assignment.
#[derive(Debug, Clone)]
pub struct Heap {
    nodes: usize,
    homes: Vec<NodeId>,
    next_rr: usize,
}

impl Heap {
    /// An empty heap for a cluster of `nodes`.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    pub fn new(nodes: usize) -> Self {
        assert!(nodes > 0, "heap needs at least one node");
        Heap {
            nodes,
            homes: Vec::new(),
            next_rr: 0,
        }
    }

    /// Allocates a shared array of `len` elements; pages are homed
    /// per `policy`. Allocations are page-aligned and never freed
    /// (matching the applications' allocate-once pattern).
    ///
    /// # Panics
    ///
    /// Panics if `policy` names a node outside the cluster, or if the
    /// element type is wider than a page.
    pub fn alloc<T: Pod>(&mut self, len: usize, policy: HomePolicy) -> SharedVec<T> {
        assert!(T::BYTES <= PAGE_SIZE, "element wider than a page");
        let first_page = self.homes.len() as u32;
        let pages = (len * T::BYTES).div_ceil(PAGE_SIZE).max(1);
        for i in 0..pages {
            let home = match policy {
                HomePolicy::Single(n) => {
                    assert!(n < self.nodes, "home node out of range");
                    n
                }
                HomePolicy::Blocked => (i * self.nodes / pages).min(self.nodes - 1),
                HomePolicy::RoundRobin => {
                    let h = self.next_rr;
                    self.next_rr = (self.next_rr + 1) % self.nodes;
                    h
                }
            };
            self.homes.push(home);
        }
        SharedVec {
            first_page,
            len,
            _marker: PhantomData,
        }
    }

    /// Total pages allocated.
    pub fn page_count(&self) -> usize {
        self.homes.len()
    }

    /// The home node of `page`.
    ///
    /// # Panics
    ///
    /// Panics if the page was never allocated.
    pub fn home(&self, page: PageId) -> NodeId {
        self.homes[page.index()]
    }

    /// Reassigns the home of `page` — the directory layer's hook for
    /// policy overrides at startup and first-touch migration at run
    /// time.
    ///
    /// # Panics
    ///
    /// Panics if the page was never allocated or the node is outside
    /// the cluster.
    pub fn set_home(&mut self, page: PageId, home: NodeId) {
        assert!(home < self.nodes, "home node out of range");
        self.homes[page.index()] = home;
    }

    /// Number of nodes in the cluster.
    pub fn nodes(&self) -> usize {
        self.nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pod_round_trip() {
        let mut buf = [0u8; 8];
        1.5f64.write_le(&mut buf);
        assert_eq!(f64::read_le(&buf), 1.5);
        let mut buf4 = [0u8; 4];
        0xDEADu32.write_le(&mut buf4);
        assert_eq!(u32::read_le(&buf4), 0xDEAD);
    }

    #[test]
    fn alloc_is_page_aligned_and_contiguous() {
        let mut heap = Heap::new(4);
        let a: SharedVec<f64> = heap.alloc(512, HomePolicy::Single(0)); // exactly 1 page
        let b: SharedVec<f64> = heap.alloc(513, HomePolicy::Single(0)); // 2 pages
        assert_eq!(a.page_count(), 1);
        assert_eq!(b.page_count(), 2);
        assert_eq!(heap.page_count(), 3);
        let a_pages: Vec<_> = a.pages().collect();
        assert_eq!(a_pages, vec![PageId::new(0)]);
        let b_pages: Vec<_> = b.pages().collect();
        assert_eq!(b_pages, vec![PageId::new(1), PageId::new(2)]);
    }

    #[test]
    fn locate_elements() {
        let mut heap = Heap::new(2);
        let v: SharedVec<f64> = heap.alloc(1024, HomePolicy::Single(0));
        assert_eq!(v.locate(0), (PageId::new(0), 0));
        assert_eq!(v.locate(511), (PageId::new(0), 511 * 8));
        assert_eq!(v.locate(512), (PageId::new(1), 0));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn locate_out_of_bounds_panics() {
        let mut heap = Heap::new(2);
        let v: SharedVec<f64> = heap.alloc(8, HomePolicy::Single(0));
        v.locate(8);
    }

    #[test]
    fn locate_range_splits_at_page_boundaries() {
        let mut heap = Heap::new(2);
        let v: SharedVec<f64> = heap.alloc(1024, HomePolicy::Single(0));
        let spans: Vec<_> = v.locate_range(500, 600).collect();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0], (PageId::new(0), 500..512));
        assert_eq!(spans[1], (PageId::new(1), 512..600));
        assert_eq!(v.pages_for_range(0, 512), vec![PageId::new(0)]);
        assert!(v.locate_range(5, 5).next().is_none());
    }

    #[test]
    fn home_policies() {
        let mut heap = Heap::new(4);
        let single: SharedVec<u8> = heap.alloc(4 * PAGE_SIZE, HomePolicy::Single(2));
        for p in single.pages() {
            assert_eq!(heap.home(p), 2);
        }
        let blocked: SharedVec<u8> = heap.alloc(8 * PAGE_SIZE, HomePolicy::Blocked);
        let homes: Vec<_> = blocked.pages().map(|p| heap.home(p)).collect();
        assert_eq!(homes, vec![0, 0, 1, 1, 2, 2, 3, 3]);
        let rr: SharedVec<u8> = heap.alloc(4 * PAGE_SIZE, HomePolicy::RoundRobin);
        let homes: Vec<_> = rr.pages().map(|p| heap.home(p)).collect();
        assert_eq!(homes, vec![0, 1, 2, 3]);
    }

    #[test]
    fn blocked_policy_covers_all_nodes_when_pages_exceed_nodes() {
        let mut heap = Heap::new(3);
        let v: SharedVec<u8> = heap.alloc(7 * PAGE_SIZE, HomePolicy::Blocked);
        let homes: Vec<_> = v.pages().map(|p| heap.home(p)).collect();
        assert!(homes.contains(&0) && homes.contains(&1) && homes.contains(&2));
        assert!(homes.windows(2).all(|w| w[0] <= w[1]), "monotone blocks");
    }

    #[test]
    fn empty_alloc_still_reserves_a_page() {
        let mut heap = Heap::new(1);
        let v: SharedVec<u64> = heap.alloc(0, HomePolicy::Single(0));
        assert!(v.is_empty());
        assert_eq!(heap.page_count(), 1);
    }

    #[test]
    fn handles_are_copy() {
        let mut heap = Heap::new(1);
        let v: SharedVec<f64> = heap.alloc(4, HomePolicy::Single(0));
        let w = v;
        assert_eq!(v, w);
    }
}
