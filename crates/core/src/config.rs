//! Simulation configuration.
//!
//! [`DsmConfig`] gathers everything that varies between the paper's
//! experiments: cluster size, network parameters, software costs, the
//! prefetch mode, and the multithreading mode. The figure/table
//! binaries construct one config per bar of each figure.

use std::fmt;

use rsdsm_simnet::{FaultPlan, NetConfig, NodeId, SimDuration, Topology};

use crate::costs::CostModel;
use crate::oracle::OracleConfig;
use crate::prefetch::AdaptiveConfig;
use crate::recovery::RecoveryConfig;
use crate::transport::TransportConfig;

/// How prefetching is enabled for a run (§3, §5.1).
#[derive(Clone, PartialEq)]
pub struct PrefetchConfig {
    /// Whether `DsmCtx::prefetch` calls issue messages at all.
    /// When false, prefetch calls are free no-ops, giving the
    /// "original" bars of the figures.
    pub enabled: bool,
    /// Issue only every k-th message-generating prefetch (the RADIX
    /// throttling optimization, §5.1). `1` means no throttling.
    pub throttle: u32,
    /// Suppress prefetches for pages a sibling thread on the same
    /// node has already prefetched this barrier epoch — the dynamic
    /// flag optimization of §5.1.
    pub suppress_redundant: bool,
    /// Fully runtime-driven prefetching: instead of the
    /// application's explicit annotations, the DSM records which
    /// pages fault after each synchronization point and automatically
    /// prefetches that history at the next acquisition of the same
    /// object — the alternative design of Bianchini et al. that the
    /// paper argues hand insertion beats (§3, §6). When set,
    /// application prefetch calls are ignored.
    pub automatic: bool,
    /// Send prefetch requests and replies reliably instead of
    /// droppable — the design alternative the paper rejects in §3.1
    /// footnote 3 (retrying under congestion worsens congestion).
    /// Exposed for the ablation experiments.
    pub reliable: bool,
    /// Emulate compiler-inserted prefetching by also issuing the
    /// prefetch checks for private (thread-local) data the compiler
    /// cannot classify (inflates unnecessary-prefetch counts the way
    /// Table 1 shows for FFT and LU-NCONT).
    pub compiler_style: bool,
    /// The online majority-trend stride engine (`core::prefetch`):
    /// detector window, degree/lead controller, and feedback
    /// thresholds. Off ([`AdaptiveConfig::off`]) by default.
    pub adaptive: AdaptiveConfig,
}

/// Replicates the pre-adaptive derived output exactly while the
/// adaptive engine is off, so every pinned report digest (the config
/// is embedded in [`RunReport`](crate::RunReport)'s debug form) stays
/// byte-identical; the `adaptive` field only appears once the mode is
/// actually on.
impl fmt::Debug for PrefetchConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = f.debug_struct("PrefetchConfig");
        s.field("enabled", &self.enabled)
            .field("throttle", &self.throttle)
            .field("suppress_redundant", &self.suppress_redundant)
            .field("automatic", &self.automatic)
            .field("reliable", &self.reliable)
            .field("compiler_style", &self.compiler_style);
        if self.adaptive.enabled {
            s.field("adaptive", &self.adaptive);
        }
        s.finish()
    }
}

/// The prefetch technique a [`PrefetchConfig`] describes, for labels
/// and dispatch: the paper's static modes, the Bianchini-style
/// history replay, and the adaptive engine (alone or combined with
/// static annotations).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrefetchMode {
    /// No prefetching (the "O" bars).
    Off,
    /// Hand- or compiler-inserted annotations (the "P" bars).
    Static,
    /// History replay at sync points ([`PrefetchConfig::automatic`]).
    History,
    /// Online stride detection, annotations ignored.
    Adaptive,
    /// Online stride detection plus static annotations.
    AdaptiveStatic,
}

impl PrefetchMode {
    /// Short label for tables and figures.
    pub fn label(self) -> &'static str {
        match self {
            PrefetchMode::Off => "O",
            PrefetchMode::Static => "P",
            PrefetchMode::History => "H",
            PrefetchMode::Adaptive => "A",
            PrefetchMode::AdaptiveStatic => "A+P",
        }
    }
}

impl PrefetchConfig {
    /// Prefetching disabled (the "O" bars).
    pub fn off() -> Self {
        PrefetchConfig {
            enabled: false,
            throttle: 1,
            suppress_redundant: false,
            automatic: false,
            reliable: false,
            compiler_style: false,
            adaptive: AdaptiveConfig::off(),
        }
    }

    /// Hand-inserted prefetching as in §3.2 (the "P" bars).
    pub fn hand() -> Self {
        PrefetchConfig {
            enabled: true,
            ..PrefetchConfig::off()
        }
    }

    /// Compiler-style prefetching (FFT, LU-NCONT in the paper).
    pub fn compiler() -> Self {
        PrefetchConfig {
            compiler_style: true,
            ..PrefetchConfig::hand()
        }
    }

    /// History-based automatic runtime prefetching (the Bianchini
    /// et al. style the paper compares against).
    pub fn automatic() -> Self {
        PrefetchConfig {
            automatic: true,
            ..PrefetchConfig::hand()
        }
    }

    /// Online adaptive prefetching ([`PrefetchMode::Adaptive`]):
    /// majority-trend stride detection with feedback throttling,
    /// application annotations ignored.
    pub fn adaptive() -> Self {
        PrefetchConfig {
            adaptive: AdaptiveConfig::on(),
            ..PrefetchConfig::hand()
        }
    }

    /// Adaptive detection *plus* the application's static annotations
    /// ([`PrefetchMode::AdaptiveStatic`]); combine with
    /// `compiler_style` for the apps the paper compiles prefetches
    /// into.
    pub fn adaptive_static() -> Self {
        PrefetchConfig {
            adaptive: AdaptiveConfig::combined(),
            ..PrefetchConfig::hand()
        }
    }

    /// The technique this configuration describes.
    pub fn mode(&self) -> PrefetchMode {
        if !self.enabled {
            PrefetchMode::Off
        } else if self.adaptive.enabled {
            if self.adaptive.combine_static {
                PrefetchMode::AdaptiveStatic
            } else {
                PrefetchMode::Adaptive
            }
        } else if self.automatic {
            PrefetchMode::History
        } else {
            PrefetchMode::Static
        }
    }

    /// Whether application/compiler-inserted prefetch annotations are
    /// honored: static modes always, adaptive only in the combined
    /// mode, history never (it replaces them entirely).
    pub fn honors_annotations(&self) -> bool {
        self.enabled && !self.automatic && (!self.adaptive.enabled || self.adaptive.combine_static)
    }
}

/// How page homes are assigned when directory sharding is enabled.
///
/// With the directory off (the default), homes come from each
/// application's [`HomePolicy`](crate::HomePolicy) allocation layout,
/// exactly as the paper's runs; these policies override that layout
/// cluster-wide so home placement can be studied independently of the
/// applications.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DirectoryPolicy {
    /// Home = FNV-1a hash of the page index, modulo the cluster size.
    /// Spreads directory load uniformly and destroys locality.
    Hash,
    /// Contiguous equal blocks of the whole page space, one per node.
    /// Preserves spatial locality at the cost of hot blocks.
    Block,
    /// Pages start hash-homed, then migrate to the first node that
    /// touches them — before any other node has seen the page — so a
    /// node that privately initializes a region ends up its home.
    FirstTouch,
}

impl DirectoryPolicy {
    /// The static (pre-migration) home this policy assigns `page` in
    /// a heap of `total_pages` pages across `nodes` nodes: a pure,
    /// total, deterministic function of its arguments, so home lookup
    /// never needs coordination. First-touch starts from the hash
    /// assignment and migrates at runtime.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero or `page` is outside the heap.
    pub fn static_home(self, page: usize, total_pages: usize, nodes: usize) -> NodeId {
        assert!(nodes > 0, "cluster needs at least one node");
        assert!(page < total_pages, "page outside the heap");
        match self {
            DirectoryPolicy::Hash | DirectoryPolicy::FirstTouch => {
                // FNV-1a over the page index's little-endian bytes.
                let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                for b in (page as u64).to_le_bytes() {
                    h ^= b as u64;
                    h = h.wrapping_mul(0x0000_0100_0000_01b3);
                }
                (h % nodes as u64) as NodeId
            }
            DirectoryPolicy::Block => (page * nodes / total_pages).min(nodes - 1),
        }
    }
}

/// Directory-style metadata sharding (scale-out mode).
///
/// Off by default: every node tracks every write notice, exactly the
/// paper's protocol, and runs are bit-identical to pre-directory
/// builds. Enabled, each node records write notices only for pages it
/// is *interested* in — pages it homes, caches, or is fetching — and
/// page homes serve first-fetch requesters the pruned history along
/// with the base copy, so a cold reader recovers exactly the notices
/// it skipped. Lock management is already home-distributed (manager =
/// lock id modulo cluster size) and unaffected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DirectoryConfig {
    /// Master switch for interest-based notice pruning and home-served
    /// history healing.
    pub enabled: bool,
    /// How page homes are assigned across the cluster.
    pub policy: DirectoryPolicy,
}

impl DirectoryConfig {
    /// Directory sharding disabled: the paper's all-to-all metadata
    /// protocol, bit-identical to pre-directory builds.
    pub fn off() -> Self {
        DirectoryConfig {
            enabled: false,
            policy: DirectoryPolicy::Hash,
        }
    }

    /// Sharding enabled with the given home-assignment policy.
    pub fn on(policy: DirectoryPolicy) -> Self {
        DirectoryConfig {
            enabled: true,
            policy,
        }
    }
}

impl Default for DirectoryConfig {
    fn default() -> Self {
        DirectoryConfig::off()
    }
}

/// How multithreading is configured for a run (§4, §5).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadConfig {
    /// User-level threads per node (1 = the paper's "O"/"P" bars).
    pub threads_per_node: usize,
    /// Switch threads on a remote memory miss. True in pure
    /// multithreading (§4); false in the combined approach (§5),
    /// where prefetching owns memory latency and a miss simply stalls.
    pub switch_on_memory: bool,
    /// Switch threads on a remote synchronization stall.
    pub switch_on_sync: bool,
}

impl ThreadConfig {
    /// Single-threaded nodes (no multithreading machinery active).
    pub fn single() -> Self {
        ThreadConfig {
            threads_per_node: 1,
            switch_on_memory: false,
            switch_on_sync: false,
        }
    }

    /// Pure multithreading with `n` threads per node (§4): switch on
    /// both memory and synchronization stalls.
    pub fn multithreaded(n: usize) -> Self {
        ThreadConfig {
            threads_per_node: n,
            switch_on_memory: true,
            switch_on_sync: true,
        }
    }

    /// The combined approach of §5: `n` threads per node, switching
    /// only on synchronization stalls (prefetching hides memory).
    pub fn combined(n: usize) -> Self {
        ThreadConfig {
            threads_per_node: n,
            switch_on_memory: false,
            switch_on_sync: true,
        }
    }

    /// True when more than one thread runs per node, which activates
    /// asynchronous message handling and its fixed overhead (§4.3).
    pub fn is_multithreaded(&self) -> bool {
        self.threads_per_node > 1
    }
}

/// Complete configuration of one simulated run.
#[derive(Debug, Clone, PartialEq)]
pub struct DsmConfig {
    /// Number of workstations.
    pub nodes: usize,
    /// Network model parameters.
    pub net: NetConfig,
    /// Software cost constants.
    pub costs: CostModel,
    /// Prefetch mode.
    pub prefetch: PrefetchConfig,
    /// Multithreading mode.
    pub threads: ThreadConfig,
    /// Diff/interval storage (in encoded bytes) that triggers a
    /// garbage-collection pass at the next barrier.
    pub gc_threshold_bytes: usize,
    /// Seed for all deterministic randomness (network drops).
    pub seed: u64,
    /// Injected network faults: message drops, duplicates,
    /// reordering, jitter, link-degradation windows, and node stalls.
    /// Empty ([`FaultPlan::none`]) by default.
    pub faults: FaultPlan,
    /// Reliable-transport parameters: retransmission timeout,
    /// backoff cap, retry budget, ack size.
    pub transport: TransportConfig,
    /// Safety limit on simulated time; a run exceeding it aborts with
    /// an error rather than looping forever.
    pub max_sim_time: SimDuration,
    /// Consistency-oracle mode: runtime LRC invariant checking and
    /// final-image/lock-trace capture for differential testing.
    /// Off ([`OracleConfig::off`]) by default — zero overhead.
    pub oracle: OracleConfig,
    /// Failure detection, barrier-aligned checkpointing, and
    /// crash recovery. Off ([`RecoveryConfig::off`]) by default —
    /// retry exhaustion aborts the run as before.
    pub recovery: RecoveryConfig,
    /// Directory-style metadata sharding by page home. Off
    /// ([`DirectoryConfig::off`]) by default — every node tracks
    /// every write notice, as in the paper.
    pub directory: DirectoryConfig,
}

impl DsmConfig {
    /// The paper's cluster: `nodes` workstations on a 155 Mbps ATM
    /// switch with 1998-calibrated software costs, prefetching off,
    /// single-threaded.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    pub fn paper_cluster(nodes: usize) -> Self {
        assert!(nodes > 0, "cluster needs at least one node");
        DsmConfig {
            nodes,
            net: NetConfig::atm_155(0x5D5),
            costs: CostModel::paper_1998(),
            prefetch: PrefetchConfig::off(),
            threads: ThreadConfig::single(),
            gc_threshold_bytes: 8 << 20,
            seed: 0x5D5,
            faults: FaultPlan::none(),
            transport: TransportConfig::default(),
            max_sim_time: SimDuration::from_secs(36_000),
            oracle: OracleConfig::off(),
            recovery: RecoveryConfig::off(),
            directory: DirectoryConfig::off(),
        }
    }

    /// Installs a fault-injection plan (builder style). The plan's
    /// own seed governs fault decisions; the config seed governs
    /// everything else.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Replaces the reliable-transport parameters (builder style).
    pub fn with_transport(mut self, transport: TransportConfig) -> Self {
        self.transport = transport;
        self
    }

    /// Replaces the seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self.net.seed = seed;
        self
    }

    /// Enables a prefetch mode (builder style).
    pub fn with_prefetch(mut self, prefetch: PrefetchConfig) -> Self {
        self.prefetch = prefetch;
        self
    }

    /// Sets the thread mode (builder style).
    pub fn with_threads(mut self, threads: ThreadConfig) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the consistency-oracle mode (builder style).
    pub fn with_oracle(mut self, oracle: OracleConfig) -> Self {
        self.oracle = oracle;
        self
    }

    /// Sets the failure-detection / checkpoint / recovery parameters
    /// (builder style).
    pub fn with_recovery(mut self, recovery: RecoveryConfig) -> Self {
        self.recovery = recovery;
        self
    }

    /// Sets the interconnect topology (builder style). The default,
    /// [`Topology::FlatBus`], reproduces the original single-switch
    /// model bit for bit.
    pub fn with_topology(mut self, topology: Topology) -> Self {
        self.net.topology = topology;
        self
    }

    /// Sets the directory-sharding mode (builder style).
    pub fn with_directory(mut self, directory: DirectoryConfig) -> Self {
        self.directory = directory;
        self
    }

    /// Total application threads in the run.
    pub fn total_threads(&self) -> usize {
        self.nodes * self.threads.threads_per_node
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_cluster_defaults() {
        let c = DsmConfig::paper_cluster(8);
        assert_eq!(c.nodes, 8);
        assert_eq!(c.total_threads(), 8);
        assert!(!c.prefetch.enabled);
        assert!(!c.threads.is_multithreaded());
    }

    #[test]
    fn builders_compose() {
        let c = DsmConfig::paper_cluster(4)
            .with_seed(9)
            .with_prefetch(PrefetchConfig::hand())
            .with_threads(ThreadConfig::multithreaded(4));
        assert_eq!(c.seed, 9);
        assert_eq!(c.net.seed, 9);
        assert!(c.prefetch.enabled);
        assert_eq!(c.total_threads(), 16);
        assert!(c.threads.switch_on_memory);
    }

    #[test]
    fn fault_and_transport_builders() {
        let base = DsmConfig::paper_cluster(4);
        assert!(base.faults.is_none());
        let c = base
            .with_faults(FaultPlan::uniform_loss(7, 0.1))
            .with_transport(TransportConfig {
                max_retries: 3,
                ..TransportConfig::default()
            });
        assert!(!c.faults.is_none());
        assert_eq!(c.faults.seed, 7);
        assert_eq!(c.transport.max_retries, 3);
    }

    #[test]
    fn combined_mode_switches_only_on_sync() {
        let t = ThreadConfig::combined(4);
        assert!(!t.switch_on_memory);
        assert!(t.switch_on_sync);
        assert!(t.is_multithreaded());
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_panics() {
        DsmConfig::paper_cluster(0);
    }

    #[test]
    fn prefetch_modes_classify_their_constructors() {
        assert_eq!(PrefetchConfig::off().mode(), PrefetchMode::Off);
        assert_eq!(PrefetchConfig::hand().mode(), PrefetchMode::Static);
        assert_eq!(PrefetchConfig::compiler().mode(), PrefetchMode::Static);
        assert_eq!(PrefetchConfig::automatic().mode(), PrefetchMode::History);
        assert_eq!(PrefetchConfig::adaptive().mode(), PrefetchMode::Adaptive);
        assert_eq!(
            PrefetchConfig::adaptive_static().mode(),
            PrefetchMode::AdaptiveStatic
        );
        let labels: Vec<_> = [
            PrefetchMode::Off,
            PrefetchMode::Static,
            PrefetchMode::History,
            PrefetchMode::Adaptive,
            PrefetchMode::AdaptiveStatic,
        ]
        .iter()
        .map(|m| m.label())
        .collect();
        assert_eq!(labels, vec!["O", "P", "H", "A", "A+P"]);
    }

    #[test]
    fn annotation_honoring_per_mode() {
        assert!(!PrefetchConfig::off().honors_annotations());
        assert!(PrefetchConfig::hand().honors_annotations());
        assert!(PrefetchConfig::compiler().honors_annotations());
        assert!(!PrefetchConfig::automatic().honors_annotations());
        assert!(!PrefetchConfig::adaptive().honors_annotations());
        assert!(PrefetchConfig::adaptive_static().honors_annotations());
    }

    /// The custom `Debug` must be byte-identical to the pre-adaptive
    /// derived output while the engine is off — pinned report digests
    /// format the config — and only grow the `adaptive` field when on.
    #[test]
    fn prefetch_debug_hides_disabled_adaptive() {
        let off = format!("{:?}", PrefetchConfig::hand());
        assert_eq!(
            off,
            "PrefetchConfig { enabled: true, throttle: 1, \
             suppress_redundant: false, automatic: false, \
             reliable: false, compiler_style: false }"
        );
        let on = format!("{:?}", PrefetchConfig::adaptive());
        assert!(on.contains("adaptive: AdaptiveConfig"));
    }
}
