//! The runtime consistency oracle: LRC invariant checking, lock-grant
//! tracing, and digests for differential/determinism testing.
//!
//! The paper's results only mean something if the LRC substrate is
//! actually coherent, so this module gives every run a cheap,
//! always-available proof hierarchy (see `DESIGN.md`):
//!
//! 1. **Runtime invariants** ([`OracleConfig::invariants`]): checked
//!    inside the engine as the protocol executes — vector-clock
//!    monotonicity, interval/write-notice coverage of every applied
//!    diff, twin/diff round-trip identity, single lock-token
//!    holdership, and barrier-epoch agreement. Violations are
//!    *recorded*, not panicked, so a broken run still produces a
//!    report that names every broken invariant.
//! 2. **Differential checking** ([`OracleConfig::capture`]): the final
//!    merged memory image and the per-lock grant order are captured in
//!    the [`RunReport`](crate::RunReport), so the `rsdsm-oracle` crate
//!    can replay the program through the golden sequential executor
//!    ([`golden_run`](crate::golden_run)) and compare byte for byte.
//! 3. **Determinism**: [`digest_pages`] / [`fnv1a`] hash the image and
//!    report so identical (seed, config) runs can be asserted
//!    digest-identical.
//!
//! The oracle is off by default ([`OracleConfig::off`]) and costs
//! nothing; paper-scale benches keep it off, tests switch it on with
//! [`DsmConfig::with_oracle`](crate::DsmConfig::with_oracle).

use std::collections::{HashMap, HashSet};

use rsdsm_protocol::{Diff, Page, PageId, VectorClock};
use rsdsm_simnet::{NodeId, SimTime};

use crate::msg::{BarrierId, LockId};
use crate::node::NodeState;
use crate::thread::ThreadId;

/// What the consistency oracle checks during a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OracleConfig {
    /// Check LRC invariants as the protocol executes (clock
    /// monotonicity, notice coverage, diff round trips, token
    /// uniqueness, barrier epochs) and record violations.
    pub invariants: bool,
    /// Capture the final memory image and the lock-grant trace in the
    /// report, enabling golden-model differential checking.
    pub capture: bool,
}

impl OracleConfig {
    /// Oracle disabled (the default; zero overhead).
    pub fn off() -> Self {
        OracleConfig {
            invariants: false,
            capture: false,
        }
    }

    /// Everything on: invariants checked, image and trace captured.
    pub fn full() -> Self {
        OracleConfig {
            invariants: true,
            capture: true,
        }
    }

    /// Whether any oracle machinery is active.
    pub fn enabled(&self) -> bool {
        self.invariants || self.capture
    }
}

/// The LRC invariant a [`Violation`] broke.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvariantKind {
    /// A node's vector clock moved backwards on some component.
    ClockMonotonicity,
    /// A diff was applied without a covering interval record
    /// (no happens-before justification for the write).
    NoticeCoverage,
    /// `apply(between(twin, data), twin) != data` at interval close.
    DiffRoundTrip,
    /// More than one node held a lock's token at once.
    TokenUniqueness,
    /// A node arrived twice in one barrier episode, or an episode
    /// released without every node's arrival.
    BarrierEpoch,
}

/// One recorded invariant violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which invariant broke.
    pub kind: InvariantKind,
    /// Simulated time of the observation.
    pub at: SimTime,
    /// Human-readable specifics (node, page, stamps involved).
    pub detail: String,
}

/// One lock grant observed by the engine: `thread` became the holder
/// of `lock`. The sequence of records for a given lock is that lock's
/// critical-section order — exactly what the golden executor must
/// replay to reproduce order-sensitive (e.g. floating-point
/// accumulation) results.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GrantRecord {
    /// The granted lock.
    pub lock: LockId,
    /// The thread that entered the critical section.
    pub thread: ThreadId,
}

/// What the oracle observed in one run; present in
/// [`RunReport::oracle`](crate::RunReport::oracle) when the run's
/// [`OracleConfig`] enabled anything.
#[derive(Debug, Clone)]
pub struct OracleOutcome {
    /// Invariant violations, in observation order (empty on a
    /// coherent run).
    pub violations: Vec<Violation>,
    /// Every lock grant, in global grant order (captured runs only).
    pub lock_trace: Vec<GrantRecord>,
    /// The merged final memory image (captured runs only; empty
    /// otherwise).
    pub final_image: Vec<Page>,
    /// FNV-1a digest of the final memory image (computed whenever the
    /// oracle is enabled, even without capture).
    pub image_digest: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a hash of `bytes` (64-bit).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_extend(FNV_OFFSET, bytes)
}

/// Continues an FNV-1a hash `h` over `bytes`, for chained digests.
pub fn fnv1a_extend(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// FNV-1a digest of a whole memory image, page order significant.
pub fn digest_pages(pages: &[Page]) -> u64 {
    let mut h = FNV_OFFSET;
    for p in pages {
        h = fnv1a_extend(h, p.bytes());
    }
    h
}

/// Per-barrier arrival bookkeeping for the epoch-agreement check.
#[derive(Debug, Default)]
struct BarrierEpoch {
    epoch: u64,
    arrived: HashSet<NodeId>,
}

/// The engine-side oracle state: recorded violations, the lock-grant
/// trace, and the snapshots the per-event checks compare against.
#[derive(Debug)]
pub(crate) struct OracleState {
    pub cfg: OracleConfig,
    pub violations: Vec<Violation>,
    pub lock_trace: Vec<GrantRecord>,
    /// Last observed vector clock per node (monotonicity check).
    prev_vcs: Vec<VectorClock>,
    barriers: HashMap<BarrierId, BarrierEpoch>,
}

impl OracleState {
    pub fn new(cfg: OracleConfig, nodes: usize) -> Self {
        OracleState {
            cfg,
            violations: Vec::new(),
            lock_trace: Vec::new(),
            prev_vcs: (0..nodes).map(|_| VectorClock::new(nodes)).collect(),
            barriers: HashMap::new(),
        }
    }

    /// Records a lock grant (captured runs only — the trace exists to
    /// drive golden replay).
    pub fn record_grant(&mut self, lock: LockId, thread: ThreadId) {
        if self.cfg.capture {
            self.lock_trace.push(GrantRecord { lock, thread });
        }
    }

    /// Per-event sweep: vector clocks never regress, and no lock's
    /// token is held by two nodes at once.
    pub fn check_event(&mut self, nodes: &[NodeState], at: SimTime) {
        for node in nodes {
            let prev = &mut self.prev_vcs[node.id];
            if node.vc != *prev {
                if !node.vc.dominates(prev) {
                    self.violations.push(Violation {
                        kind: InvariantKind::ClockMonotonicity,
                        at,
                        detail: format!("node {} clock went from {} to {}", node.id, prev, node.vc),
                    });
                }
                prev.clone_from(&node.vc);
            }
        }
        let mut holders: HashMap<LockId, Vec<NodeId>> = HashMap::new();
        for node in nodes {
            for lock in node.locks.tokens_held() {
                holders.entry(lock).or_default().push(node.id);
            }
        }
        for (lock, held_by) in holders {
            if held_by.len() > 1 {
                self.violations.push(Violation {
                    kind: InvariantKind::TokenUniqueness,
                    at,
                    detail: format!("{lock:?} token held by nodes {held_by:?}"),
                });
            }
        }
    }

    /// A diff is about to be applied at node `n`; `covered` says
    /// whether the node knows an interval record for it.
    pub fn check_coverage(
        &mut self,
        covered: bool,
        n: NodeId,
        page: PageId,
        origin: NodeId,
        stamp: &VectorClock,
        at: SimTime,
    ) {
        if !covered {
            self.violations.push(Violation {
                kind: InvariantKind::NoticeCoverage,
                at,
                detail: format!(
                    "node {n} applied diff for {page} from node {origin} stamp {stamp} \
                     without a known interval"
                ),
            });
        }
    }

    /// An interval close produced `diff = between(twin, data)`;
    /// verify `apply(diff, twin) == data`.
    pub fn check_roundtrip(
        &mut self,
        twin: &Page,
        data: &Page,
        diff: &Diff,
        n: NodeId,
        page: PageId,
        at: SimTime,
    ) {
        let mut replayed = twin.clone();
        diff.apply(&mut replayed);
        if &replayed != data {
            self.violations.push(Violation {
                kind: InvariantKind::DiffRoundTrip,
                at,
                detail: format!(
                    "node {n} {page}: applying the encoded diff to the twin does not \
                     reproduce the page ({} runs)",
                    diff.run_count()
                ),
            });
        }
    }

    /// Node `from` arrived at barrier `id`.
    pub fn barrier_arrival(&mut self, id: BarrierId, from: NodeId, at: SimTime) {
        let ep = self.barriers.entry(id).or_default();
        if !ep.arrived.insert(from) {
            let (epoch, kind) = (ep.epoch, InvariantKind::BarrierEpoch);
            self.violations.push(Violation {
                kind,
                at,
                detail: format!("node {from} arrived twice at {id:?} epoch {epoch}"),
            });
        }
    }

    /// Barrier `id` released; every one of `expected` nodes must have
    /// arrived exactly once this episode.
    pub fn barrier_release(&mut self, id: BarrierId, expected: usize, at: SimTime) {
        let ep = self.barriers.entry(id).or_default();
        if ep.arrived.len() != expected {
            let (seen, epoch) = (ep.arrived.len(), ep.epoch);
            self.violations.push(Violation {
                kind: InvariantKind::BarrierEpoch,
                at,
                detail: format!(
                    "{id:?} epoch {epoch} released with {seen}/{expected} nodes arrived"
                ),
            });
        }
        ep.arrived.clear();
        ep.epoch += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Standard FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn page_digest_is_order_and_content_sensitive() {
        let mut a = Page::new();
        let mut b = Page::new();
        a.write_u64(0, 7);
        b.write_u64(8, 7);
        assert_ne!(
            digest_pages(&[a.clone(), b.clone()]),
            digest_pages(&[b.clone(), a.clone()])
        );
        assert_eq!(digest_pages(&[a.clone(), b.clone()]), digest_pages(&[a, b]));
    }

    #[test]
    fn clock_regression_is_caught() {
        let mut st = OracleState::new(OracleConfig::full(), 2);
        let mut nodes = vec![NodeState::new(0, 2, 1), NodeState::new(1, 2, 1)];
        nodes[0].vc.tick(0);
        nodes[0].vc.tick(0);
        st.check_event(&nodes, SimTime::ZERO);
        assert!(st.violations.is_empty());
        // Forge a regression: replace node 0's clock with a fresh one.
        nodes[0].vc = VectorClock::new(2);
        nodes[0].vc.tick(0);
        st.check_event(&nodes, SimTime::ZERO);
        assert_eq!(st.violations.len(), 1);
        assert_eq!(st.violations[0].kind, InvariantKind::ClockMonotonicity);
    }

    #[test]
    fn barrier_epoch_checks() {
        let mut st = OracleState::new(OracleConfig::full(), 2);
        let id = BarrierId(3);
        st.barrier_arrival(id, 0, SimTime::ZERO);
        st.barrier_arrival(id, 1, SimTime::ZERO);
        st.barrier_release(id, 2, SimTime::ZERO);
        assert!(st.violations.is_empty());
        // Second episode: duplicate arrival, then short release.
        st.barrier_arrival(id, 0, SimTime::ZERO);
        st.barrier_arrival(id, 0, SimTime::ZERO);
        st.barrier_release(id, 2, SimTime::ZERO);
        assert_eq!(st.violations.len(), 2);
        assert!(st
            .violations
            .iter()
            .all(|v| v.kind == InvariantKind::BarrierEpoch));
    }

    #[test]
    fn roundtrip_check_accepts_honest_diffs() {
        let twin = Page::new();
        let mut data = Page::new();
        data.write_u64(16, 99);
        let diff = Diff::between(&twin, &data);
        let mut st = OracleState::new(OracleConfig::full(), 1);
        st.check_roundtrip(&twin, &data, &diff, 0, PageId::new(0), SimTime::ZERO);
        assert!(st.violations.is_empty());
        // A forged (wrong) diff is rejected.
        let bogus = Diff::between(&data, &twin);
        st.check_roundtrip(&twin, &data, &bogus, 0, PageId::new(0), SimTime::ZERO);
        assert_eq!(st.violations.len(), 1);
        assert_eq!(st.violations[0].kind, InvariantKind::DiffRoundTrip);
    }

    #[test]
    fn grant_trace_only_recorded_when_capturing() {
        let mut st = OracleState::new(OracleConfig::off(), 1);
        st.record_grant(LockId(1), ThreadId(0));
        assert!(st.lock_trace.is_empty());
        let mut st = OracleState::new(OracleConfig::full(), 1);
        st.record_grant(LockId(1), ThreadId(0));
        assert_eq!(st.lock_trace.len(), 1);
    }
}
