//! Online adaptive prefetching: majority-trend stride detection with
//! feedback-driven throttling.
//!
//! The paper's §3 prefetching is static — programmer- or
//! compiler-inserted — and `PrefetchConfig::automatic` only replays
//! last-epoch faults at sync points (Bianchini-style history). This
//! module adds the third design point, in the mold of Leap (PAPERS.md):
//! watch the per-thread remote-fault stream through a sliding window,
//! detect the *majority trend* of the page-to-page deltas, and issue
//! prefetches ahead of the trend, with an adaptive depth/degree
//! controller fed by the §3.3 taxonomy the engine already computes per
//! fault:
//!
//! - **Detector** ([`StrideDetector`], one per application thread,
//!   reset at lock/barrier acquisitions so each (thread, lock-epoch)
//!   stream is scored independently): a window of the last `W` fault
//!   deltas with exact windowed majority — a delta is the trend while
//!   its count exceeds `W/2`. O(1) amortized per fault: one hash-map
//!   bump on entry, one on eviction.
//! - **Controller** ([`ThrottleController`], one per node): every
//!   `eval_period` classified faults it recomputes windowed §3.3
//!   coverage/accuracy/lateness (incrementally, from counters — never
//!   by querying the cost model) and moves the (degree, lead) operating
//!   point: ramp the degree when coverage is high and replies timely,
//!   push the lead window deeper when replies run late, halve the
//!   degree when accuracy collapses, and suppress issuing entirely for
//!   a cooldown when backoff bottoms out.
//!
//! Everything here is pure bookkeeping over observations the engine
//! hands in; simulated cost is charged by the engine at execution time
//! (`CostModel::prefetch_check` per observation, `prefetch_issue` per
//! message), never pre-queried. When [`AdaptiveConfig::enabled`] is
//! false no detector or controller is ever constructed, no trace event
//! or report field is emitted, and runs are byte-identical to builds
//! without this module (pinned by `tests/parallel_determinism.rs`).

use std::collections::{HashMap, VecDeque};

use crate::node::MissClass;

/// Tuning for the adaptive engine. Carried inside
/// [`PrefetchConfig`](crate::PrefetchConfig); invisible in config
/// debug output (and hence in report digests) while `enabled` is
/// false.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveConfig {
    /// Master switch. Off: zero state, zero observer effect.
    pub enabled: bool,
    /// Also honor application/compiler prefetch annotations (the
    /// `Adaptive+Static` combination mode). Plain adaptive ignores
    /// them — the point is needing no annotations at all.
    pub combine_static: bool,
    /// Sliding-window length `W` (in faults) per thread stream.
    pub window: usize,
    /// Degree (pages issued per detecting fault) at start and after a
    /// resume.
    pub base_degree: u32,
    /// Ramp ceiling for the degree.
    pub max_degree: u32,
    /// Look-ahead multiplier at start: the first candidate is
    /// `stride * lead` pages ahead of the faulting page.
    pub base_lead: u32,
    /// Ceiling for the lead when lateness keeps pushing it deeper.
    pub max_lead: u32,
    /// Classified faults per controller evaluation window.
    pub eval_period: u32,
    /// Minimum covered faults in a window before accuracy/lateness
    /// are trusted (below it the controller holds still).
    pub min_sample: u32,
    /// Windowed coverage at or above which the degree ramps (provided
    /// lateness is at or below `late_threshold`).
    pub ramp_coverage: f64,
    /// Windowed accuracy below which the degree is halved.
    pub backoff_accuracy: f64,
    /// Windowed lateness above which the lead deepens. Past twice
    /// this value — or once the lead is maxed — the degree backs off
    /// instead: the serving nodes are saturated and earlier issue
    /// only lengthens their queues.
    pub late_threshold: f64,
    /// Evaluation windows to sit out after a suppression.
    pub suppress_periods: u32,
}

impl AdaptiveConfig {
    /// Adaptive machinery disabled (the default everywhere).
    pub fn off() -> Self {
        AdaptiveConfig {
            enabled: false,
            ..AdaptiveConfig::on()
        }
    }

    /// The default operating point for `PrefetchMode::Adaptive`.
    pub fn on() -> Self {
        AdaptiveConfig {
            enabled: true,
            combine_static: false,
            window: 8,
            base_degree: 2,
            max_degree: 8,
            base_lead: 1,
            max_lead: 4,
            eval_period: 16,
            min_sample: 4,
            ramp_coverage: 0.6,
            backoff_accuracy: 0.2,
            late_threshold: 0.25,
            suppress_periods: 2,
        }
    }

    /// Adaptive plus static annotations (`Adaptive+Static`).
    pub fn combined() -> Self {
        AdaptiveConfig {
            combine_static: true,
            ..AdaptiveConfig::on()
        }
    }
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig::off()
    }
}

/// What [`StrideDetector::observe`] saw happen to the trend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrendChange {
    /// The trend is unchanged (possibly still absent).
    None,
    /// A majority stride emerged — the stream's first, or the same
    /// one re-forming after a blip.
    Detected(i64),
    /// A majority stride emerged that *differs* from the last one
    /// this stream had (a window flip: the access phase changed).
    /// Two simultaneous majorities are impossible, so a flip always
    /// passes through a short [`TrendChange::Lost`] gap first.
    Flipped(i64),
    /// The majority dissolved without a successor.
    Lost,
}

/// Windowed majority-trend stride detector for one thread stream.
///
/// Holds the last `window` page-to-page deltas of the thread's remote
/// fault stream and the exact majority element over that window, when
/// one exists (count strictly greater than `window / 2`). All
/// operations are O(1) amortized — `prefetch_detect` in
/// `crates/bench/benches/microbench.rs` pins the constant.
#[derive(Debug, Clone)]
pub struct StrideDetector {
    window: usize,
    last_page: Option<u64>,
    deltas: VecDeque<i64>,
    counts: HashMap<i64, u32>,
    trend: Option<i64>,
    /// Last majority value this stream ever had (survives `Lost`
    /// gaps; cleared on [`StrideDetector::reset`]) — distinguishes a
    /// re-detection from a genuine window flip.
    prev_trend: Option<i64>,
}

impl StrideDetector {
    /// A detector over windows of `window` deltas.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "detector window must be positive");
        StrideDetector {
            window,
            last_page: None,
            deltas: VecDeque::with_capacity(window),
            counts: HashMap::with_capacity(window + 1),
            trend: None,
            prev_trend: None,
        }
    }

    /// The current majority stride, if any. Zero never qualifies
    /// (refaulting the same page is not a trend worth chasing).
    pub fn trend(&self) -> Option<i64> {
        self.trend
    }

    /// Number of deltas currently in the window.
    pub fn len(&self) -> usize {
        self.deltas.len()
    }

    /// True when no delta has been observed since the last reset.
    pub fn is_empty(&self) -> bool {
        self.deltas.is_empty()
    }

    /// Feeds one remote fault (by page index) into the stream and
    /// returns what happened to the majority trend.
    pub fn observe(&mut self, page: u64) -> TrendChange {
        let delta = match self.last_page.replace(page) {
            Some(prev) => page as i64 - prev as i64,
            None => return TrendChange::None,
        };
        if self.deltas.len() == self.window {
            let evicted = self.deltas.pop_front().expect("window is non-empty");
            let c = self
                .counts
                .get_mut(&evicted)
                .expect("evicted delta is counted");
            *c -= 1;
            if *c == 0 {
                self.counts.remove(&evicted);
            }
        }
        self.deltas.push_back(delta);
        let count = self.counts.entry(delta).or_insert(0);
        *count += 1;
        // Exact windowed majority: only the just-bumped delta can have
        // crossed the threshold, and the previous trend (if different)
        // can only have lost count via the eviction above.
        let majority = u32::try_from(self.window / 2).expect("window fits in u32");
        let new_trend = if delta != 0 && *count > majority {
            Some(delta)
        } else {
            match self.trend {
                Some(t) if self.counts.get(&t).is_some_and(|c| *c > majority) => Some(t),
                _ => None,
            }
        };
        let change = match (self.trend, new_trend) {
            (a, b) if a == b => TrendChange::None,
            (None, Some(s)) => match self.prev_trend {
                Some(p) if p != s => TrendChange::Flipped(s),
                _ => TrendChange::Detected(s),
            },
            (Some(_), None) => TrendChange::Lost,
            // Two simultaneous majorities cannot coexist in one
            // window, so Some -> different Some is unreachable; the
            // equality arm already consumed Some -> same Some.
            _ => unreachable!("majority is unique per window"),
        };
        if let Some(s) = new_trend {
            self.prev_trend = Some(s);
        }
        self.trend = new_trend;
        change
    }

    /// Marks a stream boundary (lock/barrier epoch edge) without
    /// discarding evidence: the delta chain is broken — the next
    /// fault re-seeds it, so the cross-boundary jump never enters the
    /// window — but the accumulated deltas, counts, and trend
    /// survive. Real applications fault only a handful of pages
    /// between synchronization points; carrying the window across the
    /// edge is what lets a per-epoch stride (e.g. +1, +1 every
    /// barrier interval) ever reach a majority.
    pub fn break_chain(&mut self) {
        self.last_page = None;
    }

    /// Starts a new stream from nothing: the window empties and the
    /// next fault seeds a fresh delta chain.
    pub fn reset(&mut self) {
        self.last_page = None;
        self.deltas.clear();
        self.counts.clear();
        self.trend = None;
        self.prev_trend = None;
    }
}

/// A throttle state transition, for stats and tracing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThrottleChange {
    /// Coverage high, lateness low: degree doubled (capped).
    Ramp,
    /// Replies late: lead deepened so requests launch earlier.
    Deepen,
    /// Accuracy collapsed (or lateness with the lead maxed): degree
    /// halved.
    Backoff,
    /// Backoff bottomed out: issuing suppressed for the cooldown.
    Suppress,
    /// Cooldown expired: issuing resumes at the base operating point.
    Resume,
}

impl ThrottleChange {
    /// Wire code for `TraceEvent::AdaptiveThrottle`.
    pub fn code(self) -> u8 {
        match self {
            ThrottleChange::Ramp => 0,
            ThrottleChange::Deepen => 1,
            ThrottleChange::Backoff => 2,
            ThrottleChange::Suppress => 3,
            ThrottleChange::Resume => 4,
        }
    }
}

/// Per-node feedback controller over the (degree, lead) operating
/// point, driven by the engine's per-fault §3.3 classifications.
#[derive(Debug, Clone)]
pub struct ThrottleController {
    cfg: AdaptiveConfig,
    degree: u32,
    lead: u32,
    /// Remaining evaluation windows of suppression (0 = issuing).
    suppressed_for: u32,
    // Classification counters for the current evaluation window.
    faults: u32,
    hits: u32,
    too_late: u32,
    invalidated: u32,
    no_pf: u32,
}

impl ThrottleController {
    /// A controller at the configuration's base operating point.
    pub fn new(cfg: &AdaptiveConfig) -> Self {
        ThrottleController {
            degree: cfg.base_degree,
            lead: cfg.base_lead,
            cfg: cfg.clone(),
            suppressed_for: 0,
            faults: 0,
            hits: 0,
            too_late: 0,
            invalidated: 0,
            no_pf: 0,
        }
    }

    /// Pages to issue per detecting fault.
    pub fn degree(&self) -> u32 {
        self.degree
    }

    /// Look-ahead multiplier (first candidate is `stride * lead`
    /// pages out).
    pub fn lead(&self) -> u32 {
        self.lead
    }

    /// False while the controller is in a suppression cooldown — the
    /// engine must not issue adaptive prefetches then.
    pub fn may_issue(&self) -> bool {
        self.suppressed_for == 0
    }

    /// Feeds one classified remote fault. Every
    /// [`AdaptiveConfig::eval_period`] faults the operating point is
    /// re-evaluated; the transition taken, if any, is returned.
    pub fn observe(&mut self, class: MissClass) -> Option<ThrottleChange> {
        self.faults += 1;
        match class {
            MissClass::Hit => self.hits += 1,
            MissClass::TooLate => self.too_late += 1,
            MissClass::Invalidated => self.invalidated += 1,
            MissClass::NoPf => self.no_pf += 1,
        }
        if self.faults < self.cfg.eval_period {
            return None;
        }
        let change = self.evaluate();
        self.faults = 0;
        self.hits = 0;
        self.too_late = 0;
        self.invalidated = 0;
        self.no_pf = 0;
        change
    }

    /// One evaluation over the just-finished window.
    fn evaluate(&mut self) -> Option<ThrottleChange> {
        if self.suppressed_for > 0 {
            self.suppressed_for -= 1;
            if self.suppressed_for == 0 {
                self.degree = self.cfg.base_degree;
                self.lead = self.cfg.base_lead;
                return Some(ThrottleChange::Resume);
            }
            return None;
        }
        let covered = self.hits + self.too_late + self.invalidated;
        if covered < self.cfg.min_sample {
            return None;
        }
        let coverage = f64::from(covered) / f64::from(covered + self.no_pf);
        let accuracy = f64::from(self.hits) / f64::from(covered);
        let lateness = f64::from(self.too_late) / f64::from(covered);
        if accuracy < self.cfg.backoff_accuracy && lateness <= self.cfg.late_threshold {
            // Covered but neither served nor merely late: the window
            // is dominated by invalidations — wasted traffic.
            return Some(self.back_off());
        }
        if lateness > self.cfg.late_threshold {
            if lateness > 2.0 * self.cfg.late_threshold || self.lead >= self.cfg.max_lead {
                // Most covered faults arrive before their reply (or
                // the lead is already maxed): the serving nodes are
                // saturated, and issuing earlier only lengthens their
                // queues — issue less instead.
                return Some(self.back_off());
            }
            self.lead += 1;
            return Some(ThrottleChange::Deepen);
        }
        if coverage >= self.cfg.ramp_coverage
            && lateness <= self.cfg.late_threshold / 2.0
            && self.degree < self.cfg.max_degree
        {
            // Ramp only while replies also arrive comfortably early:
            // high coverage with creeping lateness means the current
            // depth is already at the fabric's capacity.
            self.degree = (self.degree * 2).min(self.cfg.max_degree);
            return Some(ThrottleChange::Ramp);
        }
        None
    }

    fn back_off(&mut self) -> ThrottleChange {
        if self.degree > 1 {
            self.degree /= 2;
            ThrottleChange::Backoff
        } else {
            self.suppressed_for = self.cfg.suppress_periods;
            ThrottleChange::Suppress
        }
    }
}

/// Run-level counters of the adaptive engine, reported (and pinned)
/// only when the mode is on — [`RunReport`](crate::RunReport) carries
/// them as an `Option` that stays `None` (and invisible to the report
/// digest) otherwise.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdaptiveStats {
    /// Majority strides that emerged from windows with no trend.
    pub detected_strides: u64,
    /// Majority strides that changed value mid-window.
    pub window_flips: u64,
    /// Degree ramps (coverage high, replies timely).
    pub ramps: u64,
    /// Lead deepenings (replies late, lead below its cap).
    pub deepens: u64,
    /// Degree backoffs (accuracy collapsed or lead saturated).
    pub backoffs: u64,
    /// Suppressions (backoff bottomed out; issuing paused).
    pub suppressions: u64,
    /// Resumes from suppression cooldowns.
    pub resumes: u64,
    /// Adaptive prefetch pages actually issued.
    pub issued: u64,
    /// Candidates cancelled before issue: already valid or in
    /// flight, outside the heap, or planned while suppressed.
    pub cancelled: u64,
}

impl AdaptiveStats {
    /// Folds a throttle transition into the counters.
    pub fn record(&mut self, change: ThrottleChange) {
        match change {
            ThrottleChange::Ramp => self.ramps += 1,
            ThrottleChange::Deepen => self.deepens += 1,
            ThrottleChange::Backoff => self.backoffs += 1,
            ThrottleChange::Suppress => self.suppressions += 1,
            ThrottleChange::Resume => self.resumes += 1,
        }
    }

    /// Total throttle transitions of any kind.
    pub fn throttle_transitions(&self) -> u64 {
        self.ramps + self.deepens + self.backoffs + self.suppressions + self.resumes
    }

    /// Accumulates another node's counters into this one (run-level
    /// reporting folds per-node stats).
    pub fn absorb(&mut self, other: &AdaptiveStats) {
        self.detected_strides += other.detected_strides;
        self.window_flips += other.window_flips;
        self.ramps += other.ramps;
        self.deepens += other.deepens;
        self.backoffs += other.backoffs;
        self.suppressions += other.suppressions;
        self.resumes += other.resumes;
        self.issued += other.issued;
        self.cancelled += other.cancelled;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(det: &mut StrideDetector, pages: &[u64]) {
        for &p in pages {
            det.observe(p);
        }
    }

    #[test]
    fn strided_stream_detects_the_planted_stride() {
        let mut d = StrideDetector::new(8);
        let pages: Vec<u64> = (0..20).map(|i| 100 + 3 * i).collect();
        let mut detected = None;
        for &p in &pages {
            if let TrendChange::Detected(s) = d.observe(p) {
                detected = Some(s);
            }
        }
        assert_eq!(detected, Some(3));
        assert_eq!(d.trend(), Some(3));
    }

    #[test]
    fn negative_strides_are_trends_too() {
        let mut d = StrideDetector::new(8);
        drive(&mut d, &[100, 93, 86, 79, 72, 65]);
        assert_eq!(d.trend(), Some(-7));
    }

    #[test]
    fn zero_delta_never_becomes_the_trend() {
        let mut d = StrideDetector::new(4);
        drive(&mut d, &[5, 5, 5, 5, 5, 5, 5]);
        assert_eq!(d.trend(), None);
    }

    #[test]
    fn random_walk_has_no_majority() {
        let mut d = StrideDetector::new(8);
        drive(&mut d, &[10, 11, 30, 2, 77, 40, 41, 90, 13]);
        assert_eq!(d.trend(), None);
    }

    #[test]
    fn flip_is_reported_when_the_majority_changes() {
        let mut d = StrideDetector::new(4);
        drive(&mut d, &[0, 2, 4, 6, 8]);
        assert_eq!(d.trend(), Some(2));
        // Deltas of 5 take over the window: the old majority first
        // dissolves (Lost), then the new one emerges as a Flip.
        let mut changes = Vec::new();
        for &p in &[13, 18, 23, 28, 33] {
            let c = d.observe(p);
            if c != TrendChange::None {
                changes.push(c);
            }
        }
        assert_eq!(changes, vec![TrendChange::Lost, TrendChange::Flipped(5)]);
        assert_eq!(d.trend(), Some(5));
    }

    #[test]
    fn same_stride_reemerging_is_a_detection_not_a_flip() {
        let mut d = StrideDetector::new(4);
        drive(&mut d, &[0, 2, 4, 6, 8]);
        assert_eq!(d.trend(), Some(2));
        // Two noise faults break the majority, then stride 2 resumes.
        let mut changes = Vec::new();
        for &p in &[100, 200, 202, 204, 206] {
            let c = d.observe(p);
            if c != TrendChange::None {
                changes.push(c);
            }
        }
        assert!(changes.contains(&TrendChange::Detected(2)), "{changes:?}");
        assert!(!changes.iter().any(|c| matches!(c, TrendChange::Flipped(_))));
    }

    #[test]
    fn reset_starts_a_fresh_stream() {
        let mut d = StrideDetector::new(4);
        drive(&mut d, &[0, 2, 4, 6, 8]);
        assert_eq!(d.trend(), Some(2));
        d.reset();
        assert!(d.is_empty());
        assert_eq!(d.trend(), None);
        // The first post-reset fault only seeds the chain: the 1000-page
        // jump from the pre-reset position is never a delta.
        assert_eq!(d.observe(1008), TrendChange::None);
        assert_eq!(d.len(), 0);
    }

    #[test]
    fn window_eviction_forgets_old_deltas() {
        let mut d = StrideDetector::new(4);
        drive(&mut d, &[0, 2, 4, 6, 8]);
        assert_eq!(d.trend(), Some(2));
        drive(&mut d, &[9, 17, 20, 100]);
        assert_eq!(d.len(), 4);
        assert_eq!(d.trend(), None, "the 2s have been evicted");
    }

    #[test]
    fn controller_ramps_on_high_coverage() {
        let cfg = AdaptiveConfig {
            eval_period: 8,
            ..AdaptiveConfig::on()
        };
        let mut c = ThrottleController::new(&cfg);
        assert_eq!(c.degree(), cfg.base_degree);
        let mut changes = Vec::new();
        for _ in 0..8 {
            if let Some(ch) = c.observe(MissClass::Hit) {
                changes.push(ch);
            }
        }
        assert_eq!(changes, vec![ThrottleChange::Ramp]);
        assert_eq!(c.degree(), cfg.base_degree * 2);
    }

    #[test]
    fn controller_deepens_then_backs_off_on_lateness() {
        let cfg = AdaptiveConfig {
            eval_period: 4,
            max_lead: 2,
            ..AdaptiveConfig::on()
        };
        let mut c = ThrottleController::new(&cfg);
        let mut changes = Vec::new();
        // Half the covered faults are late: above the threshold, but
        // not past the saturation point — deepen first, then (lead
        // maxed) back off, then bottom out.
        for i in 0..12 {
            let class = if i % 2 == 0 {
                MissClass::TooLate
            } else {
                MissClass::Hit
            };
            if let Some(ch) = c.observe(class) {
                changes.push(ch);
            }
        }
        assert_eq!(
            changes,
            vec![
                ThrottleChange::Deepen,
                ThrottleChange::Backoff,
                ThrottleChange::Suppress,
            ]
        );
        assert!(!c.may_issue());
    }

    #[test]
    fn severe_lateness_backs_off_without_deepening() {
        let cfg = AdaptiveConfig {
            eval_period: 4,
            ..AdaptiveConfig::on()
        };
        let mut c = ThrottleController::new(&cfg);
        // Every covered fault is late — the servers are saturated, so
        // the controller must shed load immediately, not walk the
        // lead up first.
        let mut changes = Vec::new();
        for _ in 0..8 {
            if let Some(ch) = c.observe(MissClass::TooLate) {
                changes.push(ch);
            }
        }
        assert_eq!(
            changes,
            vec![ThrottleChange::Backoff, ThrottleChange::Suppress]
        );
        assert_eq!(c.lead(), cfg.base_lead, "lead never deepened");
    }

    #[test]
    fn suppression_expires_into_a_resume_at_base_point() {
        let cfg = AdaptiveConfig {
            eval_period: 4,
            max_lead: 1,
            suppress_periods: 2,
            ..AdaptiveConfig::on()
        };
        let mut c = ThrottleController::new(&cfg);
        // base_degree 2 → one backoff to 1, then suppress.
        for _ in 0..8 {
            c.observe(MissClass::Invalidated);
        }
        assert!(!c.may_issue());
        let mut changes = Vec::new();
        for _ in 0..8 {
            if let Some(ch) = c.observe(MissClass::Invalidated) {
                changes.push(ch);
            }
        }
        assert_eq!(changes, vec![ThrottleChange::Resume]);
        assert!(c.may_issue());
        assert_eq!(c.degree(), cfg.base_degree);
        assert_eq!(c.lead(), cfg.base_lead);
    }

    #[test]
    fn uncovered_windows_hold_still() {
        let cfg = AdaptiveConfig {
            eval_period: 4,
            ..AdaptiveConfig::on()
        };
        let mut c = ThrottleController::new(&cfg);
        for _ in 0..16 {
            assert_eq!(c.observe(MissClass::NoPf), None);
        }
        assert_eq!(c.degree(), cfg.base_degree);
        assert!(c.may_issue());
    }

    #[test]
    fn stats_record_every_transition_kind() {
        let mut s = AdaptiveStats::default();
        for ch in [
            ThrottleChange::Ramp,
            ThrottleChange::Deepen,
            ThrottleChange::Backoff,
            ThrottleChange::Suppress,
            ThrottleChange::Resume,
        ] {
            s.record(ch);
        }
        assert_eq!(s.throttle_transitions(), 5);
        assert_eq!(
            (s.ramps, s.deepens, s.backoffs, s.suppressions, s.resumes),
            (1, 1, 1, 1, 1)
        );
    }

    #[test]
    fn throttle_codes_are_distinct() {
        let codes: Vec<u8> = [
            ThrottleChange::Ramp,
            ThrottleChange::Deepen,
            ThrottleChange::Backoff,
            ThrottleChange::Suppress,
            ThrottleChange::Resume,
        ]
        .iter()
        .map(|c| c.code())
        .collect();
        assert_eq!(codes, vec![0, 1, 2, 3, 4]);
    }
}
