//! Thread identity and per-node scheduling state.
//!
//! With multithreading (§4), each node runs several user-level
//! application threads; a switch occurs on long-latency events. The
//! scheduler here is deliberately simple — a FIFO ready queue, as in
//! the paper's Pthreads-based implementation — and is driven by the
//! engine, which decides *when* switches happen and charges their cost.

use std::collections::VecDeque;

use rsdsm_simnet::{NodeId, SimTime};

/// Global identity of an application thread.
///
/// Threads are numbered `0..total`; thread `t` runs on node
/// `t / threads_per_node` (block assignment, so sibling threads share
/// a node — the locality the paper's combined optimizations exploit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ThreadId(pub usize);

impl ThreadId {
    /// Position in the global thread numbering.
    pub fn index(self) -> usize {
        self.0
    }

    /// The node this thread runs on, given threads-per-node.
    pub fn node(self, threads_per_node: usize) -> NodeId {
        self.0 / threads_per_node
    }

    /// Position among the sibling threads of its node — the per-node
    /// stream index the adaptive prefetcher keys its stride detectors
    /// by (each sibling's fault stream is watched independently).
    pub fn local_index(self, threads_per_node: usize) -> usize {
        self.0 % threads_per_node
    }
}

/// Why a thread is blocked; determines idle attribution and whether a
/// switch is taken (combined mode switches only on sync, §5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockReason {
    /// Waiting for a remote page fetch.
    Memory,
    /// Waiting for a lock.
    Lock,
    /// Waiting at a barrier.
    Barrier,
}

impl BlockReason {
    /// Whether this is a synchronization stall.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn is_sync(self) -> bool {
        matches!(self, BlockReason::Lock | BlockReason::Barrier)
    }
}

/// Lifecycle state of one application thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadState {
    /// Currently dispatched on its node's CPU.
    Running,
    /// Runnable, waiting in the node's ready queue.
    Ready,
    /// Blocked on a long-latency event since the given time.
    Blocked(BlockReason, SimTime),
    /// Finished.
    Done,
}

/// Per-node scheduler: FIFO ready queue plus the identity of the
/// thread currently on the CPU.
#[derive(Debug, Clone, Default)]
pub struct Scheduler {
    ready: VecDeque<ThreadId>,
    running: Option<ThreadId>,
    last_run: Option<ThreadId>,
}

impl Scheduler {
    /// A scheduler with nothing to run.
    pub fn new() -> Self {
        Scheduler::default()
    }

    /// The thread currently on the CPU, if any.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn running(&self) -> Option<ThreadId> {
        self.running
    }

    /// The thread most recently on the CPU (used to decide whether a
    /// dispatch is a context *switch*); part of the scheduler's
    /// public surface for diagnostics.
    #[allow(dead_code)]
    pub fn last_run(&self) -> Option<ThreadId> {
        self.last_run
    }

    /// Appends a thread to the ready queue.
    pub fn make_ready(&mut self, tid: ThreadId) {
        debug_assert!(self.running != Some(tid), "running thread made ready");
        debug_assert!(!self.ready.contains(&tid), "thread already ready");
        self.ready.push_back(tid);
    }

    /// Puts a thread at the *front* of the ready queue — used when a
    /// pinned (no-switch) stall completes and the stalled thread must
    /// resume before any sibling.
    pub fn make_ready_front(&mut self, tid: ThreadId) {
        debug_assert!(self.running != Some(tid), "running thread made ready");
        debug_assert!(!self.ready.contains(&tid), "thread already ready");
        self.ready.push_front(tid);
    }

    /// True when a thread is waiting to run and the CPU is free.
    pub fn can_dispatch(&self) -> bool {
        self.running.is_none() && !self.ready.is_empty()
    }

    /// Takes the next ready thread and marks it running. Returns the
    /// thread and whether this dispatch is a context switch (a
    /// different thread than last ran).
    ///
    /// # Panics
    ///
    /// Panics if the CPU is occupied or no thread is ready.
    pub fn dispatch(&mut self) -> (ThreadId, bool) {
        assert!(self.running.is_none(), "CPU already occupied");
        let tid = self.ready.pop_front().expect("a ready thread");
        let is_switch = self.last_run.is_some_and(|last| last != tid);
        self.running = Some(tid);
        self.last_run = Some(tid);
        (tid, is_switch)
    }

    /// Releases the CPU (the running thread blocked or exited).
    ///
    /// # Panics
    ///
    /// Panics if `tid` is not the running thread.
    pub fn yield_cpu(&mut self, tid: ThreadId) {
        assert_eq!(self.running, Some(tid), "only the running thread can yield");
        self.running = None;
    }

    /// Number of threads waiting to run.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn ready_len(&self) -> usize {
        self.ready.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_to_node_mapping() {
        assert_eq!(ThreadId(0).node(4), 0);
        assert_eq!(ThreadId(3).node(4), 0);
        assert_eq!(ThreadId(4).node(4), 1);
        assert_eq!(ThreadId(7).node(1), 7);
        assert_eq!(ThreadId(5).index(), 5);
        assert_eq!(ThreadId(0).local_index(4), 0);
        assert_eq!(ThreadId(3).local_index(4), 3);
        assert_eq!(ThreadId(6).local_index(4), 2);
    }

    #[test]
    fn block_reason_classification() {
        assert!(!BlockReason::Memory.is_sync());
        assert!(BlockReason::Lock.is_sync());
        assert!(BlockReason::Barrier.is_sync());
    }

    #[test]
    fn fifo_dispatch_order() {
        let mut s = Scheduler::new();
        s.make_ready(ThreadId(1));
        s.make_ready(ThreadId(2));
        let (t, sw) = s.dispatch();
        assert_eq!(t, ThreadId(1));
        assert!(!sw, "first dispatch is not a switch");
        s.yield_cpu(ThreadId(1));
        let (t, sw) = s.dispatch();
        assert_eq!(t, ThreadId(2));
        assert!(sw, "different thread means a switch");
    }

    #[test]
    fn redispatch_of_same_thread_is_not_a_switch() {
        let mut s = Scheduler::new();
        s.make_ready(ThreadId(5));
        let _ = s.dispatch();
        s.yield_cpu(ThreadId(5));
        s.make_ready(ThreadId(5));
        let (_, sw) = s.dispatch();
        assert!(!sw);
    }

    #[test]
    fn can_dispatch_requires_idle_cpu_and_ready_thread() {
        let mut s = Scheduler::new();
        assert!(!s.can_dispatch());
        s.make_ready(ThreadId(0));
        assert!(s.can_dispatch());
        let _ = s.dispatch();
        assert!(!s.can_dispatch());
        assert_eq!(s.running(), Some(ThreadId(0)));
        assert_eq!(s.ready_len(), 0);
    }

    #[test]
    #[should_panic(expected = "CPU already occupied")]
    fn double_dispatch_panics() {
        let mut s = Scheduler::new();
        s.make_ready(ThreadId(0));
        s.make_ready(ThreadId(1));
        let _ = s.dispatch();
        let _ = s.dispatch();
    }
}
