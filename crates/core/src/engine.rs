//! The simulation engine: event loop, protocol handlers, and the
//! conductor that runs application threads in deterministic lockstep.
//!
//! The engine is the meeting point of every substrate: it owns the
//! event queue and network from `rsdsm-simnet`, drives the LRC
//! machinery from `rsdsm-protocol` inside each [`NodeState`], executes
//! application threads through the [`conductor`](crate::conductor)
//! handshake, and charges every software cost from the
//! [`CostModel`](crate::CostModel) to the per-node accounts that
//! become the paper's execution-time breakdowns.

use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread;

use rsdsm_protocol::{CachedDiff, Diff, Page, PageId, VectorClock, WriteNotice};
use rsdsm_simnet::{
    EventQueue, HeapQueue, Network, NodeId, PersistDevice, QueueBackend, Reliability, SimDuration,
    SimTime, Topology,
};

use crate::accounting::{Category, IdleReason};
use crate::barrier::BarrierManager;
use crate::checkpoint::{
    classify_slot, commit_region, payload_region, slot_for_seq, Checkpoint, CommitRecord,
    SlotState, SLOT_COUNT, SLOT_REGIONS,
};
use crate::conductor::{CallMsg, Charges, DsmCtx, Syscall};
use crate::config::{DirectoryPolicy, DsmConfig};
use crate::heap::Heap;
use crate::lock::{AcquireOutcome, ForwardOutcome, GrantOutcome, ReleaseOutcome, RemoteWaiter};
use crate::msg::{BarrierId, BasePayload, DiffPayload, IntervalRecord, LockId, Msg, MsgBody};
use crate::node::{AdaptiveNode, Fetch, MissClass, NodeMem, NodeState, SyncKey};
use crate::oracle::{digest_pages, OracleOutcome, OracleState};
use crate::prefetch::{AdaptiveStats, TrendChange};
use crate::program::{DsmProgram, VerifyCtx};
use crate::recovery::{FailureDetector, PeerStatus, RecoveryStats};
use crate::report::{fold_counters, NetSummary, RunReport, SimError};
use crate::thread::{BlockReason, ThreadId, ThreadState};
use crate::trace::{class, kind, Trace, TraceEvent, Tracer, NO_CAUSE, NO_THREAD};
use crate::transport::{Frame, Packet, Recv, TimeoutAction, Transport};

/// Events processed by the engine.
#[derive(Debug)]
enum Event {
    /// Initial activation of a thread.
    Start(ThreadId),
    /// A running thread's compute burst matured into its syscall.
    SyscallReady(ThreadId),
    /// A transport frame arrived at its destination.
    Arrival(Packet),
    /// A reliable frame's retransmission timer fired. Stale timers
    /// (frame already acked) are lazily discarded.
    RetryTimeout {
        /// The frame's sender.
        src: NodeId,
        /// The frame's destination.
        dst: NodeId,
        /// The frame's per-link sequence number.
        seq: u64,
    },
    /// A scheduled crash from the fault plan: the node's NIC goes
    /// dead and its local activity freezes.
    Crash {
        /// The crashing node.
        node: NodeId,
        /// `Some(outage)` for crash-restart, `None` for crash-stop
        /// (the node only comes back if recovery provisions a
        /// replacement).
        restart_after: Option<SimDuration>,
    },
    /// A crashed node rejoins the run (its outage plus the modeled
    /// restore/replay cost has elapsed).
    Restart(NodeId),
    /// Periodic failure-detector tick at one node: checks peers'
    /// leases and sends explicit heartbeats on idle links. Only
    /// scheduled when recovery is enabled.
    HeartbeatTick(NodeId),
    /// The manager's grace period after a suspicion expired; decide
    /// whether the suspect is really down.
    ConfirmFailure(NodeId),
    /// A scheduled network cut from the fault plan activates
    /// (index into `FaultPlan::partitions`): nodes outside the
    /// manager-side component freeze and are marked unreachable.
    PartitionStart(usize),
    /// The cut heals: frozen minority nodes get their rejoin
    /// (checkpoint restore + replay) scheduled.
    PartitionHeal(usize),
    /// A frozen minority node finishes reconciling and resumes.
    Rejoin(NodeId),
}

/// Engine-side handle to one application thread.
struct ThreadPeer {
    resume_tx: Sender<()>,
    call_rx: Receiver<CallMsg>,
    state: ThreadState,
    pending_syscall: Option<Syscall>,
    run_busy: rsdsm_simnet::SimDuration,
    last_block: Option<BlockReason>,
}

/// Consecutive manager heartbeat ticks with no other event before the
/// engine declares the run deadlocked. With recovery enabled the
/// recurring ticks keep the event queue non-empty, so the usual
/// queue-drained deadlock check never fires; this bounds the silence
/// instead.
const IDLE_TICK_LIMIT: u32 = 256;

/// Engine-side crash and recovery bookkeeping. The policy types
/// (config, detector, stats) live in [`crate::recovery`]; this is the
/// mutable state the event loop threads them through.
struct RecoveryState {
    /// Ground truth: which nodes are currently crashed.
    down: Vec<bool>,
    /// Count of `true` entries in `down` (fast path: zero almost
    /// always).
    downs: usize,
    /// When each down node crashed.
    crash_time: Vec<SimTime>,
    /// A scheduled [`Event::Restart`], if any, per node — guards
    /// against double-restarting a crash-restart victim that the
    /// failure detector also confirms.
    restart_at: Vec<Option<SimTime>>,
    /// Whether a [`Event::ConfirmFailure`] is already queued per node.
    confirm_pending: Vec<bool>,
    /// Events frozen because their node was down, with the time they
    /// would have fired; replayed time-shifted at restart.
    parked_events: Vec<(NodeId, SimTime, Event)>,
    /// Reliable frames that exhausted their retries toward a
    /// suspected peer, as (src, dst, seq); re-armed when the peer is
    /// cleared or rejoins.
    parked_frames: Vec<(NodeId, NodeId, u64)>,
    /// Per-link leases and peer beliefs.
    detector: FailureDetector,
    /// Last outbound frame per (src, dst) — explicit heartbeats are
    /// suppressed on links with recent traffic.
    last_sent: Vec<Vec<SimTime>>,
    /// Each node's accumulated busy time at its last checkpoint; the
    /// difference at crash time is the modeled replay cost.
    busy_at_ckpt: Vec<SimDuration>,
    /// Barrier releases processed per node (the checkpoint cadence
    /// counter).
    epochs_done: Vec<u32>,
    /// Latest checkpoint per node.
    ckpts: Vec<Option<Checkpoint>>,
    /// Per-node persistent devices ([`SLOT_REGIONS`] regions each);
    /// empty unless `recovery.persist.enabled`.
    pdevs: Vec<PersistDevice>,
    /// Monotonic persist sequence per node (stamps commit records so
    /// slot classification can order the A/B pair).
    persist_seq: Vec<u64>,
    /// Busy time at the checkpoint persisted in each slot — replay
    /// cost must be measured from whichever slot recovery actually
    /// restores.
    busy_at_slot: Vec<[SimDuration; SLOT_COUNT]>,
    /// Persisted-image size (payload + commit) backing each node's
    /// current restore source; drives the device-read restore cost.
    restore_bytes: Vec<u64>,
    /// Counters surfaced in [`RunReport`].
    stats: RecoveryStats,
    /// Consecutive idle manager ticks (see [`IDLE_TICK_LIMIT`]).
    idle_tick_rounds: u32,
    /// Whether any non-tick event ran since the last manager tick.
    progressed: bool,
    /// Nodes frozen on the minority side of an active cut: alive, but
    /// their local events and arrivals are parked until rejoin.
    frozen: Vec<bool>,
    /// Count of `true` entries in `frozen` (fast path: zero almost
    /// always).
    frozen_count: usize,
    /// When each frozen node froze (the cut instant).
    freeze_time: Vec<SimTime>,
    /// The manager-side view: which nodes sit behind a known cut.
    /// Suspicion against them must never escalate to `RecoveryStart`.
    unreachable: Vec<bool>,
}

impl RecoveryState {
    fn new(cfg: &DsmConfig) -> Self {
        let n = cfg.nodes;
        RecoveryState {
            down: vec![false; n],
            downs: 0,
            crash_time: vec![SimTime::ZERO; n],
            restart_at: vec![None; n],
            confirm_pending: vec![false; n],
            parked_events: Vec::new(),
            parked_frames: Vec::new(),
            detector: FailureDetector::new(n, cfg.recovery.lease_timeout),
            last_sent: vec![vec![SimTime::ZERO; n]; n],
            busy_at_ckpt: vec![SimDuration::ZERO; n],
            epochs_done: vec![0; n],
            ckpts: vec![None; n],
            pdevs: if cfg.recovery.persist.enabled {
                (0..n)
                    .map(|_| PersistDevice::new(SLOT_REGIONS, cfg.recovery.persist))
                    .collect()
            } else {
                Vec::new()
            },
            persist_seq: vec![0; n],
            busy_at_slot: vec![[SimDuration::ZERO; SLOT_COUNT]; n],
            restore_bytes: vec![0; n],
            stats: RecoveryStats::default(),
            idle_tick_rounds: 0,
            progressed: false,
            frozen: vec![false; n],
            frozen_count: 0,
            freeze_time: vec![SimTime::ZERO; n],
            unreachable: vec![false; n],
        }
    }
}

/// Statistics label for a frame dropped at a dead NIC.
fn frame_kind(frame: &Frame) -> &'static str {
    match frame {
        Frame::Data { body, .. } | Frame::Datagram { body } => body.kind(),
        Frame::Ack { .. } => "ack",
        Frame::Heartbeat => "hb",
    }
}

/// Takes a delivered body out of its shared frame: by move when this
/// was the last reference (the common unicast case once the sender's
/// retransmit buffer released it), by structural clone otherwise —
/// which is still cheap, because the page/diff payloads inside are
/// themselves `Arc`-shared.
fn unshare(body: Arc<MsgBody>) -> MsgBody {
    Arc::try_unwrap(body).unwrap_or_else(|shared| (*shared).clone())
}

/// Trace message-class code for a protocol body.
fn kind_code(body: &MsgBody) -> u8 {
    match body.kind() {
        "diff_request" => kind::DIFF_REQUEST,
        "diff_reply" => kind::DIFF_REPLY,
        "prefetch_request" => kind::PREFETCH_REQUEST,
        "prefetch_reply" => kind::PREFETCH_REPLY,
        "adaptive_request" => kind::ADAPTIVE_REQUEST,
        "adaptive_reply" => kind::ADAPTIVE_REPLY,
        "lock_request" => kind::LOCK_REQUEST,
        "lock_forward" => kind::LOCK_FORWARD,
        "lock_grant" => kind::LOCK_GRANT,
        "barrier_arrive" => kind::BARRIER_ARRIVE,
        "barrier_release" => kind::BARRIER_RELEASE,
        "suspect_report" => kind::SUSPECT_REPORT,
        _ => kind::RECOVERY_START,
    }
}

/// A configured simulation, ready to run programs.
///
/// See [`DsmProgram`] for a complete end-to-end example.
#[derive(Debug, Clone)]
pub struct Simulation {
    cfg: DsmConfig,
    backend: QueueBackend,
}

impl Simulation {
    /// Creates a simulation with the given configuration.
    pub fn new(cfg: DsmConfig) -> Self {
        Simulation {
            cfg,
            backend: QueueBackend::default(),
        }
    }

    /// The configuration this simulation runs with.
    pub fn config(&self) -> &DsmConfig {
        &self.cfg
    }

    /// Selects the event-queue implementation the engine runs on.
    ///
    /// The timing wheel ([`QueueBackend::Wheel`]) is the default;
    /// the binary-heap reference exists for differential testing.
    /// Both produce identical results — same pop order, same report
    /// and trace digests — so this knob only affects wall-clock
    /// throughput. The `RSDSM_QUEUE` environment variable
    /// (`wheel`/`heap`) overrides this setting globally.
    pub fn with_queue_backend(mut self, backend: QueueBackend) -> Self {
        self.backend = backend;
        self
    }

    /// The event-queue implementation this simulation runs on
    /// (before any `RSDSM_QUEUE` override).
    pub fn queue_backend(&self) -> QueueBackend {
        self.backend
    }

    /// Runs `app` to completion and reports every measurement.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if an application thread panics, the
    /// simulated-time safety limit is exceeded, or the protocol
    /// deadlocks (which indicates an application synchronization bug,
    /// e.g. mismatched barrier arrivals).
    pub fn run<P: DsmProgram>(&self, app: &P) -> Result<RunReport, SimError> {
        self.run_inner(app, false).map(|(report, _)| report)
    }

    /// Runs `app` like [`Simulation::run`] while recording a
    /// structured [`Trace`] of every simulated event. Tracing is
    /// observation only: the report (and its digest) is identical to
    /// an untraced run, and the trace itself is deterministic — same
    /// seed + config ⇒ same [`Trace::digest`].
    ///
    /// # Errors
    ///
    /// Exactly as [`Simulation::run`].
    pub fn run_traced<P: DsmProgram>(&self, app: &P) -> Result<(RunReport, Trace), SimError> {
        self.run_inner(app, true)
            .map(|(report, trace)| (report, trace.expect("traced run yields a trace")))
    }

    fn run_inner<P: DsmProgram>(
        &self,
        app: &P,
        traced: bool,
    ) -> Result<(RunReport, Option<Trace>), SimError> {
        let cfg = &self.cfg;
        let mut heap = Heap::new(cfg.nodes);
        let handles = app.allocate(&mut heap);
        if cfg.directory.enabled {
            // Directory-sharded homes: override the application's
            // layout with the configured static partition of the page
            // space (first-touch starts from the hash partition and
            // migrates at run time).
            let total = heap.page_count();
            for p in 0..total {
                let page = PageId::new(p as u32);
                heap.set_home(page, cfg.directory.policy.static_home(p, total, cfg.nodes));
            }
        }
        let total_pages = heap.page_count();
        let tpn = cfg.threads.threads_per_node;
        let total_threads = cfg.total_threads();

        let mem: Arc<Mutex<Vec<NodeMem>>> = Arc::new(Mutex::new(
            (0..cfg.nodes)
                .map(|n| {
                    let mut m =
                        NodeMem::new(total_pages, |p| heap.home(PageId::new(p as u32)) == n);
                    m.twin_log_on = traced;
                    m
                })
                .collect(),
        ));
        let panic_note: Arc<Mutex<Option<String>>> = Arc::new(Mutex::new(None));

        let mut peers = Vec::with_capacity(total_threads);
        let mut ctxs = Vec::with_capacity(total_threads);
        for t in 0..total_threads {
            let (resume_tx, resume_rx) = mpsc::channel();
            let (call_tx, call_rx) = mpsc::channel();
            peers.push(ThreadPeer {
                resume_tx,
                call_rx,
                state: ThreadState::Ready,
                pending_syscall: None,
                run_busy: rsdsm_simnet::SimDuration::ZERO,
                last_block: None,
            });
            ctxs.push(DsmCtx::new(
                ThreadId(t),
                t / tpn,
                total_threads,
                Arc::clone(&mem),
                cfg.costs.clone(),
                cfg.prefetch.clone(),
                resume_rx,
                call_tx,
            ));
        }

        let scope_result = thread::scope(|s| {
            for mut ctx in ctxs {
                let note = Arc::clone(&panic_note);
                let h = handles.clone();
                s.spawn(move || {
                    let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        ctx.wait_start();
                        app.run(&mut ctx, &h);
                        ctx.exit();
                    }));
                    if let Err(payload) = res {
                        let msg = payload
                            .downcast_ref::<String>()
                            .cloned()
                            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                            .unwrap_or_else(|| "<non-string panic>".to_string());
                        let mut slot = note.lock().expect("panic note mutex");
                        slot.get_or_insert(msg);
                    }
                });
            }
            let mut core = Core::new(cfg, heap, Arc::clone(&mem), peers, traced, self.backend);
            match core.run_loop() {
                Ok(finish) => {
                    core.finish_accounts(finish);
                    Ok((
                        finish,
                        core.heap,
                        core.nodes,
                        core.net,
                        core.transport,
                        core.oracle,
                        core.recov.stats,
                        core.events_processed,
                        core.tracer.finish(),
                    ))
                }
                Err(e) => {
                    // Dropping the core drops the resume channels,
                    // unblocking (and terminating) any stuck threads
                    // so the scope join below completes.
                    drop(core);
                    Err(e)
                }
            }
        });

        let (finish, heap, nodes, net, transport, oracle_state, recovery_stats, events, trace) =
            scope_result.map_err(|e| {
                if let SimError::AppThread(_) = e {
                    let note = panic_note.lock().expect("panic note mutex").take();
                    SimError::AppThread(note.unwrap_or_else(|| "unknown panic".to_string()))
                } else {
                    e
                }
            })?;
        if let Some(msg) = panic_note.lock().expect("panic note mutex").take() {
            return Err(SimError::AppThread(msg));
        }

        let mem_guard = mem.lock().expect("mem mutex");
        let pages = materialize(&heap, &nodes, &mem_guard);
        let oracle = oracle_state.cfg.enabled().then(|| OracleOutcome {
            violations: oracle_state.violations,
            lock_trace: oracle_state.lock_trace,
            image_digest: digest_pages(&pages),
            final_image: if oracle_state.cfg.capture {
                pages.clone()
            } else {
                Vec::new()
            },
        });
        let verified = app.verify(&VerifyCtx::new(pages), &handles);

        let node_breakdowns: Vec<_> = nodes.iter().map(|n| *n.account.breakdown()).collect();
        let mut breakdown = crate::accounting::Breakdown::new();
        for b in &node_breakdowns {
            breakdown.accumulate(b);
        }
        let (misses, locks, barriers, prefetch, mt, gc_passes, directory) = fold_counters(
            nodes
                .iter()
                .zip(mem_guard.iter())
                .map(|(n, m)| (n.counters, m.counters)),
        );
        let adaptive = cfg.prefetch.adaptive.enabled.then(|| {
            let mut total = AdaptiveStats::default();
            for node in &nodes {
                if let Some(ad) = &node.adaptive {
                    total.absorb(&ad.stats);
                }
            }
            total
        });

        let trace = traced.then_some(trace);
        Ok((
            RunReport {
                app: app.name(),
                config: cfg.clone(),
                total_time: finish.saturating_since(SimTime::ZERO),
                node_breakdowns,
                breakdown,
                verified,
                net: NetSummary::from_stats(net.stats()),
                misses,
                locks,
                barriers,
                prefetch,
                mt,
                transport: transport.summary(),
                fault_injection: net.fault_stats(),
                recovery: recovery_stats,
                gc_passes,
                directory,
                events_processed: events,
                oracle,
                trace: trace.as_ref().map(Trace::metrics),
                adaptive,
            },
            trace,
        ))
    }
}

/// The engine's event queue: the timing wheel by default, the
/// binary-heap reference when selected. Both implement the identical
/// earliest-time, FIFO-tie-broken contract (differentially tested in
/// simnet), so the choice can never change simulation results.
// The wheel variant is ~1 KB of wheel headers (slot storage is on the
// heap regardless). Exactly one Queue lives for a whole simulation,
// inline in the engine — boxing it would buy nothing and cost a
// pointer chase on every event push and pop.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
enum Queue {
    Wheel(EventQueue<Event>),
    Heap(HeapQueue<Event>),
}

impl Queue {
    fn with_capacity(backend: QueueBackend, capacity: usize) -> Self {
        match backend {
            QueueBackend::Wheel => Queue::Wheel(EventQueue::with_capacity(capacity)),
            QueueBackend::Heap => Queue::Heap(HeapQueue::with_capacity(capacity)),
        }
    }

    fn push(&mut self, at: SimTime, event: Event) {
        match self {
            Queue::Wheel(q) => q.push(at, event),
            Queue::Heap(q) => q.push(at, event),
        }
    }

    fn push_batch<I: IntoIterator<Item = (SimTime, Event)>>(&mut self, events: I) {
        match self {
            Queue::Wheel(q) => q.push_batch(events),
            Queue::Heap(q) => q.push_batch(events),
        }
    }

    fn pop(&mut self) -> Option<(SimTime, Event)> {
        match self {
            Queue::Wheel(q) => q.pop(),
            Queue::Heap(q) => q.pop(),
        }
    }
}

/// The running engine.
struct Core<'a> {
    cfg: &'a DsmConfig,
    /// Owned (not borrowed) so the directory layer can migrate page
    /// homes at run time; returned to `run_inner` so materialization
    /// reads the final home assignment.
    heap: Heap,
    /// Pages some node has touched (faulted on or been served); the
    /// first-touch migration window for a page closes when its flag
    /// sets. Unused (all false) when the directory layer is off.
    claimed: Vec<bool>,
    /// Events popped from the queue — the scaling suite's
    /// events-per-second numerator.
    events_processed: u64,
    mem: Arc<Mutex<Vec<NodeMem>>>,
    nodes: Vec<NodeState>,
    net: Network,
    transport: Transport<Arc<MsgBody>>,
    queue: Queue,
    threads: Vec<ThreadPeer>,
    barrier_mgr: BarrierManager,
    barrier_vcs: std::collections::HashMap<BarrierId, VectorClock>,
    /// The consistency oracle (invariant violations, lock-grant
    /// trace); inert unless the config enables it.
    oracle: OracleState,
    /// Crash/recovery bookkeeping; inert unless the fault plan
    /// schedules crashes or the config enables recovery.
    recov: RecoveryState,
    done: usize,
    finish: SimTime,
    /// Structured event tracing (see [`crate::trace`]); inert unless
    /// the run was started via [`Simulation::run_traced`].
    tracer: Tracer,
    /// Event tracing to stderr, enabled by the RSDSM_TRACE env var.
    trace: bool,
    /// Byte-range watch (RSDSM_WATCH="page,lo,hi"), for diagnostics.
    watch: Option<(usize, usize, usize)>,
}

/// The barrier manager lives on node 0, as in TreadMarks.
const MANAGER: NodeId = 0;

impl<'a> Core<'a> {
    fn new(
        cfg: &'a DsmConfig,
        heap: Heap,
        mem: Arc<Mutex<Vec<NodeMem>>>,
        threads: Vec<ThreadPeer>,
        traced: bool,
        backend: QueueBackend,
    ) -> Self {
        let tpn = cfg.threads.threads_per_node;
        // RSDSM_QUEUE=heap|wheel is the global escape hatch; it wins
        // over the programmatic selection. Harmless either way: both
        // backends are pop-for-pop identical.
        let backend = match std::env::var("RSDSM_QUEUE").as_deref() {
            Ok("heap") => QueueBackend::Heap,
            Ok("wheel") => QueueBackend::Wheel,
            _ => backend,
        };
        let mut queue = Queue::with_capacity(
            backend,
            threads.len() + cfg.faults.crashes.len() + cfg.nodes + 64,
        );
        queue.push_batch((0..threads.len()).map(|t| (SimTime::ZERO, Event::Start(ThreadId(t)))));
        assert!(
            !(cfg.recovery.enabled
                && cfg.recovery.checkpoint_every == 0
                && !cfg.faults.crashes.is_empty()),
            "a crash schedule with recovery enabled needs a checkpoint cadence: \
             --fault-crash without --checkpoint-every N (checkpoint_every == 0) \
             would silently recover from nothing"
        );
        assert!(
            !(cfg.recovery.persist.enabled && cfg.recovery.checkpoint_every == 0),
            "persistence without a checkpoint cadence has nothing to persist: \
             --persist needs --checkpoint-every N (checkpoint_every == 0)"
        );
        for crash in &cfg.faults.crashes {
            assert!(
                crash.node < cfg.nodes,
                "crash plan names node {} in a {}-node cluster",
                crash.node,
                cfg.nodes
            );
            assert_ne!(
                crash.node, MANAGER,
                "node 0 hosts the lock/barrier managers and the recovery \
                 coordinator; crashing it is not supported"
            );
            queue.push(
                crash.at,
                Event::Crash {
                    node: crash.node,
                    restart_after: crash.restart_after,
                },
            );
        }
        for (i, p) in cfg.faults.partitions.iter().enumerate() {
            assert!(
                cfg.recovery.enabled,
                "partition schedules need recovery enabled: freeze, suspicion \
                 gating, and checkpoint-based rejoin all live there"
            );
            assert!(
                cfg.faults.crashes.is_empty(),
                "combined crash and partition schedules are not supported"
            );
            assert!(
                !p.heal_after.is_zero(),
                "a partition needs a nonzero heal window"
            );
            let mut listed = vec![false; cfg.nodes];
            for g in &p.groups {
                for &n in g {
                    assert!(
                        n < cfg.nodes,
                        "partition plan names node {n} in a {}-node cluster",
                        cfg.nodes
                    );
                    assert!(!listed[n], "node {n} listed in two partition groups");
                    listed[n] = true;
                }
            }
            let mgr_group = p.group_of(MANAGER);
            let mgr_side = (0..cfg.nodes)
                .filter(|&n| p.group_of(n) == mgr_group)
                .count();
            assert!(
                mgr_side * 2 > cfg.nodes,
                "the manager-side component holds {mgr_side} of {} nodes; the \
                 quorum rule requires it to keep a strict majority",
                cfg.nodes
            );
            for q in &cfg.faults.partitions[..i] {
                assert!(
                    p.at >= q.heal_at() || q.at >= p.heal_at(),
                    "partition windows must not overlap"
                );
            }
            queue.push(p.at, Event::PartitionStart(i));
        }
        if cfg.recovery.enabled {
            for n in 0..cfg.nodes {
                queue.push(
                    SimTime::ZERO + cfg.recovery.heartbeat_every,
                    Event::HeartbeatTick(n),
                );
            }
        }
        let mut net = Network::new(cfg.nodes, cfg.net.clone());
        net.set_fault_plan(cfg.faults.clone());
        Core {
            cfg,
            claimed: vec![false; heap.page_count()],
            heap,
            events_processed: 0,
            mem,
            nodes: (0..cfg.nodes)
                .map(|n| {
                    let mut ns = NodeState::new(n, cfg.nodes, tpn);
                    if cfg.prefetch.adaptive.enabled {
                        ns.adaptive = Some(AdaptiveNode::new(&cfg.prefetch.adaptive, tpn));
                    }
                    ns
                })
                .collect(),
            net,
            transport: Transport::new(cfg.transport.clone()),
            queue,
            threads,
            barrier_mgr: BarrierManager::new(cfg.nodes),
            barrier_vcs: std::collections::HashMap::new(),
            oracle: OracleState::new(cfg.oracle.clone(), cfg.nodes),
            recov: RecoveryState::new(cfg),
            done: 0,
            finish: SimTime::ZERO,
            tracer: Tracer::new(traced, cfg.nodes as u32, tpn as u32),
            trace: std::env::var_os("RSDSM_TRACE").is_some(),
            watch: std::env::var("RSDSM_WATCH").ok().and_then(|v| {
                let mut it = v.split(',').map(|x| x.parse().ok());
                Some((it.next()??, it.next()??, it.next()??))
            }),
        }
    }

    fn tpn(&self) -> usize {
        self.cfg.threads.threads_per_node
    }

    // ------------------------------------------------------------------
    // Main loop
    // ------------------------------------------------------------------

    fn run_loop(&mut self) -> Result<SimTime, SimError> {
        let limit = SimTime::ZERO + self.cfg.max_sim_time;
        while self.done < self.threads.len() {
            let Some((now, event)) = self.queue.pop() else {
                return Err(SimError::Deadlock(self.describe_blocked()));
            };
            self.events_processed += 1;
            if now > limit {
                return Err(SimError::TimeLimit);
            }
            if !matches!(event, Event::HeartbeatTick(_)) {
                self.recov.progressed = true;
            }
            let Some(event) = self.intercept_crashed(now, event) else {
                continue;
            };
            self.tracer.begin_event();
            match event {
                Event::Start(tid) => {
                    let n = tid.node(self.tpn());
                    self.nodes[n].sched.make_ready(tid);
                    self.maybe_dispatch(n, now)?;
                }
                Event::SyscallReady(tid) => self.on_syscall_ready(tid, now)?,
                Event::Arrival(pkt) => self.on_arrival(pkt, now)?,
                Event::RetryTimeout { src, dst, seq } => {
                    self.on_retry_timeout(src, dst, seq, now)?
                }
                Event::Crash {
                    node,
                    restart_after,
                } => self.on_crash(node, restart_after, now),
                Event::Restart(node) => self.on_restart(node, now),
                Event::HeartbeatTick(node) => self.on_heartbeat_tick(node, now)?,
                Event::ConfirmFailure(node) => self.on_confirm_failure(node, now),
                Event::PartitionStart(idx) => self.on_partition_start(idx, now),
                Event::PartitionHeal(idx) => self.on_partition_heal(idx, now),
                Event::Rejoin(node) => self.on_rejoin(node, now),
            }
            if self.oracle.cfg.invariants {
                self.oracle.check_event(&self.nodes, now);
            }
            if self.trace {
                self.check_token_uniqueness(now);
            }
        }
        Ok(self.finish)
    }

    /// Debug invariant: at most one node holds any lock's token.
    fn check_token_uniqueness(&self, now: SimTime) {
        let mut holders: std::collections::HashMap<LockId, Vec<NodeId>> =
            std::collections::HashMap::new();
        for node in &self.nodes {
            for lock in node.locks.tokens_held() {
                holders.entry(lock).or_default().push(node.id);
            }
        }
        for (lock, nodes) in holders {
            if nodes.len() > 1 {
                eprintln!("[{now}] TOKEN DUPLICATED for {lock:?}: nodes {nodes:?}");
            }
        }
    }

    fn describe_blocked(&self) -> String {
        let blocked: Vec<String> = self
            .threads
            .iter()
            .enumerate()
            .filter_map(|(t, p)| match p.state {
                ThreadState::Blocked(reason, since) => {
                    Some(format!("thread {t} blocked on {reason:?} since {since}"))
                }
                _ => None,
            })
            .collect();
        format!(
            "event queue empty with {} threads stuck: {}",
            blocked.len(),
            blocked.join("; ")
        )
    }

    fn finish_accounts(&mut self, finish: SimTime) {
        for node in &mut self.nodes {
            node.account.finish(finish, IdleReason::Sync);
        }
    }

    // ------------------------------------------------------------------
    // Crash handling and recovery
    // ------------------------------------------------------------------

    /// Filters one popped event against the set of crashed and frozen
    /// nodes: local activity (thread events, retry timers) of a down
    /// or frozen node is parked for replay at restart/rejoin; frames
    /// arriving at a dead NIC are dropped and counted, while frames
    /// reaching a *frozen* node (intra-minority traffic — the NIC is
    /// alive, the node just is not making progress) are parked too.
    /// Frames *from* a recently-crashed node that were already on the
    /// wire still deliver. Returns `None` when the event was consumed.
    fn intercept_crashed(&mut self, now: SimTime, event: Event) -> Option<Event> {
        if self.recov.downs == 0 && self.recov.frozen_count == 0 {
            return Some(event);
        }
        match &event {
            Event::Start(tid) | Event::SyscallReady(tid) => {
                let n = tid.node(self.tpn());
                if self.recov.down[n] || self.recov.frozen[n] {
                    self.recov.parked_events.push((n, now, event));
                    return None;
                }
            }
            Event::Arrival(pkt) if self.recov.down[pkt.dst] => {
                self.net.note_crash_drop(frame_kind(&pkt.frame));
                return None;
            }
            Event::Arrival(pkt) if self.recov.frozen[pkt.dst] => {
                let dst = pkt.dst;
                self.recov.parked_events.push((dst, now, event));
                return None;
            }
            Event::RetryTimeout { src, .. } if self.recov.down[*src] || self.recov.frozen[*src] => {
                let src = *src;
                self.recov.parked_events.push((src, now, event));
                return None;
            }
            _ => {}
        }
        Some(event)
    }

    /// A scheduled crash fires: the NIC goes dead (subsequent frames
    /// to and from the node are dropped by the network) and the
    /// node's local activity freezes. For crash-restart faults the
    /// rejoin is scheduled immediately — outage plus, when recovery
    /// is on, the modeled restore and replay costs.
    fn on_crash(&mut self, x: NodeId, restart_after: Option<SimDuration>, now: SimTime) {
        if self.trace {
            eprintln!("[{now}] CRASH n{x} (restart_after {restart_after:?})");
        }
        self.tracer.emit(
            now,
            x as u32,
            NO_THREAD,
            NO_CAUSE,
            TraceEvent::Crash {
                restarts: restart_after.is_some(),
            },
        );
        self.net.set_node_down(x, true);
        self.recov.down[x] = true;
        self.recov.downs += 1;
        self.recov.crash_time[x] = now;
        self.recov.stats.crashes += 1;
        // With persistence, the crash instant decides what survives
        // on the device — and therefore which image (and cost) the
        // restart below is scheduled against.
        if self.cfg.recovery.persist.enabled {
            self.reload_from_device(x, now);
        }
        if let Some(outage) = restart_after {
            let at = if self.cfg.recovery.enabled {
                now + outage + self.restore_cost(x) + self.replay_cost(x)
            } else {
                // Recovery disabled: a pure outage. The run survives
                // only if the retry budget outlasts it.
                now + outage
            };
            self.recov.restart_at[x] = Some(at);
            self.queue.push(at, Event::Restart(x));
        }
    }

    /// A crashed node rejoins. The simulation models recovery as
    /// checkpoint restore plus deterministic replay: the replica
    /// re-executes from the last barrier-aligned checkpoint and —
    /// because the simulation is deterministic — arrives at exactly
    /// the state the victim had at the crash instant. The cost of
    /// doing so was charged when the restart was scheduled
    /// ([`Core::restore_cost`] + [`Core::replay_cost`]), so here the
    /// frozen state simply resumes, time-shifted by the outage.
    fn on_restart(&mut self, x: NodeId, now: SimTime) {
        if !self.recov.down[x] {
            return;
        }
        self.tracer
            .emit(now, x as u32, NO_THREAD, NO_CAUSE, TraceEvent::Restart);
        self.net.set_node_down(x, false);
        self.recov.down[x] = false;
        self.recov.downs -= 1;
        self.recov.restart_at[x] = None;
        self.recov.confirm_pending[x] = false;
        let shift = now.saturating_since(self.recov.crash_time[x]);
        self.recov.stats.recoveries += 1;
        self.recov.stats.recovery_time += shift;
        let parked = std::mem::take(&mut self.recov.parked_events);
        for (node, at, ev) in parked {
            if node == x {
                self.queue.push(at + shift, ev);
            } else {
                self.recov.parked_events.push((node, at, ev));
            }
        }
        // An in-progress compute burst resumes where it stopped.
        if let Some(burst) = &mut self.nodes[x].burst {
            burst.end += shift;
        }
        self.unpark_frames_to(x, now);
        self.recov.detector.clear(x, now);
        if self.trace {
            eprintln!("[{now}] RESTART n{x} after {shift}");
        }
    }

    /// Re-arms every parked reliable frame destined for `peer` (it
    /// rejoined, or its suspicion proved false).
    fn unpark_frames_to(&mut self, peer: NodeId, now: SimTime) {
        let parked = std::mem::take(&mut self.recov.parked_frames);
        for (src, dst, seq) in parked {
            if dst != peer {
                self.recov.parked_frames.push((src, dst, seq));
            } else if self.transport.reset_frame(src, dst, seq).is_some() {
                self.queue.push(now, Event::RetryTimeout { src, dst, seq });
            }
        }
    }

    /// One failure-detector tick at node `n`: re-arms itself, sends
    /// explicit heartbeats on idle links, and checks peer leases.
    /// The manager's tick doubles as the engine's liveness watchdog
    /// (the recurring ticks defeat the queue-drained deadlock check).
    fn on_heartbeat_tick(&mut self, n: NodeId, now: SimTime) -> Result<(), SimError> {
        let every = self.cfg.recovery.heartbeat_every;
        self.queue.push(now + every, Event::HeartbeatTick(n));
        if n == MANAGER {
            if self.recov.progressed {
                self.recov.idle_tick_rounds = 0;
            } else {
                self.recov.idle_tick_rounds += 1;
                if self.recov.idle_tick_rounds > IDLE_TICK_LIMIT {
                    return Err(SimError::Deadlock(self.describe_blocked()));
                }
            }
            self.recov.progressed = false;
        }
        // A frozen node ticks again once it rejoins; its detector
        // must not run while the quorum rule has it parked.
        if self.recov.down[n] || self.recov.frozen[n] {
            return Ok(());
        }
        for peer in 0..self.cfg.nodes {
            if peer == n {
                continue;
            }
            if !self.monitors(n, peer) {
                continue;
            }
            if self.recov.detector.status(n, peer) != PeerStatus::Down
                && self.recov.last_sent[n][peer] + every <= now
            {
                self.recov.last_sent[n][peer] = now;
                self.recov.stats.heartbeats_sent += 1;
                if self.trace {
                    eprintln!("[{now}] hb n{n} -> n{peer}");
                }
                self.charge(
                    n,
                    now,
                    self.cfg.costs.ack_process,
                    Category::DsmOverhead,
                    None,
                );
                let send_id = self.tracer.emit(
                    now,
                    n as u32,
                    NO_THREAD,
                    NO_CAUSE,
                    TraceEvent::MsgSend {
                        kind: kind::HEARTBEAT,
                        peer: peer as u32,
                        seq: 0,
                        bytes: self.cfg.transport.ack_bytes,
                        retransmit: false,
                    },
                );
                let outcome = self.net.send(
                    now,
                    n,
                    peer,
                    self.cfg.transport.ack_bytes,
                    Reliability::Droppable,
                    "hb",
                );
                let dup = outcome.dup_time();
                for arrival in outcome.arrival_time().into_iter().chain(dup) {
                    self.queue.push(
                        arrival,
                        Event::Arrival(Packet {
                            src: n,
                            dst: peer,
                            frame: Frame::Heartbeat,
                            cause: send_id,
                        }),
                    );
                }
            }
            // Nobody suspects the manager: it hosts the lock/barrier
            // managers and the recovery coordinator and is assumed
            // stable (the crash planner rejects node 0).
            if peer != MANAGER
                && self.recov.detector.status(n, peer) == PeerStatus::Alive
                && self.recov.detector.lease_expired(n, peer, now)
            {
                self.raise_suspicion(n, peer, now);
            }
        }
        Ok(())
    }

    /// Whether node `n` actively monitors `peer` (sends heartbeats
    /// and checks the lease). The full mesh monitors everyone —
    /// O(N²) frames per idle round. Hierarchical mode cuts that to
    /// O(N): members monitor their rack leader (the rack's first
    /// node), leaders monitor their members plus the manager, and the
    /// manager monitors the leaders plus its own rack. On a flat bus
    /// the manager doubles as the single leader. Safe because failure
    /// confirmation still resolves against ground truth at the
    /// manager; the hierarchy only changes who notices first.
    fn monitors(&self, n: NodeId, peer: NodeId) -> bool {
        if !self.cfg.recovery.hierarchical {
            return true;
        }
        let topo = self.cfg.net.topology;
        let leader_of = |node: NodeId| -> NodeId {
            match topo {
                Topology::FlatBus => MANAGER,
                Topology::RackSpine { rack_size, .. } => (node / rack_size) * rack_size,
            }
        };
        if n == MANAGER {
            return leader_of(peer) == peer || topo.same_rack(n, peer);
        }
        if leader_of(n) == n {
            return topo.same_rack(n, peer) || peer == MANAGER;
        }
        peer == leader_of(n)
    }

    /// Starts a suspicion episode: `observer` stopped hearing from
    /// `peer` (lease expiry or retry exhaustion). The manager decides
    /// failures, so a non-manager observer reports to it.
    fn raise_suspicion(&mut self, observer: NodeId, peer: NodeId, now: SimTime) {
        if !self.recov.detector.suspect(observer, peer) {
            return;
        }
        self.recov.stats.suspicions += 1;
        if !self.recov.down[peer] {
            self.recov.stats.false_suspicions += 1;
        }
        if self.trace {
            eprintln!("[{now}] n{observer} suspects n{peer}");
        }
        self.tracer.emit(
            now,
            observer as u32,
            NO_THREAD,
            NO_CAUSE,
            TraceEvent::Suspect { peer: peer as u32 },
        );
        if observer == MANAGER {
            self.schedule_confirm(peer, now);
        } else {
            let end = self.charge(
                observer,
                now,
                self.cfg.costs.msg_send,
                Category::DsmOverhead,
                None,
            );
            self.post(
                end,
                observer,
                MANAGER,
                MsgBody::SuspectReport { suspect: peer },
            );
        }
    }

    /// Queues a [`Event::ConfirmFailure`] for `victim` after the
    /// grace period, once per suspicion episode.
    fn schedule_confirm(&mut self, victim: NodeId, now: SimTime) {
        // The quorum rule, split-brain half: a node behind a known cut
        // is unreachable, not dead. Its suspicion stays parked until
        // the heal reconciles it — no confirmation, no RecoveryStart.
        if self.recov.unreachable[victim] {
            if self.trace {
                eprintln!("[{now}] suspicion of n{victim} parked: behind a known cut");
            }
            return;
        }
        if victim == MANAGER
            || self.recov.confirm_pending[victim]
            || self.recov.detector.status(MANAGER, victim) == PeerStatus::Down
        {
            return;
        }
        self.recov.confirm_pending[victim] = true;
        self.queue.push(
            now + self.cfg.recovery.confirm_grace,
            Event::ConfirmFailure(victim),
        );
    }

    /// The manager's confirmation deadline for a suspect. The
    /// simulator resolves the detector's uncertainty against ground
    /// truth — standing in for a direct probe round — so a suspect
    /// that is actually up is cleared (a false alarm), and a dead one
    /// triggers coordinated recovery: survivors are told via
    /// [`MsgBody::RecoveryStart`], and a replacement restart is
    /// scheduled unless the crash-restart plan already did.
    fn on_confirm_failure(&mut self, victim: NodeId, now: SimTime) {
        self.recov.confirm_pending[victim] = false;
        // A cut may have landed between the suspicion and this
        // deadline: the victim is unreachable, not dead. Leave its
        // state for the heal to reconcile.
        if self.recov.unreachable[victim] {
            return;
        }
        if !self.recov.down[victim] {
            self.recov.detector.clear(victim, now);
            self.unpark_frames_to(victim, now);
            return;
        }
        if self.recov.detector.status(MANAGER, victim) == PeerStatus::Down {
            return;
        }
        self.recov.detector.mark_down(MANAGER, victim);
        let epoch = self.recov.ckpts[victim].as_ref().map_or(0, |c| c.epoch);
        if self.trace {
            eprintln!("[{now}] n{victim} confirmed down; recovering from epoch {epoch}");
        }
        self.tracer.emit(
            now,
            MANAGER as u32,
            NO_THREAD,
            NO_CAUSE,
            TraceEvent::ConfirmDown {
                peer: victim as u32,
            },
        );
        let mut end = now;
        for p in 0..self.cfg.nodes {
            if p == MANAGER || p == victim || self.recov.down[p] {
                continue;
            }
            end = self.charge(
                MANAGER,
                end,
                self.cfg.costs.msg_send,
                Category::DsmOverhead,
                None,
            );
            self.post(end, MANAGER, p, MsgBody::RecoveryStart { victim, epoch });
        }
        if self.recov.restart_at[victim].is_none() {
            let at = now
                + self.cfg.recovery.restart_base
                + self.restore_cost(victim)
                + self.replay_cost(victim);
            self.recov.restart_at[victim] = Some(at);
            self.queue.push(at, Event::Restart(victim));
        }
    }

    /// A scheduled network cut activates. The network has been
    /// dropping cross-cut frames since the cut instant (it evaluates
    /// the static schedule at send time); here the engine applies the
    /// quorum rule: every node outside the manager-side component
    /// freezes — its local events and arrivals park, exactly as if it
    /// suspended itself on losing its majority — and the manager marks
    /// it unreachable so lease expiry cannot escalate to a false
    /// `RecoveryStart`. The majority side keeps running.
    fn on_partition_start(&mut self, idx: usize, now: SimTime) {
        let p = self.cfg.faults.partitions[idx].clone();
        let mgr_group = p.group_of(MANAGER);
        self.recov.stats.partitions += 1;
        if self.trace {
            eprintln!("[{now}] PARTITION cut {idx} (heals at {})", p.heal_at());
        }
        for x in 0..self.cfg.nodes {
            if p.group_of(x) == mgr_group || self.recov.down[x] || self.recov.frozen[x] {
                continue;
            }
            self.recov.frozen[x] = true;
            self.recov.frozen_count += 1;
            self.recov.freeze_time[x] = now;
            self.recov.unreachable[x] = true;
            self.recov.stats.partition_freezes += 1;
            self.recov.detector.mark_unreachable(MANAGER, x);
            self.tracer.emit(
                now,
                x as u32,
                NO_THREAD,
                NO_CAUSE,
                TraceEvent::PartitionFreeze,
            );
            if self.trace {
                eprintln!("[{now}] freeze n{x}: outside the majority component");
            }
        }
        self.queue.push(p.heal_at(), Event::PartitionHeal(idx));
    }

    /// The cut heals. Each frozen minority node reconciles through
    /// the checkpoint path: discard speculative state, reload the last
    /// barrier-aligned checkpoint, and deterministically replay up to
    /// the freeze instant — the same argument as crash recovery, so
    /// the rejoin cost is the same restore + replay model.
    fn on_partition_heal(&mut self, idx: usize, now: SimTime) {
        let p = self.cfg.faults.partitions[idx].clone();
        let mgr_group = p.group_of(MANAGER);
        self.tracer.emit(
            now,
            MANAGER as u32,
            NO_THREAD,
            NO_CAUSE,
            TraceEvent::PartitionHeal,
        );
        if self.trace {
            eprintln!("[{now}] PARTITION heal {idx}");
        }
        for x in 0..self.cfg.nodes {
            if p.group_of(x) == mgr_group || !self.recov.frozen[x] {
                continue;
            }
            let at = now + self.restore_cost(x) + self.replay_cost(x);
            self.queue.push(at, Event::Rejoin(x));
        }
    }

    /// A frozen node finishes reconciling and resumes, mirroring
    /// [`Core::on_restart`]: parked local events and arrivals replay
    /// time-shifted by the freeze duration, parked frames toward it
    /// re-arm, and every observer's belief about it resets to alive.
    fn on_rejoin(&mut self, x: NodeId, now: SimTime) {
        if !self.recov.frozen[x] {
            return;
        }
        // A later cut isolated the node again before this rejoin
        // matured; that cut's heal schedules a fresh one.
        let still_cut = self
            .cfg
            .faults
            .partitions
            .iter()
            .any(|p| p.active_at(now) && p.group_of(x) != p.group_of(MANAGER));
        if still_cut {
            return;
        }
        self.tracer.emit(
            now,
            x as u32,
            NO_THREAD,
            NO_CAUSE,
            TraceEvent::PartitionRejoin,
        );
        self.recov.frozen[x] = false;
        self.recov.frozen_count -= 1;
        self.recov.unreachable[x] = false;
        let shift = now.saturating_since(self.recov.freeze_time[x]);
        self.recov.stats.partition_rejoins += 1;
        self.recov.stats.partition_reconcile_time += shift;
        let parked = std::mem::take(&mut self.recov.parked_events);
        for (node, at, ev) in parked {
            if node == x {
                self.queue.push(at + shift, ev);
            } else {
                self.recov.parked_events.push((node, at, ev));
            }
        }
        // An in-progress compute burst resumes where it stopped.
        if let Some(burst) = &mut self.nodes[x].burst {
            burst.end += shift;
        }
        self.unpark_frames_to(x, now);
        self.recov.detector.clear(x, now);
        if self.trace {
            eprintln!("[{now}] REJOIN n{x} after {shift}");
        }
    }

    /// Modeled time to reload `x`'s last checkpoint on a replacement.
    /// With persistence on, the cost is reading the persisted image
    /// back at the device's read bandwidth; otherwise the flat
    /// per-page model.
    fn restore_cost(&self, x: NodeId) -> SimDuration {
        if self.cfg.recovery.persist.enabled {
            return self
                .cfg
                .recovery
                .persist
                .read_time(self.recov.restore_bytes[x] as usize);
        }
        let pages = self.recov.ckpts[x]
            .as_ref()
            .map_or(0, |c| c.pages.len() as u64);
        self.cfg.recovery.restore_per_page * pages
    }

    /// Modeled time to re-execute `x`'s work since its last
    /// checkpoint (deterministic replay reaches the crash-instant
    /// state; see [`Core::on_restart`]).
    fn replay_cost(&self, x: NodeId) -> SimDuration {
        self.nodes[x].account.breakdown()[Category::Busy].saturating_sub(self.recov.busy_at_ckpt[x])
    }

    /// Captures node `n`'s barrier-aligned checkpoint and returns the
    /// time the node resumes. Without persistence the capture
    /// deliberately charges no CPU time and consumes no randomness:
    /// the model treats the snapshot as copy-on-write work off the
    /// critical path, so a crash-free run's event timeline — and its
    /// `RunReport` digest, recovery fields aside — is identical with
    /// checkpointing on or off. With persistence on, the snapshot is
    /// additionally written through the durable two-slot commit
    /// protocol and the node stalls for the modeled persist cost.
    fn take_checkpoint(&mut self, n: NodeId, at: SimTime) -> SimTime {
        let epoch = self.recov.epochs_done[n];
        let ckpt = {
            let mem = self.mem.lock().expect("mem mutex");
            Checkpoint::capture(n as u32, epoch, &self.nodes[n], &mem[n])
        };
        let bytes = ckpt.encode().len() as u64;
        self.tracer.emit(
            at,
            n as u32,
            NO_THREAD,
            NO_CAUSE,
            TraceEvent::CheckpointTaken {
                epoch,
                bytes: bytes as u32,
            },
        );
        self.recov.stats.checkpoints_taken += 1;
        self.recov.stats.checkpoint_bytes += bytes;
        self.recov.busy_at_ckpt[n] = self.nodes[n].account.breakdown()[Category::Busy];
        let end = if self.cfg.recovery.persist.enabled {
            self.persist_checkpoint(n, &ckpt, at)
        } else {
            at
        };
        self.recov.ckpts[n] = Some(ckpt);
        if self.trace {
            eprintln!("checkpoint n{n} epoch {epoch} ({bytes} bytes)");
        }
        end
    }

    /// Writes `ckpt` to node `n`'s persistent device through the
    /// detectably recoverable A/B protocol: segmented payload into
    /// the epoch's slot, flush, fence; then the commit record, flush,
    /// fence. The drain runs at the device's write bandwidth in the
    /// background, but the protocol is synchronous at the barrier:
    /// the node stalls until the commit fence completes, which is
    /// exactly the durability overhead the model is after. Returns
    /// the stall end.
    fn persist_checkpoint(&mut self, n: NodeId, ckpt: &Checkpoint, at: SimTime) -> SimTime {
        let payload = ckpt.encode_segmented();
        self.recov.persist_seq[n] += 1;
        let seq = self.recov.persist_seq[n];
        let slot = slot_for_seq(seq);
        let commit = CommitRecord::for_payload(ckpt.epoch, seq, &payload).encode();
        let image_bytes = (payload.len() + commit.len()) as u64;
        let committed = {
            let dev = &mut self.recov.pdevs[n];
            dev.write(payload_region(slot), 0, &payload);
            let drained = dev.flush(at);
            let durable = dev.fence(drained);
            // The commit record is ordered strictly after the payload
            // fence: a crash can tear one or the other, never leave a
            // fresh commit over a half-written payload.
            dev.write(commit_region(slot), 0, &commit);
            let drained = dev.flush(durable);
            dev.fence(drained)
        };
        self.recov.stats.persist_bytes += image_bytes;
        self.recov.stats.flushes += 2;
        self.recov.stats.fences += 2;
        self.recov.busy_at_slot[n][slot] = self.recov.busy_at_ckpt[n];
        self.recov.restore_bytes[n] = image_bytes;
        self.tracer.emit(
            at,
            n as u32,
            NO_THREAD,
            NO_CAUSE,
            TraceEvent::PersistCommit {
                epoch: ckpt.epoch,
                bytes: image_bytes as u32,
            },
        );
        if self.trace {
            eprintln!(
                "persist n{n} epoch {} slot {slot} seq {seq} ({image_bytes} bytes, done {committed})",
                ckpt.epoch
            );
        }
        self.charge(
            n,
            at,
            committed.saturating_since(at),
            Category::DsmOverhead,
            None,
        )
    }

    /// Applies crash semantics to `x`'s persistent device at the
    /// crash instant — the store buffer is lost and the in-flight
    /// sector tears — then classifies both slots and makes the best
    /// committed image the node's restore source. Torn slots count as
    /// `torn_discards`; restoring an older image than the newest
    /// persist attempted counts as a `slot_fallback`.
    fn reload_from_device(&mut self, x: NodeId, now: SimTime) {
        let states: Vec<SlotState> = {
            let dev = &mut self.recov.pdevs[x];
            dev.crash(now);
            (0..SLOT_COUNT)
                .map(|s| classify_slot(dev.read(payload_region(s)), dev.read(commit_region(s))))
                .collect()
        };
        let torn = states
            .iter()
            .filter(|s| matches!(s, SlotState::Torn))
            .count() as u64;
        self.recov.stats.torn_discards += torn;
        let best = states
            .into_iter()
            .enumerate()
            .filter_map(|(slot, s)| match s {
                SlotState::Committed { seq, ckpt } => Some((seq, slot, ckpt)),
                _ => None,
            })
            .max_by_key(|&(seq, ..)| seq);
        match best {
            Some((seq, slot, ckpt)) => {
                if seq < self.recov.persist_seq[x] {
                    self.recov.stats.slot_fallbacks += 1;
                }
                if self.trace {
                    eprintln!(
                        "[{now}] n{x} device: restore epoch {} from slot {slot} \
                         (seq {seq} of {}, {torn} torn)",
                        ckpt.epoch, self.recov.persist_seq[x]
                    );
                }
                self.recov.restore_bytes[x] =
                    (ckpt.encode_segmented().len() + crate::checkpoint::COMMIT_LEN) as u64;
                self.recov.busy_at_ckpt[x] = self.recov.busy_at_slot[x][slot];
                self.recov.ckpts[x] = Some(*ckpt);
            }
            None => {
                // Nothing committed yet (the crash predates the first
                // durable checkpoint): recovery restarts from scratch.
                if self.trace {
                    eprintln!("[{now}] n{x} device: no committed slot ({torn} torn)");
                }
                self.recov.restore_bytes[x] = 0;
                self.recov.busy_at_ckpt[x] = SimDuration::ZERO;
                self.recov.ckpts[x] = None;
            }
        }
    }

    /// Records an outbound frame on (src, dst) so the next heartbeat
    /// tick skips the explicit heartbeat for that link.
    fn note_sent(&mut self, src: NodeId, dst: NodeId, at: SimTime) {
        if self.cfg.recovery.enabled {
            let slot = &mut self.recov.last_sent[src][dst];
            *slot = (*slot).max(at);
        }
    }

    // ------------------------------------------------------------------
    // CPU accounting
    // ------------------------------------------------------------------

    /// Charges `dur` of CPU work on node `n` starting around `at`.
    /// If an application burst is in progress, the work preempts it
    /// (interrupt-driven servicing): the burst is pushed back and the
    /// work completes at `at + dur`. Otherwise the work queues on the
    /// CPU normally, attributing any idle gap to `idle`.
    fn charge(
        &mut self,
        n: NodeId,
        at: SimTime,
        dur: rsdsm_simnet::SimDuration,
        cat: Category,
        idle: Option<IdleReason>,
    ) -> SimTime {
        let node = &mut self.nodes[n];
        if let Some(burst) = &mut node.burst {
            if at < burst.end + burst.penalty {
                let cpu_free = node.account.cpu_free();
                node.account.consume(cpu_free, dur, cat, None);
                burst.penalty += dur;
                return at + dur;
            }
        }
        node.account.consume(at, dur, cat, idle)
    }

    /// Why node `n`'s CPU is idle right now, judged by its blocked
    /// threads (memory takes precedence over sync).
    fn idle_reason(&self, n: NodeId) -> Option<IdleReason> {
        let tpn = self.tpn();
        let mut reason = None;
        for t in n * tpn..(n + 1) * tpn {
            if let ThreadState::Blocked(r, _) = self.threads[t].state {
                if r == BlockReason::Memory {
                    return Some(IdleReason::Memory);
                }
                reason = Some(IdleReason::Sync);
            }
        }
        reason
    }

    // ------------------------------------------------------------------
    // Thread scheduling
    // ------------------------------------------------------------------

    fn maybe_dispatch(&mut self, n: NodeId, now: SimTime) -> Result<(), SimError> {
        if self.nodes[n].burst.is_some()
            || self.nodes[n].pinned.is_some()
            || !self.nodes[n].sched.can_dispatch()
        {
            return Ok(());
        }
        let (tid, is_switch) = self.nodes[n].sched.dispatch();
        let idle = self.threads[tid.0].last_block.map(|r| match r {
            BlockReason::Memory => IdleReason::Memory,
            _ => IdleReason::Sync,
        });
        let mut at = now;
        if is_switch {
            self.nodes[n].counters.switches += 1;
            self.tracer.emit(
                now,
                n as u32,
                tid.0 as u32,
                NO_CAUSE,
                TraceEvent::ThreadSwitch { to: tid.0 as u32 },
            );
            at = self.charge(
                n,
                now,
                self.cfg.costs.context_switch,
                Category::MtOverhead,
                idle,
            );
        }
        self.threads[tid.0].state = ThreadState::Running;
        self.run_thread(tid, at, idle)
    }

    /// Resumes thread `tid`, receives its next syscall, books its
    /// accumulated charges as a burst starting at `at`, and schedules
    /// the syscall's maturity.
    fn run_thread(
        &mut self,
        tid: ThreadId,
        at: SimTime,
        idle: Option<IdleReason>,
    ) -> Result<(), SimError> {
        let n = tid.node(self.tpn());
        let call = {
            let peer = &mut self.threads[tid.0];
            peer.resume_tx
                .send(())
                .map_err(|_| SimError::AppThread(String::new()))?;
            peer.call_rx
                .recv()
                .map_err(|_| SimError::AppThread(String::new()))?
        };
        if self.tracer.is_on() {
            // Twins are created inside the conductor while the app
            // thread runs its burst; the log is drained here so their
            // records land in the engine's deterministic event order.
            let twins = {
                let mut mem = self.mem.lock().expect("mem mutex");
                std::mem::take(&mut mem[n].twin_log)
            };
            for page in twins {
                self.tracer.emit(
                    at,
                    n as u32,
                    tid.0 as u32,
                    NO_CAUSE,
                    TraceEvent::TwinCreate {
                        page: page.index() as u32,
                    },
                );
            }
        }
        let Charges {
            busy,
            dsm,
            prefetch,
        } = call.charges;
        let mut end = self.charge(n, at, busy, Category::Busy, idle);
        if !dsm.is_zero() {
            end = self.charge(n, end, dsm, Category::DsmOverhead, None);
        }
        if !prefetch.is_zero() {
            end = self.charge(n, end, prefetch, Category::PrefetchOverhead, None);
        }
        let peer = &mut self.threads[tid.0];
        peer.run_busy += busy;
        peer.pending_syscall = Some(call.syscall);
        self.nodes[n].burst = Some(crate::node::Burst {
            tid,
            end,
            penalty: rsdsm_simnet::SimDuration::ZERO,
        });
        self.queue.push(end, Event::SyscallReady(tid));
        Ok(())
    }

    fn on_syscall_ready(&mut self, tid: ThreadId, now: SimTime) -> Result<(), SimError> {
        let n = tid.node(self.tpn());
        {
            let node = &mut self.nodes[n];
            let burst = node.burst.as_mut().expect("burst for maturing syscall");
            assert_eq!(burst.tid, tid, "burst/thread mismatch");
            if !burst.penalty.is_zero() {
                // Interrupt servicing pushed the burst back; try again
                // at the extended end.
                burst.end += burst.penalty;
                burst.penalty = rsdsm_simnet::SimDuration::ZERO;
                let end = burst.end;
                self.queue.push(end, Event::SyscallReady(tid));
                return Ok(());
            }
            node.burst = None;
        }
        let syscall = self.threads[tid.0]
            .pending_syscall
            .take()
            .expect("pending syscall");
        self.handle_syscall(tid, n, syscall, now)
    }

    /// Blocks `tid` with `reason`, recording its run length and
    /// triggering a context switch when the configuration allows one
    /// for this kind of stall.
    fn block(
        &mut self,
        tid: ThreadId,
        n: NodeId,
        reason: BlockReason,
        now: SimTime,
    ) -> Result<(), SimError> {
        let peer = &mut self.threads[tid.0];
        self.nodes[n].counters.run_length_sum += peer.run_busy;
        self.nodes[n].counters.run_length_count += 1;
        peer.run_busy = rsdsm_simnet::SimDuration::ZERO;
        peer.state = ThreadState::Blocked(reason, now);
        peer.last_block = Some(reason);
        self.nodes[n].sched.yield_cpu(tid);
        let switch_allowed = if reason == BlockReason::Memory {
            self.cfg.threads.switch_on_memory
        } else {
            self.cfg.threads.switch_on_sync
        };
        if switch_allowed {
            self.maybe_dispatch(n, now)?;
        } else if self.cfg.threads.is_multithreaded() {
            self.nodes[n].pinned = Some(tid);
        }
        Ok(())
    }

    /// Wakes a blocked thread, accounting its stall.
    fn wake(&mut self, tid: ThreadId, now: SimTime) -> Result<(), SimError> {
        let n = tid.node(self.tpn());
        let peer = &mut self.threads[tid.0];
        let ThreadState::Blocked(reason, since) = peer.state else {
            panic!("waking thread {tid:?} that is not blocked");
        };
        let stall = now.saturating_since(since);
        let counters = &mut self.nodes[n].counters;
        match reason {
            BlockReason::Memory => counters.miss_stall += stall,
            BlockReason::Lock => {
                counters.lock_stall += stall;
                counters.lock_waits += 1;
            }
            BlockReason::Barrier => {
                counters.barrier_stall += stall;
                counters.barrier_waits += 1;
            }
        }
        peer.state = ThreadState::Ready;
        if self.nodes[n].pinned == Some(tid) {
            self.nodes[n].pinned = None;
            self.nodes[n].sched.make_ready_front(tid);
        } else {
            self.nodes[n].sched.make_ready(tid);
        }
        self.maybe_dispatch(n, now)
    }

    // ------------------------------------------------------------------
    // Syscall handling
    // ------------------------------------------------------------------

    fn handle_syscall(
        &mut self,
        tid: ThreadId,
        n: NodeId,
        syscall: Syscall,
        now: SimTime,
    ) -> Result<(), SimError> {
        if self.trace {
            eprintln!("[{now}] syscall t{} n{n}: {syscall:?}", tid.0);
        }
        match syscall {
            Syscall::Exit => {
                let peer = &mut self.threads[tid.0];
                peer.state = ThreadState::Done;
                self.nodes[n].counters.run_length_sum += peer.run_busy;
                self.nodes[n].counters.run_length_count += 1;
                self.done += 1;
                self.finish = self.finish.max(now);
                self.nodes[n].sched.yield_cpu(tid);
                self.maybe_dispatch(n, now)
            }
            Syscall::Fault { page, write } => self.handle_fault(tid, n, page, write, now),
            Syscall::Acquire(lock) => self.handle_acquire(tid, n, lock, now),
            Syscall::Release(lock) => self.handle_release(tid, n, lock, now),
            Syscall::Barrier(id) => self.handle_barrier_arrive(tid, n, id, now),
            Syscall::Prefetch(pages) => {
                let end = self.handle_prefetch(n, &pages, now, NO_CAUSE, false);
                self.run_thread(tid, end, None)
            }
        }
    }

    // ------------------------------------------------------------------
    // Page faults and fetches
    // ------------------------------------------------------------------

    fn handle_fault(
        &mut self,
        tid: ThreadId,
        n: NodeId,
        page: PageId,
        _write: bool,
        now: SimTime,
    ) -> Result<(), SimError> {
        let end = self.charge(
            n,
            now,
            self.cfg.costs.fault_entry,
            Category::DsmOverhead,
            None,
        );
        self.nodes[n].counters.faults += 1;
        let begin_id = self.tracer.emit(
            now,
            n as u32,
            tid.0 as u32,
            NO_CAUSE,
            TraceEvent::FaultBegin {
                page: page.index() as u32,
                write: _write,
            },
        );

        // Request combining: join an in-flight fetch.
        if let Some(f) = self.nodes[n].fetches.get_mut(&page) {
            f.waiters.push(tid);
            return self.block(tid, n, BlockReason::Memory, end);
        }

        if self.cfg.directory.enabled {
            self.first_touch(n, page);
        }

        let (missing, need_base) = self.missing_for(n, page);
        if self.trace {
            eprintln!("[{now}] fault n{n} {page}: missing {missing:?} base {need_base}");
        }
        if missing.is_empty() && !need_base {
            // Everything needed is already local (prefetched).
            let had_pf = self.nodes[n].pf_meta.contains_key(&page);
            let apply_end = self.apply_local(n, page, end);
            self.validate_page(n, page);
            let cls = if had_pf {
                MissClass::Hit
            } else {
                MissClass::NoPf
            };
            self.nodes[n].counters.classify(cls);
            self.tracer.emit(
                apply_end,
                n as u32,
                tid.0 as u32,
                begin_id,
                TraceEvent::FaultEnd {
                    page: page.index() as u32,
                    class: if had_pf { class::HIT } else { class::NO_PF },
                },
            );
            let apply_end = self.adaptive_fault(tid, n, page, cls, begin_id, apply_end);
            return self.run_thread(tid, apply_end, None);
        }

        // A real remote miss.
        self.nodes[n].counters.misses += 1;
        if self.cfg.prefetch.enabled && self.cfg.prefetch.automatic {
            self.nodes[n].current_faults.push(page);
        }
        let class = match self.nodes[n].pf_meta.get(&page) {
            None => MissClass::NoPf,
            Some(meta) => {
                let all_requested = missing.iter().all(|(origin, stamps)| {
                    stamps
                        .iter()
                        .all(|s| meta.requested.contains(&(*origin, s.get(*origin))))
                }) && (!need_base || meta.wanted_base);
                if all_requested {
                    MissClass::TooLate
                } else {
                    MissClass::Invalidated
                }
            }
        };
        self.nodes[n].counters.classify(class);
        self.tracer.note_fault(
            n as u32,
            page.index() as u32,
            begin_id,
            match class {
                MissClass::Hit => class::HIT,
                MissClass::NoPf => class::NO_PF,
                MissClass::TooLate => class::TOO_LATE,
                MissClass::Invalidated => class::INVALIDATED,
            },
        );

        // Too-late join: when every missing piece was already
        // requested by an adaptive prefetch (reliable traffic — it
        // retransmits through loss and parks across a crash like any
        // demand message), re-requesting it would push a duplicate
        // round through the very server whose queue made the
        // prefetch late. Wait for the in-flight replies instead.
        if class == MissClass::TooLate
            && self.nodes[n]
                .pf_meta
                .get(&page)
                .is_some_and(|m| m.all_adaptive)
        {
            let inflight = {
                let mem = self.mem.lock().expect("mem mutex");
                mem[n].prefetch_inflight.get(&page).copied().unwrap_or(0)
            };
            if inflight > 0 {
                let end = self.adaptive_fault(tid, n, page, class, begin_id, end);
                self.nodes[n].fetches.insert(
                    page,
                    Fetch {
                        outstanding: inflight as usize,
                        waiters: vec![tid],
                        collected: Vec::new(),
                        base: None,
                        base_pending: false,
                        started: now,
                        joined: true,
                    },
                );
                return self.block(tid, n, BlockReason::Memory, end);
            }
        }

        // Demand requests launch first; the adaptive engine then
        // observes the fault and issues lookahead requests while the
        // thread is already blocked on the reply, so issue overhead
        // overlaps the memory stall instead of extending it.
        let end = self
            .send_fetch_requests(n, page, &missing, need_base, end, false, false)
            .0;
        let end = self.adaptive_fault(tid, n, page, class, begin_id, end);
        let outstanding = self.count_requests(&missing, need_base, page);
        self.nodes[n].fetches.insert(
            page,
            Fetch {
                outstanding,
                waiters: vec![tid],
                collected: Vec::new(),
                base: None,
                base_pending: need_base,
                started: now,
                joined: false,
            },
        );
        self.block(tid, n, BlockReason::Memory, end)
    }

    /// First-touch accounting: the first node to fault on (or be
    /// served) a page claims it. Under the `FirstTouch` policy an
    /// unclaimed page that is still pristine at its static home
    /// migrates its home to the first toucher, turning the fault
    /// into a local hit and homing the page where it is used.
    fn first_touch(&mut self, n: NodeId, page: PageId) {
        let p = page.index();
        if self.claimed[p] {
            return;
        }
        self.claimed[p] = true;
        if self.cfg.directory.policy != DirectoryPolicy::FirstTouch {
            return;
        }
        let home = self.heap.home(page);
        if home == n {
            return;
        }
        // Migrate only while the page is pristine at its static home:
        // the home never wrote it (no open twin, no dirty mark, no
        // closed diffs). Non-home writers claim pages via their own
        // faults before writing, so an unclaimed page can only have
        // been written by the home itself.
        let home_wrote = self.nodes[home].own_diffs.keys().any(|&(dp, _)| dp == p);
        let mut mem = self.mem.lock().expect("mem mutex");
        if home_wrote || mem[home].pages[p].twin.is_some() || mem[home].dirty.contains(&page) {
            return;
        }
        mem[home].pages[p].valid = false;
        mem[home].pages[p].ever_valid = false;
        mem[n].pages[p].valid = true;
        mem[n].pages[p].ever_valid = true;
        drop(mem);
        self.heap.set_home(page, n);
        self.nodes[n].counters.dir_migrations += 1;
    }

    /// The (origin → stamps) diffs node `n` still needs for `page`
    /// (pending notices minus the prefetch cache), plus whether a
    /// base copy is needed.
    fn missing_for(&self, n: NodeId, page: PageId) -> (Vec<(NodeId, Vec<VectorClock>)>, bool) {
        let node = &self.nodes[n];
        let missing: Vec<(NodeId, Vec<VectorClock>)> = node
            .board
            .pending_by_origin(page)
            .into_iter()
            .filter_map(|(origin, stamps)| {
                let remaining: Vec<VectorClock> = stamps
                    .into_iter()
                    .filter(|s| !node.cache.has_diff(page, origin, s))
                    .collect();
                if remaining.is_empty() {
                    None
                } else {
                    Some((origin, remaining))
                }
            })
            .collect();
        let mem = self.mem.lock().expect("mem mutex");
        let need_base =
            !mem[n].pages[page.index()].ever_valid && !node.base_cache.contains_key(&page);
        (missing, need_base)
    }

    fn count_requests(
        &self,
        missing: &[(NodeId, Vec<VectorClock>)],
        need_base: bool,
        page: PageId,
    ) -> usize {
        let home = self.heap.home(page);
        let home_covered = missing.iter().any(|(o, _)| *o == home);
        missing.len() + usize::from(need_base && !home_covered)
    }

    /// Sends diff/base requests; returns the CPU end time and the
    /// number of messages actually delivered (prefetch requests may
    /// drop).
    #[allow(clippy::too_many_arguments)]
    fn send_fetch_requests(
        &mut self,
        n: NodeId,
        page: PageId,
        missing: &[(NodeId, Vec<VectorClock>)],
        need_base: bool,
        mut end: SimTime,
        prefetch: bool,
        adaptive: bool,
    ) -> (SimTime, usize) {
        let home = self.heap.home(page);
        let mut delivered = 0;
        let send_cost = if adaptive {
            self.cfg.costs.adaptive_issue()
        } else if prefetch {
            self.cfg.costs.prefetch_issue
        } else {
            self.cfg.costs.msg_send
        };
        let send_cat = if prefetch {
            Category::PrefetchOverhead
        } else {
            Category::DsmOverhead
        };
        for (origin, stamps) in missing {
            end = self.charge(n, end, send_cost, send_cat, None);
            let body = MsgBody::DiffRequest {
                page,
                stamps: stamps.clone(),
                want_base: need_base && *origin == home,
                prefetch,
                adaptive,
                droppable: prefetch && !adaptive && !self.cfg.prefetch.reliable,
                vc: self.nodes[n].vc.clone(),
            };
            if self.post(end, n, *origin, body) {
                delivered += 1;
            } else {
                self.nodes[n].counters.pf_send_drops += 1;
                self.tracer.emit(
                    end,
                    n as u32,
                    NO_THREAD,
                    NO_CAUSE,
                    TraceEvent::PrefetchDrop {
                        page: page.index() as u32,
                        reply: false,
                    },
                );
            }
            if prefetch {
                self.nodes[n].counters.pf_messages += 1;
            }
        }
        if need_base && !missing.iter().any(|(o, _)| *o == home) {
            assert_ne!(home, n, "home node never needs a base copy");
            end = self.charge(n, end, send_cost, send_cat, None);
            let body = MsgBody::DiffRequest {
                page,
                stamps: Vec::new(),
                want_base: true,
                prefetch,
                adaptive,
                droppable: prefetch && !adaptive && !self.cfg.prefetch.reliable,
                vc: self.nodes[n].vc.clone(),
            };
            if self.post(end, n, home, body) {
                delivered += 1;
            } else {
                self.nodes[n].counters.pf_send_drops += 1;
                self.tracer.emit(
                    end,
                    n as u32,
                    NO_THREAD,
                    NO_CAUSE,
                    TraceEvent::PrefetchDrop {
                        page: page.index() as u32,
                        reply: false,
                    },
                );
            }
            if prefetch {
                self.nodes[n].counters.pf_messages += 1;
            }
        }
        (end, delivered)
    }

    /// Applies everything locally available for `page` (cached base,
    /// cached prefetch diffs, collected fetch diffs), marking notices
    /// applied. Does not validate the page.
    fn apply_with(
        &mut self,
        n: NodeId,
        page: PageId,
        extra: Vec<DiffPayload>,
        base: Option<BasePayload>,
        mut end: SimTime,
    ) -> SimTime {
        let node = &mut self.nodes[n];
        let base = base.or_else(|| node.base_cache.remove(&page));
        let mut diffs: Vec<CachedDiff> = node
            .cache
            .take(page)
            .into_iter()
            .chain(extra.into_iter().map(|p| CachedDiff {
                origin: p.origin,
                stamp: p.stamp,
                diff: p.diff,
            }))
            .collect();
        // Order consistently with happens-before-1 (concurrent diffs
        // are disjoint, so any topological order is correct).
        diffs.sort_by(|a, b| {
            let sum = |vc: &VectorClock| -> u64 { (0..vc.len()).map(|i| vc.get(i) as u64).sum() };
            sum(&a.stamp).cmp(&sum(&b.stamp)).then_with(|| {
                (0..a.stamp.len())
                    .map(|i| a.stamp.get(i))
                    .cmp((0..b.stamp.len()).map(|i| b.stamp.get(i)))
            })
        });

        if self.trace {
            // Paranoid race detector: concurrent diffs must touch
            // disjoint bytes, or the multiple-writer merge is unsound.
            for (x, a) in diffs.iter().enumerate() {
                for b in &diffs[x + 1..] {
                    if a.stamp.hb_cmp(&b.stamp).is_none() && a.diff.overlaps(&b.diff) {
                        eprintln!(
                            "RACE at n{n} {page}: concurrent diffs overlap: n{} {} vs n{} {}",
                            a.origin, a.stamp, b.origin, b.stamp
                        );
                    }
                }
            }
        }
        let mut mem = self.mem.lock().expect("mem mutex");
        let entry = &mut mem[n].pages[page.index()];
        let mut apply_cost = rsdsm_simnet::SimDuration::ZERO;
        // Diffs already incorporated in an applied base copy must NOT
        // be re-applied: the base may also contain *newer* intervals
        // (the home can be ahead of this node), and replaying an older
        // diff over it would roll those bytes back.
        let mut skip: std::collections::HashSet<(NodeId, u32)> = std::collections::HashSet::new();
        if let Some(b) = base {
            if !entry.ever_valid {
                entry.data.copy_from(&b.page);
                entry.ever_valid = true;
                for (origin, stamp) in &b.incorporated {
                    node.board.mark_applied(page, *origin, stamp);
                    skip.insert((*origin, stamp.get(*origin)));
                }
                apply_cost += self.cfg.costs.diff_apply(rsdsm_protocol::PAGE_SIZE);
            }
        }
        let watch = self.watch;
        for cached in &diffs {
            if let Some((wp, lo, hi)) = watch {
                if page.index() == wp && cached.diff.covers(lo, hi) {
                    let skipped = skip.contains(&(cached.origin, cached.stamp.get(cached.origin)))
                        || node.board.is_applied(page, cached.origin, &cached.stamp);
                    eprintln!(
                        "WATCH apply n{n}: diff n{} {} skipped={skipped}",
                        cached.origin, cached.stamp
                    );
                }
            }
            if skip.contains(&(cached.origin, cached.stamp.get(cached.origin)))
                || node.board.is_applied(page, cached.origin, &cached.stamp)
            {
                // Already incorporated (via the base or an earlier
                // fetch); re-applying a byte-sparse diff over newer
                // data would roll those bytes back.
                node.board.mark_applied(page, cached.origin, &cached.stamp);
                continue;
            }
            if self.oracle.cfg.invariants {
                let covered = node
                    .known_set
                    .contains(&(cached.origin, cached.stamp.get(cached.origin)));
                self.oracle
                    .check_coverage(covered, n, page, cached.origin, &cached.stamp, end);
            }
            cached.diff.apply(&mut entry.data);
            // Keep the twin consistent so our own diff stays minimal
            // (incoming concurrent diffs touch disjoint bytes).
            // `make_mut` un-shares a frame still referenced by an
            // in-flight base reply (copy-on-write).
            if let Some(twin) = &mut entry.twin {
                cached.diff.apply(Arc::make_mut(twin));
            }
            node.board.mark_applied(page, cached.origin, &cached.stamp);
            let seq = cached.stamp.get(cached.origin);
            let cause =
                self.tracer
                    .notice_id(n as u32, page.index() as u32, cached.origin as u32, seq);
            self.tracer.emit(
                end,
                n as u32,
                NO_THREAD,
                cause,
                TraceEvent::DiffApply {
                    page: page.index() as u32,
                    origin: cached.origin as u32,
                    seq,
                },
            );
            apply_cost += self.cfg.costs.diff_apply(cached.diff.payload_bytes());
        }
        if let Some((wp, lo, _hi)) = watch {
            if page.index() == wp {
                let val = f64::from_bits(u64::from_le_bytes(
                    mem[n].pages[page.index()].data.bytes()[lo..lo + 8]
                        .try_into()
                        .expect("8 bytes"),
                ));
                eprintln!("WATCH value n{n} after apply batch: {val}");
            }
        }
        drop(mem);
        if !apply_cost.is_zero() {
            end = self.charge(n, end, apply_cost, Category::DsmOverhead, None);
        }
        end
    }

    fn apply_local(&mut self, n: NodeId, page: PageId, end: SimTime) -> SimTime {
        self.apply_with(n, page, Vec::new(), None, end)
    }

    /// Marks `page` valid and clears its prefetch bookkeeping.
    fn validate_page(&mut self, n: NodeId, page: PageId) {
        let mut mem = self.mem.lock().expect("mem mutex");
        mem[n].pages[page.index()].valid = true;
        mem[n].prefetch_inflight.remove(&page);
        drop(mem);
        self.nodes[n].pf_meta.remove(&page);
    }

    // ------------------------------------------------------------------
    // Prefetching (§3)
    // ------------------------------------------------------------------

    /// Issues prefetch requests for `pages`, skipping anything valid,
    /// in flight, or already locally available. `cause` is the trace
    /// record the issues link to ([`NO_CAUSE`] inherits the ambient
    /// cause, as before); `adaptive` marks stride-engine issues, which
    /// are counted in [`AdaptiveStats`] and travel as
    /// `adaptive_request` traffic.
    fn handle_prefetch(
        &mut self,
        n: NodeId,
        pages: &[PageId],
        now: SimTime,
        cause: u64,
        adaptive: bool,
    ) -> SimTime {
        let mut end = now;
        for &page in pages {
            let valid = {
                let mem = self.mem.lock().expect("mem mutex");
                mem[n].pages[page.index()].valid
            };
            if valid {
                self.adaptive_cancel(n, adaptive);
                continue;
            }
            if self.nodes[n].fetches.contains_key(&page) {
                self.adaptive_cancel(n, adaptive);
                continue;
            }
            let (missing, need_base) = self.missing_for(n, page);
            if missing.is_empty() && !need_base {
                // Diffs already cached: the data is locally available.
                let mut mem = self.mem.lock().expect("mem mutex");
                mem[n].counters.pf_unnecessary += 1;
                drop(mem);
                self.adaptive_cancel(n, adaptive);
                continue;
            }
            {
                let node = &mut self.nodes[n];
                let meta = node.pf_meta.entry(page).or_default();
                let fresh = meta.requested.is_empty() && !meta.wanted_base;
                meta.all_adaptive = if fresh {
                    adaptive
                } else {
                    meta.all_adaptive && adaptive
                };
                for (origin, stamps) in &missing {
                    for s in stamps {
                        meta.requested.insert((*origin, s.get(*origin)));
                    }
                }
                if need_base {
                    meta.wanted_base = true;
                }
            }
            self.tracer.emit(
                end,
                n as u32,
                NO_THREAD,
                cause,
                TraceEvent::PrefetchIssue {
                    page: page.index() as u32,
                },
            );
            let (new_end, _delivered) =
                self.send_fetch_requests(n, page, &missing, need_base, end, true, adaptive);
            end = new_end;
            if adaptive {
                if let Some(ad) = self.nodes[n].adaptive.as_mut() {
                    ad.stats.issued += 1;
                }
            }
            let requests = self.count_requests(&missing, need_base, page);
            let mut mem = self.mem.lock().expect("mem mutex");
            *mem[n].prefetch_inflight.entry(page).or_insert(0) += requests as u32;
        }
        end
    }

    /// Counts one adaptive candidate cancelled before issue. No-op
    /// for non-adaptive prefetches.
    fn adaptive_cancel(&mut self, n: NodeId, adaptive: bool) {
        if adaptive {
            if let Some(ad) = self.nodes[n].adaptive.as_mut() {
                ad.stats.cancelled += 1;
            }
        }
    }

    /// Adaptive engine hook, run on every classified fault when the
    /// mode is on: feeds the faulting thread's stride detector and the
    /// node's throttle controller, emits detect/throttle trace events
    /// linked to the fault's begin record, and issues prefetches ahead
    /// of the current trend at the controller's (degree, lead)
    /// operating point. All CPU time is charged here, at execution,
    /// on the fault path.
    fn adaptive_fault(
        &mut self,
        tid: ThreadId,
        n: NodeId,
        page: PageId,
        class: MissClass,
        begin_id: u64,
        at: SimTime,
    ) -> SimTime {
        if !self.cfg.prefetch.adaptive.enabled {
            return at;
        }
        let end = self.charge(
            n,
            at,
            self.cfg.costs.adaptive_observe(),
            Category::PrefetchOverhead,
            None,
        );
        let local = tid.local_index(self.tpn());
        let total_pages = self.heap.page_count() as i64;
        let ad = self.nodes[n].adaptive.as_mut().expect("adaptive state");
        let change = ad.detectors[local].observe(page.index() as u64);
        let trend = ad.detectors[local].trend();
        let transition = ad.throttle.observe(class);
        match change {
            TrendChange::Detected(_) => ad.stats.detected_strides += 1,
            TrendChange::Flipped(_) => ad.stats.window_flips += 1,
            _ => {}
        }
        if change != TrendChange::None {
            // Any trend movement restarts the planned-range tracking.
            ad.planned[local] = None;
        }
        match change {
            // A fresh majority gets one confirming fault before
            // anything is issued on it.
            TrendChange::Detected(_) => ad.probation[local] = 1,
            // A flip means the last confirmed majority was wrong:
            // double the stream's probation each time. Irregular
            // patterns (2D neighborhoods, hash orders) flip
            // endlessly and quickly stop issuing at all.
            TrendChange::Flipped(_) => {
                ad.flips[local] += 1;
                ad.probation[local] = 1u32 << ad.flips[local].min(5);
            }
            _ => {}
        }
        if let Some(ch) = transition {
            ad.stats.record(ch);
        }
        let degree = ad.throttle.degree();
        let lead = ad.throttle.lead();
        let may_issue = ad.throttle.may_issue();
        if let TrendChange::Detected(s) | TrendChange::Flipped(s) = change {
            self.tracer.emit(
                end,
                n as u32,
                tid.0 as u32,
                begin_id,
                TraceEvent::AdaptiveDetect {
                    page: page.index() as u32,
                    stride: s as i32,
                },
            );
        }
        if let Some(ch) = transition {
            self.tracer.emit(
                end,
                n as u32,
                tid.0 as u32,
                begin_id,
                TraceEvent::AdaptiveThrottle {
                    change: ch.code(),
                    degree,
                    lead,
                },
            );
        }
        let Some(stride) = trend else {
            return end;
        };
        {
            let ad = self.nodes[n].adaptive.as_mut().expect("adaptive state");
            if ad.probation[local] > 0 {
                // The stream's trend is still on probation (fresh, or
                // recently proven wrong by a flip): hold issue until
                // enough consecutive faults confirm it.
                ad.probation[local] -= 1;
                return end;
            }
        }
        if !may_issue {
            // The trend holds but the controller is cooling down:
            // every candidate this fault would have planned is
            // cancelled unissued.
            if let Some(ad) = self.nodes[n].adaptive.as_mut() {
                ad.stats.cancelled += u64::from(degree);
            }
            return end;
        }
        // The lookahead window this fault wants covered, clipped to
        // the extent beyond the thread's previous high-water mark:
        // successive faults on a stride stream extend the planned
        // range by ~one page each instead of re-issuing the whole
        // overlapping window (the burst would swamp the protocol
        // processors and the fabric for no added coverage).
        let planned = self.nodes[n]
            .adaptive
            .as_ref()
            .expect("adaptive state")
            .planned[local];
        let fresh: Vec<i64> = (0..degree)
            .map(|k| page.index() as i64 + stride * i64::from(lead + k))
            .filter(|&p| match planned {
                Some((ps, fur)) if ps == stride => {
                    if stride > 0 {
                        p > fur
                    } else {
                        p < fur
                    }
                }
                _ => true,
            })
            .collect();
        // In-flight budget: page-sized prefetch replies serialize on
        // the same links as demand replies, so an unpaced stream of
        // issues queues demand traffic behind megabytes of lookahead
        // and *adds* memory stall. New issues are admitted only while
        // fewer than `degree` replies are outstanding — the
        // controller's ramp/backoff therefore directly sizes the
        // pipeline the fabric carries.
        let outstanding: u32 = {
            let mem = self.mem.lock().expect("mem mutex");
            mem[n].prefetch_inflight.values().sum()
        };
        let allowed = u64::from(degree.saturating_sub(outstanding)) as usize;
        let mut candidates: Vec<PageId> = fresh
            .iter()
            .filter(|&&p| p >= 0 && p < total_pages)
            .map(|&p| PageId::new(p as u32))
            .collect();
        candidates.truncate(allowed);
        {
            let ad = self.nodes[n].adaptive.as_mut().expect("adaptive state");
            // Fresh candidates past the heap ends or over budget are
            // cancelled; already-planned pages are simply not fresh.
            ad.stats.cancelled += (fresh.len() - candidates.len()) as u64;
            // The mark advances only over what actually issues, so
            // budget-suppressed pages stay eligible for later faults.
            if let Some(last) = candidates.last() {
                let far = last.index() as i64;
                let mark = match planned {
                    Some((ps, fur)) if ps == stride => {
                        if stride > 0 {
                            far.max(fur)
                        } else {
                            far.min(fur)
                        }
                    }
                    _ => far,
                };
                ad.planned[local] = Some((stride, mark));
            }
        }
        if candidates.is_empty() {
            return end;
        }
        // Plan and issue run on the node's protocol processor, off
        // the faulting thread's critical path: the CPU busy time is
        // charged (it delays later protocol work on this node) but
        // the fault completes independently — for a remote miss the
        // issues overlap the memory stall already in progress.
        let issue_at = self.charge(
            n,
            end,
            self.cfg.costs.adaptive_plan(candidates.len()),
            Category::PrefetchOverhead,
            None,
        );
        self.handle_prefetch(n, &candidates, issue_at, begin_id, true);
        end
    }

    /// Automatic-prefetch mode (Bianchini-style): a synchronization
    /// point was reached on node `n`. The pages that faulted since
    /// the previous sync point become the history of that point's
    /// sync object, and the history recorded for `key` is prefetched
    /// now. Returns the CPU end time.
    fn auto_prefetch_at_sync(&mut self, n: NodeId, key: SyncKey, now: SimTime) -> SimTime {
        if !self.cfg.prefetch.enabled || !self.cfg.prefetch.automatic {
            return now;
        }
        let node = &mut self.nodes[n];
        let faults = std::mem::take(&mut node.current_faults);
        if let Some(prev) = node.current_sync.replace(key) {
            node.sync_history.insert(prev, faults);
        }
        let history = node.sync_history.get(&key).cloned().unwrap_or_default();
        if history.is_empty() {
            return now;
        }
        {
            let mut mem = self.mem.lock().expect("mem mutex");
            mem[n].counters.pf_calls += history.len() as u64;
            mem[n].counters.pf_unnecessary += history
                .iter()
                .filter(|p| mem[n].pages[p.index()].valid)
                .count() as u64;
        }
        let end = self.charge(
            n,
            now,
            self.cfg.costs.prefetch_check * history.len() as u64,
            Category::PrefetchOverhead,
            None,
        );
        self.handle_prefetch(n, &history, end, NO_CAUSE, false)
    }

    // ------------------------------------------------------------------
    // Interval management
    // ------------------------------------------------------------------

    /// Closes node `n`'s open interval: encodes a diff for every dirty
    /// page, logs the interval, and advances the vector clock. No-op
    /// when nothing is dirty.
    fn close_interval(&mut self, n: NodeId, at: SimTime) -> SimTime {
        let mut mem = self.mem.lock().expect("mem mutex");
        let m = &mut mem[n];
        let dirty: Vec<PageId> = std::mem::take(&mut m.dirty)
            .into_iter()
            .filter(|p| m.pages[p.index()].twin.is_some())
            .collect();
        if dirty.is_empty() {
            return at;
        }
        let watch = self.watch;
        let node = &mut self.nodes[n];
        node.vc.tick(n);
        let stamp = node.vc.clone();
        let seq = stamp.get(n);
        let mut cost = rsdsm_simnet::SimDuration::ZERO;
        let mut seen = std::collections::HashSet::new();
        let mut pages_list = Vec::new();
        for page in dirty {
            if !seen.insert(page) {
                continue;
            }
            let entry = &mut m.pages[page.index()];
            let twin = entry.twin.take().expect("twin present");
            let diff = Diff::between(&twin, &entry.data);
            if self.oracle.cfg.invariants {
                self.oracle
                    .check_roundtrip(&twin, &entry.data, &diff, n, page, at);
            }
            if let Some((wp, lo, hi)) = watch {
                if page.index() == wp && diff.covers(lo, hi) {
                    let val = f64::from_bits(u64::from_le_bytes(
                        entry.data.bytes()[lo..lo + 8].try_into().unwrap(),
                    ));
                    eprintln!("WATCH close n{n}: stamp {} seq {seq} val {val}", node.vc);
                }
            }
            cost += self.cfg.costs.diff_create(diff.payload_bytes());
            self.tracer.emit(
                at,
                n as u32,
                NO_THREAD,
                NO_CAUSE,
                TraceEvent::DiffCreate {
                    page: page.index() as u32,
                    seq,
                    bytes: diff.encoded_bytes() as u32,
                },
            );
            node.own_diff_bytes += diff.encoded_bytes();
            node.own_diffs.insert((page.index(), seq), Arc::new(diff));
            pages_list.push(page);
            m.pool.put_arc(twin);
        }
        drop(mem);
        let rec = IntervalRecord {
            origin: n,
            stamp,
            pages: pages_list,
        };
        if self.trace {
            eprintln!(
                "[{at}] close n{n}: stamp {} pages {:?}",
                rec.stamp, rec.pages
            );
        }
        self.nodes[n].learn_interval(&rec);
        self.charge(n, at, cost, Category::DsmOverhead, None)
    }

    /// Records the write notices of `rec` at node `n`, invalidating
    /// affected pages (skipping the node's own intervals).
    fn record_interval(&mut self, n: NodeId, rec: &IntervalRecord, at: SimTime) {
        self.nodes[n].learn_interval(rec);
        if rec.origin == n {
            return;
        }
        for &page in &rec.pages {
            // Directory sharding: interval *knowledge* (the vector
            // clocks above) is always full, but per-page write
            // notices are only tracked for pages this node has an
            // interest in. A pruned page's first touch is a base
            // fetch from its home, which re-serves the history.
            if self.cfg.directory.enabled && !self.interested(n, page) {
                self.nodes[n].counters.dir_pruned += 1;
                continue;
            }
            let is_new = self.nodes[n].board.record(WriteNotice {
                page,
                origin: rec.origin,
                stamp: rec.stamp.clone(),
            });
            if !is_new && self.trace {
                eprintln!(
                    "notice DUP at n{n}: {page} from n{} stamp {}",
                    rec.origin, rec.stamp
                );
            }
            if is_new {
                if self.trace {
                    eprintln!(
                        "notice at n{n}: {page} from n{} stamp {}",
                        rec.origin, rec.stamp
                    );
                }
                if self.tracer.is_on() {
                    let seq = rec.stamp.get(rec.origin);
                    let id = self.tracer.emit(
                        at,
                        n as u32,
                        NO_THREAD,
                        NO_CAUSE,
                        TraceEvent::WriteNotice {
                            page: page.index() as u32,
                            origin: rec.origin as u32,
                            seq,
                        },
                    );
                    self.tracer.note_notice(
                        n as u32,
                        page.index() as u32,
                        rec.origin as u32,
                        seq,
                        id,
                    );
                }
                let mut mem = self.mem.lock().expect("mem mutex");
                mem[n].pages[page.index()].valid = false;
            }
        }
    }

    /// Whether node `n` must track write notices for `page`: it
    /// homes the page, has (ever) held a copy, holds prefetched
    /// state for it, or has a fetch in flight. Anything else may
    /// drop the notice.
    fn interested(&self, n: NodeId, page: PageId) -> bool {
        if self.heap.home(page) == n {
            return true;
        }
        let node = &self.nodes[n];
        if node.base_cache.contains_key(&page)
            || node.cache.contains_page(page)
            || node.pf_meta.contains_key(&page)
            || node.fetches.contains_key(&page)
        {
            return true;
        }
        let mem = self.mem.lock().expect("mem mutex");
        mem[n].pages[page.index()].ever_valid
    }

    // ------------------------------------------------------------------
    // Locks (§4.1 request combining, distributed token passing)
    // ------------------------------------------------------------------

    fn handle_acquire(
        &mut self,
        tid: ThreadId,
        n: NodeId,
        lock: LockId,
        now: SimTime,
    ) -> Result<(), SimError> {
        let req_id = self.tracer.emit(
            now,
            n as u32,
            tid.0 as u32,
            NO_CAUSE,
            TraceEvent::LockRequest { lock: lock.0 },
        );
        match self.nodes[n].locks.acquire(lock, tid) {
            AcquireOutcome::Granted => {
                self.oracle.record_grant(lock, tid);
                let end = self.charge(
                    n,
                    now,
                    self.cfg.costs.lock_local_pass,
                    Category::DsmOverhead,
                    None,
                );
                self.tracer.emit(
                    end,
                    n as u32,
                    tid.0 as u32,
                    req_id,
                    TraceEvent::LockGrant { lock: lock.0 },
                );
                self.run_thread(tid, end, None)
            }
            AcquireOutcome::QueuedLocal => self.block(tid, n, BlockReason::Lock, now),
            AcquireOutcome::NeedToken => {
                self.nodes[n].counters.lock_events += 1;
                let end = self.charge(n, now, self.cfg.costs.msg_send, Category::DsmOverhead, None);
                let manager = self.nodes[n].locks.manager(lock);
                let vc = self.nodes[n].vc.clone();
                if manager == n {
                    // We manage the lock but do not hold the token.
                    self.route_as_manager(n, lock, RemoteWaiter { node: n, vc }, end);
                } else {
                    self.post(
                        end,
                        n,
                        manager,
                        MsgBody::LockRequest {
                            lock,
                            requester: n,
                            vc,
                        },
                    );
                }
                self.block(tid, n, BlockReason::Lock, end)
            }
        }
    }

    fn handle_release(
        &mut self,
        tid: ThreadId,
        n: NodeId,
        lock: LockId,
        now: SimTime,
    ) -> Result<(), SimError> {
        match self.nodes[n].locks.release(lock, tid) {
            ReleaseOutcome::PassedLocal(next) => {
                self.oracle.record_grant(lock, next);
                let end = self.charge(
                    n,
                    now,
                    self.cfg.costs.lock_local_pass,
                    Category::DsmOverhead,
                    None,
                );
                self.tracer.emit(
                    end,
                    n as u32,
                    next.0 as u32,
                    NO_CAUSE,
                    TraceEvent::LockLocalPass { lock: lock.0 },
                );
                self.wake(next, end)?;
                self.run_thread(tid, end, None)
            }
            ReleaseOutcome::GrantRemote(waiter) => {
                let end = self.grant_lock(n, lock, waiter, now);
                self.run_thread(tid, end, None)
            }
            ReleaseOutcome::Idle => self.run_thread(tid, now, None),
        }
    }

    /// Closes the interval and sends the token (with piggybacked
    /// notices) to `waiter`.
    fn grant_lock(
        &mut self,
        n: NodeId,
        lock: LockId,
        waiter: RemoteWaiter,
        at: SimTime,
    ) -> SimTime {
        if waiter.node == n {
            // Degenerate self-grant (the manager routed our own
            // request back to us): no messaging, no new notices.
            if let GrantOutcome::WakeLocal(tid) = self.nodes[n].locks.handle_grant(lock) {
                self.oracle.record_grant(lock, tid);
                self.tracer.emit(
                    at,
                    n as u32,
                    tid.0 as u32,
                    NO_CAUSE,
                    TraceEvent::LockGrant { lock: lock.0 },
                );
                // Propagate errors as panics here would be wrong; a
                // wake failure only occurs on engine teardown.
                let _ = self.wake(tid, at);
            }
            return at;
        }
        let end = self.close_interval(n, at);
        let intervals = self.nodes[n].intervals_unknown_to(&waiter.vc);
        let mut end = self.charge(n, end, self.cfg.costs.msg_send, Category::DsmOverhead, None);
        self.tracer.emit(
            end,
            n as u32,
            NO_THREAD,
            NO_CAUSE,
            TraceEvent::LockGrant { lock: lock.0 },
        );
        let vc = self.nodes[n].vc.clone();
        let new_owner = waiter.node;
        self.post(
            end,
            n,
            new_owner,
            MsgBody::LockGrant {
                lock,
                intervals,
                vc,
            },
        );
        // Any other queued requests chase the token to its new holder.
        for leftover in self.nodes[n].locks.drain_remote_queue(lock) {
            end = self.charge(n, end, self.cfg.costs.msg_send, Category::DsmOverhead, None);
            self.post(
                end,
                n,
                new_owner,
                MsgBody::LockForward {
                    lock,
                    requester: leftover.node,
                    vc: leftover.vc,
                },
            );
        }
        end
    }

    /// Manager-side routing of an acquire request.
    fn route_as_manager(&mut self, m: NodeId, lock: LockId, waiter: RemoteWaiter, at: SimTime) {
        match self.nodes[m].locks.manager_route(lock, waiter.node) {
            None => self.handle_forward_arrival(m, lock, waiter, at),
            Some(owner) => {
                let end = self.charge(m, at, self.cfg.costs.msg_send, Category::DsmOverhead, None);
                self.post(
                    end,
                    m,
                    owner,
                    MsgBody::LockForward {
                        lock,
                        requester: waiter.node,
                        vc: waiter.vc,
                    },
                );
            }
        }
    }

    // ------------------------------------------------------------------
    // Barriers (§4.1 local combining, central manager)
    // ------------------------------------------------------------------

    fn handle_barrier_arrive(
        &mut self,
        tid: ThreadId,
        n: NodeId,
        id: BarrierId,
        now: SimTime,
    ) -> Result<(), SimError> {
        let mut end = self.close_interval(n, now);
        let last_local = self.nodes[n].barrier.arrive(id, tid);
        if !last_local {
            return self.block(tid, n, BlockReason::Barrier, end);
        }
        self.nodes[n].counters.barrier_events += 1;
        self.tracer.emit(
            end,
            n as u32,
            tid.0 as u32,
            NO_CAUSE,
            TraceEvent::BarrierArrive { barrier: id.0 },
        );
        let horizon = self.nodes[n].last_release_vc.clone();
        let intervals = self.nodes[n].intervals_unknown_to(&horizon);
        let vc = self.nodes[n].vc.clone();
        if n == MANAGER {
            end = self.charge(
                n,
                end,
                self.cfg.costs.sync_process,
                Category::DsmOverhead,
                None,
            );
            // Block first: when this is the last arrival cluster-wide,
            // the release below wakes this very thread.
            self.block(tid, n, BlockReason::Barrier, end)?;
            self.manager_collect(id, n, vc, intervals, end)
        } else {
            end = self.charge(n, end, self.cfg.costs.msg_send, Category::DsmOverhead, None);
            self.post(
                end,
                n,
                MANAGER,
                MsgBody::BarrierArrive {
                    id,
                    from: n,
                    vc,
                    intervals,
                },
            );
            self.block(tid, n, BlockReason::Barrier, end)
        }
    }

    /// Manager-side collection of one node's arrival.
    fn manager_collect(
        &mut self,
        id: BarrierId,
        from: NodeId,
        vc: VectorClock,
        intervals: Vec<IntervalRecord>,
        at: SimTime,
    ) -> Result<(), SimError> {
        let joined = self
            .barrier_vcs
            .entry(id)
            .or_insert_with(|| VectorClock::new(self.cfg.nodes));
        joined.join(&vc);
        if self.oracle.cfg.invariants {
            self.oracle.barrier_arrival(id, from, at);
        }
        if let Some(union) = self.barrier_mgr.node_arrived(id, from, intervals) {
            if self.oracle.cfg.invariants {
                self.oracle.barrier_release(id, self.cfg.nodes, at);
            }
            let joined = self.barrier_vcs.remove(&id).expect("joined clock");
            let mut end = at;
            for node in 1..self.cfg.nodes {
                end = self.charge(
                    MANAGER,
                    end,
                    self.cfg.costs.msg_send,
                    Category::DsmOverhead,
                    None,
                );
                self.post(
                    end,
                    MANAGER,
                    node,
                    MsgBody::BarrierRelease {
                        id,
                        vc: joined.clone(),
                        intervals: union.clone(),
                    },
                );
            }
            self.process_barrier_release(MANAGER, id, &joined, &union, end)?;
        }
        Ok(())
    }

    fn process_barrier_release(
        &mut self,
        n: NodeId,
        id: BarrierId,
        vc: &VectorClock,
        intervals: &[IntervalRecord],
        at: SimTime,
    ) -> Result<(), SimError> {
        let mut end = self.charge(
            n,
            at,
            self.cfg.costs.sync_process,
            Category::DsmOverhead,
            None,
        );
        for rec in intervals {
            self.record_interval(n, rec, end);
        }
        self.nodes[n].vc.join(vc);
        self.nodes[n].last_release_vc = self.nodes[n].vc.clone();

        // Garbage collection point: charge the pass's CPU time (the
        // cost TreadMarks pays to validate and reclaim diff storage).
        // The applied-notice records themselves are deliberately NOT
        // pruned: base copies advertise their contents via the
        // applied set (`incorporated`), and forgetting old applied
        // entries makes that advertisement partial — a requester
        // would then re-apply an old diff over newer incorporated
        // bytes and roll them back. Memory is not a constraint for
        // the simulator the way 1998's 96 MB nodes were.
        if self.nodes[n].own_diff_bytes > self.cfg.gc_threshold_bytes {
            let cost = self.cfg.costs.gc_per_diff * self.nodes[n].own_diffs.len() as u64;
            end = self.charge(n, end, cost, Category::DsmOverhead, None);
            self.nodes[n].counters.gc_passes += 1;
            self.nodes[n].own_diff_bytes = 0;
        }
        {
            let mut mem = self.mem.lock().expect("mem mutex");
            mem[n].epoch_prefetched.clear();
        }
        // A barrier release bounds the access phase on every local
        // thread: the adaptive detectors' delta chains break so the
        // jump across the barrier is never scored as a stride, but
        // the accumulated windows survive — iterative apps repeat the
        // same short stride pattern each epoch and the majority forms
        // across epochs, not within one.
        if let Some(ad) = self.nodes[n].adaptive.as_mut() {
            for d in &mut ad.detectors {
                d.break_chain();
            }
            // Pages the next interval invalidates must be re-planned.
            ad.planned.fill(None);
        }
        // Barrier-aligned checkpoint: every local interval is closed
        // here (no twins), making this the natural recovery line.
        self.recov.epochs_done[n] += 1;
        self.tracer.emit(
            end,
            n as u32,
            NO_THREAD,
            NO_CAUSE,
            TraceEvent::BarrierRelease {
                barrier: id.0,
                epoch: self.recov.epochs_done[n],
            },
        );
        let every = self.cfg.recovery.checkpoint_every;
        if every > 0 && self.recov.epochs_done[n].is_multiple_of(every) {
            end = self.take_checkpoint(n, end);
        }
        let end = self.auto_prefetch_at_sync(n, SyncKey::Barrier(id), end);
        let woken = self.nodes[n].barrier.release(id);
        for tid in woken {
            self.wake(tid, end)?;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Message arrivals
    // ------------------------------------------------------------------

    /// Handles a wire-level frame arrival: datagrams dispatch
    /// directly; data frames are acked, deduplicated, and reordered
    /// back into per-link FIFO order by the transport before their
    /// messages dispatch; acks settle the sender's retry state.
    fn on_arrival(&mut self, pkt: Packet, now: SimTime) -> Result<(), SimError> {
        let n = pkt.dst;
        // Every frame is an implicit heartbeat: hearing anything from
        // the peer refreshes its lease.
        if self.cfg.recovery.enabled {
            self.recov.detector.heard(n, pkt.src, now);
        }
        if self.tracer.is_on() {
            let (k, seq) = match &pkt.frame {
                Frame::Heartbeat => (kind::HEARTBEAT, 0),
                Frame::Ack { seq } => (kind::ACK, *seq),
                Frame::Datagram { body } => (kind_code(body), 0),
                Frame::Data { seq, body } => (kind_code(body), *seq),
            };
            let id = self.tracer.emit(
                now,
                n as u32,
                NO_THREAD,
                pkt.cause,
                TraceEvent::MsgRecv {
                    kind: k,
                    peer: pkt.src as u32,
                    seq,
                },
            );
            // Everything this frame triggers inherits it as cause.
            self.tracer.set_current(id);
        }
        match pkt.frame {
            Frame::Heartbeat => {
                if self.trace {
                    eprintln!("[{now}] hb-arrive n{} -> n{n}", pkt.src);
                }
                let idle = self.idle_reason(n);
                self.charge(
                    n,
                    now,
                    self.cfg.costs.ack_process,
                    Category::DsmOverhead,
                    idle,
                );
                Ok(())
            }
            Frame::Ack { seq } => {
                let idle = self.idle_reason(n);
                self.charge(
                    n,
                    now,
                    self.cfg.costs.ack_process,
                    Category::DsmOverhead,
                    idle,
                );
                self.transport.on_ack(n, pkt.src, seq, now);
                self.tracer.forget_send(n as u32, pkt.src as u32, seq);
                Ok(())
            }
            Frame::Datagram { body } => {
                let end = self.charge_recv(n, now);
                self.dispatch(
                    Msg {
                        src: pkt.src,
                        dst: n,
                        body: unshare(body),
                    },
                    end,
                )
            }
            Frame::Data { seq, body } => {
                // Ack every data frame, duplicates included: a
                // retransmission usually means the previous ack was
                // lost, and only a fresh ack stops the retries. The
                // ack leaves at wire-arrival time, not after the DSM
                // layer absorbs the message: acknowledgements are
                // kernel-level work, and on a busy multithreaded node
                // the application CPU can be seconds behind — a delay
                // the sender must not mistake for loss.
                self.send_ack(n, pkt.src, seq, now);
                let end = self.charge_recv(n, now);
                match self.transport.receive(pkt.src, n, seq, body) {
                    Recv::Deliver(run) => {
                        for body in run {
                            self.dispatch(
                                Msg {
                                    src: pkt.src,
                                    dst: n,
                                    body: unshare(body),
                                },
                                end,
                            )?;
                        }
                        Ok(())
                    }
                    Recv::Buffered | Recv::Duplicate => Ok(()),
                }
            }
        }
    }

    /// Charges the software receive overhead for one arriving frame.
    fn charge_recv(&mut self, n: NodeId, now: SimTime) -> SimTime {
        let idle = self.idle_reason(n);
        let mut recv = self.cfg.costs.msg_recv;
        if self.cfg.threads.is_multithreaded() {
            // All arrivals are handled asynchronously (signals) when
            // multithreading is on — the fixed cost of §4.3.
            recv += self.cfg.costs.async_arrival;
        }
        self.charge(n, now, recv, Category::DsmOverhead, idle)
    }

    /// Dispatches one protocol message to its handler. The caller has
    /// already charged the receive overhead; `end` is when the CPU
    /// finished absorbing the frame.
    fn dispatch(&mut self, msg: Msg, end: SimTime) -> Result<(), SimError> {
        let n = msg.dst;
        if self.trace {
            eprintln!(
                "[{end}] dispatch at n{n} from {}: {:?}",
                msg.src,
                msg.body.kind()
            );
        }
        match msg.body {
            MsgBody::DiffRequest {
                page,
                stamps,
                want_base,
                prefetch,
                adaptive,
                droppable,
                vc,
            } => {
                self.serve_diff_request(
                    n, msg.src, page, &stamps, want_base, prefetch, adaptive, droppable, &vc, end,
                );
                Ok(())
            }
            MsgBody::DiffReply {
                page,
                diffs,
                base,
                prefetch,
                intervals,
                ..
            } => {
                // Learn the piggybacked notices FIRST: the diffs may
                // come from intervals causally after ones we have not
                // heard about yet.
                for rec in &intervals {
                    self.record_interval(n, rec, end);
                }
                self.handle_diff_reply(n, page, diffs, base, prefetch, end)
            }
            MsgBody::LockRequest {
                lock,
                requester,
                vc,
            } => {
                let end = self.charge(
                    n,
                    end,
                    self.cfg.costs.sync_process,
                    Category::DsmOverhead,
                    None,
                );
                self.route_as_manager(
                    n,
                    lock,
                    RemoteWaiter {
                        node: requester,
                        vc,
                    },
                    end,
                );
                Ok(())
            }
            MsgBody::LockForward {
                lock,
                requester,
                vc,
            } => {
                let end = self.charge(
                    n,
                    end,
                    self.cfg.costs.sync_process,
                    Category::DsmOverhead,
                    None,
                );
                self.handle_forward_arrival(
                    n,
                    lock,
                    RemoteWaiter {
                        node: requester,
                        vc,
                    },
                    end,
                );
                Ok(())
            }
            MsgBody::LockGrant {
                lock,
                intervals,
                vc,
            } => {
                let end = self.charge(
                    n,
                    end,
                    self.cfg.costs.sync_process,
                    Category::DsmOverhead,
                    None,
                );
                for rec in &intervals {
                    self.record_interval(n, rec, end);
                }
                self.nodes[n].vc.join(&vc);
                match self.nodes[n].locks.handle_grant(lock) {
                    GrantOutcome::WakeLocal(tid) => {
                        self.oracle.record_grant(lock, tid);
                        // A remote grant opens a new lock epoch for
                        // the acquirer: its delta chain breaks so the
                        // jump to the critical section's pages is
                        // not scored, but the window survives.
                        let local = tid.local_index(self.tpn());
                        if let Some(ad) = self.nodes[n].adaptive.as_mut() {
                            ad.detectors[local].break_chain();
                            ad.planned[local] = None;
                        }
                        let end = self.auto_prefetch_at_sync(n, SyncKey::Lock(lock), end);
                        self.wake(tid, end)
                    }
                    GrantOutcome::TokenParked => {
                        // Never strand remote requesters behind a
                        // parked token.
                        if let Some(w) = self.nodes[n].locks.take_remote_if_free(lock) {
                            self.grant_lock(n, lock, w, end);
                        }
                        Ok(())
                    }
                }
            }
            MsgBody::BarrierArrive {
                id,
                from,
                vc,
                intervals,
            } => {
                let end = self.charge(
                    n,
                    end,
                    self.cfg.costs.sync_process,
                    Category::DsmOverhead,
                    None,
                );
                debug_assert_eq!(n, MANAGER);
                self.manager_collect(id, from, vc, intervals, end)
            }
            MsgBody::BarrierRelease { id, vc, intervals } => {
                self.process_barrier_release(n, id, &vc, &intervals, end)
            }
            MsgBody::SuspectReport { suspect } => {
                debug_assert_eq!(n, MANAGER);
                let end = self.charge(
                    n,
                    end,
                    self.cfg.costs.sync_process,
                    Category::DsmOverhead,
                    None,
                );
                if self.cfg.recovery.enabled {
                    self.schedule_confirm(suspect, end);
                }
                Ok(())
            }
            MsgBody::RecoveryStart { victim, .. } => {
                self.charge(
                    n,
                    end,
                    self.cfg.costs.sync_process,
                    Category::DsmOverhead,
                    None,
                );
                self.recov.detector.mark_down(n, victim);
                Ok(())
            }
        }
    }

    /// Handles a lock forward at arrival (with messaging for chains).
    fn handle_forward_arrival(
        &mut self,
        o: NodeId,
        lock: LockId,
        waiter: RemoteWaiter,
        at: SimTime,
    ) {
        let requester = waiter.node;
        let vc = waiter.vc.clone();
        match self.nodes[o].locks.handle_forward(lock, waiter) {
            ForwardOutcome::Grant(w) => {
                self.grant_lock(o, lock, w, at);
            }
            ForwardOutcome::Queued => {}
            ForwardOutcome::Chain(next) => {
                let end = self.charge(o, at, self.cfg.costs.msg_send, Category::DsmOverhead, None);
                self.post(
                    end,
                    o,
                    next,
                    MsgBody::LockForward {
                        lock,
                        requester,
                        vc,
                    },
                );
            }
        }
    }

    /// Services a diff (or prefetch) request at node `m`.
    #[allow(clippy::too_many_arguments)]
    #[allow(clippy::too_many_arguments)]
    fn serve_diff_request(
        &mut self,
        m: NodeId,
        requester: NodeId,
        page: PageId,
        stamps: &[VectorClock],
        want_base: bool,
        prefetch: bool,
        adaptive: bool,
        droppable: bool,
        requester_vc: &VectorClock,
        at: SimTime,
    ) {
        let mut end = at;
        let mut reply_diffs = Vec::new();

        if self.cfg.directory.enabled {
            // Any served copy closes the page's first-touch window.
            self.claimed[page.index()] = true;
            if self.heap.home(page) == m {
                self.nodes[m].counters.dir_home_hits += 1;
            }
        }

        if prefetch {
            // §3.1: servicing a prefetch for a dirty page splits the
            // open interval so later writes are distinguishable, and
            // the fresh diff rides along in the reply.
            let split = {
                let mem = self.mem.lock().expect("mem mutex");
                mem[m].pages[page.index()].twin.is_some()
            };
            if split {
                let node = &mut self.nodes[m];
                node.vc.tick(m);
                let stamp = node.vc.clone();
                let seq = stamp.get(m);
                let mut mem = self.mem.lock().expect("mem mutex");
                let entry = &mut mem[m].pages[page.index()];
                let twin = entry.twin.take().expect("twin present");
                let diff = Diff::between(&twin, &entry.data);
                if self.oracle.cfg.invariants {
                    self.oracle
                        .check_roundtrip(&twin, &entry.data, &diff, m, page, end);
                }
                mem[m].pool.put_arc(twin);
                drop(mem);
                end = self.charge(
                    m,
                    end,
                    self.cfg.costs.diff_create(diff.payload_bytes())
                        + self.cfg.costs.prefetch_service_extra,
                    Category::DsmOverhead,
                    None,
                );
                if let Some((wp, lo, hi)) = self.watch {
                    if page.index() == wp && diff.covers(lo, hi) {
                        let mem2 = self.mem.lock().expect("mem mutex");
                        let val = f64::from_bits(u64::from_le_bytes(
                            mem2[m].pages[page.index()].data.bytes()[lo..lo + 8]
                                .try_into()
                                .expect("8 bytes"),
                        ));
                        eprintln!("WATCH splitclose n{m}: stamp {stamp} seq {seq} val {val}");
                    }
                }
                self.tracer.emit(
                    end,
                    m as u32,
                    NO_THREAD,
                    NO_CAUSE,
                    TraceEvent::DiffCreate {
                        page: page.index() as u32,
                        seq,
                        bytes: diff.encoded_bytes() as u32,
                    },
                );
                let diff = Arc::new(diff);
                let node = &mut self.nodes[m];
                node.own_diff_bytes += diff.encoded_bytes();
                node.own_diffs
                    .insert((page.index(), seq), Arc::clone(&diff));
                let rec = IntervalRecord {
                    origin: m,
                    stamp: stamp.clone(),
                    pages: vec![page],
                };
                self.nodes[m].learn_interval(&rec);
                reply_diffs.push(DiffPayload {
                    origin: m,
                    stamp,
                    diff,
                });
            }
        }

        for stamp in stamps {
            let seq = stamp.get(m);
            let diff = self.nodes[m]
                .own_diffs
                .get(&(page.index(), seq))
                .unwrap_or_else(|| panic!("requested diff ({page}, seq {seq}) missing at node {m}"))
                .clone();
            reply_diffs.push(DiffPayload {
                origin: m,
                stamp: stamp.clone(),
                diff,
            });
        }

        let base = if want_base {
            let mem = self.mem.lock().expect("mem mutex");
            let entry = &mem[m].pages[page.index()];
            // Serve from the twin when the page is dirty: the base
            // must not leak this node's *open-interval* writes.
            // Closed diffs are byte-sparse relative to the writer's
            // twin, so a requester holding uncommitted mid-interval
            // bytes would end up with a mix of two values once the
            // interval's diff arrives.
            let data = match &entry.twin {
                // Zero-copy: the reply shares the twin frame. If this
                // node writes the page again before the frame drains,
                // `Arc::make_mut` in the write path un-shares it.
                Some(twin) => Arc::clone(twin),
                None => Arc::new(entry.data.clone()),
            };
            drop(mem);
            let mut incorporated = self.nodes[m].board.applied_for(page);
            for rec in &self.nodes[m].known_intervals {
                if rec.origin == m && rec.pages.contains(&page) {
                    incorporated.push((m, rec.stamp.clone()));
                }
            }
            Some(BasePayload {
                page: data,
                incorporated,
            })
        } else {
            None
        };

        let mut intervals = self.nodes[m].intervals_unknown_to(requester_vc);
        if want_base && self.cfg.directory.enabled {
            // Heal a pruned requester: a first touch needs the page's
            // full notice history, including intervals the
            // requester's clock already covers (knowledge it learned
            // but whose notices it pruned). Records are re-served
            // whole — never synthesized per-page slices — so a
            // requester that genuinely never saw one learns every
            // page it names.
            let healed: Vec<IntervalRecord> = self.nodes[m]
                .known_intervals
                .iter()
                .filter(|rec| {
                    rec.origin != requester
                        && rec.pages.contains(&page)
                        && requester_vc.dominates(&rec.stamp)
                })
                .cloned()
                .collect();
            self.nodes[m].counters.dir_forwards += healed.len() as u64;
            intervals.extend(healed);
        }
        end = self.charge(m, end, self.cfg.costs.msg_send, Category::DsmOverhead, None);
        let sent = self.post(
            end,
            m,
            requester,
            MsgBody::DiffReply {
                page,
                diffs: reply_diffs,
                base,
                prefetch,
                adaptive,
                droppable,
                intervals,
            },
        );
        if !sent {
            // Only droppable prefetch replies can be lost; the
            // requester's demand-fault path recovers, and the loss
            // shows up as a too-late or no-pf fault there.
            self.nodes[m].counters.pf_reply_drops += 1;
            self.tracer.emit(
                end,
                m as u32,
                NO_THREAD,
                NO_CAUSE,
                TraceEvent::PrefetchDrop {
                    page: page.index() as u32,
                    reply: true,
                },
            );
        }
    }

    fn handle_diff_reply(
        &mut self,
        n: NodeId,
        page: PageId,
        diffs: Vec<DiffPayload>,
        base: Option<BasePayload>,
        prefetch: bool,
        end: SimTime,
    ) -> Result<(), SimError> {
        if prefetch {
            // Store in the prefetch heap; consumed at access time.
            // Diffs that a faster fault path already applied are
            // dropped — replaying them later would corrupt the page.
            let node = &mut self.nodes[n];
            for d in diffs {
                if node.board.is_applied(page, d.origin, &d.stamp) {
                    continue;
                }
                node.cache.insert(
                    page,
                    CachedDiff {
                        origin: d.origin,
                        stamp: d.stamp,
                        diff: d.diff,
                    },
                );
            }
            if let Some(b) = base {
                node.base_cache.insert(page, b);
            }
            let mut mem = self.mem.lock().expect("mem mutex");
            if let Some(count) = mem[n].prefetch_inflight.get_mut(&page) {
                *count = count.saturating_sub(1);
                if *count == 0 {
                    mem[n].prefetch_inflight.remove(&page);
                }
            }
            drop(mem);
            // A too-late join rides on this reply stream: the
            // faulting thread is blocked waiting for exactly these
            // frames (the data itself sits in the caches above).
            if self.nodes[n].fetches.get(&page).is_some_and(|f| f.joined) {
                let fetch = self.nodes[n].fetches.get_mut(&page).expect("joined fetch");
                fetch.outstanding -= 1;
                if fetch.outstanding == 0 {
                    let fetch = self.nodes[n].fetches.remove(&page).expect("fetch exists");
                    let end = self.apply_with(n, page, fetch.collected, fetch.base, end);
                    return self.finish_fetch(n, page, fetch.waiters, fetch.started, end);
                }
            }
            return Ok(());
        }

        let Some(fetch) = self.nodes[n].fetches.get_mut(&page) else {
            // A straggler reply for a fetch that already completed
            // (e.g. a duplicate path); keep only still-unapplied diffs.
            for d in diffs {
                if self.nodes[n].board.is_applied(page, d.origin, &d.stamp) {
                    continue;
                }
                self.nodes[n].cache.insert(
                    page,
                    CachedDiff {
                        origin: d.origin,
                        stamp: d.stamp,
                        diff: d.diff,
                    },
                );
            }
            return Ok(());
        };
        fetch.collected.extend(diffs);
        if base.is_some() {
            fetch.base = base;
            fetch.base_pending = false;
        }
        fetch.outstanding -= 1;
        if fetch.outstanding > 0 {
            return Ok(());
        }
        let fetch = self.nodes[n].fetches.remove(&page).expect("fetch exists");
        let end = self.apply_with(n, page, fetch.collected, fetch.base, end);
        self.finish_fetch(n, page, fetch.waiters, fetch.started, end)
    }

    /// Final leg of a completed fetch (demand or too-late join):
    /// re-drives anything that went missing while the replies were in
    /// flight, then validates the page and wakes the waiters.
    fn finish_fetch(
        &mut self,
        n: NodeId,
        page: PageId,
        waiters: Vec<ThreadId>,
        started: SimTime,
        end: SimTime,
    ) -> Result<(), SimError> {
        // New notices may have arrived while fetching; keep going.
        let (missing, need_base) = self.missing_for(n, page);
        if !missing.is_empty() || need_base {
            let (end2, _) =
                self.send_fetch_requests(n, page, &missing, need_base, end, false, false);
            let outstanding = self.count_requests(&missing, need_base, page);
            self.nodes[n].fetches.insert(
                page,
                Fetch {
                    outstanding,
                    waiters,
                    collected: Vec::new(),
                    base: None,
                    base_pending: need_base,
                    started,
                    joined: false,
                },
            );
            let _ = end2;
            return Ok(());
        }

        self.validate_page(n, page);
        self.nodes[n].counters.miss_latency_sum += end.saturating_since(started);
        if let Some((begin, cls)) = self.tracer.take_fault(n as u32, page.index() as u32) {
            let thread = waiters.first().map_or(NO_THREAD, |t| t.0 as u32);
            self.tracer.emit(
                end,
                n as u32,
                thread,
                begin,
                TraceEvent::FaultEnd {
                    page: page.index() as u32,
                    class: cls,
                },
            );
        }
        for tid in waiters {
            self.wake(tid, end)?;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Networking
    // ------------------------------------------------------------------

    /// Sends a protocol message; returns false if the network dropped
    /// it. Only droppable (prefetch) traffic can be dropped: it
    /// travels as fire-and-forget datagrams. Everything else rides
    /// the reliable transport — sequenced, acknowledged, and
    /// retransmitted until delivered (or the retry budget aborts the
    /// run).
    fn post(&mut self, at: SimTime, src: NodeId, dst: NodeId, body: MsgBody) -> bool {
        self.note_sent(src, dst, at);
        // One allocation per logical message: the transport's
        // retransmit buffer, every wire frame (including fault-plan
        // duplicates), and the receive path all share this Arc.
        let body = Arc::new(body);
        if body.droppable() {
            let outcome = self.net.send(
                at,
                src,
                dst,
                body.wire_bytes() as u32,
                Reliability::Droppable,
                body.kind(),
            );
            let send_id = self.tracer.emit(
                at,
                src as u32,
                NO_THREAD,
                NO_CAUSE,
                TraceEvent::MsgSend {
                    kind: kind_code(&body),
                    peer: dst as u32,
                    seq: 0,
                    bytes: body.wire_bytes() as u32,
                    retransmit: false,
                },
            );
            let dup = outcome.dup_time();
            let delivered = outcome.arrival_time().is_some();
            for arrival in outcome.arrival_time().into_iter().chain(dup) {
                self.queue.push(
                    arrival,
                    Event::Arrival(Packet {
                        src,
                        dst,
                        frame: Frame::Datagram { body: body.clone() },
                        cause: send_id,
                    }),
                );
            }
            delivered
        } else {
            let (seq, rto) = self.transport.register(src, dst, body.clone(), at);
            self.transmit_data(at, src, dst, seq, body, rto, false);
            true
        }
    }

    /// Puts one sequenced data frame on the wire and arms its retry
    /// timer. The caller has already charged the send cost. The frame
    /// itself may still be lost or duplicated by the fault plan; the
    /// timer covers the loss case and the receiver's transport
    /// suppresses the duplicate case.
    #[allow(clippy::too_many_arguments)]
    fn transmit_data(
        &mut self,
        at: SimTime,
        src: NodeId,
        dst: NodeId,
        seq: u64,
        body: Arc<MsgBody>,
        rto: rsdsm_simnet::SimDuration,
        retransmit: bool,
    ) {
        self.note_sent(src, dst, at);
        let outcome = self.net.send(
            at,
            src,
            dst,
            body.wire_bytes() as u32,
            Reliability::Reliable,
            body.kind(),
        );
        let cause = if retransmit {
            self.tracer.first_send(src as u32, dst as u32, seq)
        } else {
            NO_CAUSE
        };
        let send_id = self.tracer.emit(
            at,
            src as u32,
            NO_THREAD,
            cause,
            TraceEvent::MsgSend {
                kind: kind_code(&body),
                peer: dst as u32,
                seq,
                bytes: body.wire_bytes() as u32,
                retransmit,
            },
        );
        if !retransmit {
            self.tracer
                .note_first_send(src as u32, dst as u32, seq, send_id);
        }
        let dup = outcome.dup_time();
        for arrival in outcome.arrival_time().into_iter().chain(dup) {
            self.queue.push(
                arrival,
                Event::Arrival(Packet {
                    src,
                    dst,
                    frame: Frame::Data {
                        seq,
                        body: body.clone(),
                    },
                    cause: send_id,
                }),
            );
        }
        self.queue
            .push(at + rto, Event::RetryTimeout { src, dst, seq });
    }

    /// Acknowledges data frame `seq` from `src`, received at `n`.
    ///
    /// The ack enters the network `ack_process` after `at`, bypassing
    /// the node's CPU queue (kernel-level processing); the CPU cost is
    /// still booked against the node's account.
    fn send_ack(&mut self, n: NodeId, src: NodeId, seq: u64, at: SimTime) -> SimTime {
        self.charge(
            n,
            at,
            self.cfg.costs.ack_process,
            Category::DsmOverhead,
            None,
        );
        let end = at + self.cfg.costs.ack_process;
        self.note_sent(n, src, end);
        self.transport.note_ack_sent();
        // Acks are single-shot: a lost ack provokes a retransmission,
        // which provokes a fresh ack. The fault plan may still drop
        // or duplicate them (class `Ack`).
        let outcome = self.net.send(
            end,
            n,
            src,
            self.cfg.transport.ack_bytes,
            Reliability::Reliable,
            "ack",
        );
        let send_id = self.tracer.emit(
            end,
            n as u32,
            NO_THREAD,
            NO_CAUSE,
            TraceEvent::MsgSend {
                kind: kind::ACK,
                peer: src as u32,
                seq,
                bytes: self.cfg.transport.ack_bytes,
                retransmit: false,
            },
        );
        let dup = outcome.dup_time();
        for arrival in outcome.arrival_time().into_iter().chain(dup) {
            self.queue.push(
                arrival,
                Event::Arrival(Packet {
                    src: n,
                    dst: src,
                    frame: Frame::Ack { seq },
                    cause: send_id,
                }),
            );
        }
        end
    }

    /// Handles a fired retransmission timer: lazily discards it if the
    /// frame was acked, otherwise charges a fresh send and puts the
    /// frame back on the wire with its backed-off timeout.
    fn on_retry_timeout(
        &mut self,
        src: NodeId,
        dst: NodeId,
        seq: u64,
        now: SimTime,
    ) -> Result<(), SimError> {
        match self.transport.on_timeout(src, dst, seq) {
            TimeoutAction::Cancelled => Ok(()),
            TimeoutAction::Exhausted { attempts } => {
                // With recovery off this is fatal, as it always was.
                // The manager is unrecoverable either way: it hosts
                // the coordination state recovery itself needs. A cut
                // severing the path to it is the one exception — the
                // frame parks and re-arms at the heal.
                if !self.cfg.recovery.enabled
                    || (dst == MANAGER && !self.net.link_cut(now, src, dst))
                {
                    return Err(SimError::Transport(format!(
                        "frame n{src}->n{dst} seq {seq} unacknowledged after {attempts} transmissions (gave up at {now})"
                    )));
                }
                // Recovery on: park the frame and hand the peer to
                // the failure detector. The frame re-arms when the
                // peer is cleared or rejoins.
                if self.trace {
                    eprintln!("[{now}] park n{src}->n{dst} seq {seq} after {attempts} attempts");
                }
                self.recov.parked_frames.push((src, dst, seq));
                self.recov.stats.frames_parked += 1;
                self.tracer.emit(
                    now,
                    src as u32,
                    NO_THREAD,
                    self.tracer.first_send(src as u32, dst as u32, seq),
                    TraceEvent::FrameParked {
                        peer: dst as u32,
                        seq,
                    },
                );
                self.raise_suspicion(src, dst, now);
                Ok(())
            }
            TimeoutAction::Retransmit { body, rto } => {
                if self.trace {
                    eprintln!(
                        "[{now}] retransmit n{src}->n{dst} seq {seq}: {:?}",
                        body.kind()
                    );
                }
                let idle = self.idle_reason(src);
                let end = self.charge(
                    src,
                    now,
                    self.cfg.costs.msg_send,
                    Category::DsmOverhead,
                    idle,
                );
                self.tracer.emit(
                    now,
                    src as u32,
                    NO_THREAD,
                    self.tracer.first_send(src as u32, dst as u32, seq),
                    TraceEvent::TransportRetry {
                        peer: dst as u32,
                        seq,
                        rto_ns: rto.as_nanos(),
                    },
                );
                self.transmit_data(end, src, dst, seq, body, rto, true);
                Ok(())
            }
        }
    }
}

/// Builds the authoritative final memory image: for every page, the
/// home node's copy plus every diff it has not incorporated (in
/// happens-before order), plus any still-open modifications.
fn materialize(heap: &Heap, nodes: &[NodeState], mem: &[NodeMem]) -> Vec<Page> {
    let total_pages = heap.page_count();
    let mut out = Vec::with_capacity(total_pages);
    for p in 0..total_pages {
        let page = PageId::new(p as u32);
        let home = heap.home(page);
        let mut data = mem[home].pages[p].data.clone();

        let applied: std::collections::HashSet<(usize, u32)> = nodes[home]
            .board
            .applied_for(page)
            .into_iter()
            .map(|(o, s)| (o, s.get(o)))
            .collect();

        // Closed intervals not yet incorporated at the home.
        let mut pendings: Vec<(&VectorClock, &Diff)> = Vec::new();
        for node in nodes {
            for rec in &node.known_intervals {
                if rec.origin != node.id || !rec.pages.contains(&page) {
                    continue;
                }
                let seq = rec.stamp.get(node.id);
                if node.id == home || applied.contains(&(node.id, seq)) {
                    continue;
                }
                if let Some(diff) = node.own_diffs.get(&(p, seq)) {
                    pendings.push((&rec.stamp, &**diff));
                }
            }
        }
        pendings.sort_by(|(a, _), (b, _)| {
            let sum = |vc: &VectorClock| -> u64 { (0..vc.len()).map(|i| vc.get(i) as u64).sum() };
            sum(a).cmp(&sum(b)).then_with(|| {
                (0..a.len())
                    .map(|i| a.get(i))
                    .cmp((0..b.len()).map(|i| b.get(i)))
            })
        });
        for (_, diff) in pendings {
            diff.apply(&mut data);
        }

        // Open (never-closed) modifications are the latest by program
        // order; apply them last.
        for (m, node_mem) in mem.iter().enumerate() {
            if m == home {
                continue;
            }
            let entry = &node_mem.pages[p];
            if let Some(twin) = &entry.twin {
                Diff::between(twin, &entry.data).apply(&mut data);
            }
        }
        // The home's own open modifications are already in its data.
        out.push(data);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heap::HomePolicy;

    /// Builds a minimal cluster state for materialize(): 2 nodes, one
    /// page homed on node 0.
    fn tiny_cluster() -> (Heap, Vec<NodeState>, Vec<NodeMem>) {
        let mut heap = Heap::new(2);
        let _v: crate::heap::SharedVec<u64> = heap.alloc(512, HomePolicy::Single(0));
        let nodes = vec![NodeState::new(0, 2, 1), NodeState::new(1, 2, 1)];
        let mem = vec![NodeMem::new(1, |_| true), NodeMem::new(1, |_| false)];
        (heap, nodes, mem)
    }

    #[test]
    fn materialize_uses_home_copy() {
        let (heap, nodes, mut mem) = tiny_cluster();
        mem[0].pages[0].data.write_u64(0, 77);
        let pages = materialize(&heap, &nodes, &mem);
        assert_eq!(pages[0].read_u64(0), 77);
    }

    #[test]
    fn materialize_applies_unincorporated_closed_diffs() {
        let (heap, mut nodes, mut mem) = tiny_cluster();
        mem[0].pages[0].data.write_u64(0, 1);

        // Node 1 closed an interval writing offset 8 = 42.
        let mut twin = Page::new();
        twin.write_u64(0, 1);
        let mut data = twin.clone();
        data.write_u64(8, 42);
        let diff = Diff::between(&twin, &data);
        nodes[1].vc.tick(1);
        let stamp = nodes[1].vc.clone();
        nodes[1].own_diffs.insert((0, 1), Arc::new(diff));
        nodes[1].learn_interval(&IntervalRecord {
            origin: 1,
            stamp,
            pages: vec![PageId::new(0)],
        });

        let pages = materialize(&heap, &nodes, &mem);
        assert_eq!(pages[0].read_u64(0), 1, "home bytes preserved");
        assert_eq!(pages[0].read_u64(8), 42, "closed diff applied");
    }

    #[test]
    fn materialize_skips_diffs_already_incorporated_at_home() {
        let (heap, mut nodes, mut mem) = tiny_cluster();
        // Home already applied node 1's interval: data has the NEW
        // value; the diff would "re-apply" an identical value, but a
        // *later* home-local overwrite must not be clobbered.
        mem[0].pages[0].data.write_u64(8, 99); // newer than the diff below

        let twin = Page::new();
        let mut data = Page::new();
        data.write_u64(8, 42);
        let diff = Diff::between(&twin, &data);
        nodes[1].vc.tick(1);
        let stamp = nodes[1].vc.clone();
        nodes[1].own_diffs.insert((0, 1), Arc::new(diff));
        nodes[1].learn_interval(&IntervalRecord {
            origin: 1,
            stamp: stamp.clone(),
            pages: vec![PageId::new(0)],
        });
        // Mark it applied at the home.
        nodes[0].board.mark_applied(PageId::new(0), 1, &stamp);

        let pages = materialize(&heap, &nodes, &mem);
        assert_eq!(pages[0].read_u64(8), 99, "incorporated diff not re-applied");
    }

    #[test]
    fn materialize_applies_open_twins_last() {
        let (heap, nodes, mut mem) = tiny_cluster();
        // Node 1 has an open interval: twin captures the pre-state,
        // data has uncommitted writes.
        let twin = Page::new();
        let mut data = Page::new();
        data.write_u64(16, 5);
        mem[1].pages[0].twin = Some(Arc::new(twin));
        mem[1].pages[0].data = data;

        let pages = materialize(&heap, &nodes, &mem);
        assert_eq!(pages[0].read_u64(16), 5, "open writes visible");
    }
}
