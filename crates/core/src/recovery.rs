//! Crash-stop failure detection and recovery policy.
//!
//! The paper's protocol assumes all nodes stay up for the whole run;
//! this module supplies the pieces that let a run survive a scheduled
//! [`NodeCrash`](rsdsm_simnet::NodeCrash):
//!
//! - [`RecoveryConfig`]: lease parameters, checkpoint cadence, and
//!   modeled restart/restore costs.
//! - [`FailureDetector`]: per-link leases refreshed by any arriving
//!   frame (heartbeats piggyback on protocol traffic; explicit
//!   heartbeat frames are sent only on idle links), surfacing
//!   suspicion as a typed [`PeerStatus`] instead of silently
//!   aborting on retry exhaustion.
//! - [`RecoveryStats`]: counters reported in
//!   [`RunReport`](crate::RunReport) and
//!   [`fault_summary_line`](crate::RunReport::fault_summary_line).
//!
//! The engine owns the actual recovery sequencing (event parking,
//! checkpoint capture at barriers, restart scheduling); see
//! `DESIGN.md` §6e for the protocol.

use rsdsm_simnet::{NodeId, PersistConfig, SimDuration, SimTime};

/// What a node currently believes about a peer's liveness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PeerStatus {
    /// The lease is fresh; the peer is assumed up.
    #[default]
    Alive,
    /// The lease expired or a reliable frame exhausted its retries;
    /// the manager has been asked to confirm.
    Suspected,
    /// The peer is alive but on the far side of a known network cut:
    /// suspicion against it must not escalate to a `RecoveryStart`
    /// (it will rejoin when the partition heals), and hearing a stray
    /// pre-cut frame from it does not clear the mark.
    Unreachable,
    /// The manager confirmed the failure; traffic to the peer is
    /// parked until it rejoins from its checkpoint.
    Down,
}

/// Tunables for failure detection, checkpointing, and recovery.
///
/// Defaults to [`RecoveryConfig::off`]: no heartbeats, no
/// checkpoints, and retry exhaustion aborts the run exactly as
/// before. With `enabled`, exhaustion and lease expiry instead feed
/// the failure detector, and crashed nodes are restarted from their
/// last barrier-aligned checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryConfig {
    /// Master switch for heartbeats, detection, and restart. Crash
    /// events in the fault plan take effect regardless; this governs
    /// whether the system reacts to them or (as before) aborts once
    /// retries are exhausted.
    pub enabled: bool,
    /// Take a checkpoint every this many barrier epochs (0 = never).
    /// Independent of `enabled` so checkpoint overhead can be
    /// measured on crash-free runs.
    pub checkpoint_every: u32,
    /// Period of per-node heartbeat ticks. Each tick checks leases
    /// and sends an explicit heartbeat frame on links with no
    /// outbound traffic within the last period.
    pub heartbeat_every: SimDuration,
    /// Hierarchical heartbeating for large clusters: instead of every
    /// node monitoring every peer (O(N²) frames per idle round), each
    /// node monitors only its rack leader, leaders monitor their rack
    /// members plus the manager, and the manager monitors the leaders
    /// (plus its own rack). O(N) frames per idle round; safe because
    /// failure confirmation still resolves against ground truth at
    /// the manager. Off by default — the paper-scale full mesh is
    /// kept bit-identical.
    pub hierarchical: bool,
    /// A peer is suspected when nothing has been heard from it for
    /// this long.
    pub lease_timeout: SimDuration,
    /// Grace period between suspicion reaching the manager and the
    /// failure being confirmed (absorbs false suspicions).
    pub confirm_grace: SimDuration,
    /// Modeled time for a replacement node to boot before state
    /// restore begins (crash-stop failures only; crash-restart
    /// outages use the plan's `restart_after`).
    pub restart_base: SimDuration,
    /// Modeled per-page cost of reloading the last checkpoint on the
    /// restarted node. Used only when `persist` is disabled; with
    /// persistence on, the restore cost comes from the device read
    /// model instead.
    pub restore_per_page: SimDuration,
    /// Durable-checkpoint persistence: when enabled, checkpoints are
    /// written to a modeled per-node persistent device through the
    /// two-slot commit protocol (see `core::checkpoint`), the persist
    /// cost is charged at capture, and recovery restores from the
    /// persisted image — surviving crashes that land mid-persist.
    pub persist: PersistConfig,
}

impl RecoveryConfig {
    /// Recovery disabled: the pre-recovery abort-on-exhaustion
    /// behavior, with zero overhead and bit-identical runs.
    pub fn off() -> Self {
        RecoveryConfig {
            enabled: false,
            checkpoint_every: 0,
            heartbeat_every: SimDuration::from_micros(10_000),
            hierarchical: false,
            lease_timeout: SimDuration::from_micros(50_000),
            confirm_grace: SimDuration::from_micros(10_000),
            restart_base: SimDuration::from_micros(500_000),
            restore_per_page: SimDuration::from_micros(20),
            persist: PersistConfig::off(),
        }
    }

    /// Recovery enabled with checkpoints every `checkpoint_every`
    /// barrier epochs and default lease parameters.
    pub fn on(checkpoint_every: u32) -> Self {
        RecoveryConfig {
            enabled: true,
            checkpoint_every,
            ..RecoveryConfig::off()
        }
    }
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig::off()
    }
}

/// Counters for crashes, detection, checkpointing, and recovery.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Crash events injected from the fault plan.
    pub crashes: u64,
    /// Explicit heartbeat frames sent (idle links only).
    pub heartbeats_sent: u64,
    /// Suspicion episodes raised (lease expiry or retry exhaustion).
    pub suspicions: u64,
    /// Suspicions raised against a node that was in fact up.
    pub false_suspicions: u64,
    /// Reliable frames parked after exhausting retries toward a
    /// suspected peer (re-armed when the peer is cleared or rejoins).
    pub frames_parked: u64,
    /// Barrier-aligned checkpoints captured.
    pub checkpoints_taken: u64,
    /// Total encoded size of those checkpoints.
    pub checkpoint_bytes: u64,
    /// Nodes brought back into the run from a checkpoint.
    pub recoveries: u64,
    /// Total simulated time from each crash to the matching rejoin.
    pub recovery_time: SimDuration,
    /// Network partition cuts executed from the fault plan.
    pub partitions: u64,
    /// Minority nodes frozen at a cut (suspected-but-alive: parked by
    /// the quorum rule instead of being declared crashed).
    pub partition_freezes: u64,
    /// Minority nodes reconciled back into the run after a heal.
    pub partition_rejoins: u64,
    /// Total simulated time from each cut to the matching rejoin
    /// (freeze + checkpoint restore + replay).
    pub partition_reconcile_time: SimDuration,
    /// Bytes written to the persistent devices (segmented images plus
    /// commit records; zero unless persistence is enabled).
    pub persist_bytes: u64,
    /// Device flush operations issued while persisting checkpoints.
    pub flushes: u64,
    /// Device fence operations issued while persisting checkpoints.
    pub fences: u64,
    /// Persisted slots a crash left detectably torn (discarded by
    /// recovery's slot classification).
    pub torn_discards: u64,
    /// Recoveries that fell back to the previous committed slot
    /// because the newest persist was torn by the crash.
    pub slot_fallbacks: u64,
}

/// Per-link lease bookkeeping: when each node last heard from each
/// peer, and what it currently believes about the peer.
#[derive(Debug)]
pub struct FailureDetector {
    lease: SimDuration,
    last_heard: Vec<Vec<SimTime>>,
    status: Vec<Vec<PeerStatus>>,
}

impl FailureDetector {
    /// A detector for `nodes` nodes with the given lease timeout; all
    /// leases start fresh at time zero.
    pub fn new(nodes: usize, lease: SimDuration) -> Self {
        FailureDetector {
            lease,
            last_heard: vec![vec![SimTime::ZERO; nodes]; nodes],
            status: vec![vec![PeerStatus::Alive; nodes]; nodes],
        }
    }

    /// Records that `observer` heard from `peer` (any frame arrival
    /// counts — this is the ack/data piggyback path). A suspected
    /// peer that is heard from again is cleared back to alive; a
    /// confirmed-down peer is not, until recovery completes.
    pub fn heard(&mut self, observer: NodeId, peer: NodeId, now: SimTime) {
        self.last_heard[observer][peer] = now;
        if self.status[observer][peer] == PeerStatus::Suspected {
            self.status[observer][peer] = PeerStatus::Alive;
        }
    }

    /// True when `observer` has heard nothing from `peer` for longer
    /// than the lease timeout.
    pub fn lease_expired(&self, observer: NodeId, peer: NodeId, now: SimTime) -> bool {
        now > self.last_heard[observer][peer] + self.lease
    }

    /// `observer`'s current belief about `peer`.
    pub fn status(&self, observer: NodeId, peer: NodeId) -> PeerStatus {
        self.status[observer][peer]
    }

    /// Marks `peer` suspected at `observer`. Returns `true` when this
    /// starts a new suspicion episode (the peer was believed alive).
    pub fn suspect(&mut self, observer: NodeId, peer: NodeId) -> bool {
        if self.status[observer][peer] == PeerStatus::Alive {
            self.status[observer][peer] = PeerStatus::Suspected;
            true
        } else {
            false
        }
    }

    /// Marks `peer` confirmed down at `observer`.
    pub fn mark_down(&mut self, observer: NodeId, peer: NodeId) {
        self.status[observer][peer] = PeerStatus::Down;
    }

    /// Marks `peer` unreachable at `observer` (on the far side of a
    /// known cut). Sticky like `Down`: only [`FailureDetector::clear`]
    /// resets it, at rejoin.
    pub fn mark_unreachable(&mut self, observer: NodeId, peer: NodeId) {
        self.status[observer][peer] = PeerStatus::Unreachable;
    }

    /// Clears all state about `peer` (it rejoined, or a suspicion was
    /// resolved as false): every observer believes it alive with a
    /// fresh lease, and `peer` itself gets fresh leases on everyone.
    pub fn clear(&mut self, peer: NodeId, now: SimTime) {
        let nodes = self.status.len();
        for observer in 0..nodes {
            self.status[observer][peer] = PeerStatus::Alive;
            self.last_heard[observer][peer] = now;
            self.last_heard[peer][observer] = now;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(n: u64) -> SimDuration {
        SimDuration::from_micros(n)
    }

    #[test]
    fn lease_expires_only_after_timeout() {
        let mut d = FailureDetector::new(3, us(100));
        let t0 = SimTime::ZERO;
        d.heard(0, 1, t0 + us(50));
        assert!(!d.lease_expired(0, 1, t0 + us(150)));
        assert!(d.lease_expired(0, 1, t0 + us(151)));
    }

    #[test]
    fn hearing_from_a_suspect_clears_it() {
        let mut d = FailureDetector::new(2, us(10));
        assert!(d.suspect(0, 1), "first suspicion is new");
        assert!(!d.suspect(0, 1), "repeat suspicion is not");
        assert_eq!(d.status(0, 1), PeerStatus::Suspected);
        d.heard(0, 1, SimTime::ZERO + us(5));
        assert_eq!(d.status(0, 1), PeerStatus::Alive);
    }

    #[test]
    fn down_is_sticky_until_cleared() {
        let mut d = FailureDetector::new(2, us(10));
        d.mark_down(0, 1);
        d.heard(0, 1, SimTime::ZERO + us(1));
        assert_eq!(d.status(0, 1), PeerStatus::Down);
        d.clear(1, SimTime::ZERO + us(2));
        assert_eq!(d.status(0, 1), PeerStatus::Alive);
        assert!(!d.lease_expired(1, 0, SimTime::ZERO + us(3)));
    }

    #[test]
    fn unreachable_is_sticky_and_not_a_new_suspicion() {
        let mut d = FailureDetector::new(2, us(10));
        d.mark_unreachable(0, 1);
        // A stray pre-cut frame does not clear the mark...
        d.heard(0, 1, SimTime::ZERO + us(1));
        assert_eq!(d.status(0, 1), PeerStatus::Unreachable);
        // ...and lease expiry cannot start a suspicion episode on it.
        assert!(!d.suspect(0, 1));
        // Rejoin clears it like any other mark.
        d.clear(1, SimTime::ZERO + us(2));
        assert_eq!(d.status(0, 1), PeerStatus::Alive);
    }

    #[test]
    fn default_config_is_off() {
        let cfg = RecoveryConfig::default();
        assert!(!cfg.enabled);
        assert_eq!(cfg.checkpoint_every, 0);
        let on = RecoveryConfig::on(4);
        assert!(on.enabled);
        assert_eq!(on.checkpoint_every, 4);
        assert_eq!(on.lease_timeout, cfg.lease_timeout);
    }
}
