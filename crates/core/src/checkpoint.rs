//! Barrier-aligned checkpoints of recoverable protocol state.
//!
//! At configurable barrier epochs (see
//! [`RecoveryConfig::checkpoint_every`](crate::RecoveryConfig)) each
//! node snapshots the state a replacement would need to rejoin the
//! run: its page images, vector clock, locally-created diffs (the
//! write-notice log payloads), the interval log, and the lock tokens
//! it holds. Barriers are the natural cut: every local interval is
//! closed, twins are empty, and the barrier epoch number totally
//! orders checkpoints across nodes.
//!
//! Checkpoints have a deterministic byte encoding — so their size can
//! be accounted and a digest pinned — and a [`Checkpoint::digest`]
//! built from the same FNV-1a the consistency oracle uses.
//!
//! # Durable two-slot commit protocol
//!
//! When persistence is on (see
//! [`PersistConfig`](rsdsm_simnet::PersistConfig)), checkpoints are
//! written to a modeled persistent device through a detectably
//! recoverable A/B protocol, so a crash at *any* instant — including
//! mid-persist — leaves the device classifiable:
//!
//! 1. The `RCK1` bytes are wrapped into a *segmented image*
//!    ([`Checkpoint::encode_segmented`]): a header plus fixed-size
//!    segments, each carrying its length and FNV-1a check, so a torn
//!    sector anywhere in the payload is caught by a per-segment
//!    checksum rather than only at the end.
//! 2. The image is written to the persist's slot ([`slot_for_seq`]:
//!    consecutive persists alternate slots), flushed, and fenced.
//! 3. Only then is a fixed-size [`CommitRecord`] — epoch, a
//!    monotonic persist sequence number, and the image's length and
//!    FNV — written to the slot's commit region, flushed, and fenced.
//!
//! [`classify_slot`] reads a (payload, commit) region pair back and
//! returns [`SlotState`]: `Committed` only when the commit record is
//! intact *and* the image it names checks out; any mix of old and new
//! bytes — a torn payload under a stale commit, a torn commit over a
//! fresh payload — classifies as `Torn` and recovery falls back to
//! the other slot.
//!
//! # Examples
//!
//! ```
//! use rsdsm_core::{Checkpoint, PageImage, Page};
//! use rsdsm_protocol::VectorClock;
//!
//! let ckpt = Checkpoint {
//!     node: 1,
//!     epoch: 4,
//!     vc: VectorClock::from_entries(&[3, 7]),
//!     pages: vec![PageImage { index: 0, valid: true, data: Page::new() }],
//!     diffs: vec![],
//!     intervals: vec![],
//!     tokens: vec![],
//! };
//! let bytes = ckpt.encode();
//! let back = Checkpoint::decode(&bytes).unwrap();
//! assert_eq!(back, ckpt);
//! assert_eq!(back.digest(), ckpt.digest());
//! ```

use rsdsm_protocol::{Diff, Page, PageId, VectorClock, PAGE_SIZE};

use crate::msg::{IntervalRecord, LockId};
use crate::node::{NodeMem, NodeState};
use crate::oracle::fnv1a;

/// A node's copy of one page at checkpoint time. Only pages the node
/// ever held a valid copy of are captured (others would be fetched
/// from their home on first touch anyway).
#[derive(Debug, Clone, PartialEq)]
pub struct PageImage {
    /// Global page index.
    pub index: u32,
    /// Whether the copy was accessible when captured (invalid copies
    /// are kept too: they seed diff application after rejoin).
    pub valid: bool,
    /// The page contents.
    pub data: Page,
}

/// One locally-created diff retained in the checkpoint — the
/// write-notice log payload used to re-resolve in-flight diff
/// requests after a failure.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffRecord {
    /// Page the diff applies to.
    pub page: u32,
    /// The creator's vector-clock element when the interval closed.
    pub seq: u32,
    /// The run-length-encoded modifications.
    pub diff: Diff,
}

/// A barrier-aligned snapshot of one node's recoverable protocol
/// state.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// The node that took the snapshot.
    pub node: u32,
    /// Barrier epoch at which it was taken (epochs count processed
    /// barrier releases, starting at 1).
    pub epoch: u32,
    /// The node's vector clock.
    pub vc: VectorClock,
    /// Page images, ascending by index.
    pub pages: Vec<PageImage>,
    /// Locally-created diffs, ascending by (page, seq).
    pub diffs: Vec<DiffRecord>,
    /// The node's interval log (its own and received write notices).
    pub intervals: Vec<IntervalRecord>,
    /// Lock tokens the node held, ascending.
    pub tokens: Vec<LockId>,
}

const MAGIC: u32 = 0x5243_4b31; // "RCK1"
const SEG_MAGIC: u32 = 0x5253_4731; // "RSG1"
const COMMIT_MAGIC: u32 = 0x5243_4d31; // "RCM1"

/// Payload bytes per segment of the segmented image.
const SEGMENT_BYTES: usize = 4096;

/// Slots of the A/B commit protocol.
pub const SLOT_COUNT: usize = 2;

/// Device regions per node: payload and commit region per slot.
pub const SLOT_REGIONS: usize = 2 * SLOT_COUNT;

/// Encoded size of a [`CommitRecord`].
pub const COMMIT_LEN: usize = 36;

/// Device region holding `slot`'s segmented payload image.
pub const fn payload_region(slot: usize) -> usize {
    2 * slot
}

/// Device region holding `slot`'s commit record.
pub const fn commit_region(slot: usize) -> usize {
    2 * slot + 1
}

/// The slot the `seq`-th persist (1-based, per node) writes into.
///
/// Alternation must key on the persist *sequence*, not the barrier
/// epoch: epochs are multiples of the checkpoint cadence, so for any
/// even cadence `epoch % SLOT_COUNT` is constant and every persist
/// would overwrite the one slot — a crash mid-persist would then tear
/// the only committed image, which is exactly what A/B exists to
/// prevent.
pub const fn slot_for_seq(seq: u64) -> usize {
    (seq as usize) % SLOT_COUNT
}

impl Checkpoint {
    /// Snapshots `node`'s recoverable state at barrier epoch `epoch`.
    ///
    /// Must be called at a barrier release point: all local intervals
    /// are closed there, so no twins exist and the page images are
    /// exactly the post-merge state.
    pub(crate) fn capture(node: u32, epoch: u32, state: &NodeState, mem: &NodeMem) -> Self {
        let pages = mem
            .pages
            .iter()
            .enumerate()
            .filter(|(_, e)| e.ever_valid)
            .map(|(i, e)| {
                debug_assert!(e.twin.is_none(), "open interval at a barrier checkpoint");
                PageImage {
                    index: i as u32,
                    valid: e.valid,
                    data: e.data.clone(),
                }
            })
            .collect();
        let mut diffs: Vec<DiffRecord> = state
            .own_diffs
            .iter()
            .map(|(&(page, seq), diff)| DiffRecord {
                page: page as u32,
                seq,
                diff: Diff::clone(diff),
            })
            .collect();
        diffs.sort_by_key(|d| (d.page, d.seq));
        let mut tokens = state.locks.tokens_held();
        tokens.sort();
        Checkpoint {
            node,
            epoch,
            vc: state.vc.clone(),
            pages,
            diffs,
            intervals: state.known_intervals.clone(),
            tokens,
        }
    }

    /// Serializes the checkpoint to its deterministic little-endian
    /// byte format.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.pages.len() * (PAGE_SIZE + 8));
        put_u32(&mut out, MAGIC);
        put_u32(&mut out, self.node);
        put_u32(&mut out, self.epoch);
        put_clock(&mut out, &self.vc);
        put_u32(&mut out, self.pages.len() as u32);
        for p in &self.pages {
            put_u32(&mut out, p.index);
            out.push(p.valid as u8);
            out.extend_from_slice(p.data.bytes());
        }
        put_u32(&mut out, self.diffs.len() as u32);
        for d in &self.diffs {
            put_u32(&mut out, d.page);
            put_u32(&mut out, d.seq);
            put_u32(&mut out, d.diff.run_count() as u32);
            for (offset, bytes) in d.diff.runs() {
                put_u32(&mut out, offset as u32);
                put_u32(&mut out, bytes.len() as u32);
                out.extend_from_slice(bytes);
            }
        }
        put_u32(&mut out, self.intervals.len() as u32);
        for iv in &self.intervals {
            put_u32(&mut out, iv.origin as u32);
            put_clock(&mut out, &iv.stamp);
            put_u32(&mut out, iv.pages.len() as u32);
            for page in &iv.pages {
                put_u32(&mut out, page.index() as u32);
            }
        }
        put_u32(&mut out, self.tokens.len() as u32);
        for t in &self.tokens {
            put_u32(&mut out, t.0);
        }
        out
    }

    /// Parses a checkpoint from bytes produced by
    /// [`Checkpoint::encode`].
    pub fn decode(bytes: &[u8]) -> Result<Self, CheckpointError> {
        let mut c = Cursor { bytes, at: 0 };
        if c.u32()? != MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let node = c.u32()?;
        let epoch = c.u32()?;
        let vc = c.clock()?;
        let mut pages = Vec::new();
        for _ in 0..c.u32()? {
            let index = c.u32()?;
            let valid = c.u8()? != 0;
            let mut data = Page::new();
            data.bytes_mut().copy_from_slice(c.take(PAGE_SIZE)?);
            pages.push(PageImage { index, valid, data });
        }
        let mut diffs = Vec::new();
        for _ in 0..c.u32()? {
            let page = c.u32()?;
            let seq = c.u32()?;
            let runs = c.u32()?;
            let mut collected = Vec::with_capacity(runs as usize);
            for _ in 0..runs {
                let offset = c.u32()? as usize;
                let len = c.u32()? as usize;
                if offset + len > PAGE_SIZE {
                    return Err(CheckpointError::Corrupt("diff run extends past page"));
                }
                collected.push((offset, c.take(len)?.to_vec()));
            }
            diffs.push(DiffRecord {
                page,
                seq,
                diff: Diff::from_runs(collected),
            });
        }
        let mut intervals = Vec::new();
        for _ in 0..c.u32()? {
            let origin = c.u32()? as usize;
            let stamp = c.clock()?;
            let mut ivpages = Vec::new();
            for _ in 0..c.u32()? {
                ivpages.push(PageId::new(c.u32()?));
            }
            intervals.push(IntervalRecord {
                origin,
                stamp,
                pages: ivpages,
            });
        }
        let mut tokens = Vec::new();
        for _ in 0..c.u32()? {
            tokens.push(LockId(c.u32()?));
        }
        if c.at != bytes.len() {
            return Err(CheckpointError::Corrupt("trailing bytes"));
        }
        Ok(Checkpoint {
            node,
            epoch,
            vc,
            pages,
            diffs,
            intervals,
            tokens,
        })
    }

    /// FNV-1a digest of the encoded checkpoint (the same hash the
    /// consistency oracle uses for page images).
    pub fn digest(&self) -> u64 {
        fnv1a(&self.encode())
    }

    /// Wraps the `RCK1` bytes into the segmented persistence image:
    /// a header (magic, epoch, segment count, total length) followed
    /// by up-to-4 KB segments, each framed with its
    /// length and FNV-1a check.
    pub fn encode_segmented(&self) -> Vec<u8> {
        let inner = self.encode();
        let segs = inner.len().div_ceil(SEGMENT_BYTES).max(1);
        let mut out = Vec::with_capacity(16 + inner.len() + segs * 12);
        put_u32(&mut out, SEG_MAGIC);
        put_u32(&mut out, self.epoch);
        put_u32(&mut out, segs as u32);
        put_u32(&mut out, inner.len() as u32);
        for chunk in inner.chunks(SEGMENT_BYTES) {
            put_u32(&mut out, chunk.len() as u32);
            put_u64(&mut out, fnv1a(chunk));
            out.extend_from_slice(chunk);
        }
        out
    }

    /// Parses a segmented image back into a checkpoint, verifying
    /// every segment checksum and the header/inner epoch agreement.
    /// Never panics: arbitrary bytes (torn sectors, stale tails,
    /// truncation at any boundary) yield an error.
    pub fn decode_segmented(bytes: &[u8]) -> Result<Self, CheckpointError> {
        let mut c = Cursor { bytes, at: 0 };
        if c.u32()? != SEG_MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let epoch = c.u32()?;
        let segs = c.u32()? as usize;
        let total = c.u32()? as usize;
        if segs == 0 || segs > total.div_ceil(SEGMENT_BYTES).max(1) {
            return Err(CheckpointError::Corrupt("implausible segment count"));
        }
        let mut inner = Vec::with_capacity(total.min(bytes.len()));
        for _ in 0..segs {
            let len = c.u32()? as usize;
            if len > SEGMENT_BYTES {
                return Err(CheckpointError::Corrupt("oversized segment"));
            }
            let check = c.u64()?;
            let chunk = c.take(len)?;
            if fnv1a(chunk) != check {
                return Err(CheckpointError::Corrupt("segment checksum mismatch"));
            }
            inner.extend_from_slice(chunk);
        }
        if inner.len() != total {
            return Err(CheckpointError::Corrupt(
                "segment lengths disagree with total",
            ));
        }
        let ckpt = Checkpoint::decode(&inner)?;
        if ckpt.epoch != epoch {
            return Err(CheckpointError::Corrupt(
                "header epoch disagrees with payload",
            ));
        }
        Ok(ckpt)
    }
}

/// The fixed-size record that commits one slot of the A/B protocol.
/// Written (and fenced) strictly after the payload image it names, so
/// its integrity certifies the image's.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitRecord {
    /// Barrier epoch of the committed checkpoint.
    pub epoch: u32,
    /// Monotonic persist sequence number (across both slots): the
    /// slot with the larger committed `seq` is the newer image.
    pub seq: u64,
    /// Byte length of the segmented image this record commits.
    pub payload_len: u32,
    /// FNV-1a of those bytes.
    pub payload_fnv: u64,
}

impl CommitRecord {
    /// Builds the record committing `payload` (a segmented image) at
    /// `epoch` with persist sequence `seq`.
    pub fn for_payload(epoch: u32, seq: u64, payload: &[u8]) -> Self {
        CommitRecord {
            epoch,
            seq,
            payload_len: payload.len() as u32,
            payload_fnv: fnv1a(payload),
        }
    }

    /// Serializes to the fixed [`COMMIT_LEN`]-byte format, ending in
    /// an FNV-1a self-check over the preceding fields.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(COMMIT_LEN);
        put_u32(&mut out, COMMIT_MAGIC);
        put_u32(&mut out, self.epoch);
        put_u64(&mut out, self.seq);
        put_u32(&mut out, self.payload_len);
        put_u64(&mut out, self.payload_fnv);
        let check = fnv1a(&out);
        put_u64(&mut out, check);
        debug_assert_eq!(out.len(), COMMIT_LEN);
        out
    }

    /// Parses a commit region's bytes; `None` for anything that is
    /// not an intact record (truncated, torn, or never written).
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < COMMIT_LEN {
            return None;
        }
        let mut c = Cursor { bytes, at: 0 };
        if c.u32().ok()? != COMMIT_MAGIC {
            return None;
        }
        let epoch = c.u32().ok()?;
        let seq = c.u64().ok()?;
        let payload_len = c.u32().ok()?;
        let payload_fnv = c.u64().ok()?;
        let check = c.u64().ok()?;
        if fnv1a(&bytes[..COMMIT_LEN - 8]) != check {
            return None;
        }
        Some(CommitRecord {
            epoch,
            seq,
            payload_len,
            payload_fnv,
        })
    }
}

/// What recovery concludes about one slot of the persisted A/B pair.
#[derive(Debug, Clone, PartialEq)]
pub enum SlotState {
    /// Never written: both regions empty.
    Empty,
    /// Detectably unusable — a torn payload, a torn or stale commit
    /// record, or any old/new byte mix. Recovery discards it and
    /// falls back to the other slot.
    Torn,
    /// The commit record is intact and the image it names checks out.
    Committed {
        /// Persist sequence number from the commit record.
        seq: u64,
        /// The recovered checkpoint.
        ckpt: Box<Checkpoint>,
    },
}

/// Classifies one slot from its raw device regions. Total over
/// arbitrary bytes: any crash state — mid-payload, mid-commit, torn
/// sectors, stale tails from earlier epochs — yields `Empty`, `Torn`,
/// or a fully verified `Committed`; it never panics.
pub fn classify_slot(payload: &[u8], commit: &[u8]) -> SlotState {
    let Some(rec) = CommitRecord::decode(commit) else {
        return if payload.is_empty() && commit.is_empty() {
            SlotState::Empty
        } else {
            SlotState::Torn
        };
    };
    let len = rec.payload_len as usize;
    if len > payload.len() || fnv1a(&payload[..len]) != rec.payload_fnv {
        return SlotState::Torn;
    }
    match Checkpoint::decode_segmented(&payload[..len]) {
        Ok(ckpt) if ckpt.epoch == rec.epoch => SlotState::Committed {
            seq: rec.seq,
            ckpt: Box::new(ckpt),
        },
        _ => SlotState::Torn,
    }
}

/// Why a checkpoint byte string failed to parse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointError {
    /// The input ended before the structure was complete.
    Truncated,
    /// The magic number was wrong (not a checkpoint).
    BadMagic,
    /// A structural invariant was violated.
    Corrupt(&'static str),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Truncated => write!(f, "checkpoint truncated"),
            CheckpointError::BadMagic => write!(f, "not a checkpoint (bad magic)"),
            CheckpointError::Corrupt(what) => write!(f, "corrupt checkpoint: {what}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_clock(out: &mut Vec<u8>, vc: &VectorClock) {
    put_u32(out, vc.len() as u32);
    for p in 0..vc.len() {
        put_u32(out, vc.get(p));
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], CheckpointError> {
        if self.at + n > self.bytes.len() {
            return Err(CheckpointError::Truncated);
        }
        let s = &self.bytes[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, CheckpointError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, CheckpointError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn clock(&mut self) -> Result<VectorClock, CheckpointError> {
        let n = self.u32()? as usize;
        if n == 0 || n > 1024 {
            return Err(CheckpointError::Corrupt("implausible clock width"));
        }
        let mut elems = Vec::with_capacity(n);
        for _ in 0..n {
            elems.push(self.u32()?);
        }
        Ok(VectorClock::from_entries(&elems))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        let mut page = Page::new();
        page.write_u64(64, 0xdead_beef);
        let twin = Page::new();
        Checkpoint {
            node: 2,
            epoch: 8,
            vc: VectorClock::from_entries(&[5, 0, 9, 1]),
            pages: vec![
                PageImage {
                    index: 0,
                    valid: true,
                    data: page.clone(),
                },
                PageImage {
                    index: 3,
                    valid: false,
                    data: Page::new(),
                },
            ],
            diffs: vec![DiffRecord {
                page: 0,
                seq: 4,
                diff: Diff::between(&twin, &page),
            }],
            intervals: vec![IntervalRecord {
                origin: 2,
                stamp: VectorClock::from_entries(&[4, 0, 8, 1]),
                pages: vec![PageId::new(0), PageId::new(3)],
            }],
            tokens: vec![LockId(1), LockId(7)],
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let ckpt = sample();
        let bytes = ckpt.encode();
        let back = Checkpoint::decode(&bytes).expect("decode");
        assert_eq!(back, ckpt);
        assert_eq!(back.digest(), ckpt.digest());
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = sample().encode();
        for cut in [0, 3, 11, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                Checkpoint::decode(&bytes[..cut]).is_err(),
                "cut at {cut} must not decode"
            );
        }
    }

    #[test]
    fn bad_magic_is_detected() {
        let mut bytes = sample().encode();
        bytes[0] ^= 0xff;
        assert_eq!(Checkpoint::decode(&bytes), Err(CheckpointError::BadMagic));
    }

    #[test]
    fn trailing_bytes_are_detected() {
        let mut bytes = sample().encode();
        bytes.push(0);
        assert_eq!(
            Checkpoint::decode(&bytes),
            Err(CheckpointError::Corrupt("trailing bytes"))
        );
    }

    #[test]
    fn digest_tracks_content() {
        let a = sample();
        let mut b = sample();
        b.epoch += 1;
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn segmented_round_trip() {
        let ckpt = sample();
        let image = ckpt.encode_segmented();
        assert!(image.len() > ckpt.encode().len(), "framing adds bytes");
        let back = Checkpoint::decode_segmented(&image).expect("decode");
        assert_eq!(back, ckpt);
    }

    #[test]
    fn segmented_truncation_never_decodes() {
        let image = sample().encode_segmented();
        for cut in 0..image.len() {
            assert!(
                Checkpoint::decode_segmented(&image[..cut]).is_err(),
                "cut at {cut} must not decode"
            );
        }
    }

    #[test]
    fn commit_record_round_trip_and_tamper_detection() {
        let payload = sample().encode_segmented();
        let rec = CommitRecord::for_payload(8, 17, &payload);
        let bytes = rec.encode();
        assert_eq!(bytes.len(), COMMIT_LEN);
        assert_eq!(CommitRecord::decode(&bytes), Some(rec));
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert_eq!(
                CommitRecord::decode(&bad),
                None,
                "flip at byte {i} must not decode"
            );
        }
        assert_eq!(CommitRecord::decode(&bytes[..COMMIT_LEN - 1]), None);
    }

    #[test]
    fn classify_committed_torn_and_empty() {
        let ckpt = sample();
        let payload = ckpt.encode_segmented();
        let commit = CommitRecord::for_payload(ckpt.epoch, 3, &payload).encode();
        match classify_slot(&payload, &commit) {
            SlotState::Committed { seq, ckpt: back } => {
                assert_eq!(seq, 3);
                assert_eq!(*back, ckpt);
            }
            other => panic!("expected committed, got {other:?}"),
        }
        assert_eq!(classify_slot(&[], &[]), SlotState::Empty);
        // Torn payload under an intact commit.
        let mut torn = payload.clone();
        torn[payload.len() / 2] ^= 0xff;
        assert_eq!(classify_slot(&torn, &commit), SlotState::Torn);
        // Truncated payload (crash before the tail drained).
        assert_eq!(
            classify_slot(&payload[..payload.len() - 1], &commit),
            SlotState::Torn
        );
        // Torn commit over an intact payload.
        let mut bad_commit = commit.clone();
        bad_commit[5] ^= 0x01;
        assert_eq!(classify_slot(&payload, &bad_commit), SlotState::Torn);
        // Stale commit from an earlier epoch over a fresh payload.
        let stale = CommitRecord::for_payload(ckpt.epoch, 1, b"old image").encode();
        assert_eq!(classify_slot(&payload, &stale), SlotState::Torn);
    }

    #[test]
    fn classify_is_total_over_every_truncation() {
        let ckpt = sample();
        let payload = ckpt.encode_segmented();
        let commit = CommitRecord::for_payload(ckpt.epoch, 9, &payload).encode();
        for cut in 0..payload.len() {
            let state = classify_slot(&payload[..cut], &commit);
            assert!(
                matches!(state, SlotState::Torn),
                "payload cut at {cut}: {state:?}"
            );
        }
        for cut in 0..commit.len() {
            let state = classify_slot(&payload, &commit[..cut]);
            assert!(
                matches!(state, SlotState::Torn),
                "commit cut at {cut}: {state:?}"
            );
        }
    }

    #[test]
    fn slot_layout_alternates() {
        assert_eq!(slot_for_seq(2), 0);
        assert_eq!(slot_for_seq(3), 1);
        // Even-cadence epochs must still alternate: consecutive
        // persists land in different slots.
        assert_ne!(slot_for_seq(1), slot_for_seq(2));
        assert_eq!(payload_region(0), 0);
        assert_eq!(commit_region(0), 1);
        assert_eq!(payload_region(1), 2);
        assert_eq!(commit_region(1), 3);
        assert_eq!(SLOT_REGIONS, 4);
    }

    #[test]
    fn multi_segment_images_split_and_rejoin() {
        // The sample's two full page images push the inner encoding
        // past one segment.
        let ckpt = sample();
        let inner = ckpt.encode().len();
        assert!(inner > SEGMENT_BYTES, "sample must span segments");
        let image = ckpt.encode_segmented();
        let segs = inner.div_ceil(SEGMENT_BYTES);
        assert_eq!(image.len(), 16 + inner + segs * 12);
        assert_eq!(Checkpoint::decode_segmented(&image).unwrap(), ckpt);
    }
}
