//! Barrier-aligned checkpoints of recoverable protocol state.
//!
//! At configurable barrier epochs (see
//! [`RecoveryConfig::checkpoint_every`](crate::RecoveryConfig)) each
//! node snapshots the state a replacement would need to rejoin the
//! run: its page images, vector clock, locally-created diffs (the
//! write-notice log payloads), the interval log, and the lock tokens
//! it holds. Barriers are the natural cut: every local interval is
//! closed, twins are empty, and the barrier epoch number totally
//! orders checkpoints across nodes.
//!
//! Checkpoints have a deterministic byte encoding — so their size can
//! be accounted and a digest pinned — and a [`Checkpoint::digest`]
//! built from the same FNV-1a the consistency oracle uses.
//!
//! # Examples
//!
//! ```
//! use rsdsm_core::{Checkpoint, PageImage, Page};
//! use rsdsm_protocol::VectorClock;
//!
//! let ckpt = Checkpoint {
//!     node: 1,
//!     epoch: 4,
//!     vc: VectorClock::from_entries(&[3, 7]),
//!     pages: vec![PageImage { index: 0, valid: true, data: Page::new() }],
//!     diffs: vec![],
//!     intervals: vec![],
//!     tokens: vec![],
//! };
//! let bytes = ckpt.encode();
//! let back = Checkpoint::decode(&bytes).unwrap();
//! assert_eq!(back, ckpt);
//! assert_eq!(back.digest(), ckpt.digest());
//! ```

use rsdsm_protocol::{Diff, Page, PageId, VectorClock, PAGE_SIZE};

use crate::msg::{IntervalRecord, LockId};
use crate::node::{NodeMem, NodeState};
use crate::oracle::fnv1a;

/// A node's copy of one page at checkpoint time. Only pages the node
/// ever held a valid copy of are captured (others would be fetched
/// from their home on first touch anyway).
#[derive(Debug, Clone, PartialEq)]
pub struct PageImage {
    /// Global page index.
    pub index: u32,
    /// Whether the copy was accessible when captured (invalid copies
    /// are kept too: they seed diff application after rejoin).
    pub valid: bool,
    /// The page contents.
    pub data: Page,
}

/// One locally-created diff retained in the checkpoint — the
/// write-notice log payload used to re-resolve in-flight diff
/// requests after a failure.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffRecord {
    /// Page the diff applies to.
    pub page: u32,
    /// The creator's vector-clock element when the interval closed.
    pub seq: u32,
    /// The run-length-encoded modifications.
    pub diff: Diff,
}

/// A barrier-aligned snapshot of one node's recoverable protocol
/// state.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// The node that took the snapshot.
    pub node: u32,
    /// Barrier epoch at which it was taken (epochs count processed
    /// barrier releases, starting at 1).
    pub epoch: u32,
    /// The node's vector clock.
    pub vc: VectorClock,
    /// Page images, ascending by index.
    pub pages: Vec<PageImage>,
    /// Locally-created diffs, ascending by (page, seq).
    pub diffs: Vec<DiffRecord>,
    /// The node's interval log (its own and received write notices).
    pub intervals: Vec<IntervalRecord>,
    /// Lock tokens the node held, ascending.
    pub tokens: Vec<LockId>,
}

const MAGIC: u32 = 0x5243_4b31; // "RCK1"

impl Checkpoint {
    /// Snapshots `node`'s recoverable state at barrier epoch `epoch`.
    ///
    /// Must be called at a barrier release point: all local intervals
    /// are closed there, so no twins exist and the page images are
    /// exactly the post-merge state.
    pub(crate) fn capture(node: u32, epoch: u32, state: &NodeState, mem: &NodeMem) -> Self {
        let pages = mem
            .pages
            .iter()
            .enumerate()
            .filter(|(_, e)| e.ever_valid)
            .map(|(i, e)| {
                debug_assert!(e.twin.is_none(), "open interval at a barrier checkpoint");
                PageImage {
                    index: i as u32,
                    valid: e.valid,
                    data: e.data.clone(),
                }
            })
            .collect();
        let mut diffs: Vec<DiffRecord> = state
            .own_diffs
            .iter()
            .map(|(&(page, seq), diff)| DiffRecord {
                page: page as u32,
                seq,
                diff: Diff::clone(diff),
            })
            .collect();
        diffs.sort_by_key(|d| (d.page, d.seq));
        let mut tokens = state.locks.tokens_held();
        tokens.sort();
        Checkpoint {
            node,
            epoch,
            vc: state.vc.clone(),
            pages,
            diffs,
            intervals: state.known_intervals.clone(),
            tokens,
        }
    }

    /// Serializes the checkpoint to its deterministic little-endian
    /// byte format.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.pages.len() * (PAGE_SIZE + 8));
        put_u32(&mut out, MAGIC);
        put_u32(&mut out, self.node);
        put_u32(&mut out, self.epoch);
        put_clock(&mut out, &self.vc);
        put_u32(&mut out, self.pages.len() as u32);
        for p in &self.pages {
            put_u32(&mut out, p.index);
            out.push(p.valid as u8);
            out.extend_from_slice(p.data.bytes());
        }
        put_u32(&mut out, self.diffs.len() as u32);
        for d in &self.diffs {
            put_u32(&mut out, d.page);
            put_u32(&mut out, d.seq);
            put_u32(&mut out, d.diff.run_count() as u32);
            for (offset, bytes) in d.diff.runs() {
                put_u32(&mut out, offset as u32);
                put_u32(&mut out, bytes.len() as u32);
                out.extend_from_slice(bytes);
            }
        }
        put_u32(&mut out, self.intervals.len() as u32);
        for iv in &self.intervals {
            put_u32(&mut out, iv.origin as u32);
            put_clock(&mut out, &iv.stamp);
            put_u32(&mut out, iv.pages.len() as u32);
            for page in &iv.pages {
                put_u32(&mut out, page.index() as u32);
            }
        }
        put_u32(&mut out, self.tokens.len() as u32);
        for t in &self.tokens {
            put_u32(&mut out, t.0);
        }
        out
    }

    /// Parses a checkpoint from bytes produced by
    /// [`Checkpoint::encode`].
    pub fn decode(bytes: &[u8]) -> Result<Self, CheckpointError> {
        let mut c = Cursor { bytes, at: 0 };
        if c.u32()? != MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let node = c.u32()?;
        let epoch = c.u32()?;
        let vc = c.clock()?;
        let mut pages = Vec::new();
        for _ in 0..c.u32()? {
            let index = c.u32()?;
            let valid = c.u8()? != 0;
            let mut data = Page::new();
            data.bytes_mut().copy_from_slice(c.take(PAGE_SIZE)?);
            pages.push(PageImage { index, valid, data });
        }
        let mut diffs = Vec::new();
        for _ in 0..c.u32()? {
            let page = c.u32()?;
            let seq = c.u32()?;
            let runs = c.u32()?;
            let mut collected = Vec::with_capacity(runs as usize);
            for _ in 0..runs {
                let offset = c.u32()? as usize;
                let len = c.u32()? as usize;
                if offset + len > PAGE_SIZE {
                    return Err(CheckpointError::Corrupt("diff run extends past page"));
                }
                collected.push((offset, c.take(len)?.to_vec()));
            }
            diffs.push(DiffRecord {
                page,
                seq,
                diff: Diff::from_runs(collected),
            });
        }
        let mut intervals = Vec::new();
        for _ in 0..c.u32()? {
            let origin = c.u32()? as usize;
            let stamp = c.clock()?;
            let mut ivpages = Vec::new();
            for _ in 0..c.u32()? {
                ivpages.push(PageId::new(c.u32()?));
            }
            intervals.push(IntervalRecord {
                origin,
                stamp,
                pages: ivpages,
            });
        }
        let mut tokens = Vec::new();
        for _ in 0..c.u32()? {
            tokens.push(LockId(c.u32()?));
        }
        if c.at != bytes.len() {
            return Err(CheckpointError::Corrupt("trailing bytes"));
        }
        Ok(Checkpoint {
            node,
            epoch,
            vc,
            pages,
            diffs,
            intervals,
            tokens,
        })
    }

    /// FNV-1a digest of the encoded checkpoint (the same hash the
    /// consistency oracle uses for page images).
    pub fn digest(&self) -> u64 {
        fnv1a(&self.encode())
    }
}

/// Why a checkpoint byte string failed to parse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointError {
    /// The input ended before the structure was complete.
    Truncated,
    /// The magic number was wrong (not a checkpoint).
    BadMagic,
    /// A structural invariant was violated.
    Corrupt(&'static str),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Truncated => write!(f, "checkpoint truncated"),
            CheckpointError::BadMagic => write!(f, "not a checkpoint (bad magic)"),
            CheckpointError::Corrupt(what) => write!(f, "corrupt checkpoint: {what}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_clock(out: &mut Vec<u8>, vc: &VectorClock) {
    put_u32(out, vc.len() as u32);
    for p in 0..vc.len() {
        put_u32(out, vc.get(p));
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], CheckpointError> {
        if self.at + n > self.bytes.len() {
            return Err(CheckpointError::Truncated);
        }
        let s = &self.bytes[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, CheckpointError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn clock(&mut self) -> Result<VectorClock, CheckpointError> {
        let n = self.u32()? as usize;
        if n == 0 || n > 1024 {
            return Err(CheckpointError::Corrupt("implausible clock width"));
        }
        let mut elems = Vec::with_capacity(n);
        for _ in 0..n {
            elems.push(self.u32()?);
        }
        Ok(VectorClock::from_entries(&elems))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        let mut page = Page::new();
        page.write_u64(64, 0xdead_beef);
        let twin = Page::new();
        Checkpoint {
            node: 2,
            epoch: 8,
            vc: VectorClock::from_entries(&[5, 0, 9, 1]),
            pages: vec![
                PageImage {
                    index: 0,
                    valid: true,
                    data: page.clone(),
                },
                PageImage {
                    index: 3,
                    valid: false,
                    data: Page::new(),
                },
            ],
            diffs: vec![DiffRecord {
                page: 0,
                seq: 4,
                diff: Diff::between(&twin, &page),
            }],
            intervals: vec![IntervalRecord {
                origin: 2,
                stamp: VectorClock::from_entries(&[4, 0, 8, 1]),
                pages: vec![PageId::new(0), PageId::new(3)],
            }],
            tokens: vec![LockId(1), LockId(7)],
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let ckpt = sample();
        let bytes = ckpt.encode();
        let back = Checkpoint::decode(&bytes).expect("decode");
        assert_eq!(back, ckpt);
        assert_eq!(back.digest(), ckpt.digest());
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = sample().encode();
        for cut in [0, 3, 11, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                Checkpoint::decode(&bytes[..cut]).is_err(),
                "cut at {cut} must not decode"
            );
        }
    }

    #[test]
    fn bad_magic_is_detected() {
        let mut bytes = sample().encode();
        bytes[0] ^= 0xff;
        assert_eq!(Checkpoint::decode(&bytes), Err(CheckpointError::BadMagic));
    }

    #[test]
    fn trailing_bytes_are_detected() {
        let mut bytes = sample().encode();
        bytes.push(0);
        assert_eq!(
            Checkpoint::decode(&bytes),
            Err(CheckpointError::Corrupt("trailing bytes"))
        );
    }

    #[test]
    fn digest_tracks_content() {
        let a = sample();
        let mut b = sample();
        b.epoch += 1;
        assert_ne!(a.digest(), b.digest());
    }
}
