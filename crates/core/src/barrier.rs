//! Barriers with local combining and a central manager.
//!
//! TreadMarks barriers are centrally managed: each node sends one
//! arrival message carrying its new intervals; the manager, once all
//! nodes arrive, broadcasts a release redistributing every interval.
//! With multithreading the paper combines locally (§4.1): only the
//! *last* local thread to arrive generates the remote arrival message.

use std::collections::HashMap;

use rsdsm_simnet::NodeId;

use crate::msg::{BarrierId, IntervalRecord};
use crate::thread::ThreadId;

/// Per-node barrier state: counts local arrivals so only the last
/// thread triggers the remote message.
#[derive(Debug, Clone)]
pub struct NodeBarrier {
    threads_on_node: usize,
    arrived: HashMap<BarrierId, Vec<ThreadId>>,
}

impl NodeBarrier {
    /// State for a node running `threads_on_node` application threads.
    ///
    /// # Panics
    ///
    /// Panics if `threads_on_node` is zero.
    pub fn new(threads_on_node: usize) -> Self {
        assert!(threads_on_node > 0, "a node runs at least one thread");
        NodeBarrier {
            threads_on_node,
            arrived: HashMap::new(),
        }
    }

    /// Records a local arrival. Returns true when this was the last
    /// local thread — the caller must then send the node's arrival to
    /// the manager.
    ///
    /// # Panics
    ///
    /// Panics if the thread arrives twice at the same barrier episode.
    pub fn arrive(&mut self, id: BarrierId, tid: ThreadId) -> bool {
        let list = self.arrived.entry(id).or_default();
        assert!(!list.contains(&tid), "double arrival at {id:?}");
        list.push(tid);
        list.len() == self.threads_on_node
    }

    /// Consumes the arrival list on release; the returned threads are
    /// woken.
    pub fn release(&mut self, id: BarrierId) -> Vec<ThreadId> {
        self.arrived.remove(&id).unwrap_or_default()
    }

    /// Local threads currently waiting at `id`.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn waiting(&self, id: BarrierId) -> usize {
        self.arrived.get(&id).map_or(0, Vec::len)
    }
}

/// Manager-side barrier state (lives on node 0).
#[derive(Debug, Clone)]
pub struct BarrierManager {
    nodes: usize,
    pending: HashMap<BarrierId, Episode>,
}

#[derive(Debug, Clone, Default)]
struct Episode {
    arrived: Vec<NodeId>,
    intervals: Vec<IntervalRecord>,
}

impl BarrierManager {
    /// A manager for a cluster of `nodes`.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    pub fn new(nodes: usize) -> Self {
        assert!(nodes > 0, "cluster needs at least one node");
        BarrierManager {
            nodes,
            pending: HashMap::new(),
        }
    }

    /// Records a node's arrival with its intervals. When every node
    /// has arrived, returns the deduplicated union of intervals to
    /// broadcast (and resets the episode).
    ///
    /// # Panics
    ///
    /// Panics if a node arrives twice in one episode.
    pub fn node_arrived(
        &mut self,
        id: BarrierId,
        from: NodeId,
        intervals: Vec<IntervalRecord>,
    ) -> Option<Vec<IntervalRecord>> {
        let ep = self.pending.entry(id).or_default();
        assert!(!ep.arrived.contains(&from), "node {from} arrived twice");
        ep.arrived.push(from);
        for rec in intervals {
            let dup = ep
                .intervals
                .iter()
                .any(|r| r.origin == rec.origin && r.stamp == rec.stamp);
            if !dup {
                ep.intervals.push(rec);
            }
        }
        if ep.arrived.len() == self.nodes {
            let ep = self.pending.remove(&id).expect("episode exists");
            Some(ep.intervals)
        } else {
            None
        }
    }

    /// Nodes currently arrived at `id`.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn arrived_count(&self, id: BarrierId) -> usize {
        self.pending.get(&id).map_or(0, |e| e.arrived.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsdsm_protocol::{PageId, VectorClock};

    fn rec(origin: NodeId, tick: usize) -> IntervalRecord {
        let mut stamp = VectorClock::new(4);
        for _ in 0..tick {
            stamp.tick(origin);
        }
        IntervalRecord {
            origin,
            stamp,
            pages: vec![PageId::new(0)],
        }
    }

    #[test]
    fn last_local_thread_triggers_arrival() {
        let mut nb = NodeBarrier::new(3);
        assert!(!nb.arrive(BarrierId(0), ThreadId(0)));
        assert!(!nb.arrive(BarrierId(0), ThreadId(1)));
        assert_eq!(nb.waiting(BarrierId(0)), 2);
        assert!(nb.arrive(BarrierId(0), ThreadId(2)));
    }

    #[test]
    fn release_returns_all_waiters_and_resets() {
        let mut nb = NodeBarrier::new(2);
        nb.arrive(BarrierId(1), ThreadId(0));
        nb.arrive(BarrierId(1), ThreadId(1));
        let woken = nb.release(BarrierId(1));
        assert_eq!(woken, vec![ThreadId(0), ThreadId(1)]);
        assert_eq!(nb.waiting(BarrierId(1)), 0);
        // The barrier id can be reused for the next episode.
        assert!(!nb.arrive(BarrierId(1), ThreadId(0)));
    }

    #[test]
    #[should_panic(expected = "double arrival")]
    fn double_local_arrival_panics() {
        let mut nb = NodeBarrier::new(2);
        nb.arrive(BarrierId(0), ThreadId(0));
        nb.arrive(BarrierId(0), ThreadId(0));
    }

    #[test]
    fn manager_releases_when_all_nodes_arrive() {
        let mut m = BarrierManager::new(3);
        assert!(m.node_arrived(BarrierId(0), 0, vec![rec(0, 1)]).is_none());
        assert!(m.node_arrived(BarrierId(0), 2, vec![rec(2, 1)]).is_none());
        assert_eq!(m.arrived_count(BarrierId(0)), 2);
        let released = m
            .node_arrived(BarrierId(0), 1, vec![rec(1, 1)])
            .expect("all arrived");
        assert_eq!(released.len(), 3);
        assert_eq!(m.arrived_count(BarrierId(0)), 0);
    }

    #[test]
    fn manager_dedupes_intervals() {
        let mut m = BarrierManager::new(2);
        // Both nodes report the same interval (origin 0, tick 1) —
        // possible when it propagated through a lock first.
        assert!(m
            .node_arrived(BarrierId(0), 0, vec![rec(0, 1), rec(0, 2)])
            .is_none());
        let released = m
            .node_arrived(BarrierId(0), 1, vec![rec(0, 1)])
            .expect("all arrived");
        assert_eq!(released.len(), 2);
    }

    #[test]
    fn distinct_barrier_ids_are_independent_episodes() {
        let mut m = BarrierManager::new(2);
        assert!(m.node_arrived(BarrierId(0), 0, vec![]).is_none());
        assert!(m.node_arrived(BarrierId(1), 0, vec![]).is_none());
        assert!(m.node_arrived(BarrierId(1), 1, vec![]).is_some());
        assert!(m.node_arrived(BarrierId(0), 1, vec![]).is_some());
    }
}
