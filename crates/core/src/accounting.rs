//! Execution-time accounting.
//!
//! The paper's figures break normalized execution time into stacked
//! categories. [`Category`] enumerates them, [`NodeAccount`] tracks a
//! single node's CPU timeline (work charged per category plus idle
//! gaps attributed to what the node was waiting for), and
//! [`Breakdown`] aggregates across nodes for reporting.

use std::fmt;
use std::ops::{Index, IndexMut};

use rsdsm_simnet::{SimDuration, SimTime};

/// The execution-time categories of Figures 1–5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Category {
    /// Useful application computation.
    Busy,
    /// DSM system software: protocol processing, diff create/apply,
    /// message send/receive, servicing remote requests.
    DsmOverhead,
    /// CPU idle, waiting for a remote memory access.
    MemoryIdle,
    /// CPU idle, waiting for synchronization (locks, barriers).
    SyncIdle,
    /// Software overhead of issuing prefetches (§3.3).
    PrefetchOverhead,
    /// Context switches between user-level threads (§4.3).
    MtOverhead,
}

impl Category {
    /// All categories, in the paper's stacking order (bottom to top).
    pub const ALL: [Category; 6] = [
        Category::Busy,
        Category::DsmOverhead,
        Category::MemoryIdle,
        Category::SyncIdle,
        Category::PrefetchOverhead,
        Category::MtOverhead,
    ];

    /// The paper's label for this category.
    pub fn label(self) -> &'static str {
        match self {
            Category::Busy => "Busy",
            Category::DsmOverhead => "DSM Overhead",
            Category::MemoryIdle => "Memory Miss Idle",
            Category::SyncIdle => "Synchronization Idle",
            Category::PrefetchOverhead => "Prefetch Overhead",
            Category::MtOverhead => "Multithreading Overhead",
        }
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Why a node's CPU is idle; used to attribute idle gaps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IdleReason {
    /// Waiting on a remote memory fetch.
    Memory,
    /// Waiting on a lock or barrier.
    Sync,
}

impl IdleReason {
    fn category(self) -> Category {
        match self {
            IdleReason::Memory => Category::MemoryIdle,
            IdleReason::Sync => Category::SyncIdle,
        }
    }
}

/// Per-category durations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Breakdown {
    values: [SimDuration; 6],
}

impl Breakdown {
    /// An all-zero breakdown.
    pub fn new() -> Self {
        Breakdown::default()
    }

    /// Sum of all categories.
    pub fn total(&self) -> SimDuration {
        self.values.iter().copied().sum()
    }

    /// Adds every category of `other` into `self`.
    pub fn accumulate(&mut self, other: &Breakdown) {
        for (a, b) in self.values.iter_mut().zip(&other.values) {
            *a += *b;
        }
    }

    /// Each category as a fraction of this breakdown's own total,
    /// in [`Category::ALL`] order. All zeros if the total is zero.
    pub fn normalized_to_self(&self) -> NormalizedBreakdown {
        self.normalized_to(self.total())
    }

    /// Each category as a fraction of `base` (the paper normalizes
    /// each experiment to the *original* run's total).
    pub fn normalized_to(&self, base: SimDuration) -> NormalizedBreakdown {
        let base_ns = base.as_nanos();
        let mut fractions = [0.0; 6];
        if base_ns > 0 {
            for (f, v) in fractions.iter_mut().zip(&self.values) {
                *f = v.as_nanos() as f64 / base_ns as f64;
            }
        }
        NormalizedBreakdown { fractions }
    }
}

impl Index<Category> for Breakdown {
    type Output = SimDuration;
    fn index(&self, c: Category) -> &SimDuration {
        &self.values[Category::ALL.iter().position(|&x| x == c).unwrap()]
    }
}

impl IndexMut<Category> for Breakdown {
    fn index_mut(&mut self, c: Category) -> &mut SimDuration {
        &mut self.values[Category::ALL.iter().position(|&x| x == c).unwrap()]
    }
}

impl fmt::Display for Breakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for c in Category::ALL {
            writeln!(f, "{:<26} {}", c.label(), self[c])?;
        }
        write!(f, "{:<26} {}", "Total", self.total())
    }
}

/// A breakdown expressed as fractions of a base time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NormalizedBreakdown {
    fractions: [f64; 6],
}

impl NormalizedBreakdown {
    /// Fraction for one category.
    pub fn fraction(&self, c: Category) -> f64 {
        self.fractions[Category::ALL.iter().position(|&x| x == c).unwrap()]
    }

    /// Percentage (0–100+) for one category.
    pub fn percent(&self, c: Category) -> f64 {
        self.fraction(c) * 100.0
    }

    /// Sum of all fractions (1.0 when normalized to self).
    pub fn total_fraction(&self) -> f64 {
        self.fractions.iter().sum()
    }
}

impl fmt::Display for NormalizedBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for c in Category::ALL {
            let pct = self.percent(c);
            if pct >= 0.05 {
                writeln!(f, "{:<26} {:5.1}%", c.label(), pct)?;
            }
        }
        write!(f, "{:<26} {:5.1}%", "Total", self.total_fraction() * 100.0)
    }
}

/// One node's CPU timeline and per-category account.
///
/// The CPU is busy until [`NodeAccount::cpu_free`]; consuming time
/// from an instant later than that first attributes the idle gap to
/// the node's current [`IdleReason`].
#[derive(Debug, Clone)]
pub struct NodeAccount {
    breakdown: Breakdown,
    cpu_free: SimTime,
}

impl NodeAccount {
    /// A fresh account starting at time zero.
    pub fn new() -> Self {
        NodeAccount {
            breakdown: Breakdown::new(),
            cpu_free: SimTime::ZERO,
        }
    }

    /// When the CPU finishes its currently-charged work.
    pub fn cpu_free(&self) -> SimTime {
        self.cpu_free
    }

    /// Charges `dur` of CPU work in category `cat`, starting no
    /// earlier than `at` and no earlier than the CPU is free. A gap
    /// between the CPU becoming free and the work starting is
    /// attributed to `idle` (if given). Returns when the work ends.
    pub fn consume(
        &mut self,
        at: SimTime,
        dur: SimDuration,
        cat: Category,
        idle: Option<IdleReason>,
    ) -> SimTime {
        let start = at.max(self.cpu_free);
        let gap = start.saturating_since(self.cpu_free);
        if !gap.is_zero() {
            if let Some(reason) = idle {
                self.breakdown[reason.category()] += gap;
            } else {
                // Unattributed gaps default to sync idle: the only way
                // a node CPU waits without a designated reason is
                // between program phases (startup / final barrier).
                self.breakdown[Category::SyncIdle] += gap;
            }
        }
        self.breakdown[cat] += dur;
        self.cpu_free = start + dur;
        self.cpu_free
    }

    /// Closes the account at `end` (normally the run's finish time),
    /// attributing any trailing idle to `idle`.
    pub fn finish(&mut self, end: SimTime, idle: IdleReason) {
        let gap = end.saturating_since(self.cpu_free);
        if !gap.is_zero() {
            self.breakdown[idle.category()] += gap;
            self.cpu_free = end;
        }
    }

    /// The per-category totals so far.
    pub fn breakdown(&self) -> &Breakdown {
        &self.breakdown
    }
}

impl Default for NodeAccount {
    fn default() -> Self {
        NodeAccount::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consume_accumulates_categories() {
        let mut a = NodeAccount::new();
        a.consume(
            SimTime::ZERO,
            SimDuration::from_micros(10),
            Category::Busy,
            None,
        );
        a.consume(
            a.cpu_free(),
            SimDuration::from_micros(5),
            Category::DsmOverhead,
            None,
        );
        assert_eq!(a.breakdown()[Category::Busy], SimDuration::from_micros(10));
        assert_eq!(
            a.breakdown()[Category::DsmOverhead],
            SimDuration::from_micros(5)
        );
        assert_eq!(a.cpu_free(), SimTime::from_micros(15));
    }

    #[test]
    fn idle_gap_attributed_to_reason() {
        let mut a = NodeAccount::new();
        a.consume(
            SimTime::from_micros(100),
            SimDuration::from_micros(1),
            Category::Busy,
            Some(IdleReason::Memory),
        );
        assert_eq!(
            a.breakdown()[Category::MemoryIdle],
            SimDuration::from_micros(100)
        );
    }

    #[test]
    fn unattributed_gap_defaults_to_sync() {
        let mut a = NodeAccount::new();
        a.consume(
            SimTime::from_micros(7),
            SimDuration::ZERO,
            Category::Busy,
            None,
        );
        assert_eq!(
            a.breakdown()[Category::SyncIdle],
            SimDuration::from_micros(7)
        );
    }

    #[test]
    fn overlapping_consume_queues_without_idle() {
        let mut a = NodeAccount::new();
        a.consume(
            SimTime::ZERO,
            SimDuration::from_micros(10),
            Category::Busy,
            None,
        );
        // Requested at t=3 but CPU busy until t=10: no idle, runs 10..14.
        let end = a.consume(
            SimTime::from_micros(3),
            SimDuration::from_micros(4),
            Category::DsmOverhead,
            Some(IdleReason::Memory),
        );
        assert_eq!(end, SimTime::from_micros(14));
        assert_eq!(a.breakdown()[Category::MemoryIdle], SimDuration::ZERO);
    }

    #[test]
    fn finish_pads_with_idle() {
        let mut a = NodeAccount::new();
        a.consume(
            SimTime::ZERO,
            SimDuration::from_micros(10),
            Category::Busy,
            None,
        );
        a.finish(SimTime::from_micros(25), IdleReason::Sync);
        assert_eq!(
            a.breakdown()[Category::SyncIdle],
            SimDuration::from_micros(15)
        );
        assert_eq!(a.breakdown().total(), SimDuration::from_micros(25));
    }

    #[test]
    fn breakdown_total_is_category_sum() {
        let mut b = Breakdown::new();
        b[Category::Busy] = SimDuration::from_micros(3);
        b[Category::SyncIdle] = SimDuration::from_micros(7);
        assert_eq!(b.total(), SimDuration::from_micros(10));
    }

    #[test]
    fn normalization() {
        let mut b = Breakdown::new();
        b[Category::Busy] = SimDuration::from_micros(25);
        b[Category::MemoryIdle] = SimDuration::from_micros(75);
        let n = b.normalized_to_self();
        assert!((n.fraction(Category::Busy) - 0.25).abs() < 1e-12);
        assert!((n.total_fraction() - 1.0).abs() < 1e-12);

        let half = b.normalized_to(SimDuration::from_micros(200));
        assert!((half.total_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn normalized_of_zero_total_is_zero() {
        let n = Breakdown::new().normalized_to_self();
        assert_eq!(n.total_fraction(), 0.0);
    }

    /// A zero base with *nonzero* values is the dangerous division:
    /// every fraction, percent, and rendered string must come out
    /// zero and finite, never NaN or infinity (figure output prints
    /// these verbatim).
    #[test]
    fn zero_base_never_produces_nan() {
        let mut b = Breakdown::new();
        b[Category::Busy] = SimDuration::from_micros(123);
        b[Category::SyncIdle] = SimDuration::from_micros(456);
        let n = b.normalized_to(SimDuration::ZERO);
        for c in Category::ALL {
            assert_eq!(n.fraction(c), 0.0, "{c:?} fraction must be exactly zero");
            assert!(n.percent(c).is_finite());
        }
        assert_eq!(n.total_fraction(), 0.0);
        let rendered = n.to_string();
        assert!(
            !rendered.contains("NaN") && !rendered.contains("inf"),
            "rendered normalized breakdown leaked a non-finite value: {rendered}"
        );
    }

    /// The all-empty case (zero values, zero base) stays finite in
    /// both fraction space and rendered form.
    #[test]
    fn empty_breakdown_renders_finite() {
        let n = Breakdown::new().normalized_to(SimDuration::ZERO);
        for c in Category::ALL {
            assert!(n.percent(c).is_finite());
        }
        let rendered = n.to_string();
        assert!(
            !rendered.contains("NaN") && !rendered.contains("inf"),
            "{rendered}"
        );
    }

    #[test]
    fn accumulate_sums_nodes() {
        let mut a = Breakdown::new();
        a[Category::Busy] = SimDuration::from_micros(1);
        let mut b = Breakdown::new();
        b[Category::Busy] = SimDuration::from_micros(2);
        a.accumulate(&b);
        assert_eq!(a[Category::Busy], SimDuration::from_micros(3));
    }

    #[test]
    fn display_nonempty() {
        assert!(!Breakdown::new().to_string().is_empty());
        assert!(!Breakdown::new().normalized_to_self().to_string().is_empty());
        assert_eq!(Category::Busy.to_string(), "Busy");
    }
}
